(* ddtest: command-line front end to the exact dependence analyzer.

   Subcommands:
     analyze    <file>  per-pair dependence report (text or JSON; memo
                        tables persist across runs with --memo-file)
     batch      <files> analyze a whole corpus concurrently (--jobs N);
                        --stream pulls items in bounded memory, --journal/
                        --resume checkpoint and continue interrupted runs,
                        --fuzz/--perfect generate the corpus on the fly
     fuzz       <n>     emit programs from the seeded corpus fuzzer
     parallel   <file>  which loops are parallelizable
     transform  <file>  loop reversal/interchange legality
     distribute <file>  Allen-Kennedy loop distribution plan
     annotate   <file>  re-emit the source with parallelism annotations
     cc         <file>  compile to C with OpenMP pragmas
     check      <file>  validate every verdict against actual execution
     lint       <file>  parallelism lint: per-loop doall/vectorizable/
                        reduction/serial verdicts with blocking evidence,
                        races on `parallel`-annotated loops (text/json/sarif)
     depgraph   <file>  dependence graph (Graphviz)
     graph      <file>  loop-residue graphs (Graphviz)
     passes     <file>  show the program after the optimizer prepass
     perfect    <name>  emit a synthetic PERFECT Club program
     prime      <file>  build a memo table from the whole suite *)

open Cmdliner
open Dda_lang
open Dda_core

let read_file path =
  if Sys.file_exists path && Sys.is_directory path then
    failwith (path ^ ": is a directory");
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let src = if String.equal path "-" then In_channel.input_all stdin else read_file path in
  match Parser.parse_program src with
  | prog ->
    (match Semant.check prog with
     | [] -> ()
     | errs ->
       List.iter (fun e -> Dda_obs.Log.warn "%a" Semant.pp_error e) errs);
    prog
  | exception Parser.Error (msg, loc) ->
    Format.eprintf "%s:%a: syntax error: %s@." path Loc.pp loc msg;
    exit 1
  | exception Lexer.Error (msg, loc) ->
    Format.eprintf "%s:%a: lexical error: %s@." path Loc.pp loc msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let config_term =
  let symbolic =
    Arg.(value & opt bool true & info [ "symbolic" ] ~doc:"Treat loop-invariant unknowns as symbolic terms.")
  in
  let directions =
    Arg.(value & opt bool true & info [ "directions" ] ~doc:"Compute direction/distance vectors.")
  in
  let memo =
    Arg.(
      value
      & opt
          (enum
             [
               ("off", Analyzer.Memo_off);
               ("simple", Analyzer.Memo_simple);
               ("improved", Analyzer.Memo_improved);
               ("symmetric", Analyzer.Memo_symmetric);
             ])
          Analyzer.Memo_improved
      & info [ "memo" ]
          ~doc:
            "Memoization scheme: $(b,off), $(b,simple), $(b,improved) or \
             $(b,symmetric).")
  in
  let prune =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Direction.no_pruning);
               ("full", Direction.full_pruning);
               ("separable", Direction.separable_pruning);
             ])
          Direction.full_pruning
      & info [ "prune" ]
          ~doc:
            "Direction-vector pruning: $(b,none), $(b,full) (the paper's two \
             rules) or $(b,separable) (plus dimension-by-dimension \
             treatment).")
  in
  let fm_tighten =
    Arg.(value & flag & info [ "fm-tighten" ] ~doc:"Enable Omega-style integer tightening in Fourier-Motzkin.")
  in
  let no_pipeline =
    Arg.(value & flag & info [ "no-pipeline" ] ~doc:"Skip the optimizer prepass.")
  in
  let cross_nest =
    Arg.(value & flag & info [ "cross-nest" ] ~doc:"Also test pairs that share no loop.")
  in
  let budget_branches =
    Arg.(
      value
      & opt int Budget.default_limits.Budget.fm_branches
      & info [ "budget-branches" ] ~docv:"N"
          ~doc:"Fourier-Motzkin branch-and-bound budget (branch splits per query).")
  in
  let budget_depth =
    Arg.(
      value
      & opt int Budget.default_limits.Budget.fm_depth
      & info [ "budget-depth" ] ~docv:"N"
          ~doc:"Fourier-Motzkin elimination depth budget per query.")
  in
  let budget_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-steps" ] ~docv:"N"
          ~doc:
            "Solver step budget per query; running out degrades the verdict \
             to a flagged conservative one instead of failing.")
  in
  let budget_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-rows" ] ~docv:"N"
          ~doc:"Cap on the rows a system may grow to during elimination.")
  in
  let budget_coeff_bits =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-coeff-bits" ] ~docv:"N"
          ~doc:"Cap on coefficient magnitudes (in bits) during elimination.")
  in
  let build symbolic directions memo prune fm_tighten no_pipeline cross_nest
      fm_branches fm_depth max_steps max_rows max_coeff_bits =
    let positive name = function
      | Some n when n < 1 -> failwith (Printf.sprintf "--%s must be positive" name)
      | v -> v
    in
    let req_positive name n = ignore (positive name (Some n)); n in
    let fm_branches = req_positive "budget-branches" fm_branches in
    let fm_depth = req_positive "budget-depth" fm_depth in
    let max_steps = positive "budget-steps" max_steps in
    let max_rows = positive "budget-rows" max_rows in
    let max_coeff_bits = positive "budget-coeff-bits" max_coeff_bits in
    {
      Analyzer.symbolic;
      memo;
      directions;
      prune;
      fm_tighten;
      run_pipeline = not no_pipeline;
      within_nest_only = not cross_nest;
      limits = { Budget.fm_depth; fm_branches; max_steps; max_rows; max_coeff_bits };
    }
  in
  Term.(
    const build $ symbolic $ directions $ memo $ prune $ fm_tighten
    $ no_pipeline $ cross_nest $ budget_branches $ budget_depth $ budget_steps
    $ budget_rows $ budget_coeff_bits)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Source file ($(b,-) for stdin).")

(* Observability options, shared by the analysis-running subcommands.
   The trace file is written from [at_exit] so the error exits (batch
   quarantine's 3, verification's 2) still produce a loadable trace. *)
let obs_term =
  let log_level =
    Arg.(
      value
      & opt (enum Dda_obs.Log.all_levels) Dda_obs.Log.Warn
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Diagnostic verbosity on stderr: $(b,quiet), $(b,warn), \
             $(b,info) or $(b,debug). Machine-readable stdout is never \
             mixed with diagnostics at any level.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record analysis spans and write them as Chrome trace_event \
             JSON to $(docv) on exit (one track per worker domain; load \
             at https://ui.perfetto.dev).")
  in
  let setup level trace_out =
    Dda_obs.Log.set_level level;
    match trace_out with
    | None -> ()
    | Some path ->
      (* Fail on an unwritable path now, with the standard error
         convention — not from the at_exit hook after all the work. *)
      close_out (open_out path);
      (* Real microsecond timestamps, installed only here: the library
         default is a deterministic tick counter, and the Unix
         dependency stays out of lib/obs. *)
      Dda_obs.Clock.set_source (fun () ->
          int_of_float (Unix.gettimeofday () *. 1e6));
      Dda_obs.Trace.enable ();
      at_exit (fun () ->
          (* An exception escaping at_exit prints a raw fatal error;
             degrade to a logged error instead. *)
          match Dda_obs.Trace.write_chrome path with
          | () ->
            let dropped = Dda_obs.Trace.dropped () in
            if dropped > 0 then
              Dda_obs.Log.warn "trace: %d events lost to ring-buffer overflow"
                dropped
          | exception Sys_error msg -> Dda_obs.Log.err "trace: %s" msg)
  in
  Term.(const setup $ log_level $ trace_out)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let pp_outcome fmt (r : Analyzer.pair_report) =
  match r.outcome with
  | Analyzer.Constant true -> Format.fprintf fmt "dependent (constant subscripts)"
  | Analyzer.Constant false -> Format.fprintf fmt "independent (constant subscripts)"
  | Analyzer.Assumed_dependent -> Format.fprintf fmt "assumed dependent (not affine)"
  | Analyzer.Gcd_independent -> Format.fprintf fmt "independent (extended gcd)"
  | Analyzer.Tested t ->
    if not t.dependent then
      Format.fprintf fmt "independent%s"
        (if t.implicit_bb then " (via direction vectors)" else "")
    else begin
      Format.fprintf fmt "dependent";
      (match t.degraded with
       | Some reason ->
         Format.fprintf fmt " (degraded: %s budget exhausted)"
           (Budget.reason_name reason)
       | None -> if t.unknown then Format.fprintf fmt " (assumed: depth exhausted)");
      (match t.decided_by with
       | Some test -> Format.fprintf fmt " [%a]" Cascade.pp_test test
       | None -> ());
      if t.directions <> [] then begin
        Format.fprintf fmt " directions:";
        List.iter
          (fun v ->
             Format.fprintf fmt " %a%a" Direction.pp_vector v
               (fun fmt v ->
                  Format.fprintf fmt "[%a]" Analyzer.pp_dep_kind
                    (Analyzer.vector_kind r v))
               v)
          t.directions
      end;
      match t.distance with
      | Some d ->
        Format.fprintf fmt " distance: (%s)"
          (String.concat ","
             (Array.to_list (Array.map Dda_numeric.Zint.to_string d)))
      | None -> ()
    end

let pp_stats fmt (s : Analyzer.stats) =
  Format.fprintf fmt "@.-- statistics --@.";
  Format.fprintf fmt "pairs analyzed:      %d@." s.pairs;
  Format.fprintf fmt "constant subscripts: %d@." s.constant_cases;
  Format.fprintf fmt "gcd independent:     %d@." s.gcd_independent;
  Format.fprintf fmt "assumed dependent:   %d@." s.assumed;
  Format.fprintf fmt "plain tests:         svpc=%d acyclic=%d loop-residue=%d fourier=%d@."
    s.plain_by_test.(0) s.plain_by_test.(1) s.plain_by_test.(2) s.plain_by_test.(3);
  Format.fprintf fmt "direction tests:     svpc=%d acyclic=%d loop-residue=%d fourier=%d@."
    s.dir_counts.by_test.(0) s.dir_counts.by_test.(1) s.dir_counts.by_test.(2)
    s.dir_counts.by_test.(3);
  Format.fprintf fmt "memo (gcd table):    %d lookups, %d hits, %d unique@."
    s.memo_lookups_nobounds s.memo_hits_nobounds s.memo_unique_nobounds;
  Format.fprintf fmt "memo (full table):   %d lookups, %d hits, %d unique@."
    s.memo_lookups_full s.memo_hits_full s.memo_unique_full;
  Format.fprintf fmt "verdicts:            %d independent, %d dependent@."
    s.independent_pairs s.dependent_pairs;
  (* Only when something degraded: exact runs keep their exact output. *)
  if s.degraded_pairs > 0 then
    Format.fprintf fmt "degraded (budget):   %d@." s.degraded_pairs

let print_stats s = Format.printf "%a" pp_stats s

let analyze_cmd =
  let run () file config stats memo_file format verify =
    let prog = load file in
    let report =
      match memo_file with
      | None -> Analyzer.analyze ~config prog
      | Some path ->
        (* The paper's cross-compilation memoization: reuse a table
           from a previous run and extend it for the next one. *)
        let session =
          if Sys.file_exists path then begin
            let s = Analyzer.load_session path in
            if Analyzer.session_config s <> config then
              Dda_obs.Log.info
                "%s was built under a different configuration; using the saved one"
                path;
            s
          end
          else Analyzer.create_session ~config ()
        in
        let report = Analyzer.analyze_session session prog in
        Analyzer.save_session session path;
        report
    in
    let verification =
      if verify then Some (Dda_check.Verify.run ~config prog) else None
    in
    (match format with
     | `Text ->
       List.iter
         (fun (r : Analyzer.pair_report) ->
            Format.printf "%s[%s]  %a x %a:  %a@." r.array_name
              (if r.self_pair then "self" else "pair")
              Loc.pp r.loc1 Loc.pp r.loc2 pp_outcome r)
         report.pair_reports;
       if stats then print_stats report.stats;
       Option.iter
         (fun s ->
            Format.printf "@.-- verification --@.%a"
              (Dda_check.Verify.pp_text ~file) s)
         verification
     | `Json -> (
         match verification with
         | None -> Format.printf "%a@." Json_out.pp (Json_out.report report)
         | Some s ->
           Format.printf "%a@." Json_out.pp
             (Json_out.Obj
                [
                  ("report", Json_out.report report);
                  ("verification", Dda_check.Verify.to_json ~file s);
                ])));
    match verification with
    | Some s when s.Dda_check.Verify.errors > 0 -> exit 2
    | _ -> ()
  in
  let stats_flag = Arg.(value & flag & info [ "stats" ] ~doc:"Print analysis statistics.") in
  let memo_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "memo-file" ] ~docv:"FILE"
          ~doc:
            "Persist the memoization tables across runs: load $(docv) if it \
             exists, save back after analyzing.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-derive and validate every verdict's certificate after \
             analyzing (see $(b,ddtest check)); exits 2 when any \
             certificate fails.")
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Report dependence for every reference pair")
    Term.(
      const run $ obs_term $ file_arg $ config_term $ stats_flag $ memo_file
      $ format $ verify_flag)

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  (* The output deliberately never mentions the job count: in the
     default (independent) mode it is byte-identical whatever --jobs
     is, and the determinism tests compare runs across job counts.

     The streaming path renders each item's block to a string with the
     same format strings as the in-memory path below, so the two modes
     are byte-identical on stdout (modulo the in-memory JSON layout:
     streaming JSON is one compact JSONL object per program). The
     rendered chunk is also what the journal stores, which is what
     makes a resumed run byte-identical to an uninterrupted one. *)
  let render_text = function
    | Dda_engine.Stream.Analyzed a ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Format.fprintf fmt "== %s ==@." a.name;
      List.iter
        (fun (r : Analyzer.pair_report) ->
          Format.fprintf fmt "%s[%s]  %a x %a:  %a@." r.array_name
            (if r.self_pair then "self" else "pair")
            Loc.pp r.loc1 Loc.pp r.loc2 pp_outcome r)
        a.report.Analyzer.pair_reports;
      Option.iter
        (fun s ->
          Format.fprintf fmt "%a" (Dda_check.Verify.pp_text ~file:a.name) s)
        a.verification;
      Option.iter
        (fun l ->
          Format.fprintf fmt "%s" (Dda_analysis.Lint.to_text ~file:a.name l))
        a.lint;
      Format.pp_print_flush fmt ();
      Buffer.contents buf
    | Dda_engine.Stream.Quarantined q ->
      Format.asprintf "== %s ==@.QUARANTINED after %d attempt%s: %s@." q.name
        q.attempts
        (if q.attempts = 1 then "" else "s")
        q.error
  in
  let render_json = function
    | Dda_engine.Stream.Analyzed a ->
      Json_out.to_string
        (Json_out.Obj
           ([
              ("file", Json_out.Str a.name);
              ("report", Json_out.report a.report);
            ]
           @ (match a.verification with
              | Some s ->
                [ ("verification", Dda_check.Verify.to_json ~file:a.name s) ]
              | None -> [])
           @
           match a.lint with
           | Some l -> [ ("lint", Dda_analysis.Lint.to_json ~file:a.name l) ]
           | None -> []))
      ^ "\n"
    | Dda_engine.Stream.Quarantined q ->
      Json_out.to_string
        (Json_out.Obj
           [
             ("file", Json_out.Str q.name);
             ("quarantined", Json_out.Bool true);
             ("attempts", Json_out.Int q.attempts);
             ("error", Json_out.Str q.error);
           ])
      ^ "\n"
  in
  let run_stream ~files ~jobs ~share_memo ~verify ~lint ~retries ~backoff_ms
      ~item_timeout_ms ~config ~format ~journal ~resume ~fuzz ~fuzz_seed
      ~fuzz_profile ~perfect ~amplify =
    let sources =
      (if files = [] then []
       else
         [
           Dda_engine.Stream.concat
             (List.map
                (fun f ->
                  if Sys.file_exists f && Sys.is_directory f then
                    Dda_engine.Stream.of_dir f
                  else Dda_engine.Stream.of_files [ f ])
                files);
         ])
      @ (if perfect then [ Dda_engine.Stream.of_perfect ~amplify () ] else [])
      @
      if fuzz > 0 then
        [ Dda_engine.Stream.of_fuzz ~profile:fuzz_profile ~seed:fuzz_seed fuzz ]
      else []
    in
    if sources = [] then
      failwith "batch: no corpus (give FILES, --perfect or --fuzz N)";
    let source = Dda_engine.Stream.concat sources in
    let render =
      match format with `Text -> render_text | `Json -> render_json
    in
    let emit chunk =
      print_string chunk;
      flush stdout
    in
    (* With a journal, SIGINT/SIGTERM request a clean stop instead of
       dying mid-write: finish what is in flight, journal and fsync it,
       and exit 130 — the journal then resumes exactly where the run
       left off. Without a journal there is nothing to save; the
       default die-now behavior stands. *)
    let stop_flag = Atomic.make false in
    let restore_signals =
      if journal = None then fun () -> ()
      else begin
        let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
        let prev =
          List.map (fun s -> (s, Sys.signal s handler)) [ Sys.sigint; Sys.sigterm ]
        in
        fun () -> List.iter (fun (s, h) -> Sys.set_signal s h) prev
      end
    in
    let summary =
      Fun.protect ~finally:restore_signals (fun () ->
          Dda_engine.Stream.run ~config ~share_memo ~verify ~lint ~retries
            ~backoff_ms ?item_timeout_ms ?journal ~resume
            ~stop:(fun () -> Atomic.get stop_flag)
            ~jobs ~render ~emit source)
    in
    if summary.Dda_engine.Stream.interrupted then begin
      (* No summary block: the run is incomplete by design. Everything
         emitted so far is already on stdout and in the journal. *)
      Dda_obs.Log.warn
        "stream: interrupted after %d item(s); journal %s is flushed — \
         resume with --resume"
        summary.Dda_engine.Stream.total
        (Option.value ~default:"-" journal);
      exit 130
    end;
    (match format with
     | `Text ->
       print_string
         (Format.asprintf "@.== corpus: %d programs ==@."
            summary.Dda_engine.Stream.total);
       if
         summary.Dda_engine.Stream.retried > 0
         || summary.Dda_engine.Stream.quarantined > 0
       then
         print_string
           (Format.asprintf "engine: %d retried, %d quarantined@."
              summary.Dda_engine.Stream.retried
              summary.Dda_engine.Stream.quarantined);
       print_string
         (Format.asprintf "%a" pp_stats summary.Dda_engine.Stream.merged)
     | `Json ->
       (* No metrics registry here: replayed items do not re-run, so
          registry counters are not resume-invariant — and the summary
          must be byte-identical between a clean and a resumed run. *)
       print_string
         (Json_out.to_string
            (Json_out.Obj
               ([
                  ("corpus", Json_out.Int summary.Dda_engine.Stream.total);
                  ( "merged_stats",
                    Json_out.stats summary.Dda_engine.Stream.merged );
                ]
               @
               if
                 summary.Dda_engine.Stream.retried = 0
                 && summary.Dda_engine.Stream.quarantined = 0
               then []
               else
                 [
                   ( "engine",
                     Json_out.Obj
                       [
                         ( "retried",
                           Json_out.Int summary.Dda_engine.Stream.retried );
                         ( "quarantined",
                           Json_out.Int summary.Dda_engine.Stream.quarantined
                         );
                       ] );
                 ]))
         ^ "\n"));
    flush stdout;
    (* The scale CI job greps this line to watch peak memory. *)
    Dda_obs.Log.info
      "stream: %d items (%d replayed), %d retried, %d quarantined, peak rss %d kB"
      summary.Dda_engine.Stream.total summary.Dda_engine.Stream.replayed
      summary.Dda_engine.Stream.retried summary.Dda_engine.Stream.quarantined
      (Option.value ~default:0 (Dda_obs.Rusage.peak_rss_kb ()));
    if summary.Dda_engine.Stream.quarantined > 0 then exit 3
    else if summary.Dda_engine.Stream.verify_errors > 0 then exit 2
  in
  let run () files jobs share_memo memo_merge_after verify lint retries
      backoff_ms item_timeout_ms config format stream journal resume fuzz
      fuzz_seed fuzz_profile perfect amplify =
    let streaming =
      stream || journal <> None || resume || fuzz > 0 || perfect || amplify > 1
    in
    if streaming then begin
      if memo_merge_after then
        failwith
          "--memo-merge-after is incompatible with streaming: there are no \
           per-chunk sessions to merge (live sharing via --share-memo works)";
      run_stream ~files ~jobs ~share_memo ~verify ~lint ~retries ~backoff_ms
        ~item_timeout_ms ~config ~format ~journal ~resume ~fuzz ~fuzz_seed
        ~fuzz_profile ~perfect ~amplify
    end
    else begin
    if files = [] then failwith "batch: no input files";
    let items =
      List.map (fun f -> { Dda_engine.Batch.name = f; program = load f }) files
    in
    let result =
      Dda_engine.Batch.run ~config ~share_memo ~memo_merge_after ~verify ~lint
        ~retries ~backoff_ms ?item_timeout_ms ~jobs items
    in
    (* Successes and quarantined items interleaved back in input order. *)
    let entries =
      let index = function
        | `Ok (a : Dda_engine.Batch.analyzed) -> a.Dda_engine.Batch.index
        | `Q (q : Dda_engine.Batch.quarantined) -> q.Dda_engine.Batch.q_index
      in
      List.merge
        (fun a b -> compare (index a) (index b))
        (List.map (fun a -> `Ok a) result.Dda_engine.Batch.items)
        (List.map (fun q -> `Q q) result.Dda_engine.Batch.quarantined)
    in
    let nquarantined = List.length result.Dda_engine.Batch.quarantined in
    (match format with
     | `Text ->
       List.iter
         (function
           | `Ok (a : Dda_engine.Batch.analyzed) ->
             Format.printf "== %s ==@." a.name;
             List.iter
               (fun (r : Analyzer.pair_report) ->
                  Format.printf "%s[%s]  %a x %a:  %a@." r.array_name
                    (if r.self_pair then "self" else "pair")
                    Loc.pp r.loc1 Loc.pp r.loc2 pp_outcome r)
               a.report.Analyzer.pair_reports;
             Option.iter
               (fun s ->
                  Format.printf "%a" (Dda_check.Verify.pp_text ~file:a.name) s)
               a.verification;
             Option.iter
               (fun l ->
                  Format.printf "%s" (Dda_analysis.Lint.to_text ~file:a.name l))
               a.lint
           | `Q (q : Dda_engine.Batch.quarantined) ->
             Format.printf "== %s ==@." q.q_name;
             Format.printf "QUARANTINED after %d attempt%s: %s@." q.q_attempts
               (if q.q_attempts = 1 then "" else "s")
               q.q_error)
         entries;
       Format.printf "@.== corpus: %d programs ==@." (List.length files);
       if result.Dda_engine.Batch.retried > 0 || nquarantined > 0 then
         Format.printf "engine: %d retried, %d quarantined@."
           result.Dda_engine.Batch.retried nquarantined;
       print_stats result.Dda_engine.Batch.merged;
       Option.iter
         (fun (gcd, full) ->
            let line name (st : Memo_table.stats) =
              Format.printf
                "table (%s):  %d entries in %d buckets, %d/%d hits (%.1f%%)@."
                name st.Memo_table.size st.Memo_table.buckets
                st.Memo_table.hits st.Memo_table.lookups
                (if st.Memo_table.lookups = 0 then 0.
                 else
                   100. *. float_of_int st.Memo_table.hits
                   /. float_of_int st.Memo_table.lookups)
            in
            line "gcd" gcd;
            line "full" full)
         result.Dda_engine.Batch.table_stats
     | `Json ->
       let programs =
         List.map
           (function
             | `Ok (a : Dda_engine.Batch.analyzed) ->
               Json_out.Obj
                 ([ ("file", Json_out.Str a.name); ("report", Json_out.report a.report) ]
                  @ (match a.verification with
                     | Some s ->
                       [ ("verification", Dda_check.Verify.to_json ~file:a.name s) ]
                     | None -> [])
                  @
                  match a.lint with
                  | Some l ->
                    [ ("lint", Dda_analysis.Lint.to_json ~file:a.name l) ]
                  | None -> [])
             | `Q (q : Dda_engine.Batch.quarantined) ->
               Json_out.Obj
                 [
                   ("file", Json_out.Str q.q_name);
                   ("quarantined", Json_out.Bool true);
                   ("attempts", Json_out.Int q.q_attempts);
                   ("error", Json_out.Str q.q_error);
                 ])
           entries
       in
       Format.printf "%a@." Json_out.pp
         (Json_out.Obj
            ([
              ("programs", Json_out.List programs);
              ("merged_stats", Json_out.stats result.Dda_engine.Batch.merged);
            ]
            @ (match result.Dda_engine.Batch.table_stats with
               | None -> []
               | Some (gcd, full) ->
                 let table (st : Memo_table.stats) =
                   Json_out.Obj
                     [
                       ("entries", Json_out.Int st.Memo_table.size);
                       ("buckets", Json_out.Int st.Memo_table.buckets);
                       ("lookups", Json_out.Int st.Memo_table.lookups);
                       ("hits", Json_out.Int st.Memo_table.hits);
                     ]
                 in
                 [
                   ( "memo_tables",
                     Json_out.Obj [ ("gcd", table gcd); ("full", table full) ] );
                 ])
            (* Registry counters are jobs-invariant (each is a pure
               function of the per-item work), so embedding them keeps
               the JSON byte-identical across --jobs values. *)
            @ [ ("metrics", Json_out.metrics (Dda_obs.Metrics.snapshot ())) ]
            @
            if result.Dda_engine.Batch.retried = 0 && nquarantined = 0 then []
            else
              [
                ( "engine",
                  Json_out.Obj
                    [
                      ("retried", Json_out.Int result.Dda_engine.Batch.retried);
                      ("quarantined", Json_out.Int nquarantined);
                    ] );
              ])));
    if nquarantined > 0 then exit 3
    else if
      List.exists
        (fun (a : Dda_engine.Batch.analyzed) ->
           (match a.verification with
            | Some s -> s.Dda_check.Verify.errors > 0
            | None -> false)
           ||
           match a.lint with
           | Some l -> l.Dda_analysis.Lint.errors > 0
           | None -> false)
        result.Dda_engine.Batch.items
    then exit 2
    end
  in
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILES"
          ~doc:
            "Source files to analyze (in streaming mode, directories are \
             expanded to their $(b,*.dd) files).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Number of worker domains.")
  in
  let share_memo_arg =
    Arg.(
      value & flag
      & info [ "share-memo" ]
          ~doc:
            "Share one live lock-striped memoization table pair across every \
             worker domain for the whole corpus (faster; verdicts are \
             unchanged, but memo hit counters then depend on cross-domain \
             timing when $(b,--jobs) > 1).")
  in
  let memo_merge_after_arg =
    Arg.(
      value & flag
      & info [ "memo-merge-after" ]
          ~doc:
            "With $(b,--share-memo): instead of live sharing, give each \
             domain a private memoization session and merge the tables after \
             the run (the pre-live behavior, kept as a differential oracle; \
             deterministic hit counters for a fixed $(b,--jobs), but \
             cross-domain repeats are recomputed).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Certificate-check every program's report on its worker domain; \
             exits 2 when any certificate fails.")
  in
  let lint_arg =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the parallelism linter on every program: classify its \
             dependences, summarize each loop's parallelizability and check \
             $(b,parallel) annotations. Lint results ride along with each \
             item's report; exits 2 when any annotated loop races.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"How many times a crashed item is retried before quarantine.")
  in
  let backoff_arg =
    Arg.(
      value & opt int 50
      & info [ "retry-backoff-ms" ] ~docv:"MS"
          ~doc:"Delay before the first retry; doubled for each further one.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "item-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-item cooperative deadline: analysis running past it comes \
             back as a flagged conservative (degraded) report instead of \
             hanging the batch.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream the corpus instead of materializing it: items are read \
             (or generated), analyzed and printed with bounded memory — at \
             most about twice $(b,--jobs) items in flight. Implied by \
             $(b,--journal), $(b,--resume), $(b,--fuzz), $(b,--perfect) and \
             $(b,--amplify).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: append every completed item's result to \
             $(docv) (fsynced before the result is printed), so an \
             interrupted run can continue with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the $(b,--journal) file: journaled items are \
             replayed byte-for-byte (after checking they still match the \
             corpus) and analysis restarts at the first un-journaled item. \
             The final output is byte-identical to an uninterrupted run. A \
             truncated, corrupt or mismatched journal is rejected.")
  in
  let fuzz_arg =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Append $(docv) random affine programs from the corpus fuzzer \
             to the corpus (see $(b,--seed) and $(b,--fuzz-profile)).")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Fuzzer corpus seed: the same seed always generates the same \
             programs.")
  in
  let fuzz_profile_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("mixed", Dda_perfect.Fuzz.Mixed); ("small", Dda_perfect.Fuzz.Small);
             ])
          Dda_perfect.Fuzz.Mixed
      & info [ "fuzz-profile" ] ~docv:"PROFILE"
          ~doc:
            "Fuzzer profile: $(b,mixed) (deep nests, symbolic bounds, \
             pattern-library material) or $(b,small) (tiny constant bounds, \
             exhaustively checkable).")
  in
  let perfect_arg =
    Arg.(
      value & flag
      & info [ "perfect" ]
          ~doc:
            "Append the synthetic PERFECT Club suite to the corpus, \
             generated on the fly ($(b,--amplify) controls how many \
             seed-shifted copies of each program).")
  in
  let amplify_arg =
    Arg.(
      value & opt int 1
      & info [ "amplify" ] ~docv:"N"
          ~doc:
            "With $(b,--perfect): generate $(docv) seed-shifted copies of \
             each suite program.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze a corpus of programs concurrently on a pool of domains; \
          per-program reports come back in input order with merged corpus \
          statistics, and the default mode is byte-identical for every \
          $(b,--jobs) value. An item whose worker crashes is retried and \
          then quarantined — the rest of the corpus still completes; exits \
          3 when anything was quarantined. With $(b,--stream) (or any of \
          the flags that imply it) the corpus is pulled item by item in \
          bounded memory, optionally journaled ($(b,--journal)) and \
          resumed ($(b,--resume)) after a crash.")
    Term.(
      const run $ obs_term $ files_arg $ jobs_arg $ share_memo_arg
      $ memo_merge_after_arg $ verify_arg $ lint_arg $ retries_arg
      $ backoff_arg $ timeout_arg $ config_term $ format $ stream_arg
      $ journal_arg $ resume_arg $ fuzz_arg $ fuzz_seed_arg $ fuzz_profile_arg
      $ perfect_arg $ amplify_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run () count seed profile dir start =
    if count < 1 then failwith "fuzz: COUNT must be positive";
    Option.iter
      (fun d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755
        else if not (Sys.is_directory d) then
          failwith (Printf.sprintf "fuzz: %s is not a directory" d))
      dir;
    for index = start to start + count - 1 do
      let text = Dda_perfect.Fuzz.program profile ~seed ~index in
      match dir with
      | None -> print_string text
      | Some d ->
        let path =
          Filename.concat d (Printf.sprintf "fuzz-%d-%04d.dd" seed index)
        in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text)
    done
  in
  let count_arg =
    Arg.(
      required & pos 0 (some int) None
      & info [] ~docv:"COUNT" ~doc:"How many programs to generate.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Corpus seed; the same seed always yields the same programs.")
  in
  let profile_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("mixed", Dda_perfect.Fuzz.Mixed); ("small", Dda_perfect.Fuzz.Small);
             ])
          Dda_perfect.Fuzz.Mixed
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:"Fuzzer profile: $(b,mixed) or $(b,small).")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Write each program to $(docv)/fuzz-$(b,S)-$(b,NNNN).dd instead \
             of concatenating them on stdout.")
  in
  let start_arg =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"I"
          ~doc:
            "First corpus index to generate (programs are indexed, so a \
             corpus can be produced in slices).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random affine programs from the seeded corpus fuzzer — \
          the same generator $(b,ddtest batch --fuzz) streams from. \
          Deterministic in ($(b,--profile), $(b,--seed), index).")
    Term.(
      const run $ obs_term $ count_arg $ seed_arg $ profile_arg $ dir_arg
      $ start_arg)

(* ------------------------------------------------------------------ *)
(* parallel                                                            *)
(* ------------------------------------------------------------------ *)

let parallel_cmd =
  let run file config =
    let prog = load file in
    let prepared = if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run prog else prog in
    let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
    let report = Analyzer.analyze ~config:{ config with Analyzer.run_pipeline = false } prepared in
    let verdicts = Analyzer.parallel_loops report sites in
    let names = Affine.loop_table sites in
    List.iter
      (fun (lid, parallel) ->
         let name = Option.value (List.assoc_opt lid names) ~default:"?" in
         Format.printf "loop %s (id %d): %s@." name lid
           (if parallel then "PARALLELIZABLE" else "serial"))
      verdicts
  in
  Cmd.v (Cmd.info "parallel" ~doc:"Mark loops as parallelizable or serial")
    Term.(const run $ file_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* passes                                                              *)
(* ------------------------------------------------------------------ *)

let passes_cmd =
  let run file =
    let prog = load file in
    Format.printf "%s" (Pretty.program_to_string (Dda_passes.Pipeline.run prog))
  in
  Cmd.v (Cmd.info "passes" ~doc:"Show the program after the optimizer prepass")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* perfect                                                             *)
(* ------------------------------------------------------------------ *)

let perfect_cmd =
  let run list name =
    if list then
      List.iter
        (fun (s : Dda_perfect.Programs.spec) -> print_endline s.name)
        Dda_perfect.Programs.all
    else
      match name with
      | None ->
        Format.eprintf "a program name (or --list) is required@.";
        exit 1
      | Some name -> (
          match Dda_perfect.Programs.find name with
          | Some spec -> print_string (Dda_perfect.Programs.source spec)
          | None ->
            Format.eprintf "unknown program %s; available:" name;
            List.iter
              (fun (s : Dda_perfect.Programs.spec) -> Format.eprintf " %s" s.name)
              Dda_perfect.Programs.all;
            Format.eprintf "@.";
            exit 1)
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Program code (AP, CS, ...).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the program codes, one per line.")
  in
  Cmd.v (Cmd.info "perfect" ~doc:"Emit a synthetic PERFECT Club program")
    Term.(const run $ list_arg $ name_arg)

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let run file =
    let prog = load file in
    let prepared = Dda_passes.Pipeline.run prog in
    let sites = Affine.extract prepared in
    let arr = Array.of_list sites in
    let printed = ref 0 in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let s1 = arr.(i) and s2 = arr.(j) in
        if String.equal s1.Affine.array s2.Affine.array
           && (s1.Affine.role = `Write || s2.Affine.role = `Write)
        then
          match Build_problem.build s1 s2 with
          | None -> ()
          | Some p -> (
              match Gcd_test.run p with
              | Gcd_test.Independent _ -> ()
              | Gcd_test.Reduced red -> (
                  (* Mirror the cascade: only systems that survive SVPC
                     and Acyclic reach the loop-residue graph. *)
                  match Svpc.run red.Gcd_test.system with
                  | Svpc.Partial (box, multi) -> (
                      match Acyclic.run box multi with
                      | Acyclic.Cycle (box', _, core)
                        when Loop_residue.applicable
                               (List.map (fun (dr : Cert.drow) -> dr.row) core) ->
                        incr printed;
                        Format.printf "/* pair %a x %a */@.%s@." Loc.pp s1.site_loc
                          Loc.pp s2.site_loc
                          (Loop_residue.to_dot box' core)
                      | _ -> ())
                  | _ -> ()))
      done
    done;
    if !printed = 0 then
      Format.printf "no pair reaches the loop-residue stage in this program@."
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print loop-residue constraint graphs (Graphviz) for residual systems")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* depgraph                                                            *)
(* ------------------------------------------------------------------ *)

let depgraph_cmd =
  let run file config =
    let prog = load file in
    print_string (Depgraph.to_dot (Analyzer.analyze ~config prog))
  in
  Cmd.v
    (Cmd.info "depgraph" ~doc:"Print the dependence graph in Graphviz format")
    Term.(const run $ file_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* transform                                                           *)
(* ------------------------------------------------------------------ *)

let transform_cmd =
  let run file config =
    let prog = load file in
    (* Legality needs fully refined vectors: a pruned "*" level reads as
       "could be >" and conservatively blocks every reordering. *)
    let config =
      {
        config with
        Analyzer.directions = true;
        prune = Direction.no_pruning;
        memo =
          (match config.Analyzer.memo with
           | Analyzer.Memo_off -> Analyzer.Memo_off
           | _ -> Analyzer.Memo_simple);
      }
    in
    let prepared =
      if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run prog else prog
    in
    let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
    let report =
      Analyzer.analyze ~config:{ config with Analyzer.run_pipeline = false } prepared
    in
    let table = Affine.loop_table sites in
    let loops = List.map fst table in
    let name lid = Option.value (List.assoc_opt lid table) ~default:"?" in
    List.iter
      (fun lid ->
         Format.printf "loop %s: %s@." (name lid)
           (if Transforms.reversal_legal report ~lid then "reversible"
            else "NOT reversible"))
      loops;
    (* Pairwise interchange of loops that are directly nested. *)
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        Format.printf "interchange %s <-> %s: %s@." (name a) (name b)
          (if Transforms.interchange_legal report ~lid_a:a ~lid_b:b then "legal"
           else "ILLEGAL");
        pairs rest
      | _ -> []
    in
    ignore (pairs loops);
    if List.length loops >= 2 && List.length loops <= 4 then begin
      let perms = Transforms.legal_permutations report loops in
      Format.printf "legal loop orders:";
      List.iter
        (fun perm ->
           Format.printf " (%s)" (String.concat "," (List.map name perm)))
        perms;
      Format.printf "@.";
      Format.printf "band fully permutable (tilable): %s@."
        (if Transforms.fully_permutable report loops then "yes" else "no")
    end
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Report loop reversal and interchange legality (assumes the program \
          is one perfect nest; for anything else, interpret per pair of \
          directly nested loops)")
    Term.(const run $ file_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* cc: emit C with OpenMP pragmas on the loops proven parallel         *)
(* ------------------------------------------------------------------ *)

let cc_cmd =
  let run file =
    let prog = load file in
    (* The OpenMP pragmas come from the lint summary: only loops the
       summary certifies DOALL (exact dependence refutation, no carried
       scalars, never degraded evidence) are emitted parallel. *)
    let res = Dda_analysis.Lint.run ~config:Analyzer.default_config prog in
    let parallel =
      Dda_analysis.Summary.doall_loops res.Dda_analysis.Lint.summary
    in
    match
      Dda_codegen.C_emit.emit ~parallel res.Dda_analysis.Lint.prepared
    with
    | Ok src -> print_string src
    | Error reason ->
      Format.eprintf "cannot compile to C: %s@." reason;
      exit 1
  in
  Cmd.v
    (Cmd.info "cc"
       ~doc:
         "Compile to C: loops the analysis proves parallel carry an OpenMP \
          pragma; the generated main dumps the final machine state \
          (compile the output with gcc -fopenmp)")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* annotate: re-emit the source with parallelism annotations           *)
(* ------------------------------------------------------------------ *)

let annotate_cmd =
  let run file config =
    let prog = load file in
    let prepared =
      if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run prog else prog
    in
    let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
    let report =
      Analyzer.analyze ~config:{ config with Analyzer.run_pipeline = false } prepared
    in
    let verdicts = Analyzer.parallel_loops report sites in
    (* Re-number loops in pre-order while printing, mirroring the
       extractor's numbering. *)
    let counter = ref 0 in
    let buf = Buffer.create 1024 in
    let rec emit indent (s : Ast.stmt) =
      let pad = String.make indent ' ' in
      match s.Ast.sdesc with
      | Ast.For f ->
        let lid = !counter in
        incr counter;
        let tag =
          match List.assoc_opt lid verdicts with
          | Some true -> "# PARALLEL\n"
          | Some false -> "# serial (carries a dependence)\n"
          | None -> "# no array references\n"
        in
        Buffer.add_string buf (pad ^ tag);
        Buffer.add_string buf
          (Format.asprintf "%sfor %s = %a to %a%t do\n" pad f.var Pretty.pp_expr
             f.lo Pretty.pp_expr f.hi
             (fun fmt ->
                match f.step with
                | None -> ()
                | Some st -> Format.fprintf fmt " step %a" Pretty.pp_expr st));
        List.iter (emit (indent + 2)) f.body;
        Buffer.add_string buf (pad ^ "end\n")
      | _ ->
        (* Lean on the pretty-printer for non-loop statements. *)
        let text = Format.asprintf "%a" Pretty.pp_stmt s in
        String.split_on_char '\n' text
        |> List.iter (fun line -> Buffer.add_string buf (pad ^ line ^ "\n"))
    in
    List.iter (emit 0) prepared;
    print_string (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Re-emit the (optimized) program with a parallelism annotation above every loop")
    Term.(const run $ file_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* check: validate the analysis against its own certificates (and,     *)
(* with --trace, against actual execution)                             *)
(* ------------------------------------------------------------------ *)

let check_trace prog =
  (* Full refinement and no prepass: the claims compared to the trace
     must be concrete. *)
  let config =
    {
      Analyzer.default_config with
      Analyzer.prune = Direction.no_pruning;
      memo = Analyzer.Memo_simple;
      run_pipeline = false;
    }
  in
  let report = Analyzer.analyze ~config prog in
  let failures = ref 0 in
  List.iter
    (fun (r : Analyzer.pair_report) ->
       let obs =
         try Trace.observe ~fuel:5_000_000 prog ~site1:r.loc1 ~site2:r.loc2
         with Interp.Runtime_error (msg, loc) ->
           Format.eprintf "cannot execute the program: %s at %a@." msg Loc.pp loc;
           exit 1
       in
       let claim_dep, claim_exact =
         match r.outcome with
         | Analyzer.Constant d -> (d, true)
         | Analyzer.Gcd_independent -> (false, true)
         | Analyzer.Assumed_dependent -> (true, false)
         | Analyzer.Tested t -> (t.dependent, not t.unknown)
       in
       let ok = if claim_exact then claim_dep = obs.dependent else claim_dep || not obs.dependent in
       if not ok then begin
         incr failures;
         Format.printf "MISMATCH %s %a x %a: analysis says %s, execution shows %s@."
           r.array_name Loc.pp r.loc1 Loc.pp r.loc2
           (if claim_dep then "dependent" else "independent")
           (if obs.dependent then "dependent" else "independent")
       end)
    report.pair_reports;
  if !failures = 0 then
    Format.printf "OK: all %d pairs agree with the execution trace@."
      (List.length report.pair_reports)
  else begin
    Format.printf "%d mismatches@." !failures;
    exit 2
  end

let check_cmd =
  let run file config format no_oracle corrupt trace =
    let prog = load file in
    if trace then check_trace prog
    else begin
      let summary =
        Dda_check.Verify.run ~config ~oracle:(not no_oracle) ~corrupt prog
      in
      (match format with
       | `Text -> Format.printf "%a" (Dda_check.Verify.pp_text ~file) summary
       | `Json ->
         Format.printf "%a@." Json_out.pp
           (Dda_check.Verify.to_json ~file summary));
      if summary.Dda_check.Verify.errors > 0 then exit 2
    end
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let no_oracle =
    Arg.(
      value & flag
      & info [ "no-oracle" ]
          ~doc:
            "Skip the exhaustive-enumeration differential oracle (keep only \
             certificate validation).")
  in
  let corrupt =
    Arg.(
      value & flag
      & info [ "corrupt" ]
          ~doc:
            "Deliberately mangle every certificate and witness before \
             checking: a self-test that the checker rejects bad evidence \
             (expect errors and exit code 2).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Validate verdicts against the tracing interpreter instead of \
             against certificates (symbolic inputs read as 0).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Self-verify the analysis: replay every pair, validate each \
          verdict's certificate or witness against the original problem with \
          the trusted checker, cross-check decided systems against \
          exhaustive enumeration, and explain conservative verdicts with \
          warnings. Exits 2 when any certificate fails.")
    Term.(const run $ file_arg $ config_term $ format $ no_oracle $ corrupt $ trace)

(* ------------------------------------------------------------------ *)
(* lint: the parallelism linter and annotation race detector          *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let run () file config format differential =
    let prog = load file in
    let res = Dda_analysis.Lint.run ~config prog in
    (match format with
     | `Text -> print_string (Dda_analysis.Lint.to_text ~file res)
     | `Json ->
       Format.printf "%a@." Json_out.pp (Dda_analysis.Lint.to_json ~file res)
     | `Sarif ->
       Format.printf "%a@." Json_out.pp
         (Dda_analysis.Lint.to_sarif ~file res));
    if differential then begin
      match
        Dda_analysis.Pardiff.check
          ~prepared:res.Dda_analysis.Lint.prepared
          res.Dda_analysis.Lint.summary
      with
      | Ok n ->
        Dda_obs.Log.info "differential: %d permuted runs match sequential \
                          execution" n
      | Error msg ->
        Format.eprintf "ddtest lint: differential check failed: %s@." msg;
        exit 1
    end;
    if res.Dda_analysis.Lint.errors > 0 then exit 2
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ]
          ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif).")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Additionally execute every DOALL-marked loop under permuted \
             iteration order in the reference interpreter and require the \
             final state to match sequential execution (a failed match is \
             an analyzer soundness bug and exits 1).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Dependence-driven parallelism lint: classify every dependence \
          edge (flow/anti/output), mark every loop doall, vectorizable, \
          reduction-candidate or serial with certificate-backed blocking \
          evidence, and report races on $(b,parallel)-annotated loops. \
          Exits 0 when clean (warnings included), 1 on input errors, 2 \
          when any race finding is an error. Budget-degraded evidence \
          only ever downgrades findings to warnings — and only ever \
          denies a doall verdict, never grants one.")
    Term.(
      const run $ obs_term $ file_arg $ config_term $ format $ differential)

(* ------------------------------------------------------------------ *)
(* prime: build a memo table from the synthetic PERFECT suite          *)
(* ------------------------------------------------------------------ *)

let prime_cmd =
  let run out config =
    let session = Analyzer.create_session ~config () in
    List.iter
      (fun (spec : Dda_perfect.Programs.spec) ->
         let prog = Parser.parse_program (Dda_perfect.Programs.source spec) in
         ignore (Analyzer.analyze_session session prog))
      Dda_perfect.Programs.all;
    Analyzer.save_session session out;
    Format.printf "primed %s from the 13 synthetic PERFECT programs@." out
  in
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output memo file.")
  in
  Cmd.v
    (Cmd.info "prime"
       ~doc:
         "The paper's \"standard table\" idea: analyze the whole benchmark \
          suite once and save the memo tables for later compilations \
          (use with analyze --memo-file)")
    Term.(const run $ out_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* distribute                                                          *)
(* ------------------------------------------------------------------ *)

let distribute_cmd =
  let run file lid =
    let prog = load file in
    let config =
      {
        Analyzer.default_config with
        Analyzer.prune = Direction.no_pruning;
        memo = Analyzer.Memo_simple;
        run_pipeline = false;
      }
    in
    match Distribute.body_stmts prog ~lid with
    | None ->
      Format.eprintf
        "loop %d not found, or its body is not a sequence of array assignments@."
        lid;
      exit 1
    | Some stmts ->
      let report = Analyzer.analyze ~config prog in
      let plan = Distribute.plan_loop report ~lid ~stmts in
      List.iteri
        (fun k (g : Distribute.group) ->
           Format.printf "group %d (%s):" k
             (if g.parallel then "parallel" else "serial");
           List.iter (fun l -> Format.printf " %a" Loc.pp l) g.stmts;
           Format.printf "@.")
        plan.groups;
      (match Distribute.apply prog plan with
       | Some distributed ->
         Format.printf "@.-- distributed program --@.%s"
           (Pretty.program_to_string distributed)
       | None -> Format.printf "@.(loop bounds are not pure: not rewritten)@.")
  in
  let lid_arg =
    Arg.(
      value & opt int 0
      & info [ "loop" ] ~docv:"N"
          ~doc:"Which loop to distribute (pre-order number, default 0).")
  in
  Cmd.v
    (Cmd.info "distribute"
       ~doc:"Allen-Kennedy loop distribution: group statements by dependence SCC")
    Term.(const run $ file_arg $ lid_arg)

(* ------------------------------------------------------------------ *)
(* metrics: run the analysis and dump the metrics registry             *)
(* ------------------------------------------------------------------ *)

let metrics_cmd =
  let run () files config format =
    (* The lint pipeline is a superset of Analyzer.analyze (same pair
       analysis, plus classification), so its lint.* counters appear
       alongside the stage/memo counters. *)
    List.iter (fun f -> ignore (Dda_analysis.Lint.run ~config (load f))) files;
    let snap = Dda_obs.Metrics.snapshot () in
    match format with
    | `Text -> Format.printf "%a" Dda_obs.Metrics.pp_text snap
    | `Json -> print_endline (Dda_obs.Metrics.to_json_string snap)
  in
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILES" ~doc:"Source files to analyze.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Analyze the files, then print every registered metric — stage \
          decision counters, memo hit counters, budget exhaustions, \
          log2-bucketed histograms. Counts are a pure function of the \
          analysis work, so they are reproducible run to run.")
    Term.(const run $ obs_term $ files_arg $ config_term $ format)

(* ------------------------------------------------------------------ *)
(* report: the paper's evaluation tables on the PERFECT corpus         *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  (* Paper totals over the 13 PERFECT programs (PLDI 1991, Tables 1, 3
     and 4->5); the measured column reruns the synthetic corpus, whose
     counts are deterministic. See EXPERIMENTS.md for the shape-by-shape
     comparison. *)
  let paper_stages =
    [ ("constant", 11_859); ("gcd", 384); ("svpc", 5_176); ("acyclic", 323);
      ("loop-residue", 6); ("fourier", 174) ]
  in
  let paper_memo_before = 5_679
  and paper_memo_after = 332
  and paper_dirs_nopruning = 12_500
  and paper_dirs_pruned = 900 in
  let run () format =
    let programs =
      List.map
        (fun (spec : Dda_perfect.Programs.spec) ->
           (spec, Parser.parse_program (Dda_perfect.Programs.source spec)))
        Dda_perfect.Programs.all
    in
    let analyze_all config =
      List.map (fun (spec, prog) -> (spec, Analyzer.analyze ~config prog)) programs
    in
    (* The bench harness's table configurations: the plain cascade for
       stage decisions, the improved memo scheme for table 3, the
       direction hierarchy with and without pruning for tables 4/5. *)
    let cfg_plain =
      {
        Analyzer.default_config with
        Analyzer.directions = false;
        memo = Analyzer.Memo_off;
        symbolic = false;
      }
    in
    let cfg_memo = { cfg_plain with Analyzer.memo = Analyzer.Memo_improved } in
    let cfg_dirs prune =
      {
        Analyzer.default_config with
        Analyzer.prune;
        symbolic = false;
        memo = Analyzer.Memo_improved;
      }
    in
    let plain = analyze_all cfg_plain in
    let memoized = analyze_all cfg_memo in
    let unpruned = analyze_all (cfg_dirs Direction.no_pruning) in
    let pruned = analyze_all (cfg_dirs Direction.full_pruning) in
    let stage_row (r : Analyzer.report) =
      let s = r.stats in
      [|
        s.constant_cases; s.gcd_independent; s.plain_by_test.(0);
        s.plain_by_test.(1); s.plain_by_test.(2); s.plain_by_test.(3);
      |]
    in
    let stage_rows =
      List.map
        (fun ((spec : Dda_perfect.Programs.spec), r) -> (spec.name, stage_row r))
        plain
    in
    let stage_total =
      let tot = Array.make 6 0 in
      List.iter
        (fun (_, row) -> Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row)
        stage_rows;
      tot
    in
    let executed_tests results =
      List.fold_left
        (fun acc (_, (r : Analyzer.report)) ->
           let s = r.Analyzer.stats in
           acc + s.plain_by_test.(0) + s.plain_by_test.(1)
           + s.plain_by_test.(2) + s.plain_by_test.(3))
        0 results
    in
    let memo_before = executed_tests plain in
    let memo_after = executed_tests memoized in
    let dir_tests results =
      List.fold_left
        (fun acc (_, (r : Analyzer.report)) ->
           Array.fold_left ( + ) acc r.Analyzer.stats.dir_counts.Direction.by_test)
        0 results
    in
    let dirs_nopruning = dir_tests unpruned in
    let dirs_pruned = dir_tests pruned in
    let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
    match format with
    | `Text ->
      Format.printf
        "ddtest report: the paper's evaluation tables on the synthetic \
         PERFECT Club@.(counts are deterministic; the paper column is the \
         published total)@.";
      Format.printf "@.-- stage decisions (paper Table 1) --@.";
      Format.printf "%-7s %9s %7s %7s %8s %9s %8s@." "prog" "constant" "gcd"
        "svpc" "acyclic" "loop-res" "fourier";
      List.iter
        (fun (name, (row : int array)) ->
           Format.printf "%-7s %9d %7d %7d %8d %9d %8d@." name row.(0) row.(1)
             row.(2) row.(3) row.(4) row.(5))
        stage_rows;
      Format.printf "%-7s %9d %7d %7d %8d %9d %8d@." "TOTAL" stage_total.(0)
        stage_total.(1) stage_total.(2) stage_total.(3) stage_total.(4)
        stage_total.(5);
      Format.printf "%-7s %9d %7d %7d %8d %9d %8d@." "paper"
        (List.assoc "constant" paper_stages)
        (List.assoc "gcd" paper_stages)
        (List.assoc "svpc" paper_stages)
        (List.assoc "acyclic" paper_stages)
        (List.assoc "loop-residue" paper_stages)
        (List.assoc "fourier" paper_stages);
      Format.printf "@.-- memoization (paper Table 3) --@.";
      Format.printf "%-28s %9s %9s@." "" "measured" "paper";
      Format.printf "%-28s %9d %9d@." "executed tests, no memo" memo_before
        paper_memo_before;
      Format.printf "%-28s %9d %9d@." "executed tests, memoized" memo_after
        paper_memo_after;
      Format.printf "%-28s %8.1fx %8.1fx@." "reduction"
        (ratio memo_before memo_after)
        (ratio paper_memo_before paper_memo_after);
      Format.printf "@.-- direction-vector pruning (paper Tables 4 -> 5) --@.";
      Format.printf "%-28s %9s %9s@." "" "measured" "paper";
      Format.printf "%-28s %9d %9d@." "tests, no pruning" dirs_nopruning
        paper_dirs_nopruning;
      Format.printf "%-28s %9d %9d@." "tests, full pruning" dirs_pruned
        paper_dirs_pruned;
      Format.printf "%-28s %8.1fx %8.1fx@." "reduction"
        (ratio dirs_nopruning dirs_pruned)
        (ratio paper_dirs_nopruning paper_dirs_pruned)
    | `Json ->
      let stages =
        Json_out.Obj
          (List.map
             (fun (name, (row : int array)) ->
                ( name,
                  Json_out.Obj
                    [
                      ("constant", Json_out.Int row.(0));
                      ("gcd", Json_out.Int row.(1));
                      ("svpc", Json_out.Int row.(2));
                      ("acyclic", Json_out.Int row.(3));
                      ("loop_residue", Json_out.Int row.(4));
                      ("fourier", Json_out.Int row.(5));
                    ] ))
             (stage_rows @ [ ("TOTAL", stage_total) ]))
      in
      Format.printf "%a@." Json_out.pp
        (Json_out.Obj
           [
             ("stage_decisions", stages);
             ( "stage_decisions_paper",
               Json_out.Obj
                 (List.map (fun (n, v) -> (n, Json_out.Int v)) paper_stages) );
             ( "memoization",
               Json_out.Obj
                 [
                   ("executed_no_memo", Json_out.Int memo_before);
                   ("executed_memoized", Json_out.Int memo_after);
                   ("paper_no_memo", Json_out.Int paper_memo_before);
                   ("paper_memoized", Json_out.Int paper_memo_after);
                 ] );
             ( "direction_pruning",
               Json_out.Obj
                 [
                   ("no_pruning", Json_out.Int dirs_nopruning);
                   ("full_pruning", Json_out.Int dirs_pruned);
                   ("paper_no_pruning", Json_out.Int paper_dirs_nopruning);
                   ("paper_full_pruning", Json_out.Int paper_dirs_pruned);
                 ] );
           ])
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Rerun the paper's evaluation on the synthetic PERFECT Club and \
          print its tables — per-stage decision counts, memoization \
          before/after, direction-vector pruning — side by side with the \
          published numbers. Output is deterministic (counts only), so it \
          can be diffed against a committed baseline.")
    Term.(const run $ obs_term $ format)

(* ------------------------------------------------------------------ *)
(* serve / query                                                       *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix domain socket to listen on (stale files left by a \
                killed predecessor are replaced).")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Durable memo cache: every memo miss is appended (and fsynced) \
             here, and a restart replays it so warm answers survive even \
             kill -9. A damaged file degrades to a cold start — torn tails \
             are truncated, mismatched fingerprints are set aside as \
             $(docv).rejected — never to a wrong verdict.")
  in
  let no_fsync_arg =
    Arg.(
      value & flag
      & info [ "no-cache-fsync" ]
          ~doc:"Skip the fsync after each cache append (faster, but a crash \
                may lose recent records; never corrupts).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:"Maximum outstanding requests; beyond it the server sheds \
                load with an explicit JSON error instead of queueing.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 0
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline (0 = none); an expired \
                deadline degrades remaining verdicts soundly instead of \
                hanging a worker. Requests can override with \
                $(b,timeout_ms).")
  in
  let admin_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Serve the HTTP admin plane on 127.0.0.1:$(docv) — \
             $(b,/metrics) (Prometheus text exposition), $(b,/healthz), \
             $(b,/readyz), $(b,/status), $(b,/tracez). Port 0 picks an \
             ephemeral port (logged at startup). The admin plane is \
             read-only and never load-bearing: its failure cannot fail a \
             query.")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per request to $(docv): request id, op, \
             latency, shed/quarantined/degraded flags, memo hits, budget \
             steps. Write failures are counted \
             ($(b,serve.access_log.failed)), never fatal.")
  in
  let slow_arg =
    Arg.(
      value & opt int 0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Log a warning for requests slower than $(docv) ms (0 = \
                off).")
  in
  let run () socket cache no_fsync jobs queue_limit request_timeout_ms
      admin_port access_log slow_ms config =
    (* An unbindable socket path (missing directory, permission) or any
       other OS-level failure is an input error: one line, exit 1. *)
    try
      (* Stage attribution in explain blocks should be wall time, not
         deterministic ticks, when serving real traffic. *)
      Dda_obs.Attrib.set_time_source (fun () ->
          int_of_float (Unix.gettimeofday () *. 1e9));
      let server, recovery =
        Dda_server.Server.create
          {
            Dda_server.Server.socket_path = socket;
            jobs;
            queue_limit;
            request_timeout_ms;
            analyzer = config;
            cache_path = cache;
            cache_fsync = not no_fsync;
            admin_port;
            access_log;
            slow_ms;
          }
      in
      (match recovery with
       | Some r when r.Dda_cache.Store.records > 0 || r.Dda_cache.Store.dropped_bytes > 0 ->
         Dda_obs.Log.info "cache: warm start: %d record(s) recovered, %d byte(s) dropped"
           r.Dda_cache.Store.records r.Dda_cache.Store.dropped_bytes
       | _ -> ());
      (* Graceful drain on both signals: finish in-flight requests,
         flush and fsync the cache, release the socket, exit 0. *)
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Dda_server.Server.drain server)))
        [ Sys.sigint; Sys.sigterm ];
      Dda_server.Server.run server
    with Unix.Unix_error (e, fn, arg) ->
      failwith
        (Printf.sprintf "serve: %s %s: %s" fn
           (if arg = "" then socket else arg)
           (Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: a long-lived JSONL service on a Unix \
          socket, with per-request deadlines, bounded queueing with load \
          shedding, request quarantine, a durable, corruption-detecting \
          memo cache that makes restarts warm — even after kill -9 — and \
          an optional HTTP admin plane ($(b,--admin-port)) with \
          Prometheus metrics.")
    Term.(
      const run $ obs_term $ socket_arg $ cache_arg $ no_fsync_arg $ jobs_arg
      $ queue_arg $ timeout_arg $ admin_arg $ access_log_arg $ slow_arg
      $ config_term)

let query_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Socket of a running $(b,ddtest serve).")
  in
  let files_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"FILES" ~doc:"Programs to analyze.")
  in
  let ping_arg = Arg.(value & flag & info [ "ping" ] ~doc:"Send a ping first.") in
  let status_arg =
    Arg.(value & flag & info [ "status" ] ~doc:"Ask for server status last.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Request per-program statistics (off by default: statistics \
                depend on cache temperature, answers do not).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Request per-stage attribution (time per cascade stage, \
                memo hits, budget steps) with each analysis — why was \
                this query slow?")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline override.")
  in
  let run () socket files ping status stats explain timeout_ms =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (try Unix.connect fd (ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       failwith
         (Printf.sprintf "query: cannot connect to %s: %s" socket
            (Unix.error_message e)));
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* 0 ok; 2 any error response; 3 any shed response (the greater
       wins, so one exit code summarizes a whole request mix). *)
    let worst = ref 0 in
    let rpc req =
      output_string oc (Json_out.to_string req ^ "\n");
      flush oc;
      match input_line ic with
      | line ->
        print_endline line;
        (match Json_out.of_string line with
         | Ok j when Json_out.member "ok" j = Some (Json_out.Bool true) -> ()
         | Ok j ->
           let shed =
             Json_out.member "shed" j = Some (Json_out.Bool true)
           in
           worst := max !worst (if shed then 3 else 2)
         | Error _ -> worst := max !worst 2)
      | exception End_of_file ->
        failwith "query: server closed the connection"
    in
    if ping then rpc (Json_out.Obj [ ("op", Json_out.Str "ping") ]);
    List.iteri
      (fun i f ->
        rpc
          (Json_out.Obj
             ([
                ("op", Json_out.Str "analyze");
                ("id", Json_out.Int i);
                ("program", Json_out.Str (read_file f));
              ]
             @ (if stats then [ ("stats", Json_out.Bool true) ] else [])
             @ (if explain then [ ("explain", Json_out.Bool true) ] else [])
             @
             match timeout_ms with
             | Some ms -> [ ("timeout_ms", Json_out.Int ms) ]
             | None -> [])))
      files;
    if status then rpc (Json_out.Obj [ ("op", Json_out.Str "status") ]);
    Unix.close fd;
    if !worst > 0 then exit !worst
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Client for $(b,ddtest serve): send analyze/ping/status requests \
          over its socket and print one JSON response per line.")
    Term.(
      const run $ obs_term $ socket_arg $ files_arg $ ping_arg $ status_arg
      $ stats_arg $ explain_arg $ timeout_arg)

(* ------------------------------------------------------------------ *)
(* top: live view over the admin plane                                 *)
(* ------------------------------------------------------------------ *)

(* One-shot HTTP GET against the loopback admin plane; enough protocol
   for our own Admin module (Connection: close, no chunking). *)
let admin_get ~port path =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port))
       with Unix.Unix_error (e, _, _) ->
         failwith
           (Printf.sprintf "top: cannot connect to 127.0.0.1:%d: %s" port
              (Unix.error_message e)));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nConnection: close\r\n\r\n"
          path port
      in
      let b = Bytes.of_string req in
      let off = ref 0 in
      while !off < Bytes.length b do
        off := !off + Unix.write fd b !off (Bytes.length b - !off)
      done;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec slurp () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n -> Buffer.add_subbytes buf chunk 0 n; slurp ()
        | exception Unix.Unix_error (EINTR, _, _) -> slurp ()
      in
      slurp ();
      let raw = Buffer.contents buf in
      let code =
        match String.split_on_char ' ' raw with
        | _ :: c :: _ -> (match int_of_string_opt c with Some c -> c | None -> 0)
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                  && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let s = find 0 in
        String.sub raw s (String.length raw - s)
      in
      (code, body))

let top_cmd =
  let port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Admin port of a running $(b,ddtest serve --admin-port).")
  in
  let interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh interval.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (no screen clearing) — \
                scriptable output.")
  in
  let scrape_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scrape" ] ~docv:"PATH"
          ~doc:
            "Instead of the live view, fetch $(docv) (e.g. \
             $(b,/metrics), $(b,/healthz)) once, print the raw body and \
             exit — 0 on HTTP 200, 2 otherwise. A tiny curl substitute \
             for tests and scripts.")
  in
  (* Smallest le bound at which the cumulative count reaches the
     q-quantile of the histogram; the +Inf bucket answers "p99 beyond
     the largest finite bucket". *)
  let percentile (h : Dda_obs.Expo.parsed_hist) q =
    if h.Dda_obs.Expo.p_count = 0 then "-"
    else begin
      let want =
        let exact = float_of_int h.Dda_obs.Expo.p_count *. q in
        max 1 (int_of_float (ceil exact))
      in
      let rec go = function
        | [] -> "-"
        | (le, cum) :: rest -> if cum >= want then le else go rest
      in
      match go h.Dda_obs.Expo.p_cumulative with
      | "+Inf" -> ">max"
      | ns -> (
          match int_of_string_opt ns with
          | None -> ns
          | Some ns ->
            if ns >= 1_000_000_000 then Printf.sprintf "%.1fs" (float_of_int ns /. 1e9)
            else if ns >= 1_000_000 then Printf.sprintf "%dms" (ns / 1_000_000)
            else if ns >= 1_000 then Printf.sprintf "%dus" (ns / 1_000)
            else Printf.sprintf "%dns" ns)
    end
  in
  let render ~port ~interval_ms ~prev_requests parsed =
    let counter name =
      match List.assoc_opt name parsed.Dda_obs.Expo.p_counters with
      | Some v -> v
      | None -> 0
    in
    let gauge name =
      List.assoc_opt name parsed.Dda_obs.Expo.p_gauges
    in
    let hist name =
      List.assoc_opt name parsed.Dda_obs.Expo.p_histograms
    in
    let requests = counter "dda_serve_requests" in
    let qps =
      match prev_requests with
      | None -> "-"
      | Some p ->
        Printf.sprintf "%.1f"
          (float_of_int (requests - p) /. (float_of_int interval_ms /. 1000.))
    in
    let hits = counter "dda_memo_hits" and lookups = counter "dda_memo_lookups" in
    let hit_rate =
      if lookups = 0 then "-"
      else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int lookups)
    in
    let buf = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    line "ddtest top — 127.0.0.1:%d" port;
    (match gauge "dda_serve_uptime_ns" with
     | Some ns -> line "uptime: %.1fs" (float_of_int ns /. 1e9)
     | None -> ());
    (match gauge "dda_serve_peak_rss_kb" with
     | Some kb -> line "rss: %d kB (peak)" kb
     | None -> ());
    line "requests: %d (qps %s)  in-flight: %d  shed: %d  quarantined: %d"
      requests qps
      (match gauge "dda_serve_in_flight" with Some n -> n | None -> 0)
      (counter "dda_serve_shed")
      (counter "dda_serve_quarantined");
    line "memo: %d hits / %d lookups (hit rate %s)  stripe contended: %d"
      hits lookups hit_rate
      (counter "dda_memo_stripe_contended");
    line "trace dropped: %d  access-log failures: %d"
      (counter "dda_trace_dropped")
      (counter "dda_serve_access_log_failed");
    line "%-10s %8s %8s %8s" "op" "count" "p50" "p99";
    List.iter
      (fun op ->
         match hist (Printf.sprintf "dda_serve_op_%s_ns" op) with
         | None -> ()
         | Some h ->
           line "%-10s %8d %8s %8s" op h.Dda_obs.Expo.p_count
             (percentile h 0.50) (percentile h 0.99))
      [ "analyze"; "ping"; "status"; "other" ];
    (requests, Buffer.contents buf)
  in
  let run () port interval_ms once scrape =
    match scrape with
    | Some path ->
      let code, body = admin_get ~port path in
      print_string body;
      if code <> 200 then exit 2
    | None ->
      let prev = ref None in
      let continue = ref true in
      while !continue do
        let code, body = admin_get ~port "/metrics" in
        if code <> 200 then failwith (Printf.sprintf "top: /metrics answered %d" code);
        (match Dda_obs.Expo.parse body with
         | Error msg -> failwith ("top: bad exposition: " ^ msg)
         | Ok parsed ->
           let requests, frame =
             render ~port ~interval_ms ~prev_requests:!prev parsed
           in
           prev := Some requests;
           if not once then print_string "\027[2J\027[H";
           print_string frame;
           flush stdout);
        if once then continue := false
        else Unix.sleepf (float_of_int interval_ms /. 1000.)
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view over a running server's admin plane: polls \
          $(b,/metrics) and renders qps, per-op latency percentiles, memo \
          hit rate, stripe contention, shed count and peak RSS. With \
          $(b,--scrape) it degrades into a one-shot HTTP GET for \
          scripting.")
    Term.(const run $ obs_term $ port_arg $ interval_arg $ once_arg $ scrape_arg)

(* ------------------------------------------------------------------ *)
(* cache: administration of the durable memo store                     *)
(* ------------------------------------------------------------------ *)

let cache_cmd =
  let compact_cmd =
    let file_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE"
            ~doc:"The cache file written by $(b,ddtest serve --cache).")
    in
    let no_fsync_arg =
      Arg.(
        value & flag
        & info [ "no-fsync" ]
            ~doc:"Skip the fsync before the atomic rename (faster; a crash \
                  may leave the old file, never a mix).")
    in
    let run () path no_fsync config =
      (* Store.compact raises Failure for everything refusable — missing
         file, bad magic, fingerprint mismatch — which the top-level
         handler turns into a one-line diagnostic and exit 1. *)
      let c =
        Dda_cache.Store.compact ~fsync:(not no_fsync) ~path ~config ()
      in
      if c.Dda_cache.Store.damaged_bytes > 0 then
        Dda_obs.Log.warn
          "cache %s: dropped %d damaged trailing byte(s) (replay would \
           have dropped them too)"
          path c.Dda_cache.Store.damaged_bytes;
      Printf.printf "%s: %d record(s) -> %d record(s), %d bytes -> %d bytes\n"
        path c.Dda_cache.Store.before_records c.Dda_cache.Store.after_records
        c.Dda_cache.Store.before_bytes c.Dda_cache.Store.after_bytes
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite a durable cache file keeping the last binding of every \
            key — dropping duplicate appends from racing domains and any \
            superseded bindings — via an fsynced temporary and an atomic \
            rename. The analyzer configuration flags must match the ones \
            the cache was written under (the header fingerprint is \
            checked; a mismatch refuses with the file untouched). Do not \
            run it while a server is appending to the same file.")
      Term.(const run $ obs_term $ file_arg $ no_fsync_arg $ config_term)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Administer the durable memo cache files written by \
             $(b,ddtest serve).")
    [ compact_cmd ]

(* Exit codes: 0 success; 1 input or usage errors; 2 verification or
   trace failures (and query error responses); 3 batch quarantine (and
   query shed responses); 130 a journaled streaming run stopped by
   SIGINT/SIGTERM (resumable). No exception may escape to a raw OCaml
   backtrace — everything expected becomes a one-line diagnostic on
   stderr, and cmdliner's own CLI-error code folds into 1. *)
let () =
  (* The [kill] failpoint action should die exactly as under kill -9 —
     no at_exit, no flushing — which the library default (plain [exit])
     cannot do without a unix dependency. *)
  Failpoint.set_kill_handler (fun () ->
      Unix.kill (Unix.getpid ()) Sys.sigkill);
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ddtest" ~version:"1.0"
      ~doc:"Exact data dependence analysis (Maydan-Hennessy-Lam, PLDI 1991)"
  in
  let group =
    Cmd.group ~default info
      [
        analyze_cmd;
        batch_cmd;
        serve_cmd;
        query_cmd;
        top_cmd;
        cache_cmd;
        fuzz_cmd;
        parallel_cmd;
        passes_cmd;
        perfect_cmd;
        graph_cmd;
        depgraph_cmd;
        transform_cmd;
        distribute_cmd;
        check_cmd;
        lint_cmd;
        prime_cmd;
        annotate_cmd;
        cc_cmd;
        metrics_cmd;
        report_cmd;
      ]
  in
  let code =
    try Cmd.eval ~catch:false group with
    | Sys_error msg | Failure msg | Invalid_argument msg ->
      Format.eprintf "ddtest: error: %s@." msg;
      1
    | Failpoint.Injected _ as e ->
      Format.eprintf "ddtest: error: %s@." (Printexc.to_string e);
      1
    | Interp.Runtime_error (msg, loc) ->
      Format.eprintf "ddtest: error: %s at %a@." msg Loc.pp loc;
      1
  in
  exit (if code = Cmd.Exit.cli_error then 1 else code)
