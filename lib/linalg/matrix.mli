(** Dense integer matrices and the unimodular echelon factorization
    underlying Banerjee's Extended GCD test.

    Conventions follow the paper: solutions are {e row} vectors, the
    subscript equality system is [x . A = c] with [A] an [n x m] matrix
    ([n] variables, [m] equations), and the factorization produces a
    unimodular [U] ([n x n]) and an echelon [D] ([n x m]) such that
    [U . A = D]. Then [x . A = c] has an integer solution iff
    [t . D = c] does, with [x = t . U]; because [D] is echelon the
    latter is solved by simple forward substitution. *)

open Dda_numeric

type t = Zint.t array array
(** Row-major; every row has the same length. Rows may alias — use
    {!copy} before mutating. *)

val make : int -> int -> t
val of_int_rows : int array array -> t
val identity : int -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val equal : t -> t -> bool
val transpose : t -> t
val mul : t -> t -> t
val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x a] is the row-vector product [x . a]. *)

val det : t -> Zint.t
(** Determinant by fraction-free (Bareiss) elimination.
    @raise Invalid_argument on a non-square matrix. *)

val is_echelon : t -> bool
(** True when the leading-entry column indices of the non-zero rows are
    strictly increasing and all-zero rows come last. *)

type factorization = {
  u : t;  (** [n x n] unimodular *)
  d : t;  (** [n x m] echelon with positive leading entries *)
  rank : int;  (** number of non-zero rows of [d] *)
  pivots : (int * int) list;  (** (row, column) of each leading entry *)
}

val unimodular_factor : t -> factorization
(** Extended Gaussian elimination over the integers: gcd row reductions
    recorded in [u] so that [u . a = d]. Leading entries are positive
    and entries above each leading entry are reduced modulo it (Hermite
    style), which keeps coefficients small. *)

type solution = {
  fixed : Vec.t;
  (** Length [n]; entry [i < rank] is the forced value of [t_i], the
      remaining entries are placeholders (zero) for the free
      parameters. *)
  nfree : int;  (** Number of free parameters, [n - rank]. *)
}

val solve_echelon : d:t -> c:Vec.t -> solution option
(** Solve [t . D = c] for echelon [D] by forward substitution. [None]
    means there is no integer solution (a divisibility or consistency
    failure), which proves independence of the bounds-free problem. *)

val echelon_refutation : d:t -> c:Vec.t -> Qnum.t array option
(** When {!solve_echelon} fails, a rational witness of that failure:
    [Some y] (length = number of columns) with [d . y] an integer
    vector but [c . y] not an integer — so [t . D = c], and hence the
    original [x . A = c], has no integer solution. [None] when the
    system is solvable. Scaling [y] by the lcm of its denominators
    yields integer multipliers and a modulus for a divisibility-style
    refutation over the original equations. *)

val pp : Format.formatter -> t -> unit
