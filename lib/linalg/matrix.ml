open Dda_numeric

type t = Zint.t array array

let make r c = Array.init r (fun _ -> Array.make c Zint.zero)
let of_int_rows rows = Array.map (Array.map Zint.of_int) rows
let identity n =
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then Zint.one else Zint.zero))

let copy m = Array.map Array.copy m
let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let equal a b =
  rows a = rows b && cols a = cols b
  && (let ok = ref true in
      Array.iteri (fun i row -> Array.iteri (fun j x -> if not (Zint.equal x b.(i).(j)) then ok := false) row) a;
      !ok)

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul: dimension mismatch";
  let n = rows a and p = cols b and k = cols a in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref Zint.zero in
          for l = 0 to k - 1 do
            acc := Zint.add !acc (Zint.mul a.(i).(l) b.(l).(j))
          done;
          !acc))

let vec_mul x a =
  if Array.length x <> rows a then invalid_arg "Matrix.vec_mul: dimension mismatch";
  Array.init (cols a) (fun j ->
      let acc = ref Zint.zero in
      for i = 0 to Array.length x - 1 do
        acc := Zint.add !acc (Zint.mul x.(i) a.(i).(j))
      done;
      !acc)

(* Bareiss fraction-free elimination: every division is exact. *)
let det m =
  let n = rows m in
  if n <> cols m then invalid_arg "Matrix.det: non-square matrix";
  if n = 0 then Zint.one
  else begin
    let a = copy m in
    let sign = ref 1 and prev = ref Zint.one in
    let result = ref None in
    (try
       for k = 0 to n - 2 do
         if Zint.is_zero a.(k).(k) then begin
           (* Find a row to swap in. *)
           let r = ref (-1) in
           for i = k + 1 to n - 1 do
             if !r < 0 && not (Zint.is_zero a.(i).(k)) then r := i
           done;
           if !r < 0 then begin result := Some Zint.zero; raise Exit end;
           let tmp = a.(k) in
           a.(k) <- a.(!r);
           a.(!r) <- tmp;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             let v = Zint.sub (Zint.mul a.(i).(j) a.(k).(k)) (Zint.mul a.(i).(k) a.(k).(j)) in
             a.(i).(j) <- Zint.divexact v !prev
           done;
           a.(i).(k) <- Zint.zero
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    match !result with
    | Some z -> z
    | None ->
      let d = a.(n - 1).(n - 1) in
      if !sign > 0 then d else Zint.neg d
  end

let leading_col row =
  let n = Array.length row in
  let rec go j = if j >= n then None else if Zint.is_zero row.(j) then go (j + 1) else Some j in
  go 0

let is_echelon m =
  let r = rows m in
  let rec go i prev seen_zero =
    if i >= r then true
    else
      match leading_col m.(i) with
      | None -> go (i + 1) prev true
      | Some c -> (not seen_zero) && c > prev && go (i + 1) c false
  in
  go 0 (-1) false

type factorization = {
  u : t;
  d : t;
  rank : int;
  pivots : (int * int) list;
}

(* Row operations applied in lockstep to [d] (being reduced) and [u]
   (accumulating the elementary matrices), so that u . a = d holds
   throughout. *)
let swap_rows d u i j =
  if i <> j then begin
    let t = d.(i) in d.(i) <- d.(j); d.(j) <- t;
    let t = u.(i) in u.(i) <- u.(j); u.(j) <- t
  end

let negate_row d u i =
  d.(i) <- Array.map Zint.neg d.(i);
  u.(i) <- Array.map Zint.neg u.(i)

(* row i <- row i - q * row j, applied to both d and u *)
let sub_mult d u i q j =
  if not (Zint.is_zero q) then begin
    let dj = d.(j) and di = d.(i) in
    Array.iteri (fun k x -> di.(k) <- Zint.sub di.(k) (Zint.mul q x)) dj;
    let uj = u.(j) and ui = u.(i) in
    Array.iteri (fun k x -> ui.(k) <- Zint.sub ui.(k) (Zint.mul q x)) uj
  end

let unimodular_factor a =
  let n = rows a and m = cols a in
  let d = copy a in
  let u = identity n in
  let r = ref 0 in
  let pivots = ref [] in
  for c = 0 to m - 1 do
    if !r < n then begin
      (* Euclid on the column entries below and including row !r until a
         single non-zero entry remains, then move it to row !r. *)
      let continue_reduction = ref true in
      while !continue_reduction do
        (* Find row with minimal non-zero |entry| in column c among rows
           !r .. n-1. *)
        let best = ref (-1) in
        for i = !r to n - 1 do
          if not (Zint.is_zero d.(i).(c)) then
            if !best < 0
               || Zint.compare (Zint.abs d.(i).(c)) (Zint.abs d.(!best).(c)) < 0
            then best := i
        done;
        if !best < 0 then continue_reduction := false (* column is all zero *)
        else begin
          swap_rows d u !r !best;
          if Zint.is_negative d.(!r).(c) then negate_row d u !r;
          let piv = d.(!r).(c) in
          let all_zero = ref true in
          for i = !r + 1 to n - 1 do
            if not (Zint.is_zero d.(i).(c)) then begin
              let q = Zint.fdiv d.(i).(c) piv in
              sub_mult d u i q !r;
              if not (Zint.is_zero d.(i).(c)) then all_zero := false
            end
          done;
          if !all_zero then begin
            (* Hermite-style: reduce the entries above the pivot to keep
               coefficients small. *)
            for i = 0 to !r - 1 do
              let q = Zint.fdiv d.(i).(c) piv in
              sub_mult d u i q !r
            done;
            pivots := (!r, c) :: !pivots;
            incr r;
            continue_reduction := false
          end
        end
      done
    end
  done;
  { u; d; rank = !r; pivots = List.rev !pivots }

type solution = {
  fixed : Vec.t;
  nfree : int;
}

let solve_echelon ~d ~c =
  let n = rows d and m = cols d in
  if Array.length c <> m then invalid_arg "Matrix.solve_echelon: dimension mismatch";
  let fixed = Vec.make n in
  (* Leading column of each non-zero row, in row order. *)
  let rank = ref 0 in
  let piv_col = Array.make n (-1) in
  Array.iteri
    (fun i row ->
       match leading_col row with
       | Some col when !rank = i -> piv_col.(i) <- col; incr rank
       | Some _ -> invalid_arg "Matrix.solve_echelon: matrix is not echelon"
       | None -> ())
    d;
  let ok = ref true in
  let next_pivot = ref 0 in
  for j = 0 to m - 1 do
    if !ok then begin
      (* Accumulated contribution of already-determined parameters. *)
      let acc = ref Zint.zero in
      for i = 0 to !next_pivot - 1 do
        acc := Zint.add !acc (Zint.mul fixed.(i) d.(i).(j))
      done;
      let residue = Zint.sub c.(j) !acc in
      if !next_pivot < !rank && piv_col.(!next_pivot) = j then begin
        let piv = d.(!next_pivot).(j) in
        if Zint.divides piv residue then begin
          fixed.(!next_pivot) <- Zint.divexact residue piv;
          incr next_pivot
        end
        else ok := false (* divisibility failure: no integer solution *)
      end
      else if not (Zint.is_zero residue) then ok := false (* inconsistent *)
    end
  done;
  if !ok then Some { fixed; nfree = n - !rank } else None

(* When forward substitution fails, rerun it and extract a rational row
   vector [y] (one entry per column/equation) such that [d . y] is an
   integer vector while [c . y] is not: multiplying [t . D = c] on the
   right by [y] then shows no integer [t] exists. Since [U . A = D] with
   [U] unimodular, [A . y = U^-1 . (D . y)] is integral too, so the same
   [y] refutes the original system [x . A = c]. *)
let echelon_refutation ~d ~c =
  let n = rows d and m = cols d in
  if Array.length c <> m then
    invalid_arg "Matrix.echelon_refutation: dimension mismatch";
  let fixed = Vec.make n in
  let rank = ref 0 in
  let piv_col = Array.make n (-1) in
  Array.iteri
    (fun i row ->
       match leading_col row with
       | Some col when !rank = i -> piv_col.(i) <- col; incr rank
       | Some _ -> invalid_arg "Matrix.echelon_refutation: matrix is not echelon"
       | None -> ())
    d;
  let failure = ref None in
  let next_pivot = ref 0 in
  (try
     for j = 0 to m - 1 do
       let acc = ref Zint.zero in
       for i = 0 to !next_pivot - 1 do
         acc := Zint.add !acc (Zint.mul fixed.(i) d.(i).(j))
       done;
       let residue = Zint.sub c.(j) !acc in
       if !next_pivot < !rank && piv_col.(!next_pivot) = j then begin
         let piv = d.(!next_pivot).(j) in
         if Zint.divides piv residue then begin
           fixed.(!next_pivot) <- Zint.divexact residue piv;
           incr next_pivot
         end
         else begin
           (* Divisibility failure at a pivot: y_j = 1/piv makes
              (D.y)_k = 1 for the pivot row k and c.y = residue/piv. *)
           failure := Some (j, piv, !next_pivot);
           raise Exit
         end
       end
       else if not (Zint.is_zero residue) then begin
         (* Inconsistency at a non-pivot column: every row is zero at
            and left of j from row k on, so any denominator > |residue|
            works; c.y = residue/(|residue|+1) is never an integer. *)
         failure := Some (j, Zint.succ (Zint.abs residue), !next_pivot);
         raise Exit
       end
     done
   with Exit -> ());
  match !failure with
  | None -> None
  | Some (j, p, k) ->
    let y = Array.make m Qnum.zero in
    y.(j) <- Qnum.make Zint.one p;
    (* Back-solve the processed pivot rows so that (D.y)_i = 0 for every
       i < k; rows >= k contribute nothing at columns <= j except the
       failing pivot row itself, whose product is the integer 1. *)
    for i = k - 1 downto 0 do
      let acc = ref Qnum.zero in
      for col = piv_col.(i) + 1 to j do
        if not (Qnum.is_zero y.(col)) then
          acc := Qnum.add !acc (Qnum.mul (Qnum.of_zint d.(i).(col)) y.(col))
      done;
      y.(piv_col.(i)) <- Qnum.neg (Qnum.div !acc (Qnum.of_zint d.(i).(piv_col.(i))))
    done;
    Some y

let pp fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Vec.pp)
    (Array.to_list m)
