(* A small avalanche hash of (index, attempt) drives the jitter:
   deterministic per (item, attempt) so runs reproduce, different
   across items so concurrent retries de-synchronize. *)
let jitter ~index ~attempt =
  let h = (index * 0x9E3779B1) lxor ((attempt * 0x85EBCA77) + 0x165667B1) in
  let h = h lxor (h lsr 15) in
  let h = h * 0x27D4EB2F in
  let h = (h lxor (h lsr 13)) land 0xFFFF in
  0.5 +. (float_of_int h /. 131072.)

let delay_ms ~base_ms ~index ~attempt =
  if base_ms <= 0 then 0
  else
    let expo = float_of_int (base_ms * (1 lsl (attempt - 1))) in
    max 1 (int_of_float (expo *. jitter ~index ~attempt))

let sleep ~base_ms ~index ~attempt =
  let ms = delay_ms ~base_ms ~index ~attempt in
  if ms > 0 then begin
    Dda_obs.Trace.instant "batch.retry.backoff"
      ~args:[ ("index", index); ("attempt", attempt); ("delay_ms", ms) ];
    Unix.sleepf (float_of_int ms /. 1000.)
  end
