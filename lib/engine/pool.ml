type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  p_lock : Mutex.t;
  p_filled : Condition.t;
  mutable state : 'a state;
}

type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let size t = t.jobs

(* Workers hold [lock] only while inspecting the queue, never while
   running a task. They exit once the pool is closed AND the queue is
   drained, so shutdown lets queued work finish. *)
let rec worker t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
      if t.closed then None
      else begin
        Condition.wait t.work_available t.lock;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some job ->
    Mutex.unlock t.lock;
    job ();
    worker t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t f =
  let p =
    { p_lock = Mutex.create (); p_filled = Condition.create (); state = Pending }
  in
  let job () =
    let result =
      match
        Dda_obs.Trace.wrap ~name:"pool.job"
          ~args:(fun _ -> [])
          (fun () ->
             Dda_core.Failpoint.hit "pool.job";
             f ())
      with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.p_lock;
    p.state <- result;
    Condition.broadcast p.p_filled;
    Mutex.unlock p.p_lock
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: the pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.lock;
  p

let await p =
  Mutex.lock p.p_lock;
  let rec settled () =
    match p.state with
    | Pending ->
      Condition.wait p.p_filled p.p_lock;
      settled ()
    | (Done _ | Failed _) as s -> s
  in
  let s = settled () in
  Mutex.unlock p.p_lock;
  match s with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run t f = await (submit t f)

let map t f xs = List.map await (List.map (fun x -> submit t (fun () -> f x)) xs)

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_available;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers
