open Dda_lang
open Dda_core

type item = {
  name : string;
  program : Ast.program;
}

type analyzed = {
  index : int;
  name : string;
  report : Analyzer.report;
  verification : Dda_check.Verify.summary option;
  lint : Dda_analysis.Lint.result option;
  attempts : int;
}

type quarantined = {
  q_index : int;
  q_name : string;
  q_attempts : int;
  q_error : string;
}

type result = {
  items : analyzed list;
  quarantined : quarantined list;
  retried : int;
  merged : Analyzer.stats;
  table_stats : (Memo_table.stats * Memo_table.stats) option;
  contended : int option;
}

let chunks ~jobs n =
  List.init jobs (fun b -> (b * n / jobs, (b + 1) * n / jobs))

(* Items, retries and quarantines are per-corpus-item events — the
   counters come out the same whatever the worker count (the chunking
   only decides *where* an item runs). *)
let m_items = Dda_obs.Metrics.counter "batch.items"
let m_retries = Dda_obs.Metrics.counter "batch.retries"
let m_quarantined = Dda_obs.Metrics.counter "batch.quarantined"

let run ?(config = Analyzer.default_config) ?(share_memo = false)
    ?(memo_merge_after = false) ?(verify = false) ?(lint = false)
    ?(retries = 1) ?(backoff_ms = 50) ?item_timeout_ms ~jobs items =
  if jobs < 1 then invalid_arg "Batch.run: jobs must be >= 1";
  if retries < 0 then invalid_arg "Batch.run: retries must be >= 0";
  if backoff_ms < 0 then invalid_arg "Batch.run: backoff_ms must be >= 0";
  let arr = Array.of_list items in
  (* Live sharing is the default memo-sharing mode: one lock-striped
     table pair every worker queries during the run, so a cross-item
     repeat is a hit whichever domain computed it first. The per-chunk
     session + merge-after path survives behind [memo_merge_after] as
     the differential oracle (and is what [--jobs 1] sharing used to
     mean — at one worker the two are equivalent). *)
  let shared =
    if share_memo && not memo_merge_after then Some (Analyzer.create_shared ())
    else None
  in
  let shared_c = Option.map Analyzer.shared_cache shared in
  (* Verification replays the analyzer's own pair enumeration and
     checks the report actually produced — memoized or not. It runs
     under the same per-item deadline as the analysis. *)
  let verification cancel program report =
    if not verify then None
    else begin
      let prepared =
        if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
        else program
      in
      let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
      let pairs = Analyzer.site_pairs config sites in
      Some (Dda_check.Verify.verify_report ~cancel ~config pairs report)
    end
  in
  (* The lint summary rides on the report the item already produced —
     the edges and verdicts are re-derived from the recorded direction
     vectors, not from a second analysis. *)
  let lint_summary cancel program report =
    if not lint then None
    else begin
      let prepared =
        if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
        else program
      in
      let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
      Some (Dda_analysis.Lint.of_report ~config ~cancel ~prepared ~sites report)
    end
  in
  let item_cancel () =
    match item_timeout_ms with
    | None -> fun () -> false
    | Some ms ->
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
      fun () -> Unix.gettimeofday () > deadline
  in
  (* One item, with fault isolation: an exception (a worker bug, an
     injected failure, a blown budget escaping some future stage) is
     retried with jittered exponential backoff ({!Retry}), then the
     item is quarantined.
     The watchdog deadline is cooperative — the budget polls [cancel]
     and degrades the verdict — so a stuck item comes back conservative
     rather than killed. *)
  let process session idx =
    let it : item = arr.(idx) in
    Dda_obs.Metrics.incr m_items;
    let rec go attempt =
      match
        Dda_obs.Trace.wrap ~name:"batch.item"
          ~args:(fun _ -> [ ("index", idx); ("attempt", attempt) ])
          (fun () ->
             Failpoint.hit "batch.item";
             let cancel = item_cancel () in
             let report =
               match session, shared_c with
               | Some s, _ -> Analyzer.analyze_session ~cancel s it.program
               | None, Some c ->
                 (* Each item counts its own lookups/hits over the
                    shared backend; the raw aggregate would mix every
                    domain's traffic into this item's delta. *)
                 Analyzer.analyze ~config ~cancel
                   ~cache:(Analyzer.counted_cache c) it.program
               | None, None -> Analyzer.analyze ~config ~cancel it.program
             in
             ( report,
               verification cancel it.program report,
               lint_summary cancel it.program report ))
      with
      | report, ver, lnt ->
        Ok
          {
            index = idx;
            name = it.name;
            report;
            verification = ver;
            lint = lnt;
            attempts = attempt;
          }
      | exception e ->
        if attempt <= retries then begin
          Dda_obs.Metrics.incr m_retries;
          Dda_obs.Log.info "batch: retrying %s (attempt %d of %d): %s" it.name
            (attempt + 1) (retries + 1) (Printexc.to_string e);
          Retry.sleep ~base_ms:backoff_ms ~index:idx ~attempt;
          go (attempt + 1)
        end
        else begin
          Dda_obs.Metrics.incr m_quarantined;
          Dda_obs.Log.info "batch: quarantining %s after %d attempts: %s"
            it.name attempt (Printexc.to_string e);
          Error
            {
              q_index = idx;
              q_name = it.name;
              q_attempts = attempt;
              q_error = Printexc.to_string e;
            }
        end
    in
    go 1
  in
  let chunk (lo, hi) =
    (* The chunked item->domain assignment is a pure function of the
       corpus length (see the interface's determinism contract), so
       retries and quarantines never reshuffle memo-sharing. *)
    let session =
      if share_memo && memo_merge_after then
        Some (Analyzer.create_session ~config ())
      else None
    in
    let results = Array.init (hi - lo) (fun k -> process session (lo + k)) in
    (results, session)
  in
  let pool = Pool.create ~jobs in
  let per_chunk =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
         let cs = chunks ~jobs (Array.length arr) in
         let promises =
           List.map (fun c -> (c, Pool.submit pool (fun () -> chunk c))) cs
         in
         List.map
           (fun ((lo, hi), p) ->
              match Pool.await p with
              | v -> v
              | exception e ->
                (* The chunk died before per-item isolation engaged
                   (e.g. session setup, or the pool job itself):
                   quarantine its items wholesale, attempts 0. *)
                ( Array.init (hi - lo) (fun k ->
                      Error
                        {
                          q_index = lo + k;
                          q_name = arr.(lo + k).name;
                          q_attempts = 0;
                          q_error = Printexc.to_string e;
                        }),
                  None ))
           promises)
  in
  let all =
    List.concat_map (fun (results, _) -> Array.to_list results) per_chunk
  in
  let items = List.filter_map (function Ok a -> Some a | Error _ -> None) all in
  let quarantined =
    List.filter_map (function Error q -> Some q | Ok _ -> None) all
  in
  let retried =
    List.length
      (List.filter
         (function Ok a -> a.attempts > 1 | Error q -> q.q_attempts > 1)
         all)
  in
  let merged = Analyzer.fresh_stats () in
  List.iter (fun a -> Analyzer.merge_stats ~into:merged a.report.Analyzer.stats) items;
  let table_stats =
    match shared with
    | Some sh ->
      (* The shared tables already hold the corpus-wide union; their
         sizes are the distinct-problem counts (racing domains that
         both computed a key still stored it once). Summed per-item
         misses can over-count exactly those races, so replace them. *)
      let gcd_stats, full_stats = Analyzer.shared_table_stats sh in
      merged.Analyzer.memo_unique_nobounds <- gcd_stats.Memo_table.size;
      merged.Analyzer.memo_unique_full <- full_stats.Memo_table.size;
      Some (gcd_stats, full_stats)
    | None ->
      (match List.filter_map snd per_chunk with
       | [] -> None
       | first :: rest ->
         (* Per-call unique counts from [analyze_session] are cumulative
            within a chunk, so their sum over-counts; replace them with the
            distinct-problem counts of the merged (union) tables. *)
         List.iter (fun s -> Analyzer.merge_sessions ~into:first s) rest;
         let gcd_unique, full_unique = Analyzer.session_table_sizes first in
         merged.Analyzer.memo_unique_nobounds <- gcd_unique;
         merged.Analyzer.memo_unique_full <- full_unique;
         Some (Analyzer.session_table_stats first))
  in
  let contended = Option.map Analyzer.shared_contended shared in
  { items; quarantined; retried; merged; table_stats; contended }
