open Dda_lang
open Dda_core

type item = {
  name : string;
  program : Ast.program;
}

type analyzed = {
  name : string;
  report : Analyzer.report;
  verification : Dda_check.Verify.summary option;
}

type result = {
  items : analyzed list;
  merged : Analyzer.stats;
}

let chunks ~jobs n =
  List.init jobs (fun b -> (b * n / jobs, (b + 1) * n / jobs))

let run ?(config = Analyzer.default_config) ?(share_memo = false)
    ?(verify = false) ~jobs items =
  if jobs < 1 then invalid_arg "Batch.run: jobs must be >= 1";
  let arr = Array.of_list items in
  (* Verification replays the analyzer's own pair enumeration and
     checks the report actually produced — memoized or not. *)
  let verification program report =
    if not verify then None
    else begin
      let prepared =
        if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
        else program
      in
      let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
      let pairs = Analyzer.site_pairs config sites in
      Some (Dda_check.Verify.verify_report ~config pairs report)
    end
  in
  let chunk (lo, hi) () =
    if share_memo then begin
      let session = Analyzer.create_session ~config () in
      let analyzed =
        Array.init (hi - lo) (fun k ->
            let it : item = arr.(lo + k) in
            let report = Analyzer.analyze_session session it.program in
            { name = it.name; report; verification = verification it.program report })
      in
      (analyzed, Some session)
    end
    else
      let analyzed =
        Array.init (hi - lo) (fun k ->
            let it : item = arr.(lo + k) in
            let report = Analyzer.analyze ~config it.program in
            { name = it.name; report; verification = verification it.program report })
      in
      (analyzed, None)
  in
  let pool = Pool.create ~jobs in
  let per_chunk =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (fun c -> chunk c ()) (chunks ~jobs (Array.length arr)))
  in
  let items =
    List.concat_map (fun (analyzed, _) -> Array.to_list analyzed) per_chunk
  in
  let merged = Analyzer.fresh_stats () in
  List.iter (fun a -> Analyzer.merge_stats ~into:merged a.report.Analyzer.stats) items;
  (match List.filter_map snd per_chunk with
   | [] -> ()
   | first :: rest ->
     (* Per-call unique counts from [analyze_session] are cumulative
        within a chunk, so their sum over-counts; replace them with the
        distinct-problem counts of the merged (union) tables. *)
     List.iter (fun s -> Analyzer.merge_sessions ~into:first s) rest;
     let gcd_unique, full_unique = Analyzer.session_table_sizes first in
     merged.Analyzer.memo_unique_nobounds <- gcd_unique;
     merged.Analyzer.memo_unique_full <- full_unique);
  { items; merged }
