open Dda_lang
open Dda_core

type item = {
  name : string;
  program : Ast.program;
}

type analyzed = {
  name : string;
  report : Analyzer.report;
}

type result = {
  items : analyzed list;
  merged : Analyzer.stats;
}

let chunks ~jobs n =
  List.init jobs (fun b -> (b * n / jobs, (b + 1) * n / jobs))

let run ?(config = Analyzer.default_config) ?(share_memo = false) ~jobs items =
  if jobs < 1 then invalid_arg "Batch.run: jobs must be >= 1";
  let arr = Array.of_list items in
  let chunk (lo, hi) () =
    if share_memo then begin
      let session = Analyzer.create_session ~config () in
      let analyzed =
        Array.init (hi - lo) (fun k ->
            let it : item = arr.(lo + k) in
            { name = it.name; report = Analyzer.analyze_session session it.program })
      in
      (analyzed, Some session)
    end
    else
      let analyzed =
        Array.init (hi - lo) (fun k ->
            let it : item = arr.(lo + k) in
            { name = it.name; report = Analyzer.analyze ~config it.program })
      in
      (analyzed, None)
  in
  let pool = Pool.create ~jobs in
  let per_chunk =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (fun c -> chunk c ()) (chunks ~jobs (Array.length arr)))
  in
  let items =
    List.concat_map (fun (analyzed, _) -> Array.to_list analyzed) per_chunk
  in
  let merged = Analyzer.fresh_stats () in
  List.iter (fun a -> Analyzer.merge_stats ~into:merged a.report.Analyzer.stats) items;
  (match List.filter_map snd per_chunk with
   | [] -> ()
   | first :: rest ->
     (* Per-call unique counts from [analyze_session] are cumulative
        within a chunk, so their sum over-counts; replace them with the
        distinct-problem counts of the merged (union) tables. *)
     List.iter (fun s -> Analyzer.merge_sessions ~into:first s) rest;
     let gcd_unique, full_unique = Analyzer.session_table_sizes first in
     merged.Analyzer.memo_unique_nobounds <- gcd_unique;
     merged.Analyzer.memo_unique_full <- full_unique);
  { items; merged }
