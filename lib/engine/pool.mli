(** A fixed-size domain pool.

    [jobs] worker domains are spawned at {!create} and drain one shared
    FIFO queue (stdlib [Domain] + [Mutex]/[Condition]; no external
    dependencies). Tasks are closures; {!submit} returns a promise and
    {!await} blocks for its result, re-raising the task's exception in
    the caller with the original backtrace. A task that raises does not
    poison the pool: the worker survives and keeps draining the queue.

    With [jobs = 1] the pool degenerates to in-order sequential
    execution — a single worker pops the FIFO queue, so tasks run
    exactly in submission order.

    Tasks must not {!await} promises of the same pool (a task blocking
    on another queued task can deadlock a fully busy pool); await from
    the submitting domain. *)

type t

val create : jobs:int -> t
(** Spawn [jobs] worker domains.
    @raise Invalid_argument when [jobs < 1]. *)

val size : t -> int
(** Number of worker domains. *)

type 'a promise

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a task; it starts as soon as a worker is free.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception. Can be called any number of times. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] = [await (submit pool f)]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element on the pool and return the results in
    input order, whatever order the tasks finished in. If several tasks
    raise, the exception of the earliest element propagates. *)

val shutdown : t -> unit
(** Finish all queued tasks, then join every worker domain. Idempotent;
    subsequent {!submit}s are refused. *)
