(** The corpus batch driver: analyze many programs concurrently on a
    {!Pool} of domains and merge the per-program statistics into corpus
    totals.

    The corpus is split into [jobs] contiguous chunks — a pure function
    of the corpus length, never of scheduling — and each worker domain
    analyzes one chunk, so results always come back in input order and
    two runs over the same corpus produce identical output.

    {b Determinism.} In the default mode every program is analyzed
    independently (its own memo tables, exactly the sequential
    {!Analyzer.analyze} path), so reports {e and} merged statistics are
    byte-identical whatever [jobs] is. With [share_memo] every worker
    queries one {e live-shared} lock-striped table pair
    ({!Analyzer.shared}) during the run: verdicts, direction vectors
    and distinct-problem counts are unchanged at any [jobs] —
    memoization never alters answers, and the shared tables hold the
    same key set the post-run union would — but memo-{e hit} counters
    (and the gcd-table traffic, which only happens on full-table
    misses) then depend on cross-domain timing, so they are only
    deterministic at [--jobs 1]. With [memo_merge_after] (implies [share_memo]) each
    domain instead threads one {!Analyzer.session} through its whole
    chunk and the per-domain sessions are merged with
    {!Analyzer.merge_sessions} afterwards — the pre-live behaviour,
    kept as a differential oracle: same verdicts, same distinct-problem
    counts, hit counters deterministic for a fixed corpus and [jobs]
    (they depend only on the chunking), but cross-item repeats that
    land on different domains are recomputed instead of hitting. In
    both modes the merged statistics report the union's
    distinct-problem counts.

    {b Fault isolation.} A worker exception on one item — an analyzer
    bug, an injected {!Dda_core.Failpoint} failure — never aborts the
    batch: the item is retried with exponential backoff up to [retries]
    times and then {e quarantined}, its error recorded in the result
    while every other item completes normally. A per-item watchdog
    ([item_timeout_ms]) arms the budget's cooperative deadline, so a
    stuck item returns a degraded conservative report instead of
    hanging the batch. Merged statistics cover successfully analyzed
    items only. *)

open Dda_lang
open Dda_core

type item = {
  name : string;  (** label carried through to the result, e.g. a file name *)
  program : Ast.program;
}

type analyzed = {
  index : int;  (** position in the input corpus *)
  name : string;
  report : Analyzer.report;
  verification : Dda_check.Verify.summary option;
      (** present when the batch ran with [verify]: the report's
          verdicts re-derived and certificate-checked
          ({!Dda_check.Verify.verify_report}) *)
  lint : Dda_analysis.Lint.result option;
      (** present when the batch ran with [lint]: the report's
          dependences classified and every loop's parallelizability
          summarized ({!Dda_analysis.Lint.of_report}) *)
  attempts : int;  (** attempts used; [> 1] means the item was retried *)
}

(** An item abandoned after every attempt failed. *)
type quarantined = {
  q_index : int;  (** position in the input corpus *)
  q_name : string;
  q_attempts : int;
      (** attempts made; [0] when the whole chunk failed before
          per-item isolation engaged *)
  q_error : string;  (** printed form of the last exception *)
}

type result = {
  items : analyzed list;  (** successful items, in input order *)
  quarantined : quarantined list;  (** failed items, in input order *)
  retried : int;  (** items that needed more than one attempt *)
  merged : Analyzer.stats;
      (** totals over [items] only ({!Analyzer.merge_stats}) *)
  table_stats : (Memo_table.stats * Memo_table.stats) option;
      (** with [share_memo]: [(gcd, full)] {!Dda_core.Memo_table.stats}
          of the corpus-wide tables — the live-shared pair's aggregated
          stripe stats, or (with [memo_merge_after]) the merged union
          tables with lookup/hit counters summed over every worker
          session. [None] in the independent mode. *)
  contended : int option;
      (** live-shared mode only: stripe-lock acquisitions that had to
          block ({!Analyzer.shared_contended}) — a load signal, never
          deterministic. [None] otherwise. *)
}

val chunks : jobs:int -> int -> (int * int) list
(** [chunks ~jobs n] splits [0..n-1] into [jobs] contiguous [(lo, hi)]
    half-open ranges whose sizes differ by at most one (ranges may be
    empty when [n < jobs]). Exposed for tests. *)

val run :
  ?config:Analyzer.config ->
  ?share_memo:bool ->
  ?memo_merge_after:bool ->
  ?verify:bool ->
  ?lint:bool ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?item_timeout_ms:int ->
  jobs:int ->
  item list ->
  result
(** Analyze the corpus on [jobs] domains. [share_memo] defaults to
    [false] (the fully [jobs]-independent mode described above); when
    set, workers share the memo tables live unless [memo_merge_after]
    (default [false]) selects the per-domain-sessions-merged-at-the-end
    oracle mode instead ([memo_merge_after] without [share_memo] is
    ignored).
    [verify] (default [false]) certificate-checks each program's
    report on its worker domain and fills [verification]. [lint]
    (default [false]) classifies each program's dependences and
    summarizes loop parallelizability on its worker domain, filling
    [lint]; the [lint.*] metrics counters stay jobs-invariant because
    each item is linted exactly once whatever the chunking.

    [retries] (default [1]) is how many times a failed item is retried
    before quarantine; [backoff_ms] (default [50]) the first retry's
    delay, doubled each further retry. [item_timeout_ms] (default none)
    arms each attempt's cooperative deadline: analysis past it degrades
    to a flagged conservative verdict rather than being killed.
    @raise Invalid_argument when [jobs < 1], [retries < 0] or
    [backoff_ms < 0]. *)
