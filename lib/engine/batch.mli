(** The corpus batch driver: analyze many programs concurrently on a
    {!Pool} of domains and merge the per-program statistics into corpus
    totals.

    The corpus is split into [jobs] contiguous chunks — a pure function
    of the corpus length, never of scheduling — and each worker domain
    analyzes one chunk, so results always come back in input order and
    two runs over the same corpus produce identical output.

    {b Determinism.} In the default mode every program is analyzed
    independently (its own memo tables, exactly the sequential
    {!Analyzer.analyze} path), so reports {e and} merged statistics are
    byte-identical whatever [jobs] is. With [share_memo] each domain
    instead threads one {!Analyzer.session} through its whole chunk
    (the paper's cross-compilation memoization): verdicts and direction
    vectors are unchanged — memoization never alters answers — but
    memo-hit and tests-run counters then depend on how the corpus was
    chunked, i.e. on [jobs] (still deterministically so for a fixed
    corpus and [jobs]). The per-domain sessions are merged with
    {!Analyzer.merge_sessions} and the merged statistics report the
    union's distinct-problem counts. *)

open Dda_lang
open Dda_core

type item = {
  name : string;  (** label carried through to the result, e.g. a file name *)
  program : Ast.program;
}

type analyzed = {
  name : string;
  report : Analyzer.report;
  verification : Dda_check.Verify.summary option;
      (** present when the batch ran with [verify]: the report's
          verdicts re-derived and certificate-checked
          ({!Dda_check.Verify.verify_report}) *)
}

type result = {
  items : analyzed list;  (** one per input item, in input order *)
  merged : Analyzer.stats;  (** corpus totals ({!Analyzer.merge_stats}) *)
}

val chunks : jobs:int -> int -> (int * int) list
(** [chunks ~jobs n] splits [0..n-1] into [jobs] contiguous [(lo, hi)]
    half-open ranges whose sizes differ by at most one (ranges may be
    empty when [n < jobs]). Exposed for tests. *)

val run :
  ?config:Analyzer.config ->
  ?share_memo:bool ->
  ?verify:bool ->
  jobs:int ->
  item list ->
  result
(** Analyze the corpus on [jobs] domains. [share_memo] defaults to
    [false] (the fully [jobs]-independent mode described above).
    [verify] (default [false]) certificate-checks each program's
    report on its worker domain and fills [verification].
    @raise Invalid_argument when [jobs < 1]. *)
