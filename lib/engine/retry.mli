(** Jittered exponential retry backoff, shared by the in-memory and
    streaming batch drivers.

    The delay for attempt [a] is [base_ms * 2^(a-1)] scaled by a
    jitter factor in [0.5, 1.0) derived deterministically from
    [(index, attempt)] — so a corpus of items that all failed together
    (say, a shared resource blinked) retries spread out instead of in
    lockstep, yet any single run is exactly reproducible. *)

val delay_ms : base_ms:int -> index:int -> attempt:int -> int
(** The backoff before retrying item [index] after failed attempt
    [attempt] (1-based). 0 when [base_ms] is 0 (backoff disabled);
    at least 1 otherwise. *)

val sleep : base_ms:int -> index:int -> attempt:int -> unit
(** Sleep for {!delay_ms}, recording the chosen delay as a trace
    instant [batch.retry.backoff] with args [index], [attempt] and
    [delay_ms]. No-op (and no trace event) when the delay is 0. *)
