open Dda_lang
open Dda_core

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

type item = {
  name : string;
  text : unit -> string;
}

type source = unit -> item option

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let of_files paths =
  let rest = ref paths in
  fun () ->
    match !rest with
    | [] -> None
    | p :: tl ->
      rest := tl;
      Some { name = p; text = (fun () -> read_file p) }

let of_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dd")
    |> List.sort String.compare
    |> List.map (fun f -> Filename.concat dir f)
  in
  of_files files

let of_perfect ?(amplify = 1) () =
  if amplify < 1 then invalid_arg "Stream.of_perfect: amplify must be >= 1";
  let specs = ref Dda_perfect.Programs.all in
  let copy = ref 0 in
  let rec next () =
    match !specs with
    | [] -> None
    | spec :: tl ->
      if !copy >= amplify then begin
        specs := tl;
        copy := 0;
        next ()
      end
      else begin
        let k = !copy in
        incr copy;
        Some
          {
            name =
              Printf.sprintf "perfect:%s:%d" spec.Dda_perfect.Programs.name k;
            (* Copy 0 is the original suite program; further copies
               shift the seed, so amplification adds fresh-but-alike
               material rather than duplicates. *)
            text =
              (fun () ->
                Dda_perfect.Programs.source
                  {
                    spec with
                    Dda_perfect.Programs.seed =
                      spec.Dda_perfect.Programs.seed + (7919 * k);
                  });
          }
      end
  in
  next

let of_fuzz ~profile ~seed n =
  if n < 0 then invalid_arg "Stream.of_fuzz: count must be >= 0";
  let i = ref 0 in
  fun () ->
    if !i >= n then None
    else begin
      let index = !i in
      incr i;
      Some
        {
          name =
            Printf.sprintf "fuzz:%s:%d:%d"
              (Dda_perfect.Fuzz.profile_name profile)
              seed index;
          text =
            (fun () -> Dda_perfect.Fuzz.program profile ~seed ~index);
        }
    end

let concat sources =
  let rest = ref sources in
  let rec next () =
    match !rest with
    | [] -> None
    | s :: tl -> (
      match s () with
      | Some _ as r -> r
      | None ->
        rest := tl;
        next ())
  in
  next

(* ------------------------------------------------------------------ *)
(* Per-item processing                                                 *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Analyzed of {
      name : string;
      report : Analyzer.report;
      verification : Dda_check.Verify.summary option;
      lint : Dda_analysis.Lint.result option;
      attempts : int;
    }
  | Quarantined of { name : string; attempts : int; error : string }

type summary = {
  total : int;
  replayed : int;
  retried : int;
  quarantined : int;
  verify_errors : int;
  interrupted : bool;
  merged : Analyzer.stats;
}

(* Same counter names as the in-memory engine: items, retries and
   quarantines are per-corpus-item events either way, so the two
   drivers are indistinguishable to the metrics registry. *)
let m_items = Dda_obs.Metrics.counter "batch.items"
let m_retries = Dda_obs.Metrics.counter "batch.retries"
let m_quarantined = Dda_obs.Metrics.counter "batch.quarantined"
let m_appends = Dda_obs.Metrics.counter "stream.journal.appends"
let m_replayed = Dda_obs.Metrics.counter "stream.replayed"

exception Parse_error of string

let () =
  Printexc.register_printer (function
    | Parse_error msg -> Some msg
    | _ -> None)

let parse name text =
  match Parser.parse_program text with
  | prog ->
    List.iter
      (fun e -> Dda_obs.Log.debug "%s: %a" name Semant.pp_error e)
      (Semant.check prog);
    prog
  | exception Parser.Error (msg, loc) ->
    raise
      (Parse_error (Format.asprintf "%s:%a: syntax error: %s" name Loc.pp loc msg))
  | exception Lexer.Error (msg, loc) ->
    raise
      (Parse_error
         (Format.asprintf "%s:%a: lexical error: %s" name Loc.pp loc msg))

let md5_hex s = Digest.to_hex (Digest.string s)

(* One item, with the in-memory engine's fault isolation — except that
   a parse or lexical error quarantines immediately: the input is
   static, retrying cannot change the answer. Returns the source-text
   digest alongside the outcome ("" when the text was never obtained),
   which becomes the journal's corpus key. *)
let process ~config ~cache ~verify ~lint ~retries ~backoff_ms ~item_timeout_ms
    ~idx it =
  Dda_obs.Metrics.incr m_items;
  let verification cancel program report =
    if not verify then None
    else begin
      let prepared =
        if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
        else program
      in
      let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
      let pairs = Analyzer.site_pairs config sites in
      Some (Dda_check.Verify.verify_report ~cancel ~config pairs report)
    end
  in
  let lint_summary cancel program report =
    if not lint then None
    else begin
      let prepared =
        if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
        else program
      in
      let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
      Some (Dda_analysis.Lint.of_report ~config ~cancel ~prepared ~sites report)
    end
  in
  let item_cancel () =
    match item_timeout_ms with
    | None -> fun () -> false
    | Some ms ->
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
      fun () -> Unix.gettimeofday () > deadline
  in
  let key = ref "" in
  let rec go attempt =
    match
      Dda_obs.Trace.wrap ~name:"batch.item"
        ~args:(fun _ -> [ ("index", idx); ("attempt", attempt) ])
        (fun () ->
          Failpoint.hit "batch.item";
          let text = it.text () in
          key := md5_hex text;
          let program = parse it.name text in
          let cancel = item_cancel () in
          let report =
            match cache with
            | Some c ->
              (* Live-shared memo tables: each item wraps the shared
                 backend with its own counters so its reported lookup
                 totals stay a pure function of the item. *)
              Analyzer.analyze ~config ~cancel
                ~cache:(Analyzer.counted_cache c) program
            | None -> Analyzer.analyze ~config ~cancel program
          in
          ( report,
            verification cancel program report,
            lint_summary cancel program report ))
    with
    | report, ver, lnt ->
      ( !key,
        Analyzed
          {
            name = it.name;
            report;
            verification = ver;
            lint = lnt;
            attempts = attempt;
          } )
    | exception Parse_error msg ->
      Dda_obs.Metrics.incr m_quarantined;
      Dda_obs.Log.info "stream: quarantining %s (malformed): %s" it.name msg;
      (!key, Quarantined { name = it.name; attempts = attempt; error = msg })
    | exception e ->
      if attempt <= retries then begin
        Dda_obs.Metrics.incr m_retries;
        Dda_obs.Log.info "stream: retrying %s (attempt %d of %d): %s" it.name
          (attempt + 1) (retries + 1) (Printexc.to_string e);
        Retry.sleep ~base_ms:backoff_ms ~index:idx ~attempt;
        go (attempt + 1)
      end
      else begin
        Dda_obs.Metrics.incr m_quarantined;
        Dda_obs.Log.info "stream: quarantining %s after %d attempts: %s"
          it.name attempt (Printexc.to_string e);
        ( !key,
          Quarantined
            { name = it.name; attempts = attempt; error = Printexc.to_string e }
        )
      end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

(* JSONL: a header line with a configuration fingerprint, then one
   record per completed item. Everything needed to replay the item
   without re-analyzing it travels in the record: the rendered output
   chunk, its digest (integrity), the source-text digest (corpus
   identity), and the flattened statistics. *)

let journal_version = 1

(* [lint] is part of the fingerprint because it changes the rendered
   output (and the journaled finding counts) — a journal written
   without lint must not satisfy a resume that asks for it. So is
   [share_memo]: live sharing changes the per-item memo statistics the
   records carry. Both fold in only when set, so digests of journals
   written before the flags existed still validate. *)
let config_digest ?(lint = false) ?(share_memo = false) config ~verify =
  if share_memo then
    md5_hex (Marshal.to_string (config, verify, lint, share_memo) [])
  else if lint then md5_hex (Marshal.to_string (config, verify, lint) [])
  else md5_hex (Marshal.to_string (config, verify) [])

type jrecord = {
  j_name : string;
  j_key : string;
  j_out : string;
  j_attempts : int;
  j_verrs : int;
  j_stats : Analyzer.stats option;  (* [None] = quarantined *)
}

let header_line digest ~verify =
  Json_out.to_string
    (Json_out.Obj
       [
         ("dda_journal", Json_out.Int journal_version);
         ("config", Json_out.Str digest);
         ("verify", Json_out.Bool verify);
       ])
  ^ "\n"

let record_line ~index ~key out outcome =
  let name, attempts, verrs, stats, error =
    match outcome with
    | Analyzed a ->
      (* Lint race errors count with verification errors: both are
         findings that must drive the exit code identically on a clean
         and a resumed run, so both travel in the journal's [verrs]. *)
      ( a.name,
        a.attempts,
        (match a.verification with
         | Some s -> s.Dda_check.Verify.errors
         | None -> 0)
        + (match a.lint with
           | Some l -> l.Dda_analysis.Lint.errors
           | None -> 0),
        Some a.report.Analyzer.stats,
        None )
    | Quarantined q -> (q.name, q.attempts, 0, None, Some q.error)
  in
  Json_out.to_string
    (Json_out.Obj
       ([
          ("i", Json_out.Int index);
          ("name", Json_out.Str name);
          ("key", Json_out.Str key);
          ("digest", Json_out.Str (md5_hex out));
          ("attempts", Json_out.Int attempts);
          ("verrs", Json_out.Int verrs);
        ]
       @ (match stats with
          | Some s ->
            [
              ( "stats",
                Json_out.List
                  (List.map
                     (fun n -> Json_out.Int n)
                     (Analyzer.stats_to_list s)) );
            ]
          | None -> [])
       @ (match error with
          | Some e -> [ ("q", Json_out.Bool true); ("error", Json_out.Str e) ]
          | None -> [])
       @ [ ("out", Json_out.Str out) ]))
  ^ "\n"

let jfail path reason = failwith (Printf.sprintf "journal %s: %s" path reason)

let jint path j key =
  match Json_out.member key j with
  | Some (Json_out.Int n) -> n
  | _ -> jfail path (Printf.sprintf "record is missing %S" key)

let jstr path j key =
  match Json_out.member key j with
  | Some (Json_out.Str s) -> s
  | _ -> jfail path (Printf.sprintf "record is missing %S" key)

let parse_header path line =
  match Json_out.of_string line with
  | Error msg -> jfail path (Printf.sprintf "bad header: %s" msg)
  | Ok j ->
    (match Json_out.member "dda_journal" j with
     | Some (Json_out.Int v) when v = journal_version -> ()
     | Some (Json_out.Int v) ->
       jfail path (Printf.sprintf "unsupported version %d" v)
     | _ -> jfail path "not a journal (missing header)");
    jstr path j "config"

let parse_record path ~index line =
  match Json_out.of_string line with
  | Error msg ->
    jfail path (Printf.sprintf "corrupt record %d: %s" index msg)
  | Ok j ->
    let i = jint path j "i" in
    if i <> index then
      jfail path
        (Printf.sprintf "record %d is out of sequence (found index %d)" index i);
    let out = jstr path j "out" in
    let digest = jstr path j "digest" in
    if not (String.equal (md5_hex out) digest) then
      jfail path (Printf.sprintf "record %d fails its digest check" index);
    let quarantined =
      match Json_out.member "q" j with
      | Some (Json_out.Bool true) -> true
      | _ -> false
    in
    let stats =
      if quarantined then None
      else
        match Json_out.member "stats" j with
        | Some (Json_out.List l) ->
          let ints =
            List.map
              (function
                | Json_out.Int n -> n
                | _ -> jfail path (Printf.sprintf "record %d: bad stats" index))
              l
          in
          (match Analyzer.stats_of_list ints with
           | Some s -> Some s
           | None ->
             jfail path
               (Printf.sprintf
                  "record %d: stats written by an incompatible build" index))
        | _ -> jfail path (Printf.sprintf "record %d: missing stats" index)
    in
    {
      j_name = jstr path j "name";
      j_key = jstr path j "key";
      j_out = out;
      j_attempts = jint path j "attempts";
      j_verrs = jint path j "verrs";
      j_stats = stats;
    }

type journal_scan = {
  jrecords : int;  (** intact, newline-terminated, digest-valid records *)
  good_end : int;  (** byte offset just past the last intact record *)
  torn_bytes : int;  (** bytes of torn final record behind [good_end] *)
}

(* Full validation pass in bounded memory: header, record contiguity
   and integrity. The serializer escapes newlines inside JSON strings,
   so a literal newline byte only ever terminates a complete record —
   which makes the torn-tail rule exact: a final line without its
   newline is a record cut short by a crash mid-append, recoverable by
   truncation. Any {e complete} line that fails to parse or fails its
   digest is real mid-file corruption and still refuses. *)
let validate_journal ?expect_config path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> failwith (Printf.sprintf "journal: %s" msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len = 0 then jfail path "empty file";
      (* [input_line] strips the newline; the line was terminated iff
         the channel advanced one byte past its text. *)
      let read_line () =
        let start = pos_in ic in
        match input_line ic with
        | line -> Some (line, pos_in ic > start + String.length line)
        | exception End_of_file -> None
      in
      let header =
        match read_line () with
        | Some (line, true) -> line
        | Some (_, false) -> jfail path "torn header (missing newline)"
        | None -> jfail path "empty file"
      in
      let digest = parse_header path header in
      (match expect_config with
       | Some d when not (String.equal d digest) ->
         jfail path
           "written under a different configuration; re-run without --resume"
       | _ -> ());
      let count = ref 0 in
      let good_end = ref (pos_in ic) in
      let torn = ref 0 in
      let stop = ref false in
      while not !stop do
        match read_line () with
        | Some (line, true) ->
          ignore (parse_record path ~index:!count line);
          incr count;
          good_end := pos_in ic
        | Some (line, false) ->
          torn := String.length line;
          stop := true
        | None -> stop := true
      done;
      { jrecords = !count; good_end = !good_end; torn_bytes = !torn })

let journal_records path = (validate_journal path).jrecords

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let run ?(config = Analyzer.default_config) ?(share_memo = false)
    ?(verify = false) ?(lint = false) ?(retries = 1) ?(backoff_ms = 50)
    ?item_timeout_ms ?journal ?(resume = false) ?(stop = fun () -> false) ~jobs
    ~render ~emit source =
  if jobs < 1 then invalid_arg "Stream.run: jobs must be >= 1";
  if retries < 0 then invalid_arg "Stream.run: retries must be >= 0";
  if backoff_ms < 0 then invalid_arg "Stream.run: backoff_ms must be >= 0";
  if resume && journal = None then
    invalid_arg "Stream.run: resume requires a journal";
  let cfg_digest = config_digest ~lint ~share_memo config ~verify in
  (* The live-shared tables are bounded by the corpus's distinct
     problems, not its length: the one piece of state that deliberately
     outlives the sliding window. *)
  let cache =
    if share_memo then Some (Analyzer.shared_cache (Analyzer.create_shared ()))
    else None
  in
  let nreplay =
    match journal with
    | Some path when resume ->
      let scan = validate_journal ~expect_config:cfg_digest path in
      if scan.torn_bytes > 0 then begin
        (* A crash mid-append left a torn final record: drop it (the
           item re-analyzes below) and keep the intact prefix. *)
        Dda_obs.Log.warn
          "journal %s: dropping a torn final record (%d byte(s)); %d intact \
           record(s) kept"
          path scan.torn_bytes scan.jrecords;
        Unix.truncate path scan.good_end
      end;
      scan.jrecords
    | _ -> 0
  in
  let merged = Analyzer.fresh_stats () in
  let total = ref 0 in
  let retried = ref 0 in
  let quarantined = ref 0 in
  let verify_errors = ref 0 in
  let interrupted = ref false in
  (* Replay: walk the journal and the source in lockstep, re-deriving
     each journaled item from the source to prove the corpus is the
     one the journal was written against, then re-emit the stored
     output byte for byte. Bounded memory: one record at a time. *)
  if nreplay > 0 then begin
    let path = Option.get journal in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        ignore (input_line ic);
        for index = 0 to nreplay - 1 do
          let r = parse_record path ~index (input_line ic) in
          let it =
            match source () with
            | Some it -> it
            | None ->
              jfail path
                (Printf.sprintf
                   "has %d records but the corpus ends at item %d" nreplay
                   index)
          in
          if not (String.equal r.j_name it.name) then
            jfail path
              (Printf.sprintf
                 "record %d is for %S but the corpus has %S here" index
                 r.j_name it.name);
          if r.j_key <> "" then begin
            match it.text () with
            | text ->
              if not (String.equal (md5_hex text) r.j_key) then
                jfail path
                  (Printf.sprintf
                     "record %d: %S has changed since the journal was written"
                     index it.name)
            | exception _ ->
              (* The item failed to read back; the journaled verdict
                 (likely a quarantine) still stands. *)
              ()
          end;
          incr total;
          Dda_obs.Metrics.incr m_replayed;
          (match r.j_stats with
           | Some s -> Analyzer.merge_stats ~into:merged s
           | None -> incr quarantined);
          if r.j_attempts > 1 then incr retried;
          verify_errors := !verify_errors + r.j_verrs;
          emit r.j_out
        done)
  end;
  (* Open (or start) the write-ahead journal. *)
  let joc =
    match journal with
    | None -> None
    | Some path ->
      let oc =
        open_out_gen
          (Open_wronly :: Open_creat :: Open_binary
          :: (if resume then [ Open_append ] else [ Open_trunc ]))
          0o644 path
      in
      if not resume then begin
        output_string oc (header_line cfg_digest ~verify);
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())
      end;
      Some oc
  in
  let append oc line =
    (* Crash-injection point: a failure here must leave the journal
       without the record — never with a torn one. *)
    Failpoint.hit "stream.journal";
    output_string oc line;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    Dda_obs.Metrics.incr m_appends
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out_noerr joc)
    (fun () ->
      let pool = Pool.create ~jobs in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          (* The sliding window: at most [max 2 (2 * jobs)] items
             pulled, parsed and in flight at once; the head is awaited
             (input order), journaled, emitted, and its slot refilled.
             Peak memory is proportional to the window, not the
             corpus. *)
          let window = max 2 (2 * jobs) in
          let pending = Queue.create () in
          let exhausted = ref false in
          let next_idx = ref nreplay in
          let fill () =
            while
              (not !exhausted) && (not !interrupted)
              && Queue.length pending < window
            do
              if stop () then interrupted := true
              else
                match source () with
                | None -> exhausted := true
                | Some it ->
                let idx = !next_idx in
                incr next_idx;
                Queue.add
                  ( idx,
                    it.name,
                    Pool.submit pool (fun () ->
                        process ~config ~cache ~verify ~lint ~retries
                          ~backoff_ms ~item_timeout_ms ~idx it) )
                  pending
            done
          in
          fill ();
          while not (Queue.is_empty pending) do
            let idx, name, promise = Queue.pop pending in
            let key, outcome =
              match Pool.await promise with
              | r -> r
              | exception e ->
                (* Died outside per-item isolation (the pool job
                   itself): quarantine, attempts 0. *)
                Dda_obs.Metrics.incr m_quarantined;
                ("", Quarantined { name; attempts = 0; error = Printexc.to_string e })
            in
            let out = render outcome in
            incr total;
            (match outcome with
             | Analyzed a ->
               Analyzer.merge_stats ~into:merged a.report.Analyzer.stats;
               if a.attempts > 1 then incr retried;
               (match a.verification with
                | Some s ->
                  verify_errors := !verify_errors + s.Dda_check.Verify.errors
                | None -> ());
               (match a.lint with
                | Some l ->
                  verify_errors := !verify_errors + l.Dda_analysis.Lint.errors
                | None -> ())
             | Quarantined q ->
               incr quarantined;
               if q.attempts > 1 then incr retried);
            Option.iter
              (fun oc -> append oc (record_line ~index:idx ~key out outcome))
              joc;
            emit out;
            fill ()
          done));
  {
    total = !total;
    replayed = nreplay;
    retried = !retried;
    quarantined = !quarantined;
    verify_errors = !verify_errors;
    interrupted = !interrupted;
    merged;
  }
