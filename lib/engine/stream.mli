(** The streaming batch driver: bounded-memory analysis of corpora too
    large (or too synthetic) to hold in memory, with a write-ahead
    journal for crash/resume.

    Where {!Batch} materializes the whole corpus up front, a stream
    {e pulls} items one at a time from a {!source} — files, whole
    directories, amplified {!Dda_perfect.Programs} suites, or the
    {!Dda_perfect.Fuzz} generator — lexes and parses each on a worker
    domain, and emits its rendered result as soon as every earlier
    item's result has been emitted. At most [2 * jobs] items are in
    flight, so peak memory is a function of [jobs] and the largest
    single item, never of corpus length.

    {b Determinism.} By default items are analyzed independently,
    results are emitted in input order, and the per-item counters are
    per-corpus-item events, so output and metrics are byte-identical
    whatever [jobs] is, exactly as in {!Batch}'s default mode. With
    [share_memo] every worker queries one live-shared lock-striped
    table pair ({!Analyzer.shared}) for the whole run: verdicts and
    direction vectors are unchanged at any [jobs], but per-item
    memo-{e hit} counts (and so the JSON renderings and the summary's
    hit totals) depend on cross-domain timing at [jobs > 1], and a
    resumed run re-analyzes its remaining items against a table that
    never saw the replayed ones — replayed chunks are still emitted
    byte-for-byte, and only hit counters can differ from a clean run.
    [share_memo] participates in the journal fingerprint.

    {b Journal.} With [journal], every completed item is appended to a
    JSONL write-ahead journal — its corpus position, name, a digest of
    its source text, its rendered output and flattened statistics —
    and the record is flushed and fsynced {e before} the output chunk
    is emitted, so a crash never acknowledges un-journaled work. With
    [resume], a valid journal's records are {e replayed}: each
    journaled item's stored output is re-emitted byte-for-byte (after
    re-deriving the item from the source and checking its text
    digest), analysis restarts at the first un-journaled item, and the
    final output is byte-identical to an uninterrupted run.

    A crash {e mid-append} (kill -9, power loss) can leave a torn
    final record; because the serializer escapes newlines inside JSON
    strings, torn is exactly "the final line has no terminating
    newline", and [resume] recovers it: the torn tail is truncated
    (with a warning), the intact prefix replays, and the dropped item
    is simply re-analyzed. Anything else — a complete record that
    fails to parse or fails its digest check, a torn or alien header,
    a journal written under a different configuration — is rejected
    with [Failure], never silently repaired: mid-file damage means the
    file is not the journal this corpus wrote.

    {b Fault isolation} matches {!Batch}: a failing item is retried
    with exponential backoff and then quarantined while the stream
    keeps going. Parse and lexical errors quarantine immediately (the
    input is static; retrying cannot help) — unlike the in-memory
    driver's front end, a malformed corpus item does not abort the
    run. *)

open Dda_core

(** {1 Sources} *)

type item = {
  name : string;  (** label carried through results and the journal *)
  text : unit -> string;
      (** produce the source text; called on a worker domain, and
          again (on the driver) when validating a resume — must be
          pure, or at least stable for the run's duration *)
}

type source = unit -> item option
(** A pull-based corpus: [None] means exhausted. Sources are stateful
    and single-consumer. *)

val of_files : string list -> source
(** One item per path, read lazily ([name] is the path). *)

val of_dir : string -> source
(** Every [*.dd] file directly under the directory, sorted by name.
    The directory is listed eagerly (so the corpus is fixed at
    creation); file contents are read lazily.
    @raise Sys_error when the directory cannot be read. *)

val of_perfect : ?amplify:int -> unit -> source
(** The synthetic PERFECT Club suite ({!Dda_perfect.Programs.all}),
    [amplify] (default 1) seed-shifted copies of each program; item
    [k] of program [P] is named [perfect:P:k] and generated on
    demand — the amplified corpus never exists in memory at once.
    @raise Invalid_argument when [amplify < 1]. *)

val of_fuzz :
  profile:Dda_perfect.Fuzz.profile -> seed:int -> int -> source
(** [of_fuzz ~profile ~seed n]: [n] fuzzed programs, item [i] named
    [fuzz:<profile>:<seed>:<i>] and generated on demand.
    @raise Invalid_argument when [n < 0]. *)

val concat : source list -> source
(** Items of each source in turn, left to right. *)

(** {1 Running} *)

(** One item's result, handed to the caller's renderer. *)
type outcome =
  | Analyzed of {
      name : string;
      report : Analyzer.report;
      verification : Dda_check.Verify.summary option;
      lint : Dda_analysis.Lint.result option;
          (** present when the stream ran with [lint] *)
      attempts : int;
    }
  | Quarantined of { name : string; attempts : int; error : string }

type summary = {
  total : int;  (** items emitted, replayed included *)
  replayed : int;  (** items satisfied from the journal *)
  retried : int;  (** items that needed more than one attempt *)
  quarantined : int;
  verify_errors : int;
      (** findings that drive a non-zero exit: certificate errors plus
          lint race errors, summed over all items (both are journaled,
          so a resumed run reports the same count as a clean one) *)
  interrupted : bool;
      (** [stop] ended the run before the source was exhausted;
          everything already in flight was finished and journaled *)
  merged : Analyzer.stats;  (** totals over successful items *)
}

val run :
  ?config:Analyzer.config ->
  ?share_memo:bool ->
  ?verify:bool ->
  ?lint:bool ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?item_timeout_ms:int ->
  ?journal:string ->
  ?resume:bool ->
  ?stop:(unit -> bool) ->
  jobs:int ->
  render:(outcome -> string) ->
  emit:(string -> unit) ->
  source ->
  summary
(** Drive the corpus through [jobs] worker domains. [render] turns
    each result into the output chunk that is journaled and emitted;
    [emit] receives the chunks in input order (replayed chunks come
    from the journal, not from [render]). The per-item knobs
    ([retries], [backoff_ms], [item_timeout_ms], [verify], [lint])
    mean exactly what they do in {!Batch.run}.

    [journal] names the write-ahead journal; without [resume] it is
    truncated and started fresh. [resume] (default [false]) requires
    [journal] and replays it as described above.

    [stop] (default never) is polled between items: once it returns
    [true] no further item is pulled from the source, but everything
    already submitted is finished, journaled and emitted, the journal
    is flushed and fsynced, and the summary comes back with
    [interrupted = true] — the SIGINT path of [ddtest batch --stream],
    which leaves a journal a later [resume] continues from.

    @raise Invalid_argument on bad knob values, or [resume] without
    [journal].
    @raise Failure when resuming from an invalid or mismatched
    journal, or when the journal file cannot be written.
    @raise Dda_core.Failpoint.Injected from the [stream.journal]
    failpoint site (hit before each append — the crash-injection hook
    the chaos suite uses). *)

(** {1 Journal internals, exposed for tests} *)

val config_digest :
  ?lint:bool -> ?share_memo:bool -> Analyzer.config -> verify:bool -> string
(** The configuration fingerprint stored in the journal header.
    [lint] (default [false]) participates because it changes the
    rendered output, [share_memo] (default [false]) because it changes
    the journaled per-item memo statistics; with both off the digest
    matches journals written before either flag existed. *)

val journal_records : string -> int
(** Validate a journal file exactly as [resume] does and return the
    number of intact records (a torn final record is not counted, and
    the file is left untouched — only [resume] truncates).
    @raise Failure on any validation error. *)
