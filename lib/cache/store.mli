(** The durable memo store: an append-only, digest-framed cache file.

    One file holds both memo tables' entries, interleaved in append
    order:

    {v
    +--------------------------------------------------+
    | magic "%DDACACHE1\n"            (11 bytes)       |
    | fingerprint                     (16 bytes, MD5)  |
    +--------------------------------------------------+
    | record: payload length          (4 bytes, BE)    |
    |         payload digest          (16 bytes, MD5)  |
    |         payload                 (marshaled entry)|
    +--------------------------------------------------+
    | ... more records ...                             |
    v}

    The fingerprint is the MD5 of the marshaled pair
    ({!Dda_core.Analyzer.memo_format_version}, analyzer config):
    memo keys and values are both config- and version-dependent, so a
    file written under any other build or configuration must never be
    read as data.

    Integrity discipline (the cache-integrity invariant, see
    DESIGN.md): a record is delivered to the caller only if the file's
    magic and fingerprint both match {e and} the record's own digest
    matches its payload. Anything else degrades to a cold start —
    a torn tail (a record cut short by a crash mid-append) is
    truncated away, a record failing its digest check drops itself and
    everything after it (cache entries are independent, so a surviving
    prefix is always sound), and a header mismatch rejects the whole
    file (it is preserved as [path.rejected] for inspection). No
    failure mode can surface a wrong or stale verdict; the worst case
    is recomputation.

    Appends write the frame header and payload with raw [Unix.write]
    (no userspace buffering), so a kill -9 at any byte leaves exactly
    the torn-tail shape recovery handles; with [fsync] (the default)
    every append is synced before it returns. *)

type t

type recovery = {
  fresh : bool;  (** the file did not exist (or was rejected) *)
  reset : string option;
      (** [Some reason]: an existing file failed the magic or
          fingerprint check and was moved to [path.rejected] *)
  records : int;  (** intact records delivered from the surviving prefix *)
  dropped_bytes : int;
      (** bytes discarded behind the last intact record (torn tail or
          a corrupt record and everything after it) *)
}

val fingerprint : Dda_core.Analyzer.config -> string
(** The header fingerprint for a configuration (16 raw bytes). *)

val open_store :
  ?fsync:bool ->
  path:string ->
  config:Dda_core.Analyzer.config ->
  gcd:(int array -> Dda_core.Gcd_test.outcome -> unit) ->
  full:(int array -> Dda_core.Analyzer.outcome -> unit) ->
  unit ->
  t * recovery
(** Open (creating if needed) the store at [path], validate the
    header against [config], replay every intact record through the
    [gcd]/[full] callbacks, truncate any damaged suffix, and return
    the store opened for appending. [fsync] (default [true]) syncs
    every append. Failpoint site: [cache.open].
    @raise Failure when the file cannot be created, read or written
    (an I/O error, not a corruption — corruption recovers). *)

val append_gcd : t -> int array -> Dda_core.Gcd_test.outcome -> unit
val append_full : t -> int array -> Dda_core.Analyzer.outcome -> unit
(** Append one record (write-through from a memo miss). Failpoint
    sites: [cache.append] before the frame, [cache.append.mid] between
    the frame header and the payload — a [kill] there leaves exactly
    the torn tail recovery must absorb. *)

val flush : t -> unit
(** fsync the file. Failpoint site: [cache.flush]. *)

val close : t -> unit
(** [flush] and close the descriptor. Idempotent. *)

val path : t -> string
val appends : t -> int
(** Records appended through this handle (not counting replayed ones). *)

(** What {!compact} did, for reporting. *)
type compaction = {
  before_records : int;  (** intact records in the original file *)
  after_records : int;  (** records written: one per distinct key *)
  before_bytes : int;
  after_bytes : int;
  damaged_bytes : int;
      (** torn/corrupt suffix bytes discarded (replay would have
          dropped them too) *)
}

val compact :
  ?fsync:bool ->
  path:string ->
  config:Dda_core.Analyzer.config ->
  unit ->
  compaction
(** Rewrite the store at [path] keeping the {e last} binding of every
    key (exactly the state replay reconstructs — duplicate appends
    from racing domains, and any superseded bindings, are dropped).
    The survivors are written to a fresh temporary file with the same
    magic and fingerprint, fsynced ([fsync], default [true]), and
    atomically renamed over the original: a crash leaves either the
    old file or the complete new one. The store must not be open for
    appending elsewhere during compaction (appends racing the rename
    would land in the doomed file).
    @raise Failure when the file is missing or unreadable, or its
    header does not match [config] — the file is left untouched
    (unlike {!open_store}, which quarantines and starts cold). *)
