(** The durable, shareable memo cache: in-process lock-striped
    {!Dda_core.Sharded_table}s with optional write-through to a
    {!Store} file behind its own mutex.

    This is the backend [ddtest serve] plugs into the analyzer's
    pluggable {!Dda_core.Analyzer.cache} interface. It is safe to share
    across worker domains: lookups and insertions take only the key's
    stripe lock (domains contend per stripe, not globally; the
    append-only store, inherently serial, is the one shared mutex), and
    a miss's {e computation} runs with no lock held (it must — a
    full-table miss recursively queries the gcd table through the same
    cache). Two domains racing on the same key may therefore both
    compute it; the values are deterministic and equal, the table keeps
    one, and the duplicate store record is harmless (replay re-adds the
    same binding — [ddtest cache compact] rewrites them away). A
    computation that raises stores nothing. *)

type t

val create :
  ?path:string ->
  ?fsync:bool ->
  config:Dda_core.Analyzer.config ->
  unit ->
  t * Store.recovery option
(** Without [path], a purely in-memory (but still domain-shareable)
    cache and [None]. With [path], opens the {!Store} there — replaying
    survivors into the tables and recovering per the cache-integrity
    invariant — and returns its {!Store.recovery}. [fsync] (default
    [true]) is passed through.
    @raise Failure on real I/O errors (see {!Store.open_store}). *)

val cache : t -> Dda_core.Analyzer.cache
(** The analyzer-facing view. Every miss computed through it is added
    to the tables and appended to the store (when present) before the
    query returns. *)

val table_sizes : t -> int * int
(** [(gcd_entries, full_entries)] currently held. *)

val table_stats : t -> Dda_core.Memo_table.stats * Dda_core.Memo_table.stats
(** Aggregated across stripes ({!Dda_core.Sharded_table.stats}). *)

val contended : t -> int
(** Stripe-lock acquisitions (both tables) that had to block — the
    [memo.stripe.contended] signal, scoped to this cache. *)

val store_path : t -> string option
val store_appends : t -> int
(** Records appended since open (0 for in-memory caches). *)

val flush : t -> unit
(** fsync the store, if any. *)

val close : t -> unit
(** Flush and close the store, if any. Idempotent; the in-memory
    tables stay usable. *)
