open Dda_core

type t = {
  gcd : Gcd_test.outcome Memo_table.t;
  full : Analyzer.outcome Memo_table.t;
  store : Store.t option;
  lock : Mutex.t;
}

let create ?path ?(fsync = true) ~config () =
  let gcd = Memo_table.create () in
  let full = Memo_table.create () in
  let store, recovery =
    match path with
    | None -> (None, None)
    | Some path ->
        let s, r =
          Store.open_store ~fsync ~path ~config ~gcd:(Memo_table.add gcd)
            ~full:(Memo_table.add full) ()
        in
        (Some s, Some r)
  in
  ({ gcd; full; store; lock = Mutex.create () }, recovery)

(* The find-compute-add protocol: find under the lock, compute outside
   it (the full-table compute path re-enters this cache for gcd
   queries), re-lock to publish. On a race the later add replaces the
   earlier equal binding; both appends replay to the same state. *)
let find_or_add t table app key compute =
  Mutex.lock t.lock;
  match Memo_table.find table key with
  | Some v ->
      Mutex.unlock t.lock;
      (v, true)
  | None ->
      Mutex.unlock t.lock;
      let v = compute () in
      Mutex.lock t.lock;
      Memo_table.add table key v;
      let r =
        match t.store with
        | None -> Ok ()
        | Some s -> ( try Ok (app s key v) with e -> Error e)
      in
      Mutex.unlock t.lock;
      (match r with Ok () -> () | Error e -> raise e);
      (v, false)

let locked t f =
  Mutex.lock t.lock;
  let r = try Ok (f ()) with e -> Error e in
  Mutex.unlock t.lock;
  match r with Ok v -> v | Error e -> raise e

let cache t : Analyzer.cache =
  {
    find_or_add_gcd = (fun key compute ->
        find_or_add t t.gcd Store.append_gcd key compute);
    find_or_add_full = (fun key compute ->
        find_or_add t t.full Store.append_full key compute);
    cache_stats = (fun () ->
        locked t (fun () -> (Memo_table.stats t.gcd, Memo_table.stats t.full)));
    cache_flush = (fun () ->
        locked t (fun () -> Option.iter Store.flush t.store));
  }

let table_sizes t =
  locked t (fun () -> (Memo_table.length t.gcd, Memo_table.length t.full))

let table_stats t =
  locked t (fun () -> (Memo_table.stats t.gcd, Memo_table.stats t.full))

let store_path t = Option.map Store.path t.store
let store_appends t = match t.store with None -> 0 | Some s -> Store.appends s
let flush t = locked t (fun () -> Option.iter Store.flush t.store)
let close t = locked t (fun () -> Option.iter Store.close t.store)
