open Dda_core

(* In-memory lookups go to lock-striped tables (domains only contend
   when their keys share a stripe); the append-only store — inherently
   serial — keeps its own mutex. *)
type t = {
  gcd : Gcd_test.outcome Sharded_table.t;
  full : Analyzer.outcome Sharded_table.t;
  store : Store.t option;
  lock : Mutex.t;  (* serializes store appends and lifecycle only *)
}

let create ?path ?(fsync = true) ~config () =
  let gcd = Sharded_table.create () in
  let full = Sharded_table.create () in
  let store, recovery =
    match path with
    | None -> (None, None)
    | Some path ->
        let s, r =
          Store.open_store ~fsync ~path ~config ~gcd:(Sharded_table.add gcd)
            ~full:(Sharded_table.add full) ()
        in
        (Some s, Some r)
  in
  ({ gcd; full; store; lock = Mutex.create () }, recovery)

(* The find-compute-add protocol: find (stripe-locked), compute with no
   lock held (the full-table compute path re-enters this cache for gcd
   queries), publish to the table, then append to the store under the
   store lock. On a race the later add replaces the earlier equal
   binding; both appends replay to the same state. A racing domain may
   hit on the table entry while the append is still in flight — the
   value is deterministic either way, and a crash in that window just
   means the key is recomputed next run. *)
let find_or_add t table app key compute =
  match Sharded_table.find table key with
  | Some v -> (v, true)
  | None ->
      (* The key may be a borrowed scratch buffer that [compute]'s
         nested lookups reuse — take ownership before computing. *)
      let key = Array.copy key in
      let v = compute () in
      Sharded_table.add table key v;
      (match t.store with
       | None -> ()
       | Some s ->
           Mutex.lock t.lock;
           let r = try Ok (app s key v) with e -> Error e in
           Mutex.unlock t.lock;
           (match r with Ok () -> () | Error e -> raise e));
      (v, false)

let locked t f =
  Mutex.lock t.lock;
  let r = try Ok (f ()) with e -> Error e in
  Mutex.unlock t.lock;
  match r with Ok v -> v | Error e -> raise e

let cache t : Analyzer.cache =
  {
    find_or_add_gcd = (fun key compute ->
        find_or_add t t.gcd Store.append_gcd key compute);
    find_or_add_full = (fun key compute ->
        find_or_add t t.full Store.append_full key compute);
    cache_stats = (fun () ->
        (Sharded_table.stats t.gcd, Sharded_table.stats t.full));
    cache_flush = (fun () ->
        locked t (fun () -> Option.iter Store.flush t.store));
  }

let table_sizes t = (Sharded_table.length t.gcd, Sharded_table.length t.full)

let table_stats t = (Sharded_table.stats t.gcd, Sharded_table.stats t.full)

let contended t =
  Sharded_table.contended t.gcd + Sharded_table.contended t.full

let store_path t = Option.map Store.path t.store
let store_appends t = match t.store with None -> 0 | Some s -> Store.appends s
let flush t = locked t (fun () -> Option.iter Store.flush t.store)
let close t = locked t (fun () -> Option.iter Store.close t.store)
