open Dda_core
open Dda_obs

let magic = "%DDACACHE1\n"
let fp_len = 16
let header_len = String.length magic + fp_len
let frame_len = 4 + fp_len (* payload length + payload digest *)

(* Both memo tables share one file, so each record says which table it
   belongs to. The payload is the Marshal image of this constructor. *)
type entry =
  | Gcd of int array * Gcd_test.outcome
  | Full of int array * Analyzer.outcome

type t = {
  fd : Unix.file_descr;
  s_path : string;
  fsync : bool;
  mutable n_appends : int;
  mutable closed : bool;
}

type recovery = {
  fresh : bool;
  reset : string option;
  records : int;
  dropped_bytes : int;
}

let m_appends = Metrics.counter "cache.store.appends"
let m_replayed = Metrics.counter "cache.store.replayed"
let m_dropped = Metrics.counter "cache.store.dropped_bytes"
let m_resets = Metrics.counter "cache.store.resets"

let fingerprint config =
  Digest.string
    (Marshal.to_string (Analyzer.memo_format_version, config) [])

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let do_fsync fd =
  Failpoint.hit "cache.flush";
  Unix.fsync fd

(* [false] on end-of-file before [len] bytes — a torn tail, not an
   error. *)
let read_exact ic buf len =
  try
    really_input ic buf 0 len;
    true
  with End_of_file -> false

(* Walk the record stream, delivering every intact record and stopping
   at the first sign of damage: a short read, an impossible length, a
   digest mismatch or an unreadable payload. Returns (intact records,
   byte offset just past the last one). *)
let scan_records ic file_len ~gcd ~full =
  let records = ref 0 in
  let good_end = ref header_len in
  let frame = Bytes.create frame_len in
  (try
     while !good_end < file_len do
       if not (read_exact ic frame frame_len) then raise Exit;
       let len = Int32.to_int (Bytes.get_int32_be frame 0) in
       if len <= 0 || len > file_len - !good_end - frame_len then raise Exit;
       let payload = Bytes.create len in
       if not (read_exact ic payload len) then raise Exit;
       let payload = Bytes.unsafe_to_string payload in
       if not (String.equal (Digest.string payload)
                 (Bytes.sub_string frame 4 fp_len))
       then raise Exit;
       (match (Marshal.from_string payload 0 : entry) with
        | Gcd (key, v) -> gcd key v
        | Full (key, v) -> full key v
        | exception _ -> raise Exit);
       incr records;
       good_end := !good_end + frame_len + len
     done
   with Exit -> ());
  (!records, !good_end)

let open_store ?(fsync = true) ~path ~config ~gcd ~full () =
  Failpoint.hit "cache.open";
  let fp = fingerprint config in
  let io_fail what exn =
    failwith
      (Printf.sprintf "cache %s: cannot %s: %s" path what
         (match exn with
          | Unix.Unix_error (e, _, _) -> Unix.error_message e
          | Sys_error m -> m
          | e -> Printexc.to_string e))
  in
  let fresh_fd () =
    match
      let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
      write_all fd (magic ^ fp);
      if fsync then Unix.fsync fd;
      fd
    with
    | fd -> fd
    | exception e -> io_fail "create" e
  in
  let make fd = { fd; s_path = path; fsync; n_appends = 0; closed = false } in
  if not (Sys.file_exists path) then
    (make (fresh_fd ()), { fresh = true; reset = None; records = 0; dropped_bytes = 0 })
  else begin
    let ic = try open_in_bin path with e -> io_fail "read" e in
    let file_len = in_channel_length ic in
    let header =
      if file_len < header_len then
        Error "truncated header"
      else
        let h = really_input_string ic header_len in
        if not (String.equal (String.sub h 0 (String.length magic)) magic)
        then Error "bad magic (not a dda cache file)"
        else if not (String.equal (String.sub h (String.length magic) fp_len) fp)
        then
          Error
            "fingerprint mismatch (written by a different analyzer \
             version or configuration)"
        else Ok ()
    in
    match header with
    | Error reason ->
        (* The file is unusable as a whole: preserve it for inspection
           and start cold. Never a wrong verdict, only recomputation. *)
        close_in_noerr ic;
        let rejected = path ^ ".rejected" in
        (try Sys.rename path rejected with e -> io_fail "quarantine" e);
        Log.warn "cache %s: %s; moved to %s and starting cold" path reason
          rejected;
        Metrics.incr m_resets;
        ( make (fresh_fd ()),
          { fresh = true; reset = Some reason; records = 0; dropped_bytes = 0 } )
    | Ok () ->
        let records, good_end = scan_records ic file_len ~gcd ~full in
        close_in_noerr ic;
        let dropped = file_len - good_end in
        if dropped > 0 then begin
          Log.warn
            "cache %s: dropping %d damaged trailing byte(s) after %d intact \
             record(s)"
            path dropped records;
          (try Unix.truncate path good_end with e -> io_fail "truncate" e)
        end;
        Metrics.add m_replayed records;
        Metrics.add m_dropped dropped;
        let fd =
          try Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644
          with e -> io_fail "append to" e
        in
        (make fd, { fresh = false; reset = None; records; dropped_bytes = dropped })
  end

let write_record fd entry ~mid =
  let payload = Marshal.to_string entry [] in
  let frame = Bytes.create frame_len in
  Bytes.set_int32_be frame 0 (Int32.of_int (String.length payload));
  Bytes.blit_string (Digest.string payload) 0 frame 4 fp_len;
  write_all fd (Bytes.unsafe_to_string frame);
  (* A [kill] here leaves a frame header with no payload behind it —
     the torn tail recovery truncates on the next open. *)
  mid ();
  write_all fd payload

let append t entry =
  Failpoint.hit "cache.append";
  write_record t.fd entry ~mid:(fun () -> Failpoint.hit "cache.append.mid");
  t.n_appends <- t.n_appends + 1;
  Metrics.incr m_appends;
  if t.fsync then do_fsync t.fd

let append_gcd t key v = append t (Gcd (key, v))
let append_full t key v = append t (Full (key, v))
let flush t = if not t.closed then do_fsync t.fd

let close t =
  if not t.closed then begin
    do_fsync t.fd;
    t.closed <- true;
    Unix.close t.fd
  end

let path t = t.s_path
let appends t = t.n_appends

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

type compaction = {
  before_records : int;
  after_records : int;
  before_bytes : int;
  after_bytes : int;
  damaged_bytes : int;
}

let m_compactions = Metrics.counter "cache.store.compactions"

(* Racing domains each append the key they both computed, and every
   process lifetime replays old records while appending only new ones —
   an append-only file only ever grows. Compaction rewrites it to one
   record per key (the last binding wins, exactly what replay would
   keep), atomically: the survivors go to a fresh [path.compact] file
   with the same magic and fingerprint, which then renames over the
   original. A crash at any point leaves either the old file or the
   complete new one, never a mix.

   Unlike [open_store], a header mismatch here raises instead of
   quarantining: compaction is an explicit administrative action on a
   file the operator believes is valid, so refusing loudly (with the
   file untouched) beats silently discarding it. A damaged suffix is
   dropped, as replay would drop it. *)
let compact ?(fsync = true) ~path ~config () =
  let fp = fingerprint config in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("cache " ^ path ^ ": " ^ m)) fmt in
  let ic =
    try open_in_bin path
    with Sys_error m -> fail "cannot read: %s" m
  in
  let file_len = in_channel_length ic in
  if file_len < header_len then begin
    close_in_noerr ic;
    fail "truncated header (%d bytes)" file_len
  end;
  let h = really_input_string ic header_len in
  if not (String.equal (String.sub h 0 (String.length magic)) magic) then begin
    close_in_noerr ic;
    fail "bad magic (not a dda cache file)"
  end;
  if not (String.equal (String.sub h (String.length magic) fp_len) fp) then begin
    close_in_noerr ic;
    fail
      "fingerprint mismatch (written by a different analyzer version or \
       configuration)"
  end;
  let gcd = Memo_table.create () and full = Memo_table.create () in
  let records, good_end =
    scan_records ic file_len ~gcd:(Memo_table.add gcd)
      ~full:(Memo_table.add full)
  in
  close_in_noerr ic;
  let tmp = path ^ ".compact" in
  let fd =
    try Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      fail "cannot create %s: %s" tmp (Unix.error_message e)
  in
  (match
     write_all fd (magic ^ fp);
     Memo_table.iter (fun k v -> write_record fd (Gcd (k, v)) ~mid:ignore) gcd;
     Memo_table.iter (fun k v -> write_record fd (Full (k, v)) ~mid:ignore) full;
     if fsync then Unix.fsync fd;
     Unix.close fd
   with
   | () -> ()
   | exception e ->
     (try Unix.close fd with _ -> ());
     (try Sys.remove tmp with _ -> ());
     raise e);
  (try Sys.rename tmp path
   with Sys_error m ->
     (try Sys.remove tmp with _ -> ());
     fail "cannot rename %s into place: %s" tmp m);
  Metrics.incr m_compactions;
  {
    before_records = records;
    after_records = Memo_table.length gcd + Memo_table.length full;
    before_bytes = file_len;
    after_bytes = (Unix.stat path).Unix.st_size;
    damaged_bytes = file_len - good_end;
  }
