exception Runtime_error of string * Loc.t

type access = {
  array : string;
  indices : int list;
  role : [ `Read | `Write ];
  site : Loc.t;
  iter : (string * int) list;
  time : int;
}

type env = {
  scalars : (string, int) Hashtbl.t;
  memory : (string * int list, int) Hashtbl.t;
  inputs : (string, int) Hashtbl.t;
  mutable trace : access list;  (* reverse execution order *)
  mutable clock : int;
  mutable loops : (string * int) list;  (* innermost first *)
  mutable fuel : int;  (* negative: unlimited *)
  reorder : Loc.t -> int -> int array option;
      (* iteration-order hook: given a loop's location and trip count,
         an optional permutation of [0, n) to execute instead of
         sequential order *)
}

let record env array indices role site =
  env.trace <-
    {
      array;
      indices;
      role;
      site;
      iter = List.rev env.loops;
      time = env.clock;
    }
    :: env.trace;
  env.clock <- env.clock + 1

let rec eval env (e : Ast.expr) =
  match e.desc with
  | Ast.Int n -> n
  | Ast.Var v -> (
      match Hashtbl.find_opt env.scalars v with Some n -> n | None -> 0)
  | Ast.Neg a -> -eval env a
  | Ast.Bin (op, a, b) -> (
      let x = eval env a and y = eval env b in
      match op with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div ->
        if y = 0 then raise (Runtime_error ("division by zero", e.eloc))
        else x / y)
  | Ast.Aref (name, subs) ->
    let indices = List.map (eval env) subs in
    record env name indices `Read e.eloc;
    (match Hashtbl.find_opt env.memory (name, indices) with
     | Some n -> n
     | None -> 0)

let eval_cond env ({ rel; lhs; rhs } : Ast.cond) =
  let x = eval env lhs and y = eval env rhs in
  match rel with
  | Ast.Req -> x = y
  | Ast.Rne -> x <> y
  | Ast.Rlt -> x < y
  | Ast.Rle -> x <= y
  | Ast.Rgt -> x > y
  | Ast.Rge -> x >= y

let rec exec env (s : Ast.stmt) =
  if env.fuel = 0 then
    raise (Runtime_error ("execution budget exhausted", s.sloc));
  if env.fuel > 0 then env.fuel <- env.fuel - 1;
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let value = eval env e in
    Hashtbl.replace env.scalars v value
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    (* Fortran order: subscripts, then the right-hand side, then the
       store. *)
    let indices = List.map (eval env) subs in
    let value = eval env e in
    record env name indices `Write s.sloc;
    Hashtbl.replace env.memory (name, indices) value
  | Ast.Read v ->
    let value = match Hashtbl.find_opt env.inputs v with Some n -> n | None -> 0 in
    Hashtbl.replace env.scalars v value
  | Ast.If (cond, then_, else_) ->
    if eval_cond env cond then List.iter (exec env) then_
    else List.iter (exec env) else_
  | Ast.For { var; lo; hi; step; body; _ } ->
    let lo = eval env lo and hi = eval env hi in
    let step =
      match step with
      | None -> 1
      | Some e -> (
          match eval env e with
          | 0 -> raise (Runtime_error ("loop step is zero", s.sloc))
          | n -> n)
    in
    let iterate value =
      Hashtbl.replace env.scalars var value;
      env.loops <- (var, value) :: env.loops;
      List.iter (exec env) body;
      env.loops <- List.tl env.loops
    in
    let count =
      if step > 0 then if hi < lo then 0 else ((hi - lo) / step) + 1
      else if hi > lo then 0
      else ((lo - hi) / -step) + 1
    in
    (match env.reorder s.sloc count with
     | Some perm ->
       if Array.length perm <> count then
         raise (Runtime_error ("reorder permutation has wrong length", s.sloc));
       Array.iter (fun k -> iterate (lo + (k * step))) perm
     | None ->
       (* Sequential fast path: identical to the pre-hook interpreter. *)
       let v = ref lo in
       while (if step > 0 then !v <= hi else !v >= hi) do
         iterate !v;
         v := !v + step
       done)

let no_reorder _ _ = None

let make_env ?(fuel = -1) ?(reorder = no_reorder) inputs =
  let env =
    {
      scalars = Hashtbl.create 16;
      memory = Hashtbl.create 256;
      inputs = Hashtbl.create 8;
      trace = [];
      clock = 0;
      loops = [];
      fuel;
      reorder;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace env.inputs k v) inputs;
  env

let run ?(fuel = -1) ?(inputs = []) prog =
  let env = make_env ~fuel inputs in
  List.iter (exec env) prog;
  List.rev env.trace

let scalar_value ?(inputs = []) prog name =
  let env = make_env inputs in
  List.iter (exec env) prog;
  Hashtbl.find_opt env.scalars name

type state = {
  scalars : (string * int) list;
  memory : ((string * int list) * int) list;
}

let final_state ?(fuel = -1) ?(inputs = []) ?reorder prog =
  let env = make_env ~fuel ?reorder inputs in
  List.iter (exec env) prog;
  let scalars =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.scalars []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let memory =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.memory []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  ({ scalars; memory }, List.rev env.trace)
