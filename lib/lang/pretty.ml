open Ast

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let relop_str = function
  | Req -> "=="
  | Rne -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let prec_of = function Add | Sub -> 1 | Mul | Div -> 2

(* [ctx] is the precedence required by the context; parenthesize when
   the node binds looser. Sub and Div are left-associative, so their
   right operand needs one level more. *)
let rec pp_prec ctx fmt e =
  match e.desc with
  | Int n ->
    if n < 0 && ctx > 0 then Format.fprintf fmt "(%d)" n
    else Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt v
  | Neg a ->
    if ctx > 3 then Format.fprintf fmt "(-%a)" (pp_prec 4) a
    else Format.fprintf fmt "-%a" (pp_prec 4) a
  | Bin (op, a, b) ->
    let p = prec_of op in
    (* The grammar is left-associative, so a same-precedence right child
       must be parenthesized to re-parse with the same structure. *)
    let rp = p + 1 in
    if ctx > p then
      Format.fprintf fmt "(%a %s %a)" (pp_prec p) a (binop_str op) (pp_prec rp) b
    else
      Format.fprintf fmt "%a %s %a" (pp_prec p) a (binop_str op) (pp_prec rp) b
  | Aref (name, subs) ->
    Format.pp_print_string fmt name;
    List.iter (fun s -> Format.fprintf fmt "[%a]" (pp_prec 0) s) subs

let pp_expr fmt e = pp_prec 0 fmt e

let pp_cond fmt { rel; lhs; rhs } =
  Format.fprintf fmt "%a %s %a" pp_expr lhs (relop_str rel) pp_expr rhs

let pp_lvalue fmt = function
  | Lvar v -> Format.pp_print_string fmt v
  | Larr (name, subs) ->
    Format.pp_print_string fmt name;
    List.iter (fun s -> Format.fprintf fmt "[%a]" pp_expr s) subs

let rec pp_stmt fmt s =
  match s.sdesc with
  | Assign (lv, e) -> Format.fprintf fmt "@[<h>%a = %a@]" pp_lvalue lv pp_expr e
  | Read name -> Format.fprintf fmt "read(%s)" name
  | For { var; lo; hi; step; parallel; body } ->
    Format.fprintf fmt "@[<v 2>%sfor %s = %a to %a%a do@,%a@]@,end"
      (if parallel then "parallel " else "")
      var pp_expr lo pp_expr hi
      (fun fmt -> function
         | None -> ()
         | Some st -> Format.fprintf fmt " step %a" pp_expr st)
      step pp_body body
  | If (cond, then_, []) ->
    Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,end" pp_cond cond pp_body then_
  | If (cond, then_, else_) ->
    Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,@[<v 2>else@,%a@]@,end" pp_cond
      cond pp_body then_ pp_body else_

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt body

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>%a@]" pp_body prog

let program_to_string prog = Format.asprintf "%a@." pp_program prog
let expr_to_string e = Format.asprintf "%a" pp_expr e
