type error = {
  msg : string;
  loc : Loc.t;
}

let pp_error fmt { msg; loc } = Format.fprintf fmt "%a: %s" Loc.pp loc msg

(* Constant-fold an expression with no free variables; [None] when it
   contains a variable or divides by zero. *)
let rec const_value (e : Ast.expr) =
  match e.desc with
  | Ast.Int n -> Some n
  | Ast.Var _ | Ast.Aref _ -> None
  | Ast.Neg a -> Option.map (fun v -> -v) (const_value a)
  | Ast.Bin (op, a, b) -> (
      match (const_value a, const_value b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x + y)
          | Ast.Sub -> Some (x - y)
          | Ast.Mul -> Some (x * y)
          | Ast.Div -> if y = 0 then None else Some (x / y))
      | _ -> None)

let check prog =
  let errors = ref [] in
  let err loc fmt = Format.kasprintf (fun msg -> errors := { msg; loc } :: !errors) fmt in
  (* Array name -> (rank, first-seen loc). *)
  let ranks : (string, int * Loc.t) Hashtbl.t = Hashtbl.create 16 in
  let note_array name rank loc =
    match Hashtbl.find_opt ranks name with
    | None -> Hashtbl.add ranks name (rank, loc)
    | Some (r, first) ->
      if r <> rank then
        err loc "array '%s' used with rank %d but had rank %d at %a" name rank r
          Loc.pp first
  in
  (* Scalars known to have a value: assigned, read, or loop variables. *)
  let defined : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec check_expr loops (e : Ast.expr) =
    match e.desc with
    | Ast.Int _ -> ()
    | Ast.Var v ->
      if not (List.mem v loops || Hashtbl.mem defined v) then
        err e.eloc "scalar '%s' used before being defined" v
    | Ast.Neg a -> check_expr loops a
    | Ast.Bin (_, a, b) ->
      check_expr loops a;
      check_expr loops b
    | Ast.Aref (name, subs) ->
      if subs = [] then err e.eloc "array '%s' referenced with no subscripts" name;
      note_array name (List.length subs) e.eloc;
      List.iter (check_expr loops) subs
  in
  let rec check_stmt loops (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Lvar v, e) ->
      if List.mem v loops then
        err s.sloc "assignment to enclosing loop variable '%s'" v;
      check_expr loops e;
      Hashtbl.replace defined v ()
    | Ast.Assign (Ast.Larr (name, subs), e) ->
      if subs = [] then err s.sloc "array '%s' assigned with no subscripts" name;
      note_array name (List.length subs) s.sloc;
      List.iter (check_expr loops) subs;
      check_expr loops e
    | Ast.Read v ->
      if List.mem v loops then err s.sloc "read into enclosing loop variable '%s'" v;
      Hashtbl.replace defined v ()
    | Ast.If (cond, then_, else_) ->
      check_expr loops cond.lhs;
      check_expr loops cond.rhs;
      List.iter (check_stmt loops) then_;
      List.iter (check_stmt loops) else_
    | Ast.For { var; lo; hi; step; body; _ } ->
      if List.mem var loops then
        err s.sloc "loop variable '%s' shadows an enclosing loop variable" var;
      check_expr loops lo;
      check_expr loops hi;
      (match step with
       | None -> ()
       | Some st -> (
           check_expr loops st;
           match const_value st with
           | Some 0 -> err s.sloc "loop step is zero"
           | Some _ -> ()
           | None -> err s.sloc "loop step must be a non-zero constant"));
      List.iter (check_stmt (var :: loops)) body
  in
  List.iter (check_stmt []) prog;
  List.rev !errors

let check_exn prog =
  match check prog with
  | [] -> ()
  | errs ->
    failwith
      (Format.asprintf "@[<v>%a@]"
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
         errs)
