(** Tokens of the mini-Fortran loop language. *)

type t =
  | INT of int
  | IDENT of string
  | KW_FOR
  | KW_PARALLEL
  | KW_TO
  | KW_STEP
  | KW_DO
  | KW_END
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_READ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | ASSIGN  (** [=] *)
  | EQ      (** [==] *)
  | NE      (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EOF

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
