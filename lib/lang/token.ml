type t =
  | INT of int
  | IDENT of string
  | KW_FOR
  | KW_PARALLEL
  | KW_TO
  | KW_STEP
  | KW_DO
  | KW_END
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_READ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EOF

let equal (a : t) (b : t) = a = b

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_FOR -> "for"
  | KW_PARALLEL -> "parallel"
  | KW_TO -> "to"
  | KW_STEP -> "step"
  | KW_DO -> "do"
  | KW_END -> "end"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_READ -> "read"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | EOF -> "<eof>"

let pp fmt t = Format.pp_print_string fmt (to_string t)
