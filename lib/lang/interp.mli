(** Reference interpreter with memory-access tracing.

    Runs a program and records every array access (reference site,
    concrete indices, enclosing iteration vector, global timestamp).
    The trace is the {e ground truth} the dependence analyzer is tested
    against: two references are dependent exactly when their traced
    accesses overlap in memory. *)

exception Runtime_error of string * Loc.t

type access = {
  array : string;
  indices : int list;
  role : [ `Read | `Write ];
  site : Loc.t;  (** location of the reference, its identity *)
  iter : (string * int) list;  (** enclosing loop variables, outermost first *)
  time : int;  (** global execution order *)
}

val run : ?fuel:int -> ?inputs:(string * int) list -> Ast.program -> access list
(** Executes the program with all memory initially zero. [inputs]
    supplies the values produced by [read] statements (a missing input
    defaults to 0). [fuel] bounds the number of statement executions
    (default: unlimited). Returns the access trace in execution order.
    @raise Runtime_error on division by zero or fuel exhaustion. *)

val scalar_value : ?inputs:(string * int) list -> Ast.program -> string -> int option
(** Runs the program and reports the final value of a scalar, for
    tests. *)

type state = {
  scalars : (string * int) list;  (** sorted by name *)
  memory : ((string * int list) * int) list;
      (** sorted by cell; zero-valued cells that were never written are
          absent *)
}

val final_state :
  ?fuel:int ->
  ?inputs:(string * int) list ->
  ?reorder:(Loc.t -> int -> int array option) ->
  Ast.program ->
  state * access list
(** Runs the program and returns both the final machine state and the
    access trace — the observables that optimizer passes must
    preserve.

    [reorder] is the iteration-order hook the parallelism lint's
    differential check uses: it is called once per dynamic execution of
    each [for] statement with the loop's source location and trip
    count [n], and may return a permutation of [0, n)] to execute in
    place of sequential order (return [None] for sequential). A loop
    whose iterations are independent must produce the same final
    memory under any permutation.
    @raise Runtime_error when a returned permutation's length is not
    the trip count. *)
