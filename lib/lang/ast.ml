type binop =
  | Add
  | Sub
  | Mul
  | Div

type relop =
  | Req
  | Rne
  | Rlt
  | Rle
  | Rgt
  | Rge

type expr = {
  desc : expr_desc;
  eloc : Loc.t;
}

and expr_desc =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Aref of string * expr list

type cond = {
  rel : relop;
  lhs : expr;
  rhs : expr;
}

type lvalue =
  | Lvar of string
  | Larr of string * expr list

type stmt = {
  sdesc : stmt_desc;
  sloc : Loc.t;
}

and stmt_desc =
  | Assign of lvalue * expr
  | For of for_loop
  | If of cond * stmt list * stmt list
  | Read of string

and for_loop = {
  var : string;
  lo : expr;
  hi : expr;
  step : expr option;
  parallel : bool;
  body : stmt list;
}

type program = stmt list

let int_ ?(loc = Loc.dummy) n = { desc = Int n; eloc = loc }
let var ?(loc = Loc.dummy) s = { desc = Var s; eloc = loc }
let bin ?(loc = Loc.dummy) op a b = { desc = Bin (op, a, b); eloc = loc }
(* Fold negated literals so that "-11" has a single representation:
   the parser and printer would otherwise disagree on Neg (Int 11)
   versus Int (-11). *)
let neg ?(loc = Loc.dummy) e =
  match e.desc with
  | Int n -> { desc = Int (-n); eloc = loc }
  | Var _ | Bin _ | Neg _ | Aref _ -> { desc = Neg e; eloc = loc }
let aref ?(loc = Loc.dummy) name subs = { desc = Aref (name, subs); eloc = loc }
let assign ?(loc = Loc.dummy) lv e = { sdesc = Assign (lv, e); sloc = loc }

let for_ ?(loc = Loc.dummy) ?step ?(parallel = false) var lo hi body =
  { sdesc = For { var; lo; hi; step; parallel; body }; sloc = loc }

let if_ ?(loc = Loc.dummy) cond then_ else_ =
  { sdesc = If (cond, then_, else_); sloc = loc }

let read ?(loc = Loc.dummy) name = { sdesc = Read name; sloc = loc }

let rec iter_stmt f s =
  f s;
  match s.sdesc with
  | Assign _ | Read _ -> ()
  | For { body; _ } -> List.iter (iter_stmt f) body
  | If (_, t, e) ->
    List.iter (iter_stmt f) t;
    List.iter (iter_stmt f) e

let iter_stmts f prog = List.iter (iter_stmt f) prog

let fold_exprs f acc prog =
  let acc = ref acc in
  let stmt_exprs s =
    match s.sdesc with
    | Assign (Lvar _, e) -> [ e ]
    | Assign (Larr (_, subs), e) -> subs @ [ e ]
    | For { lo; hi; step; _ } -> (
        match step with None -> [ lo; hi ] | Some st -> [ lo; hi; st ])
    | If ({ lhs; rhs; _ }, _, _) -> [ lhs; rhs ]
    | Read _ -> []
  in
  iter_stmts (fun s -> List.iter (fun e -> acc := f !acc e) (stmt_exprs s)) prog;
  !acc

let expr_vars e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go e =
    match e.desc with
    | Int _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end
    | Bin (_, a, b) ->
      go a;
      go b
    | Neg a -> go a
    | Aref (_, subs) -> List.iter go subs
  in
  go e;
  List.rev !out

let array_refs prog =
  let out = ref [] in
  let rec expr_refs role e =
    match e.desc with
    | Int _ | Var _ -> ()
    | Bin (_, a, b) ->
      expr_refs role a;
      expr_refs role b
    | Neg a -> expr_refs role a
    | Aref (name, subs) ->
      out := (name, subs, role, e.eloc) :: !out;
      (* Subscripts of a reference are themselves reads. *)
      List.iter (expr_refs `Read) subs
  in
  iter_stmts
    (fun s ->
       match s.sdesc with
       | Assign (Lvar _, e) -> expr_refs `Read e
       | Assign (Larr (name, subs), e) ->
         out := (name, subs, `Write, s.sloc) :: !out;
         List.iter (expr_refs `Read) subs;
         expr_refs `Read e
       | For { lo; hi; step; _ } ->
         expr_refs `Read lo;
         expr_refs `Read hi;
         Option.iter (expr_refs `Read) step
       | If ({ lhs; rhs; _ }, _, _) ->
         expr_refs `Read lhs;
         expr_refs `Read rhs
       | Read _ -> ())
    prog;
  List.rev !out

let rec equal_expr a b =
  match (a.desc, b.desc) with
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Bin (op1, a1, b1), Bin (op2, a2, b2) ->
    op1 = op2 && equal_expr a1 a2 && equal_expr b1 b2
  | Neg x, Neg y -> equal_expr x y
  | Aref (n1, s1), Aref (n2, s2) ->
    String.equal n1 n2
    && List.length s1 = List.length s2
    && List.for_all2 equal_expr s1 s2
  | (Int _ | Var _ | Bin _ | Neg _ | Aref _), _ -> false

let equal_cond c1 c2 =
  c1.rel = c2.rel && equal_expr c1.lhs c2.lhs && equal_expr c1.rhs c2.rhs

let equal_lvalue l1 l2 =
  match (l1, l2) with
  | Lvar a, Lvar b -> String.equal a b
  | Larr (n1, s1), Larr (n2, s2) ->
    String.equal n1 n2
    && List.length s1 = List.length s2
    && List.for_all2 equal_expr s1 s2
  | (Lvar _ | Larr _), _ -> false

let rec equal_stmt s1 s2 =
  match (s1.sdesc, s2.sdesc) with
  | Assign (l1, e1), Assign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | For f1, For f2 ->
    String.equal f1.var f2.var && equal_expr f1.lo f2.lo
    && equal_expr f1.hi f2.hi
    && Option.equal equal_expr f1.step f2.step
    && Bool.equal f1.parallel f2.parallel
    && equal_program f1.body f2.body
  | If (c1, t1, e1), If (c2, t2, e2) ->
    equal_cond c1 c2 && equal_program t1 t2 && equal_program e1 e2
  | Read a, Read b -> String.equal a b
  | (Assign _ | For _ | If _ | Read _), _ -> false

and equal_program p1 p2 =
  List.length p1 = List.length p2 && List.for_all2 equal_stmt p1 p2
