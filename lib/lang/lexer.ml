exception Error of string * Loc.t

let keyword = function
  | "for" -> Some Token.KW_FOR
  | "parallel" -> Some Token.KW_PARALLEL
  | "to" -> Some Token.KW_TO
  | "step" -> Some Token.KW_STEP
  | "do" -> Some Token.KW_DO
  (* "end for" / "end if" would be ambiguous with "end" followed by a
     new loop, so the suffixed closers are single keywords. *)
  | "end" | "endfor" | "endif" -> Some Token.KW_END
  | "if" -> Some Token.KW_IF
  | "then" -> Some Token.KW_THEN
  | "else" -> Some Token.KW_ELSE
  | "read" -> Some Token.KW_READ
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let here st = Loc.make ~line:st.line ~col:st.col

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Token.INT n
  | None -> raise (Error (Printf.sprintf "integer literal out of range: %s" text, here st))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_alnum c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match keyword text with Some kw -> kw | None -> Token.IDENT text

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit tok loc = toks := (tok, loc) :: !toks in
  let rec skip_comment () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
      advance st;
      skip_comment ()
  in
  (* Lex an operator that may be followed by '=' (e.g. "<" / "<=").
     [single_tok = None] means the bare character is not a token. *)
  let two_char_op loc c1 double_tok single_tok =
    advance st;
    match peek st with
    | Some '=' ->
      advance st;
      emit double_tok loc
    | _ -> (
        match single_tok with
        | Some t -> emit t loc
        | None -> raise (Error (Printf.sprintf "expected '=' after '%c'" c1, loc)))
  in
  let continue_lexing = ref true in
  while !continue_lexing do
    let loc = here st in
    match peek st with
    | None ->
      emit Token.EOF loc;
      continue_lexing := false
    | Some c -> (
        match c with
        | ' ' | '\t' | '\r' | '\n' -> advance st
        | '#' -> skip_comment ()
        | '0' .. '9' -> emit (lex_number st) loc
        | c when is_alpha c -> emit (lex_ident st) loc
        | '+' -> advance st; emit Token.PLUS loc
        | '-' -> advance st; emit Token.MINUS loc
        | '*' -> advance st; emit Token.STAR loc
        | '/' -> advance st; emit Token.SLASH loc
        | '(' -> advance st; emit Token.LPAREN loc
        | ')' -> advance st; emit Token.RPAREN loc
        | '[' -> advance st; emit Token.LBRACKET loc
        | ']' -> advance st; emit Token.RBRACKET loc
        | ',' -> advance st; emit Token.COMMA loc
        | '=' -> two_char_op loc '=' Token.EQ (Some Token.ASSIGN)
        | '<' -> two_char_op loc '<' Token.LE (Some Token.LT)
        | '>' -> two_char_op loc '>' Token.GE (Some Token.GT)
        | '!' -> two_char_op loc '!' Token.NE None
        | c -> raise (Error (Printf.sprintf "unexpected character '%c'" c, loc)))
  done;
  List.rev !toks
