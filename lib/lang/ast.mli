(** Abstract syntax of the mini-Fortran loop language.

    The language covers exactly the program class the paper analyzes:
    nested trapezoidal [for] loops over integer variables, assignments
    whose left- and right-hand sides reference multi-dimensional arrays,
    scalar temporaries, [read] statements introducing symbolic unknowns,
    and (for realism) two-way conditionals. Subscripts and bounds are
    arbitrary integer expressions; the optimizer passes ({!Dda_passes})
    reduce them to affine form where possible. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncating integer division *)

type relop =
  | Req  (** [==] *)
  | Rne  (** [!=] *)
  | Rlt
  | Rle
  | Rgt
  | Rge

type expr = {
  desc : expr_desc;
  eloc : Loc.t;
}

and expr_desc =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Aref of string * expr list
      (** Array element used as a value: [a[i][j]]. The reference's
          identity is its [eloc]. *)

type cond = {
  rel : relop;
  lhs : expr;
  rhs : expr;
}

type lvalue =
  | Lvar of string
  | Larr of string * expr list

type stmt = {
  sdesc : stmt_desc;
  sloc : Loc.t;
}

and stmt_desc =
  | Assign of lvalue * expr
  | For of for_loop
  | If of cond * stmt list * stmt list
  | Read of string  (** [read(n)]: [n] becomes a symbolic unknown *)

and for_loop = {
  var : string;
  lo : expr;
  hi : expr;
  step : expr option;  (** [None] means step 1 *)
  parallel : bool;
      (** the loop carries a [parallel] annotation — an assertion
          (checked by the lint layer, not the front end) that its
          iterations are independent *)
  body : stmt list;
}

type program = stmt list

(** {1 Constructors} *)

val int_ : ?loc:Loc.t -> int -> expr
val var : ?loc:Loc.t -> string -> expr
val bin : ?loc:Loc.t -> binop -> expr -> expr -> expr
val neg : ?loc:Loc.t -> expr -> expr
val aref : ?loc:Loc.t -> string -> expr list -> expr
val assign : ?loc:Loc.t -> lvalue -> expr -> stmt
val for_ :
  ?loc:Loc.t -> ?step:expr -> ?parallel:bool -> string -> expr -> expr ->
  stmt list -> stmt
val if_ : ?loc:Loc.t -> cond -> stmt list -> stmt list -> stmt
val read : ?loc:Loc.t -> string -> stmt

(** {1 Traversal and queries} *)

val fold_exprs : ('a -> expr -> 'a) -> 'a -> program -> 'a
(** Folds over every top-level expression of every statement (subscript
    lists, bounds, right-hand sides, conditions), pre-order within each
    expression. *)

val iter_stmts : (stmt -> unit) -> program -> unit
(** Visits every statement, outermost first. *)

val expr_vars : expr -> string list
(** Free scalar variables of an expression (array names excluded),
    without duplicates, in first-occurrence order. *)

val array_refs : program -> (string * expr list * [ `Read | `Write ] * Loc.t) list
(** Every array reference site in the program: name, subscripts,
    read/write role, and the site's location. *)

val equal_expr : expr -> expr -> bool
(** Structural equality ignoring locations. *)

val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool
