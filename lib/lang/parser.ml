exception Error of string * Loc.t

type state = {
  mutable toks : (Token.t * Loc.t) list;
}

let peek st =
  match st.toks with
  | [] -> (Token.EOF, Loc.dummy)
  | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let tok, loc = peek st in
  raise (Error (Printf.sprintf "%s (found '%s')" msg (Token.to_string tok), loc))

let expect st tok what =
  let t, _ = peek st in
  if Token.equal t tok then advance st else fail st (Printf.sprintf "expected %s" what)

let expect_ident st what =
  match peek st with
  | Token.IDENT name, _ ->
    advance st;
    name
  | _ -> fail st (Printf.sprintf "expected %s" what)

(* expr ::= term (("+" | "-") term)* *)
let rec parse_expr_p st =
  let rec loop acc =
    match peek st with
    | Token.PLUS, loc ->
      advance st;
      loop (Ast.bin ~loc Ast.Add acc (parse_term st))
    | Token.MINUS, loc ->
      advance st;
      loop (Ast.bin ~loc Ast.Sub acc (parse_term st))
    | _ -> acc
  in
  loop (parse_term st)

and parse_term st =
  let rec loop acc =
    match peek st with
    | Token.STAR, loc ->
      advance st;
      loop (Ast.bin ~loc Ast.Mul acc (parse_factor st))
    | Token.SLASH, loc ->
      advance st;
      loop (Ast.bin ~loc Ast.Div acc (parse_factor st))
    | _ -> acc
  in
  loop (parse_factor st)

and parse_factor st =
  match peek st with
  | Token.MINUS, loc ->
    advance st;
    Ast.neg ~loc (parse_factor st)
  | Token.INT n, loc ->
    advance st;
    Ast.int_ ~loc n
  | Token.LPAREN, _ ->
    advance st;
    let e = parse_expr_p st in
    expect st Token.RPAREN "')'";
    e
  | Token.IDENT name, loc ->
    advance st;
    let subs = parse_subscripts st in
    if subs = [] then Ast.var ~loc name else Ast.aref ~loc name subs
  | _ -> fail st "expected an expression"

and parse_subscripts st =
  match peek st with
  | Token.LBRACKET, _ ->
    advance st;
    let e = parse_expr_p st in
    expect st Token.RBRACKET "']'";
    e :: parse_subscripts st
  | _ -> []

let parse_relop st =
  match peek st with
  | Token.EQ, _ -> advance st; Ast.Req
  | Token.NE, _ -> advance st; Ast.Rne
  | Token.LT, _ -> advance st; Ast.Rlt
  | Token.LE, _ -> advance st; Ast.Rle
  | Token.GT, _ -> advance st; Ast.Rgt
  | Token.GE, _ -> advance st; Ast.Rge
  | _ -> fail st "expected a relational operator"

let parse_cond st =
  let lhs = parse_expr_p st in
  let rel = parse_relop st in
  let rhs = parse_expr_p st in
  { Ast.rel; lhs; rhs }

let rec parse_stmt st =
  match peek st with
  | Token.KW_PARALLEL, loc ->
    advance st;
    expect st Token.KW_FOR "'for' after 'parallel'";
    parse_for st ~loc ~parallel:true
  | Token.KW_FOR, loc ->
    advance st;
    parse_for st ~loc ~parallel:false
  | Token.KW_IF, loc ->
    advance st;
    let cond = parse_cond st in
    expect st Token.KW_THEN "'then'";
    let then_ = parse_stmts st in
    let else_ =
      match peek st with
      | Token.KW_ELSE, _ ->
        advance st;
        parse_stmts st
      | _ -> []
    in
    expect st Token.KW_END "'end'";
    Ast.if_ ~loc cond then_ else_
  | Token.KW_READ, loc ->
    advance st;
    expect st Token.LPAREN "'('";
    let name = expect_ident st "a variable name" in
    expect st Token.RPAREN "')'";
    Ast.read ~loc name
  | Token.IDENT name, loc ->
    advance st;
    let subs = parse_subscripts st in
    expect st Token.ASSIGN "'='";
    let rhs = parse_expr_p st in
    let lv = if subs = [] then Ast.Lvar name else Ast.Larr (name, subs) in
    Ast.assign ~loc lv rhs
  | _ -> fail st "expected a statement"

and parse_for st ~loc ~parallel =
  let var = expect_ident st "a loop variable" in
  expect st Token.ASSIGN "'='";
  let lo = parse_expr_p st in
  expect st Token.KW_TO "'to'";
  let hi = parse_expr_p st in
  let step =
    match peek st with
    | Token.KW_STEP, _ ->
      advance st;
      Some (parse_expr_p st)
    | _ -> None
  in
  expect st Token.KW_DO "'do'";
  let body = parse_stmts st in
  expect st Token.KW_END "'end'";
  Ast.for_ ~loc ?step ~parallel var lo hi body

and parse_stmts st =
  match peek st with
  | (Token.KW_END | Token.KW_ELSE | Token.EOF), _ -> []
  | _ ->
    let s = parse_stmt st in
    s :: parse_stmts st

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let prog = parse_stmts st in
  (match peek st with
   | Token.EOF, _ -> ()
   | _ -> fail st "expected end of input");
  prog

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_p st in
  (match peek st with
   | Token.EOF, _ -> ()
   | _ -> fail st "expected end of input");
  e
