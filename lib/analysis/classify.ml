open Dda_core

type edge = {
  pair : Analyzer.pair_report;
  kind : Analyzer.dep_kind;
  vector : Direction.dir array option;
  carried_lids : int list;
  loop_independent : bool;
  exact : bool;
}

let kind_name = function
  | Analyzer.Flow -> "flow"
  | Analyzer.Anti -> "anti"
  | Analyzer.Output -> "output"
  | Analyzer.Input -> "input"

(* A conservative verdict has no instance ordering; classify by
   textual order, as {!Analyzer.vector_kind} does for an ambiguous
   leading "*". *)
let textual_kind (r : Analyzer.pair_report) =
  match (r.role1, r.role2) with
  | `Write, `Write -> Analyzer.Output
  | `Write, `Read -> Analyzer.Flow
  | `Read, `Write -> Analyzer.Anti
  | `Read, `Read -> Analyzer.Input

let conservative_edge (r : Analyzer.pair_report) =
  {
    pair = r;
    kind = textual_kind r;
    vector = None;
    carried_lids = r.common_ids;
    loop_independent = true;
    exact = false;
  }

let vector_edge (r : Analyzer.pair_report) ~exact v =
  let carried_lids =
    List.filteri (fun k _ -> Analyzer.vector_carries_at v k) r.common_ids
  in
  let loop_independent =
    Array.for_all
      (function Direction.Deq | Direction.Dany -> true
              | Direction.Dlt | Direction.Dgt -> false)
      v
  in
  { pair = r; kind = Analyzer.vector_kind r v; vector = Some v;
    carried_lids; loop_independent; exact }

let edges (report : Analyzer.report) =
  List.concat_map
    (fun (r : Analyzer.pair_report) ->
       match r.outcome with
       | Analyzer.Constant false | Analyzer.Gcd_independent -> []
       | Analyzer.Constant true | Analyzer.Assumed_dependent ->
         [ conservative_edge r ]
       | Analyzer.Tested t when not t.dependent -> []
       | Analyzer.Tested t ->
         if t.directions = [] then [ conservative_edge r ]
         else
           let exact = Option.is_none t.degraded in
           List.map (vector_edge r ~exact) t.directions)
    report.pair_reports
