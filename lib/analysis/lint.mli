(** The parallelism linter: run the full analysis pipeline, summarize
    every loop's parallelizability, and check [parallel] source
    annotations against the dependence evidence.

    Findings reuse {!Dda_check.Verify}'s source-located diagnostic
    shape:

    - [parallel-race] ({e error}): a [parallel]-annotated loop has an
      exactly-established carried dependence (array edge with a
      certified direction vector, or a scalar written and read across
      iterations) — running it in parallel races.
    - [parallel-unproven] ({e warning}): only conservative or
      budget-degraded evidence blocks the annotated loop; the analysis
      cannot certify the annotation, but has not proven a race either.

    Exit-code policy (applied by the CLI): errors mean findings
    (exit 2); warnings alone are clean (exit 0) — so a run degraded by
    tight [--budget-*] limits degrades to warnings rather than
    fabricating races. *)

open Dda_lang
open Dda_core
open Dda_check

type result = {
  prepared : Ast.program;  (** the program the summary's loops refer to *)
  sites : Affine.site list;
  report : Analyzer.report;
  summary : Summary.t;
  findings : Verify.diagnostic list;  (** loop order *)
  errors : int;
  warnings : int;
}

val run :
  ?config:Analyzer.config -> ?cancel:(unit -> bool) -> Ast.program -> result
(** Pipeline prepass (per [config.run_pipeline]), affine extraction,
    pair analysis, {!Summary.compute}, annotation checking. Also bumps
    the [lint.*] counters in the {!Dda_obs.Metrics} registry — once
    per call, a pure function of the input, so batch metrics stay
    jobs-invariant. *)

val of_report :
  ?config:Analyzer.config ->
  ?cancel:(unit -> bool) ->
  prepared:Ast.program ->
  sites:Affine.site list ->
  Analyzer.report ->
  result
(** Lint a report that was already produced elsewhere (the batch and
    streaming engines, which have their own analysis loop): [prepared]
    and [sites] must be the pipeline output and affine extraction the
    report was computed from, so the report's pair order matches the
    analyzer's own enumeration ({!Analyzer.site_pairs}). Metrics are
    bumped exactly as in {!run}. *)

val to_text : file:string -> result -> string
(** Per-loop verdict lines, findings as
    [file:line:col: severity: [code] message], and a one-line
    summary. *)

val to_json : file:string -> result -> Json_out.t

val to_sarif : file:string -> result -> Json_out.t
(** SARIF 2.1.0: one run, driver [ddtest-lint], rules
    [parallel-race] and [parallel-unproven], one result per
    finding. *)
