open Dda_lang
open Dda_core
open Dda_check
module Metrics = Dda_obs.Metrics

type result = {
  prepared : Ast.program;
  sites : Affine.site list;
  report : Analyzer.report;
  summary : Summary.t;
  findings : Verify.diagnostic list;
  errors : int;
  warnings : int;
}

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let c_flow = Metrics.counter "lint.deps.flow"
let c_anti = Metrics.counter "lint.deps.anti"
let c_output = Metrics.counter "lint.deps.output"
let c_input = Metrics.counter "lint.deps.input"
let c_doall = Metrics.counter "lint.loops.doall"
let c_vectorizable = Metrics.counter "lint.loops.vectorizable"
let c_reduction = Metrics.counter "lint.loops.reduction"
let c_serial = Metrics.counter "lint.loops.serial"
let c_races = Metrics.counter "lint.findings.races"
let c_unproven = Metrics.counter "lint.findings.unproven"

let record_metrics summary ~errors ~warnings =
  List.iter
    (fun (e : Classify.edge) ->
       Metrics.incr
         (match e.kind with
          | Analyzer.Flow -> c_flow
          | Analyzer.Anti -> c_anti
          | Analyzer.Output -> c_output
          | Analyzer.Input -> c_input))
    summary.Summary.edges;
  List.iter
    (fun (li : Summary.loop_info) ->
       Metrics.incr
         (match li.verdict with
          | Summary.Doall -> c_doall
          | Summary.Vectorizable -> c_vectorizable
          | Summary.Reduction -> c_reduction
          | Summary.Serial -> c_serial))
    summary.Summary.loops;
  Metrics.add c_races errors;
  Metrics.add c_unproven warnings

(* ------------------------------------------------------------------ *)
(* Annotation checking                                                 *)
(* ------------------------------------------------------------------ *)

let vector_string v = Format.asprintf "%a" Direction.pp_vector v

let iter_string iters =
  Printf.sprintf "(%s)"
    (String.concat ","
       (Array.to_list (Array.map Dda_numeric.Zint.to_string iters)))

let edge_evidence (b : Summary.blocking) =
  let e = b.edge in
  let vec =
    match e.vector with
    | Some v -> Printf.sprintf " %s" (vector_string v)
    | None -> " (conservative)"
  in
  let wit =
    match b.witness with
    | Some w ->
      Printf.sprintf "; witness iterations %s and %s" (iter_string w.iter1)
        (iter_string w.iter2)
    | None -> ""
  in
  Printf.sprintf "carried %s dependence on array '%s'%s%s"
    (Classify.kind_name e.kind) e.pair.array_name vec wit

(* One finding per annotated non-DOALL loop: an error when some exact
   evidence establishes a race, else a warning that the annotation is
   unproven. *)
let check_annotations (summary : Summary.t) =
  let findings = ref [] in
  let emit severity ~loc ~loc2 ~array_name ~code message =
    findings :=
      { Verify.severity; loc; loc2; array_name; code; message } :: !findings
  in
  List.iter
    (fun (li : Summary.loop_info) ->
       if li.parallel_annot && li.verdict <> Summary.Doall then begin
         let exact_edges =
           List.filter (fun (b : Summary.blocking) -> b.edge.exact) li.blocking
         in
         let extra n =
           if n <= 0 then ""
           else Printf.sprintf " (and %d more blocking dependence%s)" n
               (if n = 1 then "" else "s")
         in
         match (exact_edges, li.scalar_blockers) with
         | b :: _, _ ->
           emit Verify.Sev_error ~loc:li.loc ~loc2:(Some b.edge.pair.loc1)
             ~array_name:(Some b.edge.pair.array_name) ~code:"parallel-race"
             (Printf.sprintf "parallel loop '%s' races: %s%s" li.var
                (edge_evidence b)
                (extra
                   (List.length li.blocking - 1
                    + List.length li.scalar_blockers)))
         | [], s :: _ ->
           emit Verify.Sev_error ~loc:li.loc ~loc2:None ~array_name:None
             ~code:"parallel-race"
             (Printf.sprintf
                "parallel loop '%s' races: scalar '%s' is written and read \
                 across iterations%s"
                li.var s
                (extra
                   (List.length li.blocking
                    + List.length li.scalar_blockers - 1)))
         | [], [] ->
           let b = List.hd li.blocking in
           emit Verify.Sev_warning ~loc:li.loc ~loc2:(Some b.edge.pair.loc1)
             ~array_name:(Some b.edge.pair.array_name)
             ~code:"parallel-unproven"
             (Printf.sprintf
                "parallel loop '%s' cannot be certified: %s blocks it only \
                 conservatively%s"
                li.var (edge_evidence b)
                (extra (List.length li.blocking - 1)))
       end)
    summary.loops;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let of_report ?(config = Analyzer.default_config) ?cancel ~prepared ~sites
    report =
  let pairs = Analyzer.site_pairs config sites in
  let summary = Summary.compute ~config ?cancel ~prepared ~pairs report in
  let findings = check_annotations summary in
  let errors =
    List.length
      (List.filter (fun d -> d.Verify.severity = Verify.Sev_error) findings)
  in
  let warnings = List.length findings - errors in
  record_metrics summary ~errors ~warnings;
  { prepared; sites; report; summary; findings; errors; warnings }

let run ?(config = Analyzer.default_config) ?cancel prog =
  let prepared =
    if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run prog else prog
  in
  let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
  let pairs = Analyzer.site_pairs config sites in
  let report = Analyzer.analyze_sites ~config ?cancel pairs in
  of_report ~config ?cancel ~prepared ~sites report

(* ------------------------------------------------------------------ *)
(* Text                                                                *)
(* ------------------------------------------------------------------ *)

let loop_line (li : Summary.loop_info) =
  let blockers =
    if li.blocking = [] && li.scalar_blockers = [] then ""
    else
      let arrays =
        List.sort_uniq String.compare
          (List.map
             (fun (b : Summary.blocking) -> b.edge.pair.array_name)
             li.blocking)
      in
      let parts =
        (if arrays = [] then []
         else
           [ Printf.sprintf "%d carried edge%s on %s"
               (List.length li.blocking)
               (if List.length li.blocking = 1 then "" else "s")
               (String.concat ", " (List.map (Printf.sprintf "'%s'") arrays));
           ])
        @
        if li.scalar_blockers = [] then []
        else
          [ Printf.sprintf "scalar%s %s"
              (if List.length li.scalar_blockers = 1 then "" else "s")
              (String.concat ", "
                 (List.map (Printf.sprintf "'%s'") li.scalar_blockers));
          ]
      in
      Printf.sprintf " — %s" (String.concat "; " parts)
  in
  Printf.sprintf "  loop %s (L%d, depth %d) at %s: %s%s%s%s" li.var li.lid
    li.depth (Loc.to_string li.loc)
    (Summary.verdict_name li.verdict)
    (if li.parallel_annot then " [annotated parallel]" else "")
    (if li.degraded then " [degraded evidence]" else "")
    blockers

let counts summary =
  List.fold_left
    (fun (d, v, r, s) (li : Summary.loop_info) ->
       match li.verdict with
       | Summary.Doall -> (d + 1, v, r, s)
       | Summary.Vectorizable -> (d, v + 1, r, s)
       | Summary.Reduction -> (d, v, r + 1, s)
       | Summary.Serial -> (d, v, r, s + 1))
    (0, 0, 0, 0) summary.Summary.loops

let to_text ~file res =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s: parallelism summary\n" file);
  List.iter
    (fun li -> Buffer.add_string buf (loop_line li ^ "\n"))
    res.summary.Summary.loops;
  List.iter
    (fun d ->
       Buffer.add_string buf
         (Format.asprintf "%a@." (Verify.pp_diagnostic ~file) d))
    res.findings;
  let d, v, r, s = counts res.summary in
  Buffer.add_string buf
    (Printf.sprintf
       "lint: %d loops: %d doall, %d vectorizable, %d reduction, %d serial; \
        %d errors, %d warnings\n"
       (List.length res.summary.Summary.loops)
       d v r s res.errors res.warnings);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let loc_fields prefix (l : Loc.t) =
  [
    (prefix ^ "line", Json_out.Int l.Loc.line);
    (prefix ^ "col", Json_out.Int l.Loc.col);
  ]

let blocking_json (b : Summary.blocking) =
  let e = b.edge in
  Json_out.Obj
    ([
       ("array", Json_out.Str e.pair.array_name);
       ("kind", Json_out.Str (Classify.kind_name e.kind));
       ("exact", Json_out.Bool e.exact);
     ]
     @ (match e.vector with
        | Some v -> [ ("vector", Json_out.Str (vector_string v)) ]
        | None -> [])
     @ loc_fields "" e.pair.loc1
     @ loc_fields "2" e.pair.loc2
     @
     match b.witness with
     | Some w ->
       let ints a =
         Json_out.List
           (List.map
              (fun z -> Json_out.Str (Dda_numeric.Zint.to_string z))
              (Array.to_list a))
       in
       [ ("witness", Json_out.Obj [ ("iter1", ints w.iter1);
                                    ("iter2", ints w.iter2) ]) ]
     | None -> [])

let loop_json (li : Summary.loop_info) =
  Json_out.Obj
    ([
       ("lid", Json_out.Int li.lid);
       ("var", Json_out.Str li.var);
     ]
     @ loc_fields "" li.loc
     @ [
       ("depth", Json_out.Int li.depth);
       ("parallel_annot", Json_out.Bool li.parallel_annot);
       ("verdict", Json_out.Str (Summary.verdict_name li.verdict));
       ("degraded", Json_out.Bool li.degraded);
       ("blocking", Json_out.List (List.map blocking_json li.blocking));
       ("scalar_blockers",
        Json_out.List
          (List.map (fun s -> Json_out.Str s) li.scalar_blockers));
     ])

let edge_counts (edges : Classify.edge list) =
  let count k =
    List.length (List.filter (fun (e : Classify.edge) -> e.kind = k) edges)
  in
  Json_out.Obj
    [
      ("flow", Json_out.Int (count Analyzer.Flow));
      ("anti", Json_out.Int (count Analyzer.Anti));
      ("output", Json_out.Int (count Analyzer.Output));
      ("input", Json_out.Int (count Analyzer.Input));
    ]

let to_json ~file res =
  let d, v, r, s = counts res.summary in
  Json_out.Obj
    [
      ("file", Json_out.Str file);
      ("loops",
       Json_out.List (List.map loop_json res.summary.Summary.loops));
      ("edges", edge_counts res.summary.Summary.edges);
      ("verdicts",
       Json_out.Obj
         [
           ("doall", Json_out.Int d);
           ("vectorizable", Json_out.Int v);
           ("reduction", Json_out.Int r);
           ("serial", Json_out.Int s);
         ]);
      ("findings", Json_out.List (List.map Verify.diagnostic_json res.findings));
      ("errors", Json_out.Int res.errors);
      ("warnings", Json_out.Int res.warnings);
    ]

(* ------------------------------------------------------------------ *)
(* SARIF                                                               *)
(* ------------------------------------------------------------------ *)

let sarif_rule id desc =
  Json_out.Obj
    [
      ("id", Json_out.Str id);
      ("shortDescription", Json_out.Obj [ ("text", Json_out.Str desc) ]);
    ]

let sarif_location ~file (l : Loc.t) =
  Json_out.Obj
    [
      ("physicalLocation",
       Json_out.Obj
         [
           ("artifactLocation", Json_out.Obj [ ("uri", Json_out.Str file) ]);
           ("region",
            Json_out.Obj
              [
                ("startLine", Json_out.Int l.Loc.line);
                ("startColumn", Json_out.Int l.Loc.col);
              ]);
         ]);
    ]

let sarif_result ~file (d : Verify.diagnostic) =
  Json_out.Obj
    ([
       ("ruleId", Json_out.Str d.code);
       ("level",
        Json_out.Str
          (match d.severity with
           | Verify.Sev_error -> "error"
           | Verify.Sev_warning -> "warning"));
       ("message", Json_out.Obj [ ("text", Json_out.Str d.message) ]);
       ("locations", Json_out.List [ sarif_location ~file d.loc ]);
     ]
     @
     match d.loc2 with
     | Some l ->
       [ ("relatedLocations", Json_out.List [ sarif_location ~file l ]) ]
     | None -> [])

let to_sarif ~file res =
  Json_out.Obj
    [
      ("version", Json_out.Str "2.1.0");
      ("$schema",
       Json_out.Str
         "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
          Schemata/sarif-schema-2.1.0.json");
      ("runs",
       Json_out.List
         [
           Json_out.Obj
             [
               ("tool",
                Json_out.Obj
                  [
                    ("driver",
                     Json_out.Obj
                       [
                         ("name", Json_out.Str "ddtest-lint");
                         ("rules",
                          Json_out.List
                            [
                              sarif_rule "parallel-race"
                                "a parallel-annotated loop has an exactly \
                                 established carried dependence";
                              sarif_rule "parallel-unproven"
                                "a parallel annotation is blocked only by \
                                 conservative or degraded evidence";
                            ]);
                       ]);
                  ]);
               ("results",
                Json_out.List
                  (List.map (sarif_result ~file) res.findings));
             ];
         ]);
    ]
