open Dda_lang
module SS = Set.Make (String)

(* Scalars whose final value is legitimately order-dependent when the
   loop's iterations are permuted: the loop variable and everything
   the body may assign (inner loop variables included — Fortran
   semantics keep their last executed value). *)
let order_dependent (f : Ast.for_loop) =
  let w = ref (SS.singleton f.var) in
  Ast.iter_stmts
    (fun s ->
       match s.sdesc with
       | Ast.Assign (Ast.Lvar v, _) | Ast.Read v -> w := SS.add v !w
       | Ast.For { var; _ } -> w := SS.add var !w
       | Ast.Assign (Ast.Larr _, _) | Ast.If _ -> ())
    f.body;
  !w

let find_loop loc prog =
  let found = ref None in
  Ast.iter_stmts
    (fun s ->
       match s.sdesc with
       | Ast.For f when Option.is_none !found && Loc.equal s.sloc loc ->
         found := Some f
       | _ -> ())
    prog;
  !found

(* A small deterministic LCG-driven Fisher-Yates — enough entropy for
   differential testing, no dependency on a PRNG module. *)
let next state =
  state := ((!state * 0x5DEECE66D) + 0xB) land max_int;
  !state

let shuffle ~state n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = next state mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let default_inputs = [ ("n", 6) ]

let check ?(permutations = 4) ?(fuel = 200_000) ?(inputs = default_inputs)
    ~prepared (summary : Summary.t) =
  match Interp.final_state ~fuel ~inputs prepared with
  | exception Interp.Runtime_error _ -> Ok 0 (* nothing to validate *)
  | base, _ ->
    let doall =
      List.filter
        (fun (li : Summary.loop_info) -> li.verdict = Summary.Doall)
        summary.Summary.loops
    in
    let check_loop acc (li : Summary.loop_info) =
      match find_loop li.loc prepared with
      | None -> Ok acc (* loop not found by location: skip *)
      | Some f ->
        let excluded = order_dependent f in
        let comparable (st : Interp.state) =
          List.filter (fun (name, _) -> not (SS.mem name excluded)) st.scalars
        in
        let base_scalars = comparable base in
        let rec perms acc k =
          if k >= permutations then Ok acc
          else begin
            let state =
              ref (0x9E3779B9 lxor (li.lid * 0x85EBCA6B) lxor (k * 0xC2B2AE35))
            in
            let reorder loc n =
              if Loc.equal loc li.loc && n > 1 then
                Some
                  (if k = 0 then Array.init n (fun i -> n - 1 - i)
                   else shuffle ~state n)
              else None
            in
            match Interp.final_state ~fuel ~inputs ~reorder prepared with
            | exception Interp.Runtime_error (msg, _) ->
              Error
                (Printf.sprintf
                   "doall loop '%s' at %s: permuted run %d raised: %s" li.var
                   (Loc.to_string li.loc) k msg)
            | st, _ ->
              if st.Interp.memory = base.Interp.memory
                 && comparable st = base_scalars
              then perms (acc + 1) (k + 1)
              else
                Error
                  (Printf.sprintf
                     "doall loop '%s' at %s: permutation %d changed the \
                      final state — the loop is not independent"
                     li.var (Loc.to_string li.loc) k)
          end
        in
        perms acc 0
    in
    List.fold_left
      (fun acc li -> match acc with Error _ -> acc | Ok n -> check_loop n li)
      (Ok 0) doall
