(** Differential validation of DOALL verdicts: execute each
    DOALL-marked loop under permuted iteration order (the
    {!Dda_lang.Interp} reorder hook) and compare final stores against
    sequential execution — extending the oracle philosophy from
    dependence verdicts to parallelism claims. A loop whose iterations
    are truly independent must leave memory, and every scalar it does
    not write, identical under any order. *)

open Dda_lang

val check :
  ?permutations:int ->
  ?fuel:int ->
  ?inputs:(string * int) list ->
  prepared:Ast.program ->
  Summary.t ->
  (int, string) result
(** [check ~prepared summary] runs the sequential baseline, then for
    every DOALL loop of [summary] executes [permutations] (default 4)
    permuted-order runs — the exact reversal first, then seeded
    shuffles — and diffs final memory plus the scalars not written
    inside that loop (the loop variable and anything the body assigns
    are order-dependent by construction and excluded).

    [Ok n]: [n] permuted runs compared equal ([0] when the baseline
    itself does not terminate within [fuel] (default 200000 statement
    executions) or raises — nothing to validate). [Error msg]: some
    permuted run of some DOALL loop diverged from sequential
    execution, i.e. the analyzer certified a dependent loop parallel —
    a soundness bug. [inputs] feeds [read] statements, default
    [n = 6]. *)
