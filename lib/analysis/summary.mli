(** The per-loop parallelism summary: every loop of a program marked
    DOALL, vectorizable, reduction-candidate, or serial, with the
    dependence edges that block parallelization cited as evidence —
    each backed, where the cascade can, by a certificate-derived
    witness pair of iterations from {!Dda_core.Cascade.Dependent}.

    Soundness direction: a conservative or budget-degraded verdict can
    only {e deny} a DOALL marking, never grant one. A loop is DOALL
    only when every array dependence that could be carried by it is
    exactly refuted and no scalar is both written and upward-exposed
    read in its body. *)

open Dda_numeric
open Dda_lang
open Dda_core

type verdict =
  | Doall  (** no carried dependence: iterations are independent *)
  | Vectorizable
      (** every carried dependence is an exact anti dependence (reads
          complete before the writes of later iterations in a chunked
          execution) *)
  | Reduction
      (** carried dependences are confined to accumulation statements
          ([x = x ⊕ e], [⊕] commutative-associative) — parallelizable
          with a reduction clause *)
  | Serial

val verdict_name : verdict -> string

type witness = {
  iter1 : Zint.t array;  (** common-loop iteration of the source *)
  iter2 : Zint.t array;
}
(** A concrete pair of iterations realizing a blocking edge at its
    carrier level, mapped back from a {!Cascade.Dependent} witness via
    the extended-gcd reduction. *)

type blocking = {
  edge : Classify.edge;
  witness : witness option;
      (** [None] when the replay could not produce one (conservative
          edge on a non-affine pair, or the witness query exhausted its
          budget) *)
}

type loop_info = {
  lid : int;  (** pre-order id, as {!Affine} assigns them *)
  var : string;
  loc : Loc.t;  (** the [for] statement *)
  depth : int;  (** 0 = outermost *)
  parallel_annot : bool;  (** carries a [parallel] source annotation *)
  verdict : verdict;
  blocking : blocking list;  (** array edges this loop may carry *)
  scalar_blockers : string list;
      (** scalars written in the body and read upward-exposed — each
          makes iterations communicate through the scalar *)
  degraded : bool;
      (** some blocking evidence is conservative or budget-degraded:
          the denial of DOALL is sound but possibly not tight *)
}

type t = {
  loops : loop_info list;  (** pre-order *)
  edges : Classify.edge list;
}

val doall_loops : t -> (int * bool) list
(** [(lid, is_doall)] per loop, sorted by id — the shape
    {!Analyzer.parallel_loops} produces, for the C back end and for
    comparison against ground truth. *)

val compute :
  ?config:Analyzer.config ->
  ?cancel:(unit -> bool) ->
  prepared:Ast.program ->
  pairs:(Affine.site * Affine.site) list ->
  Analyzer.report ->
  t
(** [prepared] must be the program the sites were extracted from
    (pipeline already run); [pairs] must be the
    {!Analyzer.site_pairs} enumeration the report was computed from,
    in order — the same contract as {!Dda_check.Verify.verify_report}.
    Witness replay runs one cascade query per blocking edge under
    [config]'s budget; exhaustion leaves the witness [None], never
    changes a verdict. *)
