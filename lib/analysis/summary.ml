open Dda_numeric
open Dda_lang
open Dda_core
module SS = Set.Make (String)

type verdict = Doall | Vectorizable | Reduction | Serial

let verdict_name = function
  | Doall -> "doall"
  | Vectorizable -> "vectorizable"
  | Reduction -> "reduction"
  | Serial -> "serial"

type witness = {
  iter1 : Zint.t array;
  iter2 : Zint.t array;
}

type blocking = {
  edge : Classify.edge;
  witness : witness option;
}

type loop_info = {
  lid : int;
  var : string;
  loc : Loc.t;
  depth : int;
  parallel_annot : bool;
  verdict : verdict;
  blocking : blocking list;
  scalar_blockers : string list;
  degraded : bool;
}

type t = {
  loops : loop_info list;
  edges : Classify.edge list;
}

let doall_loops t =
  List.map (fun li -> (li.lid, li.verdict = Doall)) t.loops
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Loop metadata: ids assigned in the same pre-order as Affine.extract *)
(* ------------------------------------------------------------------ *)

type loop_meta = {
  m_lid : int;
  m_var : string;
  m_loc : Loc.t;
  m_depth : int;
  m_parallel : bool;
  m_body : Ast.stmt list;
}

let loop_metas prog =
  let out = ref [] and next = ref 0 in
  let rec walk depth (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign _ | Ast.Read _ -> ()
    | Ast.If (_, t, e) ->
      List.iter (walk depth) t;
      List.iter (walk depth) e
    | Ast.For f ->
      let lid = !next in
      incr next;
      out :=
        { m_lid = lid; m_var = f.var; m_loc = s.sloc; m_depth = depth;
          m_parallel = f.parallel; m_body = f.body }
        :: !out;
      List.iter (walk (depth + 1)) f.body
  in
  List.iter (walk 0) prog;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Carried scalar dependences                                          *)
(* ------------------------------------------------------------------ *)

(* A scalar both (possibly) written in the body and read
   upward-exposed — read on some path before any definite write of the
   same iteration — makes consecutive iterations communicate through
   it. Writes under conditionals or inside inner loops (which may run
   zero iterations) are not definite; [read] statements and plain
   assignments are. The loop variable itself is definite at entry (the
   loop header writes it every iteration). Over-approximate in the
   deny-DOALL direction only. *)
let scalar_blockers_of ~loop_var body =
  let written = ref SS.empty in
  let exposed = ref SS.empty in
  let expr_reads defn e =
    List.iter
      (fun v -> if not (SS.mem v defn) then exposed := SS.add v !exposed)
      (Ast.expr_vars e)
  in
  let rec walk_stmts defn stmts = List.fold_left walk_stmt defn stmts
  and walk_stmt defn (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Lvar v, e) ->
      expr_reads defn e;
      written := SS.add v !written;
      SS.add v defn
    | Ast.Assign (Ast.Larr (_, subs), e) ->
      List.iter (expr_reads defn) subs;
      expr_reads defn e;
      defn
    | Ast.Read v ->
      written := SS.add v !written;
      SS.add v defn
    | Ast.If (c, t, e) ->
      expr_reads defn c.Ast.lhs;
      expr_reads defn c.Ast.rhs;
      let dt = walk_stmts defn t and de = walk_stmts defn e in
      SS.union defn (SS.inter dt de)
    | Ast.For f ->
      expr_reads defn f.lo;
      expr_reads defn f.hi;
      Option.iter (expr_reads defn) f.step;
      written := SS.add f.var !written;
      ignore (walk_stmts (SS.add f.var defn) f.body);
      defn
  in
  ignore (walk_stmts (SS.singleton loop_var) body);
  SS.elements (SS.inter !written !exposed)

(* ------------------------------------------------------------------ *)
(* Reduction-shaped statements                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_uses_array name (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Neg a -> expr_uses_array name a
  | Ast.Bin (_, a, b) -> expr_uses_array name a || expr_uses_array name b
  | Ast.Aref (n, subs) ->
    String.equal n name || List.exists (expr_uses_array name) subs

let commutative = function
  | Ast.Add | Ast.Mul -> true
  | Ast.Sub | Ast.Div -> false

(* x = x - e accumulates too (a sum of negated terms); x = e - x and
   anything with Div do not. *)
let reduction_op = function
  | Ast.Add | Ast.Sub | Ast.Mul -> true
  | Ast.Div -> false

(* Collect the reduction-shaped assignments anywhere in the body
   (conditionals and inner loops included), plus, per scalar, whether
   every write of it is such an accumulation. *)
let reductions_of body =
  let slocs = ref [] in
  let scalar_writes = Hashtbl.create 8 in (* name -> all-reductions flag *)
  let note_scalar v is_red =
    let prev = Option.value (Hashtbl.find_opt scalar_writes v) ~default:true in
    Hashtbl.replace scalar_writes v (prev && is_red)
  in
  let classify (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Larr (a, subs), { desc = Ast.Bin (op, l, r); _ }) ->
      let matches cell other =
        match cell.Ast.desc with
        | Ast.Aref (a', subs')
          when String.equal a' a
               && List.length subs = List.length subs'
               && List.for_all2 Ast.equal_expr subs subs'
               && (not (expr_uses_array a other))
               && not (List.exists (expr_uses_array a) subs) ->
          true
        | _ -> false
      in
      if (reduction_op op && matches l r) || (commutative op && matches r l)
      then slocs := s.sloc :: !slocs
    | Ast.Assign (Ast.Lvar v, { desc = Ast.Bin (op, l, r); _ }) ->
      let matches cell other =
        match cell.Ast.desc with
        | Ast.Var v' when String.equal v' v ->
          not (List.mem v (Ast.expr_vars other))
        | _ -> false
      in
      let is_red =
        (reduction_op op && matches l r) || (commutative op && matches r l)
      in
      if is_red then slocs := s.sloc :: !slocs;
      note_scalar v is_red
    | Ast.Assign (Ast.Lvar v, _) | Ast.Read v -> note_scalar v false
    | Ast.For { var; _ } -> note_scalar var false
    | Ast.Assign (Ast.Larr _, _) | Ast.If _ -> ()
  in
  Ast.iter_stmts classify body;
  let scalar_red_ok v =
    Option.value (Hashtbl.find_opt scalar_writes v) ~default:false
  in
  (!slocs, scalar_red_ok)

(* ------------------------------------------------------------------ *)
(* Witness replay                                                      *)
(* ------------------------------------------------------------------ *)

(* Re-derive a concrete iteration pair realizing the edge at carrier
   level [k]: rebuild the pair's problem, reduce with the extended gcd
   test, constrain levels before [k] equal and level [k] strict (in
   the direction(s) the edge's vector admits), and ask the cascade for
   a witness. Budget exhaustion or an unknown just loses the witness. *)
let witness_for ~(config : Analyzer.config) ~cancel
    ((s1 : Affine.site), (s2 : Affine.site)) (edge : Classify.edge) k =
  match Build_problem.build s1 s2 with
  | None -> None
  | Some p -> (
      match Gcd_test.run p with
      | Gcd_test.Independent _ -> None
      | Gcd_test.Reduced red ->
        let base = red.Gcd_test.system in
        let eqs_upto =
          List.concat
            (List.init k (fun j -> Direction.dir_rows p j Direction.Deq))
        in
        let attempt sign =
          let extra = eqs_upto @ Direction.dir_rows p k sign in
          let extra_t = List.map (Gcd_test.transform_row red) extra in
          let sys =
            Consys.make ~nvars:base.Consys.nvars (base.Consys.rows @ extra_t)
          in
          let budget = Budget.create ?cancel config.Analyzer.limits in
          let cas =
            Cascade.run ~budget ~fm_tighten:config.Analyzer.fm_tighten sys
          in
          match cas.Cascade.verdict with
          | Cascade.Dependent w ->
            let x = Gcd_test.x_of_t red w in
            Some
              {
                iter1 =
                  Array.init p.Problem.ncommon (fun j ->
                      x.(Problem.var1 p j));
                iter2 =
                  Array.init p.Problem.ncommon (fun j ->
                      x.(Problem.var2 p j));
              }
          | Cascade.Independent _ | Cascade.Unknown | Cascade.Exhausted _ ->
            None
        in
        let signs =
          match edge.Classify.vector with
          | Some v when k < Array.length v -> (
              match v.(k) with
              | Direction.Dlt -> [ Direction.Dlt ]
              | Direction.Dgt -> [ Direction.Dgt ]
              | Direction.Dany | Direction.Deq ->
                [ Direction.Dlt; Direction.Dgt ])
          | _ -> [ Direction.Dlt; Direction.Dgt ]
        in
        List.find_map attempt signs)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let index_of lid ids =
  let rec go k = function
    | [] -> None
    | id :: _ when id = lid -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 ids

let compute ?(config = Analyzer.default_config) ?cancel ~prepared ~pairs
    (report : Analyzer.report) =
  let edges = Classify.edges report in
  let pair_sites =
    (* In pair order, like the verifier; a length mismatch (caller
       broke the contract) just loses witnesses. *)
    try List.combine report.pair_reports pairs
    with Invalid_argument _ -> []
  in
  let sites_of r =
    List.find_map (fun (r', s) -> if r' == r then Some s else None) pair_sites
  in
  let loops =
    List.map
      (fun m ->
         let blockers =
           List.filter
             (fun (e : Classify.edge) -> List.mem m.m_lid e.carried_lids)
             edges
         in
         let blocking =
           List.map
             (fun (e : Classify.edge) ->
                let witness =
                  match
                    (sites_of e.pair, index_of m.m_lid e.pair.common_ids)
                  with
                  | Some ss, Some k -> witness_for ~config ~cancel ss e k
                  | _ -> None
                in
                { edge = e; witness })
             blockers
         in
         let scalar_blockers = scalar_blockers_of ~loop_var:m.m_var m.m_body in
         let red_slocs, scalar_red_ok = reductions_of m.m_body in
         let reduction_ok =
           List.for_all
             (fun (e : Classify.edge) ->
                List.exists (Loc.equal e.pair.stmt1) red_slocs
                && List.exists (Loc.equal e.pair.stmt2) red_slocs)
             blockers
           && List.for_all scalar_red_ok scalar_blockers
         in
         let vectorizable_ok =
           scalar_blockers = []
           && List.for_all
                (fun (e : Classify.edge) ->
                   e.exact && e.kind = Analyzer.Anti)
                blockers
         in
         let verdict =
           if blockers = [] && scalar_blockers = [] then Doall
           else if reduction_ok then Reduction
           else if vectorizable_ok then Vectorizable
           else Serial
         in
         let degraded =
           List.exists (fun (e : Classify.edge) -> not e.exact) blockers
         in
         { lid = m.m_lid; var = m.m_var; loc = m.m_loc; depth = m.m_depth;
           parallel_annot = m.m_parallel; verdict; blocking; scalar_blockers;
           degraded })
      (loop_metas prepared)
  in
  { loops; edges }
