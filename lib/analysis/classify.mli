(** Dependence-edge classification: every {!Dda_core.Analyzer} pair
    verdict flattened into edges tagged flow/anti/output/input, with
    the set of loops that may carry each edge extracted from its
    direction-vector set. This is the form the per-loop parallelism
    summary ({!Summary}) consumes. *)

open Dda_core

type edge = {
  pair : Analyzer.pair_report;
  kind : Analyzer.dep_kind;
  vector : Direction.dir array option;
      (** the direction vector this edge came from; [None] for
          conservative outcomes (non-affine, constant-cell collision,
          or a dependent verdict without vector information) *)
  carried_lids : int list;
      (** ids of the common loops that may carry this edge, outermost
          first — for a vector edge, the levels admitting a first
          difference; for a conservative edge, every common loop *)
  loop_independent : bool;
      (** the edge admits a same-iteration (all-[=]) instance *)
  exact : bool;
      (** the verdict behind this edge is exact — [false] for
          conservative outcomes and budget-degraded verdicts, whose
          vectors are sound over-approximations. An inexact edge may
          deny a loop a DOALL verdict but its existence is not
          proven. *)
}

val edges : Analyzer.report -> edge list
(** One edge per direction vector of every dependent pair (one
    conservative edge for dependent pairs without vectors), in pair
    order. Independent pairs produce nothing. Read-read pairs are
    never enumerated by the analyzer, so [Input] edges do not occur in
    practice; the classification is total anyway. *)

val kind_name : Analyzer.dep_kind -> string
(** ["flow" | "anti" | "output" | "input"]. *)
