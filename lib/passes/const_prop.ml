open Dda_lang

module Env = Map.Make (String)

(* The environment maps scalars to known constant values. *)

let lookup env v =
  match Env.find_opt v env with Some n -> Some (Ast.int_ n) | None -> None

let rewrite env e = Expr_util.subst (lookup env) e

let rec prop_stmt env (s : Ast.stmt) : Ast.stmt * int Env.t =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e0) ->
    let e = rewrite env e0 in
    let env =
      match e.desc with
      | Ast.Int n when Expr_util.is_pure_scalar e -> Env.add v n env
      | _ -> Env.remove v env
    in
    ((if e == e0 then s else { s with sdesc = Ast.Assign (Ast.Lvar v, e) }), env)
  | Ast.Assign (Ast.Larr (name, subs0), e0) ->
    let subs = Expr_util.map_sharing (rewrite env) subs0 in
    let e = rewrite env e0 in
    ( (if subs == subs0 && e == e0 then s
       else { s with sdesc = Ast.Assign (Ast.Larr (name, subs), e) }),
      env )
  | Ast.Read v -> (s, Env.remove v env)
  | Ast.If (cond0, then_0, else_0) ->
    let lhs = rewrite env cond0.Ast.lhs and rhs = rewrite env cond0.Ast.rhs in
    let cond = if lhs == cond0.Ast.lhs && rhs == cond0.Ast.rhs then cond0
      else { cond0 with Ast.lhs = lhs; rhs } in
    let then_, env_t = prop_stmts env then_0 in
    let else_, env_e = prop_stmts env else_0 in
    (* Keep facts that hold on both paths. *)
    let env' =
      Env.merge
        (fun _ a b ->
           match (a, b) with Some x, Some y when x = y -> Some x | _ -> None)
        env_t env_e
    in
    ( (if cond == cond0 && then_ == then_0 && else_ == else_0 then s
       else { s with sdesc = Ast.If (cond, then_, else_) }),
      env' )
  | Ast.For ({ var; lo = lo0; hi = hi0; step = step0; body = body0; _ } as l) ->
    let lo = rewrite env lo0 and hi = rewrite env hi0 in
    let step =
      match step0 with
      | None -> None
      | Some st -> let st' = rewrite env st in if st' == st then step0 else Some st'
    in
    (* Anything the body assigns (and the loop variable) is unknown both
       inside the body and after the loop. *)
    let killed = var :: Expr_util.assigned_vars body0 in
    let env_in = List.fold_left (fun m v -> Env.remove v m) env killed in
    let body, _ = prop_stmts env_in body0 in
    ( (if lo == lo0 && hi == hi0 && step == step0 && body == body0 then s
       else { s with sdesc = Ast.For { l with lo; hi; step; body } }),
      env_in )

and prop_stmts env stmts =
  match stmts with
  | [] -> ([], env)
  | s :: rest ->
    let s', env = prop_stmt env s in
    let rest', env = prop_stmts env rest in
    ((if s' == s && rest' == rest then stmts else s' :: rest'), env)

let run prog = fst (prop_stmts Env.empty prog)
