open Dda_lang

(* Every identifier occurring anywhere in the program, for fresh-name
   generation. *)
let all_names prog =
  let names = Hashtbl.create 32 in
  let note n = Hashtbl.replace names n () in
  let rec expr (e : Ast.expr) =
    match e.desc with
    | Ast.Int _ -> ()
    | Ast.Var v -> note v
    | Ast.Neg a -> expr a
    | Ast.Bin (_, a, b) ->
      expr a;
      expr b
    | Ast.Aref (name, subs) ->
      note name;
      List.iter expr subs
  in
  Ast.iter_stmts
    (fun s ->
       match s.Ast.sdesc with
       | Ast.Assign (Ast.Lvar v, e) ->
         note v;
         expr e
       | Ast.Assign (Ast.Larr (name, subs), e) ->
         note name;
         List.iter expr subs;
         expr e
       | Ast.Read v -> note v
       | Ast.If (c, _, _) ->
         expr c.Ast.lhs;
         expr c.Ast.rhs
       | Ast.For { var; lo; hi; step; _ } ->
         note var;
         expr lo;
         expr hi;
         Option.iter expr step)
    prog;
  names

let is_temp_name name =
  (* Matches <base>__n with an optional numeric suffix. *)
  match String.index_opt name '_' with
  | None -> false
  | Some _ ->
    let rec find_marker i =
      if i + 2 >= String.length name then None
      else if name.[i] = '_' && name.[i + 1] = '_' && name.[i + 2] = 'n' then Some (i + 3)
      else find_marker (i + 1)
    in
    (match find_marker 0 with
     | None -> false
     | Some rest_start ->
       let rec all_digits i =
         i >= String.length name
         || (name.[i] >= '0' && name.[i] <= '9' && all_digits (i + 1))
       in
       all_digits rest_start)

let fresh names base =
  let rec try_ i =
    let candidate = if i = 0 then base ^ "__n" else Printf.sprintf "%s__n%d" base i in
    if Hashtbl.mem names candidate then try_ (i + 1)
    else begin
      Hashtbl.replace names candidate ();
      candidate
    end
  in
  try_ 0

let cf e = Expr_util.linearize (Expr_util.const_fold e)

let subst_in_stmt v formula s =
  Expr_util.map_program_exprs
    (Expr_util.subst (fun x -> if String.equal x v then Some formula else None))
    [ s ]
  |> List.hd

let rec norm_stmt names (s : Ast.stmt) : Ast.stmt list =
  match s.sdesc with
  | Ast.Assign _ | Ast.Read _ -> [ s ]
  | Ast.If (cond, then_, else_) ->
    let then_' = norm_stmts names then_ and else_' = norm_stmts names else_ in
    if then_' == then_ && else_' == else_ then [ s ]
    else [ { s with sdesc = Ast.If (cond, then_', else_') } ]
  | Ast.For ({ var; lo; hi; step; body = body0; _ } as l) -> (
      let body = norm_stmts names body0 in
      let kept =
        if body == body0 then [ s ]
        else [ { s with sdesc = Ast.For { l with body } } ]
      in
      match Option.map Expr_util.const_value step with
      | None | Some (Some 1) ->
        (* Unit step already; drop the redundant step annotation. *)
        if step = None then kept
        else [ { s with sdesc = Ast.For { l with step = None; body } } ]
      | Some None | Some (Some 0) -> kept (* non-constant or zero: leave alone *)
      | Some (Some stepc) ->
        let assigned = Expr_util.assigned_vars body in
        let invariant e =
          Expr_util.is_pure_scalar e
          && (not (Expr_util.uses_var var e))
          && not (List.exists (fun w -> Expr_util.uses_var w e) assigned)
        in
        (* A body that reassigns (shadows) the loop variable makes the
           substituted occurrences read the clobbered value; leave such
           (ill-formed) loops alone. *)
        if List.mem var assigned || not (invariant lo && invariant hi) then kept
        else begin
          let nvar = fresh names var in
          (* i = lo + stepc * nvar *)
          let formula =
            cf (Ast.bin Ast.Add lo (Ast.bin Ast.Mul (Ast.int_ stepc) (Ast.var nvar)))
          in
          let body = List.map (subst_in_stmt var formula) body in
          (* Trip count - 1 = (hi - lo) / stepc. The language only has
             truncating division, which matches floor division exactly
             when (hi - lo) and stepc have the same sign — i.e. when
             the loop runs at all. Guard the whole rewrite with the
             loop-runs condition so the truncation never lies. *)
          let last_trip = cf (Ast.bin Ast.Div (Ast.bin Ast.Sub hi lo) (Ast.int_ stepc)) in
          let new_loop =
            { s with
              sdesc =
                Ast.For
                  { var = nvar;
                    lo = Ast.int_ 0;
                    hi = last_trip;
                    step = None;
                    parallel = l.parallel;
                    body;
                  };
            }
          in
          (* The original variable keeps Fortran semantics: it holds the
             last executed iteration's value (loops that never run leave
             it untouched). *)
          let runs_guard =
            if stepc > 0 then { Ast.rel = Ast.Rle; lhs = lo; rhs = hi }
            else { Ast.rel = Ast.Rge; lhs = lo; rhs = hi }
          in
          let final_value =
            cf (Ast.bin Ast.Add lo (Ast.bin Ast.Mul (Ast.int_ stepc) last_trip))
          in
          [ Ast.if_ runs_guard
              [ new_loop; Ast.assign (Ast.Lvar var) final_value ]
              [];
          ]
        end)

and norm_stmts names stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
    let ss = norm_stmt names s in
    let rest' = norm_stmts names rest in
    (match ss with
     | [ s' ] when s' == s && rest' == rest -> stmts
     | _ -> ss @ rest')

let run prog =
  let names = all_names prog in
  norm_stmts names prog
