open Dda_lang

(* The pipeline re-runs every pass until a fixpoint, so on most rounds
   most of the tree is already in normal form. Every rewriter here is
   identity-preserving: it returns its argument physically unchanged
   when no rule fires, so a converged round allocates (almost) nothing
   and unchanged subtrees stay shared between rounds. *)

let rec map_sharing f l =
  match l with
  | [] -> []
  | x :: tl ->
    let x' = f x in
    let tl' = map_sharing f tl in
    if x' == x && tl' == tl then l else x' :: tl'

let rec const_fold (e : Ast.expr) : Ast.expr =
  let mk desc = { e with Ast.desc } in
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Neg a -> (
      let a' = const_fold a in
      match a'.desc with
      | Ast.Int n -> mk (Ast.Int (-n))
      | Ast.Neg b -> b
      | _ -> if a' == a then e else mk (Ast.Neg a'))
  | Ast.Aref (name, subs) ->
    let subs' = map_sharing const_fold subs in
    if subs' == subs then e else mk (Ast.Aref (name, subs'))
  | Ast.Bin (op, a, b) -> (
      let a = const_fold a and b = const_fold b in
      match (op, a.desc, b.desc) with
      | Ast.Add, Ast.Int x, Ast.Int y -> mk (Ast.Int (x + y))
      | Ast.Sub, Ast.Int x, Ast.Int y -> mk (Ast.Int (x - y))
      | Ast.Mul, Ast.Int x, Ast.Int y -> mk (Ast.Int (x * y))
      | Ast.Div, Ast.Int x, Ast.Int y when y <> 0 -> mk (Ast.Int (x / y))
      | Ast.Add, Ast.Int 0, _ -> b
      | Ast.Add, _, Ast.Int 0 -> a
      | Ast.Sub, _, Ast.Int 0 -> a
      | Ast.Mul, Ast.Int 1, _ -> b
      | Ast.Mul, _, Ast.Int 1 -> a
      | Ast.Mul, Ast.Int 0, _ when no_arrays b -> mk (Ast.Int 0)
      | Ast.Mul, _, Ast.Int 0 when no_arrays a -> mk (Ast.Int 0)
      | Ast.Div, _, Ast.Int 1 -> a
      | _ -> (
          match e.desc with
          | Ast.Bin (_, a0, b0) when a == a0 && b == b0 -> e
          | _ -> mk (Ast.Bin (op, a, b))))

(* [e * 0 = 0] is only valid when [e] has no side effect on the trace;
   array reads are observable accesses, so keep them. *)
and no_arrays (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> true
  | Ast.Neg a -> no_arrays a
  | Ast.Bin (_, a, b) -> no_arrays a && no_arrays b
  | Ast.Aref _ -> false

let const_value e =
  match (const_fold e).desc with Ast.Int n -> Some n | _ -> None

(* Does [e] already equal the expression the linearize builder below
   would produce from [kept_rev] (outermost term first) and [const]?
   Pure structural walk, no allocation: matching the spine from the
   outside in mirrors the builder's left fold exactly. *)
let matches_canonical kept_rev const (e : Ast.expr) =
  let spine =
    if const = 0 then Some e
    else
      match e.desc with
      | Ast.Bin (Ast.Add, acc, { desc = Ast.Int c; _ }) when const > 0 && c = const ->
        Some acc
      | Ast.Bin (Ast.Sub, acc, { desc = Ast.Int c; _ }) when const < 0 && c = -const ->
        Some acc
      | _ -> None
  in
  match spine with
  | None -> false
  | Some spine ->
    let rec go terms (e : Ast.expr) =
      match terms with
      | [] -> false
      | [ (c, a, _) ] -> (
          let c = !c in
          if c = 1 then Ast.equal_expr e a
          else if c = -1 then
            match e.desc with Ast.Neg x -> Ast.equal_expr x a | _ -> false
          else
            match e.desc with
            | Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, x) ->
              k = c && Ast.equal_expr x a
            | _ -> false)
      | (c, a, _) :: rest -> (
          let c = !c in
          match e.desc with
          | Ast.Bin (Ast.Add, acc, rhs) when c = 1 ->
            Ast.equal_expr rhs a && go rest acc
          | Ast.Bin (Ast.Sub, acc, rhs) when c = -1 ->
            Ast.equal_expr rhs a && go rest acc
          | Ast.Bin
              (Ast.Add, acc, { desc = Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, rhs); _ })
            when c > 1 ->
            k = c && Ast.equal_expr rhs a && go rest acc
          | Ast.Bin
              (Ast.Sub, acc, { desc = Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, rhs); _ })
            when c < -1 ->
            k = -c && Ast.equal_expr rhs a && go rest acc
          | _ -> false)
    in
    go kept_rev spine

(* Linear canonicalization: fold the expression into
   [sum coeff_i * atom_i + const]. Pure scalar atoms merge (and cancel)
   by structural equality; atoms that read arrays stay one-for-one so
   the access trace is untouched. Returns [e] itself when it is already
   in canonical form. *)
let rec linearize (e : Ast.expr) : Ast.expr =
  (* (coeff ref, atom, pure), in first-occurrence order (reversed). *)
  let terms : (int ref * Ast.expr * bool) list ref = ref [] in
  let const = ref 0 in
  let add_term coeff atom =
    let pure = no_arrays atom in
    let merged =
      pure
      && List.exists
           (fun (c, a, p) ->
              if p && Ast.equal_expr a atom then begin
                c := !c + coeff;
                true
              end
              else false)
           !terms
    in
    if not merged then terms := (ref coeff, atom, pure) :: !terms
  in
  let rec go sign (e : Ast.expr) =
    match e.desc with
    | Ast.Int n -> const := !const + (sign * n)
    | Ast.Var _ -> add_term sign e
    | Ast.Neg a -> go (-sign) a
    | Ast.Bin (Ast.Add, a, b) ->
      go sign a;
      go sign b
    | Ast.Bin (Ast.Sub, a, b) ->
      go sign a;
      go (-sign) b
    | Ast.Bin (Ast.Mul, a, b) -> (
        (* Multiplication by a constant distributes exactly over the
           integers; anything else is an opaque atom. *)
        match (const_value a, const_value b) with
        | Some k, _ -> go (sign * k) b
        | None, Some k -> go (sign * k) a
        | None, None ->
          let a' = linearize a and b' = linearize b in
          add_term sign
            (if a' == a && b' == b then e
             else { e with desc = Ast.Bin (Ast.Mul, a', b') }))
    | Ast.Bin (Ast.Div, a, b) ->
      (* Truncating division does not distribute; linearize inside. *)
      let a' = linearize a and b' = linearize b in
      add_term sign
        (if a' == a && b' == b then e
         else { e with desc = Ast.Bin (Ast.Div, a', b') })
    | Ast.Aref (name, subs) ->
      let subs' = map_sharing linearize subs in
      add_term sign
        (if subs' == subs then e else { e with desc = Ast.Aref (name, subs') })
  in
  go 1 e;
  let kept_rev =
    List.filter (fun (c, _, pure) -> (not pure) || !c <> 0) !terms
  in
  match kept_rev with
  | [] -> ( match e.desc with Ast.Int n when n = !const -> e | _ -> Ast.int_ !const)
  | _ when matches_canonical kept_rev !const e -> e
  | _ ->
    let (c0, a0, _), rest =
      match List.rev kept_rev with x :: tl -> (x, tl) | [] -> assert false
    in
    let head =
      if !c0 = 1 then a0
      else if !c0 = -1 then Ast.neg a0
      else Ast.bin Ast.Mul (Ast.int_ !c0) a0
    in
    let acc =
      List.fold_left
        (fun acc (c, a, _) ->
           if !c = 1 then Ast.bin Ast.Add acc a
           else if !c = -1 then Ast.bin Ast.Sub acc a
           else if !c >= 0 then Ast.bin Ast.Add acc (Ast.bin Ast.Mul (Ast.int_ !c) a)
           else Ast.bin Ast.Sub acc (Ast.bin Ast.Mul (Ast.int_ (- !c)) a))
        head rest
    in
    if !const > 0 then Ast.bin Ast.Add acc (Ast.int_ !const)
    else if !const < 0 then Ast.bin Ast.Sub acc (Ast.int_ (- !const))
    else acc

let rec subst_raw lookup (e : Ast.expr) : Ast.expr =
  let mk desc = { e with Ast.desc } in
  match e.desc with
  | Ast.Int _ -> e
  | Ast.Var v -> (
      match lookup v with Some e' -> e' | None -> e)
  | Ast.Neg a ->
    let a' = subst_raw lookup a in
    if a' == a then e else mk (Ast.Neg a')
  | Ast.Bin (op, a, b) ->
    let a' = subst_raw lookup a and b' = subst_raw lookup b in
    if a' == a && b' == b then e else mk (Ast.Bin (op, a', b'))
  | Ast.Aref (name, subs) ->
    let subs' = map_sharing (subst_raw lookup) subs in
    if subs' == subs then e else mk (Ast.Aref (name, subs'))

let subst lookup e = linearize (const_fold (subst_raw lookup e))

let is_pure_scalar = no_arrays

let assigned_vars stmts =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Lvar v, _) -> note v
    | Ast.Assign (Ast.Larr _, _) -> ()
    | Ast.Read v -> note v
    | Ast.If (_, t, e) ->
      List.iter go t;
      List.iter go e
    | Ast.For { var; body; _ } ->
      note var;
      List.iter go body
  in
  List.iter go stmts;
  List.rev !out

let rec uses_var v (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ -> false
  | Ast.Var x -> String.equal x v
  | Ast.Neg a -> uses_var v a
  | Ast.Bin (_, a, b) -> uses_var v a || uses_var v b
  | Ast.Aref (_, subs) -> List.exists (uses_var v) subs

let rec map_stmt_exprs f (s : Ast.stmt) : Ast.stmt =
  let mk sdesc = { s with Ast.sdesc } in
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let e' = f e in
    if e' == e then s else mk (Ast.Assign (Ast.Lvar v, e'))
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    let subs' = map_sharing f subs and e' = f e in
    if subs' == subs && e' == e then s
    else mk (Ast.Assign (Ast.Larr (name, subs'), e'))
  | Ast.Read _ -> s
  | Ast.If (cond, t, el) ->
    let lhs = f cond.Ast.lhs and rhs = f cond.Ast.rhs in
    let t' = map_sharing (map_stmt_exprs f) t in
    let el' = map_sharing (map_stmt_exprs f) el in
    if lhs == cond.Ast.lhs && rhs == cond.Ast.rhs && t' == t && el' == el then s
    else mk (Ast.If ({ cond with Ast.lhs; rhs }, t', el'))
  | Ast.For ({ lo; hi; step; body; _ } as l) ->
    let lo' = f lo and hi' = f hi in
    let step' =
      match step with
      | None -> None
      | Some st ->
        let st' = f st in
        if st' == st then step else Some st'
    in
    let body' = map_sharing (map_stmt_exprs f) body in
    if lo' == lo && hi' == hi && step' == step && body' == body then s
    else mk (Ast.For { l with lo = lo'; hi = hi'; step = step'; body = body' })

let map_program_exprs f prog = map_sharing (map_stmt_exprs f) prog
