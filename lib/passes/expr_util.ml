open Dda_lang

(* The pipeline re-runs every pass until a fixpoint, so on most rounds
   most of the tree is already in normal form. Every rewriter here is
   identity-preserving: it returns its argument physically unchanged
   when no rule fires, so a converged round allocates (almost) nothing
   and unchanged subtrees stay shared between rounds. *)

let rec map_sharing f l =
  match l with
  | [] -> []
  | x :: tl ->
    let x' = f x in
    let tl' = map_sharing f tl in
    if x' == x && tl' == tl then l else x' :: tl'

(* Top-level (not a per-call closure): the rewriters below run on every
   node of every program once per pass per round, so even a spare
   closure allocation per visited node shows up in whole-batch
   profiles. *)
let remake (e : Ast.expr) desc = { e with Ast.desc = desc }
let remake_stmt (s : Ast.stmt) sdesc = { s with Ast.sdesc = sdesc }

let rec const_fold (e : Ast.expr) : Ast.expr =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Neg a -> (
      let a' = const_fold a in
      match a'.desc with
      | Ast.Int n -> remake e (Ast.Int (-n))
      | Ast.Neg b -> b
      | _ -> if a' == a then e else remake e (Ast.Neg a'))
  | Ast.Aref (name, subs) ->
    let subs' = map_sharing const_fold subs in
    if subs' == subs then e else remake e (Ast.Aref (name, subs'))
  | Ast.Bin (op, a, b) -> (
      let a = const_fold a and b = const_fold b in
      match (op, a.desc, b.desc) with
      | Ast.Add, Ast.Int x, Ast.Int y -> remake e (Ast.Int (x + y))
      | Ast.Sub, Ast.Int x, Ast.Int y -> remake e (Ast.Int (x - y))
      | Ast.Mul, Ast.Int x, Ast.Int y -> remake e (Ast.Int (x * y))
      | Ast.Div, Ast.Int x, Ast.Int y when y <> 0 -> remake e (Ast.Int (x / y))
      | Ast.Add, Ast.Int 0, _ -> b
      | Ast.Add, _, Ast.Int 0 -> a
      | Ast.Sub, _, Ast.Int 0 -> a
      | Ast.Mul, Ast.Int 1, _ -> b
      | Ast.Mul, _, Ast.Int 1 -> a
      | Ast.Mul, Ast.Int 0, _ when no_arrays b -> remake e (Ast.Int 0)
      | Ast.Mul, _, Ast.Int 0 when no_arrays a -> remake e (Ast.Int 0)
      | Ast.Div, _, Ast.Int 1 -> a
      | _ -> (
          match e.desc with
          | Ast.Bin (_, a0, b0) when a == a0 && b == b0 -> e
          | _ -> remake e (Ast.Bin (op, a, b))))

(* [e * 0 = 0] is only valid when [e] has no side effect on the trace;
   array reads are observable accesses, so keep them. *)
and no_arrays (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> true
  | Ast.Neg a -> no_arrays a
  | Ast.Bin (_, a, b) -> no_arrays a && no_arrays b
  | Ast.Aref _ -> false

let const_value e =
  match (const_fold e).desc with Ast.Int n -> Some n | _ -> None

(* Workspace for [linearize]: the collected terms are staged in
   growable parallel arrays (coefficient, atom, purity) owned by the
   calling domain and reused across calls, so canonicalizing an
   expression that is already in normal form allocates nothing. Nested
   [linearize] calls (the insides of opaque atoms) stack their region
   on top of the caller's and pop it on return. *)
type lin_ws = {
  mutable t_coeff : int array;
  mutable t_atom : Ast.expr array;
  mutable t_pure : bool array;
  mutable t_len : int;
}

let lin_ws_key =
  Domain.DLS.new_key (fun () ->
      { t_coeff = Array.make 16 0;
        t_atom = Array.make 16 (Ast.int_ 0);
        t_pure = Array.make 16 false;
        t_len = 0 })

let ws_grow ws =
  let n = Array.length ws.t_coeff in
  let coeff = Array.make (2 * n) 0
  and atom = Array.make (2 * n) (Ast.int_ 0)
  and pure = Array.make (2 * n) false in
  Array.blit ws.t_coeff 0 coeff 0 n;
  Array.blit ws.t_atom 0 atom 0 n;
  Array.blit ws.t_pure 0 pure 0 n;
  ws.t_coeff <- coeff;
  ws.t_atom <- atom;
  ws.t_pure <- pure

(* Record [coeff * atom]; pure atoms merge (and cancel) with an equal
   atom already collected in this call's region [base..t_len). *)
let rec ws_merge ws i atom coeff =
  i < ws.t_len
  && ((ws.t_pure.(i)
       && Ast.equal_expr ws.t_atom.(i) atom
       && (ws.t_coeff.(i) <- ws.t_coeff.(i) + coeff;
           true))
      || ws_merge ws (i + 1) atom coeff)

let ws_add ws base coeff atom =
  let pure = no_arrays atom in
  if not (pure && ws_merge ws base atom coeff) then begin
    if ws.t_len = Array.length ws.t_coeff then ws_grow ws;
    ws.t_coeff.(ws.t_len) <- coeff;
    ws.t_atom.(ws.t_len) <- atom;
    ws.t_pure.(ws.t_len) <- pure;
    ws.t_len <- ws.t_len + 1
  end

(* A term survives unless it is a pure atom whose coefficient cancelled
   to zero (array-reading atoms stay, even with coefficient zero, to
   keep the access trace intact). *)
let ws_kept ws i = (not ws.t_pure.(i)) || ws.t_coeff.(i) <> 0

let rec ws_prev_kept ws base i =
  let i = i - 1 in
  if i < base then -1 else if ws_kept ws i then i else ws_prev_kept ws base i

let rec ws_next_kept ws i =
  if i >= ws.t_len then -1
  else if ws_kept ws i then i
  else ws_next_kept ws (i + 1)

(* Does [e] already equal the expression the builder below would
   produce from the collected terms and [const]? Pure structural walk,
   no allocation: matching the spine from the outside in (kept terms in
   reverse order) mirrors the builder's left fold exactly. *)
let rec matches_canonical ws base last_kept const (e : Ast.expr) =
  let spine =
    if const = 0 then Some e
    else
      match e.desc with
      | Ast.Bin (Ast.Add, acc, { desc = Ast.Int c; _ }) when const > 0 && c = const ->
        Some acc
      | Ast.Bin (Ast.Sub, acc, { desc = Ast.Int c; _ }) when const < 0 && c = -const ->
        Some acc
      | _ -> None
  in
  match spine with
  | None -> false
  | Some spine -> matches_spine ws base last_kept spine

and matches_spine ws base i (e : Ast.expr) =
  let c = ws.t_coeff.(i) and a = ws.t_atom.(i) in
  let prev = ws_prev_kept ws base i in
  if prev < 0 then
    (* The head term (first occurrence). *)
    if c = 1 then Ast.equal_expr e a
    else if c = -1 then
      match e.desc with Ast.Neg x -> Ast.equal_expr x a | _ -> false
    else
      match e.desc with
      | Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, x) -> k = c && Ast.equal_expr x a
      | _ -> false
  else
    match e.desc with
    | Ast.Bin (Ast.Add, acc, rhs) when c = 1 ->
      Ast.equal_expr rhs a && matches_spine ws base prev acc
    | Ast.Bin (Ast.Sub, acc, rhs) when c = -1 ->
      Ast.equal_expr rhs a && matches_spine ws base prev acc
    | Ast.Bin
        (Ast.Add, acc, { desc = Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, rhs); _ })
      when c > 1 ->
      k = c && Ast.equal_expr rhs a && matches_spine ws base prev acc
    | Ast.Bin
        (Ast.Sub, acc, { desc = Ast.Bin (Ast.Mul, { desc = Ast.Int k; _ }, rhs); _ })
      when c < -1 ->
      k = -c && Ast.equal_expr rhs a && matches_spine ws base prev acc
    | _ -> false

(* Linear canonicalization: fold the expression into
   [sum coeff_i * atom_i + const]. Pure scalar atoms merge (and cancel)
   by structural equality; atoms that read arrays stay one-for-one so
   the access trace is untouched. Returns [e] itself when it is already
   in canonical form. *)
let rec linearize (e : Ast.expr) : Ast.expr = lin (Domain.DLS.get lin_ws_key) e

and lin ws (e : Ast.expr) =
  let base = ws.t_len in
  let const = lin_go ws base 1 0 e in
  let result =
    match ws_next_kept ws base with
    | -1 -> ( match e.desc with Ast.Int n when n = const -> e | _ -> Ast.int_ const)
    | h ->
      let last = ws_prev_kept ws base ws.t_len in
      if matches_canonical ws base last const e then e
      else begin
        let c0 = ws.t_coeff.(h) and a0 = ws.t_atom.(h) in
        let head =
          if c0 = 1 then a0
          else if c0 = -1 then Ast.neg a0
          else Ast.bin Ast.Mul (Ast.int_ c0) a0
        in
        let rec fold acc i =
          if i >= ws.t_len then acc
          else if not (ws_kept ws i) then fold acc (i + 1)
          else begin
            let c = ws.t_coeff.(i) and a = ws.t_atom.(i) in
            let acc =
              if c = 1 then Ast.bin Ast.Add acc a
              else if c = -1 then Ast.bin Ast.Sub acc a
              else if c >= 0 then Ast.bin Ast.Add acc (Ast.bin Ast.Mul (Ast.int_ c) a)
              else Ast.bin Ast.Sub acc (Ast.bin Ast.Mul (Ast.int_ (-c)) a)
            in
            fold acc (i + 1)
          end
        in
        let acc = fold head (h + 1) in
        if const > 0 then Ast.bin Ast.Add acc (Ast.int_ const)
        else if const < 0 then Ast.bin Ast.Sub acc (Ast.int_ (-const))
        else acc
      end
  in
  ws.t_len <- base;
  result

(* Collect terms of [sign * e] into the region starting at [base],
   threading the accumulated constant part through the return value. *)
and lin_go ws base sign const (e : Ast.expr) =
  match e.desc with
  | Ast.Int n -> const + (sign * n)
  | Ast.Var _ ->
    ws_add ws base sign e;
    const
  | Ast.Neg a -> lin_go ws base (-sign) const a
  | Ast.Bin (Ast.Add, a, b) -> lin_go ws base sign (lin_go ws base sign const a) b
  | Ast.Bin (Ast.Sub, a, b) -> lin_go ws base (-sign) (lin_go ws base sign const a) b
  | Ast.Bin (Ast.Mul, a, b) -> (
      (* Multiplication by a constant distributes exactly over the
         integers; anything else is an opaque atom. *)
      match (const_value a, const_value b) with
      | Some k, _ -> lin_go ws base (sign * k) const b
      | None, Some k -> lin_go ws base (sign * k) const a
      | None, None ->
        let a' = lin ws a and b' = lin ws b in
        ws_add ws base sign
          (if a' == a && b' == b then e else remake e (Ast.Bin (Ast.Mul, a', b')));
        const)
  | Ast.Bin (Ast.Div, a, b) ->
    (* Truncating division does not distribute; linearize inside. *)
    let a' = lin ws a and b' = lin ws b in
    ws_add ws base sign
      (if a' == a && b' == b then e else remake e (Ast.Bin (Ast.Div, a', b')));
    const
  | Ast.Aref (name, subs) ->
    let subs' = map_sharing (lin ws) subs in
    ws_add ws base sign
      (if subs' == subs then e else remake e (Ast.Aref (name, subs')));
    const

let rec subst_raw lookup (e : Ast.expr) : Ast.expr =
  match e.desc with
  | Ast.Int _ -> e
  | Ast.Var v -> (
      match lookup v with Some e' -> e' | None -> e)
  | Ast.Neg a ->
    let a' = subst_raw lookup a in
    if a' == a then e else remake e (Ast.Neg a')
  | Ast.Bin (op, a, b) ->
    let a' = subst_raw lookup a and b' = subst_raw lookup b in
    if a' == a && b' == b then e else remake e (Ast.Bin (op, a', b'))
  | Ast.Aref (name, subs) ->
    let subs' = map_sharing (subst_raw lookup) subs in
    if subs' == subs then e else remake e (Ast.Aref (name, subs'))

let subst lookup e = linearize (const_fold (subst_raw lookup e))

let is_pure_scalar = no_arrays

let assigned_vars stmts =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Lvar v, _) -> note v
    | Ast.Assign (Ast.Larr _, _) -> ()
    | Ast.Read v -> note v
    | Ast.If (_, t, e) ->
      List.iter go t;
      List.iter go e
    | Ast.For { var; body; _ } ->
      note var;
      List.iter go body
  in
  List.iter go stmts;
  List.rev !out

let rec uses_var v (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ -> false
  | Ast.Var x -> String.equal x v
  | Ast.Neg a -> uses_var v a
  | Ast.Bin (_, a, b) -> uses_var v a || uses_var v b
  | Ast.Aref (_, subs) -> List.exists (uses_var v) subs

let rec map_stmt_exprs f (s : Ast.stmt) : Ast.stmt =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let e' = f e in
    if e' == e then s else remake_stmt s (Ast.Assign (Ast.Lvar v, e'))
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    let subs' = map_sharing f subs and e' = f e in
    if subs' == subs && e' == e then s
    else remake_stmt s (Ast.Assign (Ast.Larr (name, subs'), e'))
  | Ast.Read _ -> s
  | Ast.If (cond, t, el) ->
    let lhs = f cond.Ast.lhs and rhs = f cond.Ast.rhs in
    let t' = map_sharing (map_stmt_exprs f) t in
    let el' = map_sharing (map_stmt_exprs f) el in
    if lhs == cond.Ast.lhs && rhs == cond.Ast.rhs && t' == t && el' == el then s
    else remake_stmt s (Ast.If ({ cond with Ast.lhs; rhs }, t', el'))
  | Ast.For ({ lo; hi; step; body; _ } as l) ->
    let lo' = f lo and hi' = f hi in
    let step' =
      match step with
      | None -> None
      | Some st ->
        let st' = f st in
        if st' == st then step else Some st'
    in
    let body' = map_sharing (map_stmt_exprs f) body in
    if lo' == lo && hi' == hi && step' == step && body' == body then s
    else remake_stmt s (Ast.For { l with lo = lo'; hi = hi'; step = step'; body = body' })

let map_program_exprs f prog = map_sharing (map_stmt_exprs f) prog
