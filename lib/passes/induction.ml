open Dda_lang

module Env = Map.Make (String)

(* [v = v + c] / [v = c + v] / [v = v - c] at the top level of a loop
   body; returns the increment constant. *)
let increment_of v (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v', e) when String.equal v v' -> (
      match (Expr_util.const_fold e).desc with
      | Ast.Bin (Ast.Add, { desc = Ast.Var x; _ }, { desc = Ast.Int c; _ })
        when String.equal x v -> Some c
      | Ast.Bin (Ast.Add, { desc = Ast.Int c; _ }, { desc = Ast.Var x; _ })
        when String.equal x v -> Some c
      | Ast.Bin (Ast.Sub, { desc = Ast.Var x; _ }, { desc = Ast.Int c; _ })
        when String.equal x v -> Some (-c)
      | _ -> None)
  | _ -> None

(* Count assignments/reads targeting [v] in a statement tree. *)
let rec writes_to v (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v', _) -> if String.equal v v' then 1 else 0
  | Ast.Read v' -> if String.equal v v' then 1 else 0
  | Ast.Assign (Ast.Larr _, _) -> 0
  | Ast.If (_, t, e) -> writes_in v t + writes_in v e
  | Ast.For { var; body; _ } ->
    (if String.equal var v then 1 else 0) + writes_in v body

and writes_in v stmts = List.fold_left (fun n s -> n + writes_to v s) 0 stmts

type candidate = {
  pos : int;  (* index of the increment statement in the body *)
  ivar : string;
  inc : int;
  base : Ast.expr;  (* entry value of [ivar] *)
}

let find_candidates env ~loop_var ~body =
  let assigned_in_body = Expr_util.assigned_vars body in
  let rec go pos = function
    | [] -> []
    | s :: rest -> (
        match s.Ast.sdesc with
        | Ast.Assign (Ast.Lvar v, _) -> (
            match increment_of v s with
            | Some inc when inc <> 0 && writes_in v body = 1 ->
              (* Entry value: a known pure definition that stays valid
                 through the loop, else the (now invariant) variable
                 itself. *)
              let base =
                match Env.find_opt v env with
                | Some e
                  when Expr_util.is_pure_scalar e
                       && (not (Expr_util.uses_var loop_var e))
                       && not
                            (List.exists
                               (fun w -> Expr_util.uses_var w e)
                               assigned_in_body) -> e
                | Some _ | None -> Ast.var v
              in
              { pos; ivar = v; inc; base } :: go (pos + 1) rest
            | Some _ | None -> go (pos + 1) rest)
        | _ -> go (pos + 1) rest)
  in
  go 0 body

let simplify e = Expr_util.linearize (Expr_util.const_fold e)

let mul_const c e = if c = 1 then e else simplify (Ast.bin Ast.Mul (Ast.int_ c) e)
let add_ a b = simplify (Ast.bin Ast.Add a b)
let sub_ a b = simplify (Ast.bin Ast.Sub a b)

(* Value of the induction variable in the iteration where the loop
   variable equals [i], after [k_extra] executions of the increment in
   the current iteration. *)
let value_at cand ~loop_var ~lo ~k_extra =
  let trips = add_ (sub_ (Ast.var loop_var) lo) (Ast.int_ k_extra) in
  add_ cand.base (mul_const cand.inc trips)

let subst_var v formula stmt =
  Expr_util.map_program_exprs
    (Expr_util.subst (fun x -> if String.equal x v then Some formula else None))
    [ stmt ]
  |> List.hd

let apply_candidate ~loop_var ~lo cand body =
  (* Only two distinct formulas exist — before the increment statement
     (k_extra = 0) and after it (k_extra = 1) — so build each once
     instead of re-simplifying per statement. *)
  let before = value_at cand ~loop_var ~lo ~k_extra:0 in
  let after = value_at cand ~loop_var ~lo ~k_extra:1 in
  List.mapi
    (fun pos s ->
       if pos = cand.pos then None
       else Some (subst_var cand.ivar (if pos < cand.pos then before else after) s))
    body
  |> List.filter_map Fun.id

(* Guarded final assignment preserving the post-loop value (zero-trip
   loops leave the variable at its entry value). *)
let final_assign cand ~lo ~hi =
  let trips = add_ (sub_ hi lo) (Ast.int_ 1) in
  let final = add_ cand.base (mul_const cand.inc trips) in
  Ast.if_
    { Ast.rel = Ast.Rge; lhs = hi; rhs = lo }
    [ Ast.assign (Ast.Lvar cand.ivar) final ]
    []

let rec ind_stmt env (s : Ast.stmt) : Ast.stmt list * Ast.expr Env.t =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let env = Env.filter (fun _ d -> not (Expr_util.uses_var v d)) (Env.remove v env) in
    let env =
      if Expr_util.is_pure_scalar e && not (Expr_util.uses_var v e) then
        Env.add v (Expr_util.const_fold e) env
      else env
    in
    ([ s ], env)
  | Ast.Assign (Ast.Larr _, _) -> ([ s ], env)
  | Ast.Read v ->
    ([ s ], Env.filter (fun _ d -> not (Expr_util.uses_var v d)) (Env.remove v env))
  | Ast.If (cond, then_0, else_0) ->
    let then_, _ = ind_stmts env then_0 in
    let else_, _ = ind_stmts env else_0 in
    (* Conservatively drop facts invalidated by either branch. *)
    let killed = Expr_util.assigned_vars (then_ @ else_) in
    let env =
      List.fold_left
        (fun m v ->
           Env.filter (fun _ d -> not (Expr_util.uses_var v d)) (Env.remove v m))
        env killed
    in
    ( (if then_ == then_0 && else_ == else_0 then [ s ]
       else [ { s with sdesc = Ast.If (cond, then_, else_) } ]),
      env )
  | Ast.For ({ var; lo; hi; step; body = body0; _ } as l) ->
    let body = body0 in
    let killed = var :: Expr_util.assigned_vars body in
    let env_in =
      List.fold_left
        (fun m v ->
           Env.filter (fun _ d -> not (Expr_util.uses_var v d)) (Env.remove v m))
        env killed
    in
    (* Transform nested loops first. *)
    let body, _ = ind_stmts env_in body in
    let unit_step =
      match step with
      | None -> true
      | Some e -> Expr_util.const_value e = Some 1
    in
    (* The guarded final assignment re-evaluates the bounds after the
       loop, so they must be pure and loop-invariant. One scan of the
       transformed body serves every check below. *)
    let assigned = Expr_util.assigned_vars body in
    let invariant e =
      Expr_util.is_pure_scalar e
      && (not (Expr_util.uses_var var e))
      && not (List.exists (fun w -> Expr_util.uses_var w e) assigned)
    in
    let bounds_pure = invariant lo && invariant hi in
    (* A body that reassigns (shadows) the loop variable would make the
       substitution formulas read the clobbered value. *)
    let var_stable = not (List.mem var assigned) in
    if not (unit_step && bounds_pure && var_stable) then
      ( (if body == body0 then [ s ]
         else [ { s with sdesc = Ast.For { l with body } } ]),
        env_in )
    else begin
      (* [env] (pre-kill) holds entry values; candidates whose variable
         has a stable definition there fold it in. Apply one candidate
         at a time and re-detect, so statement positions stay honest
         after the increment statement is removed. *)
      let rec apply_all body =
        match find_candidates env ~loop_var:var ~body with
        | [] -> (body, [])
        | cand :: _ ->
          let body' = apply_candidate ~loop_var:var ~lo cand body in
          let body'', finals = apply_all body' in
          (body'', final_assign cand ~lo ~hi :: finals)
      in
      let body, finals = apply_all body in
      ( (if body == body0 && finals = [] then [ s ]
         else { s with sdesc = Ast.For { l with body } } :: finals),
        (* The finals assign induction variables; drop them from env. *)
        List.fold_left
          (fun m v ->
             Env.filter (fun _ d -> not (Expr_util.uses_var v d)) (Env.remove v m))
          env_in
          (Expr_util.assigned_vars finals) )
    end

and ind_stmts env stmts =
  match stmts with
  | [] -> ([], env)
  | s :: rest ->
    let ss, env = ind_stmt env s in
    let rest', env = ind_stmts env rest in
    (match ss with
     | [ s' ] when s' == s && rest' == rest -> (stmts, env)
     | _ -> (ss @ rest', env))

let run prog = fst (ind_stmts Env.empty prog)
