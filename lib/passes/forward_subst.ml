open Dda_lang

module Env = Map.Make (String)

(* Bindings map a scalar to the pure scalar expression that defines it,
   already rewritten in terms of base variables. A binding dies when
   its variable or any variable it mentions is redefined. *)

let kill_var v env =
  Env.filter (fun key e -> (not (String.equal key v)) && not (Expr_util.uses_var v e)) env

let kill_vars vs env = List.fold_left (fun m v -> kill_var v m) env vs

let rewrite env e = Expr_util.subst (fun v -> Env.find_opt v env) e

let rec fs_stmt env (s : Ast.stmt) : Ast.stmt * Ast.expr Env.t =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e0) ->
    let e = rewrite env e0 in
    let env = kill_var v env in
    let env =
      if Expr_util.is_pure_scalar e && not (Expr_util.uses_var v e) then
        Env.add v e env
      else env
    in
    ((if e == e0 then s else { s with sdesc = Ast.Assign (Ast.Lvar v, e) }), env)
  | Ast.Assign (Ast.Larr (name, subs0), e0) ->
    let subs = Expr_util.map_sharing (rewrite env) subs0 in
    let e = rewrite env e0 in
    ( (if subs == subs0 && e == e0 then s
       else { s with sdesc = Ast.Assign (Ast.Larr (name, subs), e) }),
      env )
  | Ast.Read v -> (s, kill_var v env)
  | Ast.If (cond0, then_0, else_0) ->
    let lhs = rewrite env cond0.Ast.lhs and rhs = rewrite env cond0.Ast.rhs in
    let cond = if lhs == cond0.Ast.lhs && rhs == cond0.Ast.rhs then cond0
      else { cond0 with Ast.lhs = lhs; rhs } in
    let then_, env_t = fs_stmts env then_0 in
    let else_, env_e = fs_stmts env else_0 in
    let env' =
      Env.merge
        (fun _ a b ->
           match (a, b) with
           | Some x, Some y when Ast.equal_expr x y -> Some x
           | _ -> None)
        env_t env_e
    in
    ( (if cond == cond0 && then_ == then_0 && else_ == else_0 then s
       else { s with sdesc = Ast.If (cond, then_, else_) }),
      env' )
  | Ast.For ({ var; lo = lo0; hi = hi0; step = step0; body = body0; _ } as l) ->
    let lo = rewrite env lo0 and hi = rewrite env hi0 in
    let step =
      match step0 with
      | None -> None
      | Some st -> let st' = rewrite env st in if st' == st then step0 else Some st'
    in
    let killed = var :: Expr_util.assigned_vars body0 in
    let env_in = kill_vars killed env in
    let body, _ = fs_stmts env_in body0 in
    ( (if lo == lo0 && hi == hi0 && step == step0 && body == body0 then s
       else { s with sdesc = Ast.For { l with lo; hi; step; body } }),
      env_in )

and fs_stmts env stmts =
  match stmts with
  | [] -> ([], env)
  | s :: rest ->
    let s', env = fs_stmt env s in
    let rest', env = fs_stmts env rest in
    ((if s' == s && rest' == rest then stmts else s' :: rest'), env)

let run prog = fst (fs_stmts Env.empty prog)
