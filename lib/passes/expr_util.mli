(** Shared expression utilities for the optimizer passes. *)

open Dda_lang

val map_sharing : ('a -> 'a) -> 'a list -> 'a list
(** [List.map] that returns the input list physically unchanged when
    [f] returns every element physically unchanged. All rewriters in
    this module are identity-preserving in the same sense, so a
    fixpoint round of the pipeline allocates (almost) nothing. *)

val const_fold : Ast.expr -> Ast.expr
(** Bottom-up constant folding with algebraic identities ([e + 0],
    [e * 1], [e * 0], [e - 0], [e / 1], double negation). Division is
    folded only when the divisor is a non-zero constant and, for a
    constant dividend, only exactly as truncating division. *)

val linearize : Ast.expr -> Ast.expr
(** Canonicalize the additive structure: collect the expression as an
    integer linear combination of atoms (variables and opaque subtrees)
    plus a constant, merging and cancelling pure scalar atoms
    ([i - 1 + 1] becomes [i], [(n + 1) * 2] becomes [2 * n + 2]) and
    re-emitting deterministically. Atoms that read arrays are kept
    one-for-one — never merged, cancelled or dropped — so the access
    trace is preserved exactly. *)

val const_value : Ast.expr -> int option
(** [Some n] when the expression folds to the literal [n]. *)

val subst : (string -> Ast.expr option) -> Ast.expr -> Ast.expr
(** Substitute scalar variables; array names are untouched, and
    substitution descends into subscripts. The result is re-folded. *)

val is_pure_scalar : Ast.expr -> bool
(** True when the expression contains no array reference (its value
    depends only on scalar state). *)

val assigned_vars : Ast.stmt list -> string list
(** Scalars assigned (or [read]) anywhere in the statements, including
    loop variables of contained loops; no duplicates. *)

val uses_var : string -> Ast.expr -> bool

val map_program_exprs : (Ast.expr -> Ast.expr) -> Ast.program -> Ast.program
(** Rewrites every expression position of the program (subscripts,
    bounds, right-hand sides, conditions) with [f]. Statement structure
    is preserved. *)
