open Dda_numeric
open Dda_core

type verdict =
  | Independent
  | Maybe_dependent

(* ------------------------------------------------------------------ *)
(* Extended-integer intervals                                          *)
(* ------------------------------------------------------------------ *)

type interval = {
  lo : Ext_int.t;
  hi : Ext_int.t;
}

let top = { lo = Ext_int.neg_inf; hi = Ext_int.pos_inf }
let point z = { lo = Ext_int.fin z; hi = Ext_int.fin z }

(* Lower bounds sum with [add_down], upper bounds with [add]: each
   side rounds outward, so a mixed-infinity sum widens instead of
   raising. *)
let iadd a b = { lo = Ext_int.add_down a.lo b.lo; hi = Ext_int.add a.hi b.hi }

(* Scale by an integer; zero collapses to the point 0 (avoiding
   0 * oo). *)
let iscale k a =
  if Zint.is_zero k then point Zint.zero
  else if Zint.is_positive k then
    { lo = Ext_int.mul_zint k a.lo; hi = Ext_int.mul_zint k a.hi }
  else { lo = Ext_int.mul_zint k a.hi; hi = Ext_int.mul_zint k a.lo }

let contains iv z =
  Ext_int.compare iv.lo (Ext_int.fin z) <= 0
  && Ext_int.compare (Ext_int.fin z) iv.hi <= 0

let nonempty iv = Ext_int.compare iv.lo iv.hi <= 0

(* ------------------------------------------------------------------ *)
(* Per-variable boxes from the problem's bound rows                    *)
(* ------------------------------------------------------------------ *)

(* Bound rows arrive outermost-first per reference, so interval
   evaluation of a row's other variables uses already-computed outer
   boxes (triangular nests degrade gracefully to their bounding box —
   the rectangular approximation that makes this test inexact). *)
let boxes (p : Problem.t) =
  let nv = Problem.nvars p in
  let box = Array.make nv top in
  List.iter
    (fun (b : Problem.bound) ->
       let s = b.subject in
       let a = b.row.Consys.coeffs.(s) in
       if not (Zint.is_zero a) then begin
         (* a * x_s <= rhs - sum_{i<>s} c_i x_i *)
         let rest = ref (point b.row.Consys.rhs) in
         Array.iteri
           (fun i c ->
              if i <> s && not (Zint.is_zero c) then
                rest := iadd !rest (iscale (Zint.neg c) box.(i)))
           b.row.Consys.coeffs;
         if Zint.is_positive a then begin
           (* x_s <= rest / a: use the largest value, floored. *)
           match !rest.hi with
           | Ext_int.Fin h ->
             let ub = Zint.fdiv h a in
             box.(s) <- { box.(s) with hi = Ext_int.min box.(s).hi (Ext_int.fin ub) }
           | Ext_int.Pos_inf | Ext_int.Neg_inf -> ()
         end
         else begin
           (* negative coefficient: lower bound. x_s >= rest / a *)
           match !rest.hi with
           | Ext_int.Fin h ->
             let lb = Zint.cdiv h a in
             box.(s) <- { box.(s) with lo = Ext_int.max box.(s).lo (Ext_int.fin lb) }
           | Ext_int.Pos_inf | Ext_int.Neg_inf -> ()
         end
       end)
    p.ineqs;
  box

(* ------------------------------------------------------------------ *)
(* Simple GCD test (per dimension, bounds ignored)                     *)
(* ------------------------------------------------------------------ *)

let gcd_test (p : Problem.t) =
  let row_ok (r : Consys.row) =
    let g = Array.fold_left (fun g c -> Zint.gcd g c) Zint.zero r.coeffs in
    if Zint.is_zero g then Zint.is_zero r.rhs else Zint.divides g r.rhs
  in
  if List.for_all row_ok p.eqs then Maybe_dependent else Independent

(* ------------------------------------------------------------------ *)
(* Banerjee bounds test                                                *)
(* ------------------------------------------------------------------ *)

(* Range of a * i - b * i' over L <= i, i' <= U coupled by a direction.
   The formulas are the classical rectangular ones; [iv] is the shared
   box of the common loop. *)
let sc k e = if Zint.is_zero k then Ext_int.of_int 0 else Ext_int.mul_zint k e

let pos z = if Zint.is_positive z then z else Zint.zero
let negp z = if Zint.is_negative z then Zint.neg z else Zint.zero

(* max/min of c * x over [l, u]: c+ u - c- l / c+ l - c- u. *)
let term_max c l u = Ext_int.add (sc (pos c) u) (sc (Zint.neg (negp c)) l)
let term_min c l u = Ext_int.add (sc (pos c) l) (sc (Zint.neg (negp c)) u)

let pair_range a b iv dir =
  let l = iv.lo and u = iv.hi in
  let fin1 = Ext_int.fin Zint.one in
  let u1 = Ext_int.add u (Ext_int.neg fin1) (* u - 1 *) in
  match dir with
  | Direction.Dany ->
    (* independent choices: range(a i) + range(-b i') *)
    Some
      ( Ext_int.add_down (term_min a l u) (term_min (Zint.neg b) l u),
        Ext_int.add (term_max a l u) (term_max (Zint.neg b) l u) )
  | Direction.Deq ->
    if not (Ext_int.compare l u <= 0) then None
    else
      let c = Zint.sub a b in
      Some (term_min c l u, term_max c l u)
  | Direction.Dlt ->
    (* i < i'; with i' = i + d, d in [1, U - i]:
       f = (a - b) i - b d. *)
    if not (Ext_int.compare (Ext_int.add l fin1) u <= 0) then None
    else begin
      let ab = Zint.sub a b in
      let max_ =
        if Zint.sign b <= 0 then
          (* d = U - i: f = a i - b U over i in [L, U-1] *)
          Ext_int.add (term_max a l u1) (sc (Zint.neg b) u)
        else
          (* d = 1: f = (a - b) i - b *)
          Ext_int.add (term_max ab l u1) (Ext_int.fin (Zint.neg b))
      in
      let min_ =
        if Zint.sign b <= 0 then
          Ext_int.add_down (term_min ab l u1) (Ext_int.fin (Zint.neg b))
        else Ext_int.add_down (term_min a l u1) (sc (Zint.neg b) u)
      in
      Some (min_, max_)
    end
  | Direction.Dgt ->
    (* i > i'; i = i' + d: f = a d + (a - b) i'. *)
    if not (Ext_int.compare (Ext_int.add l fin1) u <= 0) then None
    else begin
      let ab = Zint.sub a b in
      let max_ =
        if Zint.sign a >= 0 then Ext_int.add (sc a u) (term_max (Zint.neg b) l u1)
        else Ext_int.add (Ext_int.fin a) (term_max ab l u1)
      in
      let min_ =
        if Zint.sign a >= 0 then Ext_int.add_down (Ext_int.fin a) (term_min ab l u1)
        else Ext_int.add_down (sc a u) (term_min (Zint.neg b) l u1)
      in
      Some (min_, max_)
    end

(* Bounds check of one equality row under a direction vector. *)
let row_feasible (p : Problem.t) box vector (r : Consys.row) =
  let nv = Problem.nvars p in
  let ncommon = p.ncommon in
  let range = ref (Some (point Zint.zero)) in
  let add_range mm =
    match (!range, mm) with
    | Some acc, Some (mn, mx) ->
      range := Some { lo = Ext_int.add_down acc.lo mn; hi = Ext_int.add acc.hi mx }
    | _, None | None, _ -> range := None
  in
  (* Common pairs first. *)
  for k = 0 to ncommon - 1 do
    let pv = Problem.var1 p k and qv = Problem.var2 p k in
    let a = r.coeffs.(pv) and b = Zint.neg r.coeffs.(qv) in
    (* term is a*i + coeff_q*i' = a*i - b*i' with b = -coeff_q *)
    let dir = if k < Array.length vector then vector.(k) else Direction.Dany in
    add_range (pair_range a b box.(pv) dir)
  done;
  (* Remaining variables contribute independently. *)
  let solo = ref (point Zint.zero) in
  for i = 0 to nv - 1 do
    let in_common_pair =
      (i < ncommon) || (i >= p.n1 && i < p.n1 + ncommon)
    in
    if (not in_common_pair) && not (Zint.is_zero r.coeffs.(i)) then
      solo :=
        {
          lo = Ext_int.add_down !solo.lo (term_min r.coeffs.(i) box.(i).lo box.(i).hi);
          hi = Ext_int.add !solo.hi (term_max r.coeffs.(i) box.(i).lo box.(i).hi);
        }
  done;
  match !range with
  | None -> false (* a direction with an empty region: infeasible *)
  | Some acc ->
    let total = iadd acc !solo in
    nonempty total && contains total r.rhs

let bounds_test_vector (p : Problem.t) box vector =
  (* Every enclosing loop must be non-empty for any dependence. *)
  let nv = Problem.nvars p in
  let loops_nonempty =
    let rec go i = i >= nv || ((i >= p.n1 + p.n2 || nonempty box.(i)) && go (i + 1)) in
    go 0
  in
  if not loops_nonempty then Independent
  else if List.for_all (row_feasible p box vector) p.eqs then Maybe_dependent
  else Independent

let bounds_test (p : Problem.t) =
  bounds_test_vector p (boxes p) (Array.make p.ncommon Direction.Dany)

let combined p =
  match gcd_test p with
  | Independent -> Independent
  | Maybe_dependent -> bounds_test p

(* ------------------------------------------------------------------ *)
(* Direction vectors (Wolfe 2.5.2 style hierarchical refinement)       *)
(* ------------------------------------------------------------------ *)

let unused_level (p : Problem.t) k =
  let pv = Problem.var1 p k and qv = Problem.var2 p k in
  List.for_all
    (fun (r : Consys.row) -> Zint.is_zero r.coeffs.(pv) && Zint.is_zero r.coeffs.(qv))
    p.eqs
  && List.for_all
       (fun (b : Problem.bound) ->
          (Zint.is_zero b.row.Consys.coeffs.(pv) || b.subject = pv)
          && (Zint.is_zero b.row.Consys.coeffs.(qv) || b.subject = qv))
       p.ineqs

let directions (p : Problem.t) =
  match gcd_test p with
  | Independent -> None
  | Maybe_dependent ->
    let box = boxes p in
    let ncommon = p.ncommon in
    let fixed = Array.init ncommon (fun k -> unused_level p k) in
    let test vector = bounds_test_vector p box vector in
    let root = Array.make ncommon Direction.Dany in
    (match test root with
     | Independent -> None
     | Maybe_dependent ->
       let out = ref [] in
       let rec expand vector k =
         let rec next k = if k >= ncommon then None else if fixed.(k) then next (k + 1) else Some k in
         match next k with
         | None -> out := Array.copy vector :: !out
         | Some k ->
           List.iter
             (fun d ->
                vector.(k) <- d;
                (match test vector with
                 | Independent -> ()
                 | Maybe_dependent -> expand vector (k + 1));
                vector.(k) <- Direction.Dany)
             [ Direction.Dlt; Direction.Deq; Direction.Dgt ]
       in
       if Array.for_all Fun.id fixed then Some [ root ]
       else begin
         expand (Array.copy root) 0;
         Some (List.rev !out)
       end)
