open Dda_lang

type loop_ctx = {
  lid : int;
  lvar : string;
  lb : Symexpr.t option;
  ub : Symexpr.t option;
}

type site = {
  array : string;
  role : [ `Read | `Write ];
  site_loc : Loc.t;
  stmt_loc : Loc.t;
  loops : loop_ctx list;
  subscripts : Symexpr.t option list;
}

let analyzable s = List.for_all Option.is_some s.subscripts

let constant_subscripts s =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Some e :: rest -> (
        match Symexpr.to_const e with
        | Some c -> go (c :: acc) rest
        | None -> None)
    | None :: _ -> None
  in
  go [] s.subscripts

(* Symbolic terms are versioned by reaching definition: "n#3" is the
   value of n after its third definition. Two sites share a symbol only
   when the same definition reaches both. *)
let sym_name name version = name ^ "#" ^ string_of_int version

type walk_state = {
  symbolic : bool;
  versions : (string, int) Hashtbl.t;
  mutable next_lid : int;
  mutable sites : site list;
}

let bump st v =
  let cur = match Hashtbl.find_opt st.versions v with Some n -> n | None -> 0 in
  Hashtbl.replace st.versions v (cur + 1)

let version st v = match Hashtbl.find_opt st.versions v with Some n -> n | None -> 0

(* [loops] is innermost-first: (ctx, vars assigned in that loop's body). *)
let to_symexpr st loops (e : Ast.expr) =
  let is_loop_var name = List.exists (fun (c, _) -> String.equal c.lvar name) loops in
  let invariant name =
    not (List.exists (fun (_, assigned) -> List.mem name assigned) loops)
  in
  let classify name =
    if is_loop_var name then `Var
    else if st.symbolic && invariant name then `Var
    else `NonAffine
  in
  match Symexpr.of_ast ~classify e with
  | None -> None
  | Some se ->
    (* Rename non-loop variables to their versioned symbol. Most
       subscripts mention only loop variables; skip the map rebuild
       (and the per-symbol string formatting) when nothing renames. *)
    if not (Symexpr.exists_var (fun name -> not (is_loop_var name)) se) then Some se
    else
      Some
        (Symexpr.rename
           (fun name -> if is_loop_var name then name else sym_name name (version st name))
           se)

let record st loops role name subs loc ~stmt_loc =
  let subscripts = List.map (to_symexpr st loops) subs in
  st.sites <-
    {
      array = name;
      role;
      site_loc = loc;
      stmt_loc;
      loops = List.rev_map fst loops;
      subscripts;
    }
    :: st.sites

(* Array reads appearing inside an expression (including inside other
   references' subscripts). *)
let rec scan_reads st loops ~stmt_loc (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> ()
  | Ast.Neg a -> scan_reads st loops ~stmt_loc a
  | Ast.Bin (_, a, b) ->
    scan_reads st loops ~stmt_loc a;
    scan_reads st loops ~stmt_loc b
  | Ast.Aref (name, subs) ->
    record st loops `Read name subs e.eloc ~stmt_loc;
    List.iter (scan_reads st loops ~stmt_loc) subs

let rec walk st loops (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    scan_reads st loops ~stmt_loc:s.sloc e;
    bump st v
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    record st loops `Write name subs s.sloc ~stmt_loc:s.sloc;
    List.iter (scan_reads st loops ~stmt_loc:s.sloc) subs;
    scan_reads st loops ~stmt_loc:s.sloc e
  | Ast.Read v -> bump st v
  | Ast.If (cond, then_, else_) ->
    scan_reads st loops ~stmt_loc:s.sloc cond.lhs;
    scan_reads st loops ~stmt_loc:s.sloc cond.rhs;
    List.iter (walk st loops) then_;
    List.iter (walk st loops) else_
  | Ast.For f ->
    scan_reads st loops ~stmt_loc:s.sloc f.lo;
    scan_reads st loops ~stmt_loc:s.sloc f.hi;
    Option.iter (scan_reads st loops ~stmt_loc:s.sloc) f.step;
    let lid = st.next_lid in
    st.next_lid <- st.next_lid + 1;
    (* Bounds are classified relative to the loops enclosing this one. *)
    let lb = to_symexpr st loops f.lo and ub = to_symexpr st loops f.hi in
    let lb, ub =
      match f.step with
      | None -> (lb, ub)
      | Some step -> (
          (* Non-unit steps should have been normalized away; if one
             survives, the variable's range is not contiguous — treat
             the bounds as unknown (sound, not exact). *)
          match Dda_passes.Expr_util.const_value step with
          | Some 1 -> (lb, ub)
          | Some _ | None -> (None, None))
    in
    let assigned = Dda_passes.Expr_util.assigned_vars f.body in
    let ctx = { lid; lvar = f.var; lb; ub } in
    List.iter (walk st ((ctx, assigned) :: loops)) f.body

let extract ?(symbolic = true) prog =
  let st =
    { symbolic; versions = Hashtbl.create 16; next_lid = 0; sites = [] }
  in
  List.iter (walk st []) prog;
  List.rev st.sites

let common_loops s1 s2 =
  let rec go n l1 l2 =
    match (l1, l2) with
    | c1 :: r1, c2 :: r2 when c1.lid = c2.lid -> go (n + 1) r1 r2
    | _ -> n
  in
  go 0 s1.loops s2.loops

let loop_table sites =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun s ->
       List.iter
         (fun c ->
            if not (Hashtbl.mem seen c.lid) then begin
              Hashtbl.add seen c.lid ();
              out := (c.lid, c.lvar) :: !out
            end)
         s.loops)
    sites;
  List.sort compare (List.rev !out)
