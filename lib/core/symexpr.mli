(** Affine expressions over named variables: [c0 + sum ck * vk].

    This is the currency of affine extraction — loop bounds and array
    subscripts are reduced to values of this type (over loop variables
    and symbolic terms) before being compiled into the indexed
    constraint systems the dependence tests consume. *)

open Dda_numeric

type t

val const : Zint.t -> t
val of_int : int -> t
val var : string -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Zint.t -> t -> t

val mul : t -> t -> t option
(** [None] unless at least one side is constant (the product would not
    be affine). *)

val div_exact : t -> Zint.t -> t option
(** Division by a constant; [Some] only when every coefficient and the
    constant term are divisible, so the result is exactly affine. *)

val coeff : t -> string -> Zint.t
val const_part : t -> Zint.t
val vars : t -> string list
(** Variables with non-zero coefficients, sorted. *)

val iter : (string -> Zint.t -> unit) -> t -> unit
(** Visit every (variable, non-zero coefficient) pair in sorted
    variable order, without materializing the list {!vars} builds. *)

val exists_var : (string -> bool) -> t -> bool
(** Does any variable (with a non-zero coefficient) satisfy the
    predicate? Allocation-free. *)

val is_const : t -> bool
val to_const : t -> Zint.t option

val eval : (string -> Zint.t) -> t -> Zint.t
val rename : (string -> string) -> t -> t
(** @raise Invalid_argument if the renaming merges two variables. *)

val subst : string -> t -> t -> t
(** [subst v e t] replaces [v] by [e] in [t]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val of_ast : classify:(string -> [ `Var | `NonAffine ]) -> Dda_lang.Ast.expr -> t option
(** Convert a mini-Fortran expression. [classify] says whether a scalar
    name may appear as a variable of the affine form (loop variable or
    symbolic term) or poisons the expression. Array references, products
    of two non-constant parts, and inexact division yield [None]. *)
