open Dda_lang

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         write buf (Str k);
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let rec pp fmt = function
  | (Null | Bool _ | Int _ | Str _) as j -> Format.pp_print_string fmt (to_string j)
  | List [] -> Format.pp_print_string fmt "[]"
  | List items ->
    Format.fprintf fmt "[@[<v 1>";
    List.iteri
      (fun i item ->
         if i > 0 then Format.fprintf fmt ",@,";
         pp fmt item)
      items;
    Format.fprintf fmt "@]]"
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
    Format.fprintf fmt "{@[<v 1>";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Format.fprintf fmt ",@,";
         Format.fprintf fmt "%s: %a" (to_string (Str k)) pp v)
      fields;
    Format.fprintf fmt "@]}"

(* ------------------------------------------------------------------ *)
(* Parsing (the subset this module emits)                              *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos >= n then '\x00' else s.[!pos] in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* Decode \uXXXX escapes back to UTF-8 bytes (no surrogate pairs:
       the emitter never produces them). *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; incr pos
             | '\\' -> Buffer.add_char buf '\\'; incr pos
             | '/' -> Buffer.add_char buf '/'; incr pos
             | 'n' -> Buffer.add_char buf '\n'; incr pos
             | 'r' -> Buffer.add_char buf '\r'; incr pos
             | 't' -> Buffer.add_char buf '\t'; incr pos
             | 'b' -> Buffer.add_char buf '\b'; incr pos
             | 'f' -> Buffer.add_char buf '\x0c'; incr pos
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some code -> add_utf8 buf code; pos := !pos + 5
                | None -> fail "bad \\u escape")
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    (match peek () with
     | '.' | 'e' | 'E' -> fail "non-integer numbers are not supported"
     | _ -> ());
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin incr pos; List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; elems (v :: acc)
          | ']' -> incr pos; List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin incr pos; Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; fields (kv :: acc)
          | '}' -> incr pos; Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | '-' | '0' .. '9' -> Int (parse_int ())
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let loc (l : Loc.t) = Str (Loc.to_string l)
let role = function `Read -> Str "read" | `Write -> Str "write"

let vector r v =
  Obj
    [
      ("directions", Str (Format.asprintf "%a" Direction.pp_vector v));
      ( "kind",
        Str (Format.asprintf "%a" Analyzer.pp_dep_kind (Analyzer.vector_kind r v)) );
    ]

let outcome (r : Analyzer.pair_report) =
  match r.outcome with
  | Analyzer.Constant d ->
    Obj [ ("verdict", Str (if d then "dependent" else "independent"));
          ("how", Str "constant-subscripts") ]
  | Analyzer.Gcd_independent ->
    Obj [ ("verdict", Str "independent"); ("how", Str "extended-gcd") ]
  | Analyzer.Assumed_dependent ->
    Obj [ ("verdict", Str "dependent"); ("how", Str "assumed-not-affine") ]
  | Analyzer.Tested t ->
    Obj
      ([
         ("verdict", Str (if t.dependent then "dependent" else "independent"));
         ("how", Str "tested");
         ("exact", Bool (not t.unknown));
       ]
       @ (match t.degraded with
          | Some reason -> [ ("degraded", Str (Budget.reason_name reason)) ]
          | None -> [])
       @ (match t.decided_by with
          | Some test -> [ ("decided_by", Str (Cascade.test_name test)) ]
          | None -> [])
       @ (if t.directions = [] then []
          else [ ("vectors", List (List.map (vector r) t.directions)) ])
       @
       match t.distance with
       | Some d ->
         [
           ( "distance",
             List
               (Array.to_list
                  (Array.map
                     (fun z ->
                        match Dda_numeric.Zint.to_int z with
                        | Some n -> Int n
                        | None -> Str (Dda_numeric.Zint.to_string z))
                     d)) );
         ]
       | None -> [])

let pair (r : Analyzer.pair_report) =
  Obj
    [
      ("array", Str r.array_name);
      ("ref1", Obj [ ("loc", loc r.loc1); ("role", role r.role1) ]);
      ("ref2", Obj [ ("loc", loc r.loc2); ("role", role r.role2) ]);
      ("self", Bool r.self_pair);
      ("common_loops", Int r.ncommon);
      ("outcome", outcome r);
    ]

let stats (s : Analyzer.stats) =
  Obj
    ([
      ("pairs", Int s.pairs);
      ("constant_cases", Int s.constant_cases);
      ("gcd_independent", Int s.gcd_independent);
      ("assumed_dependent", Int s.assumed);
      ( "plain_tests",
        Obj
          [
            ("svpc", Int s.plain_by_test.(0));
            ("acyclic", Int s.plain_by_test.(1));
            ("loop_residue", Int s.plain_by_test.(2));
            ("fourier", Int s.plain_by_test.(3));
          ] );
      ( "direction_tests",
        Obj
          [
            ("svpc", Int s.dir_counts.Direction.by_test.(0));
            ("acyclic", Int s.dir_counts.Direction.by_test.(1));
            ("loop_residue", Int s.dir_counts.Direction.by_test.(2));
            ("fourier", Int s.dir_counts.Direction.by_test.(3));
          ] );
      ( "memo",
        Obj
          [
            ("gcd_lookups", Int s.memo_lookups_nobounds);
            ("gcd_hits", Int s.memo_hits_nobounds);
            ("gcd_unique", Int s.memo_unique_nobounds);
            ("full_lookups", Int s.memo_lookups_full);
            ("full_hits", Int s.memo_hits_full);
            ("full_unique", Int s.memo_unique_full);
          ] );
      ("independent_pairs", Int s.independent_pairs);
      ("dependent_pairs", Int s.dependent_pairs);
    ]
    (* only when something degraded: keeps the output stable for the
       (overwhelmingly common) exact runs *)
    @
    if s.degraded_pairs = 0 then []
    else [ ("degraded_pairs", Int s.degraded_pairs) ])

let report (r : Analyzer.report) =
  Obj [ ("pairs", List (List.map pair r.pair_reports)); ("stats", stats r.stats) ]

let metrics (snap : Dda_obs.Metrics.snapshot) =
  Obj
    [
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) snap.counters));
      ( "histograms",
        Obj
          (List.map
             (fun (n, (h : Dda_obs.Metrics.hist_snapshot)) ->
                ( n,
                  Obj
                    [
                      ("count", Int h.count);
                      ("sum", Int h.sum);
                      ( "buckets",
                        List
                          (List.map
                             (fun (i, c) ->
                                List [ Int (Dda_obs.Metrics.bucket_lo i); Int c ])
                             h.buckets) );
                    ] ))
             snap.histograms) );
    ]
