open Dda_lang

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         write buf (Str k);
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let rec pp fmt = function
  | (Null | Bool _ | Int _ | Str _) as j -> Format.pp_print_string fmt (to_string j)
  | List [] -> Format.pp_print_string fmt "[]"
  | List items ->
    Format.fprintf fmt "[@[<v 1>";
    List.iteri
      (fun i item ->
         if i > 0 then Format.fprintf fmt ",@,";
         pp fmt item)
      items;
    Format.fprintf fmt "@]]"
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
    Format.fprintf fmt "{@[<v 1>";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Format.fprintf fmt ",@,";
         Format.fprintf fmt "%s: %a" (to_string (Str k)) pp v)
      fields;
    Format.fprintf fmt "@]}"

let loc (l : Loc.t) = Str (Loc.to_string l)
let role = function `Read -> Str "read" | `Write -> Str "write"

let vector r v =
  Obj
    [
      ("directions", Str (Format.asprintf "%a" Direction.pp_vector v));
      ( "kind",
        Str (Format.asprintf "%a" Analyzer.pp_dep_kind (Analyzer.vector_kind r v)) );
    ]

let outcome (r : Analyzer.pair_report) =
  match r.outcome with
  | Analyzer.Constant d ->
    Obj [ ("verdict", Str (if d then "dependent" else "independent"));
          ("how", Str "constant-subscripts") ]
  | Analyzer.Gcd_independent ->
    Obj [ ("verdict", Str "independent"); ("how", Str "extended-gcd") ]
  | Analyzer.Assumed_dependent ->
    Obj [ ("verdict", Str "dependent"); ("how", Str "assumed-not-affine") ]
  | Analyzer.Tested t ->
    Obj
      ([
         ("verdict", Str (if t.dependent then "dependent" else "independent"));
         ("how", Str "tested");
         ("exact", Bool (not t.unknown));
       ]
       @ (match t.degraded with
          | Some reason -> [ ("degraded", Str (Budget.reason_name reason)) ]
          | None -> [])
       @ (match t.decided_by with
          | Some test -> [ ("decided_by", Str (Cascade.test_name test)) ]
          | None -> [])
       @ (if t.directions = [] then []
          else [ ("vectors", List (List.map (vector r) t.directions)) ])
       @
       match t.distance with
       | Some d ->
         [
           ( "distance",
             List
               (Array.to_list
                  (Array.map
                     (fun z ->
                        match Dda_numeric.Zint.to_int z with
                        | Some n -> Int n
                        | None -> Str (Dda_numeric.Zint.to_string z))
                     d)) );
         ]
       | None -> [])

let pair (r : Analyzer.pair_report) =
  Obj
    [
      ("array", Str r.array_name);
      ("ref1", Obj [ ("loc", loc r.loc1); ("role", role r.role1) ]);
      ("ref2", Obj [ ("loc", loc r.loc2); ("role", role r.role2) ]);
      ("self", Bool r.self_pair);
      ("common_loops", Int r.ncommon);
      ("outcome", outcome r);
    ]

let stats (s : Analyzer.stats) =
  Obj
    ([
      ("pairs", Int s.pairs);
      ("constant_cases", Int s.constant_cases);
      ("gcd_independent", Int s.gcd_independent);
      ("assumed_dependent", Int s.assumed);
      ( "plain_tests",
        Obj
          [
            ("svpc", Int s.plain_by_test.(0));
            ("acyclic", Int s.plain_by_test.(1));
            ("loop_residue", Int s.plain_by_test.(2));
            ("fourier", Int s.plain_by_test.(3));
          ] );
      ( "direction_tests",
        Obj
          [
            ("svpc", Int s.dir_counts.Direction.by_test.(0));
            ("acyclic", Int s.dir_counts.Direction.by_test.(1));
            ("loop_residue", Int s.dir_counts.Direction.by_test.(2));
            ("fourier", Int s.dir_counts.Direction.by_test.(3));
          ] );
      ( "memo",
        Obj
          [
            ("gcd_lookups", Int s.memo_lookups_nobounds);
            ("gcd_hits", Int s.memo_hits_nobounds);
            ("gcd_unique", Int s.memo_unique_nobounds);
            ("full_lookups", Int s.memo_lookups_full);
            ("full_hits", Int s.memo_hits_full);
            ("full_unique", Int s.memo_unique_full);
          ] );
      ("independent_pairs", Int s.independent_pairs);
      ("dependent_pairs", Int s.dependent_pairs);
    ]
    (* only when something degraded: keeps the output stable for the
       (overwhelmingly common) exact runs *)
    @
    if s.degraded_pairs = 0 then []
    else [ ("degraded_pairs", Int s.degraded_pairs) ])

let report (r : Analyzer.report) =
  Obj [ ("pairs", List (List.map pair r.pair_reports)); ("stats", stats r.stats) ]

let metrics (snap : Dda_obs.Metrics.snapshot) =
  Obj
    [
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) snap.counters));
      ( "histograms",
        Obj
          (List.map
             (fun (n, (h : Dda_obs.Metrics.hist_snapshot)) ->
                ( n,
                  Obj
                    [
                      ("count", Int h.count);
                      ("sum", Int h.sum);
                      ( "buckets",
                        List
                          (List.map
                             (fun (i, c) ->
                                List [ Int (Dda_obs.Metrics.bucket_lo i); Int c ])
                             h.buckets) );
                    ] ))
             snap.histograms) );
    ]
