(** Per-variable integer bound boxes [lo_i <= t_i <= hi_i] with
    infinities, shared by the SVPC and Acyclic tests: single-variable
    constraints are absorbed here, multi-variable ones stay as rows. *)

open Dda_numeric

type t

val create : int -> t
(** All variables unbounded. *)

val copy : t -> t
val nvars : t -> int
val lo : t -> int -> Ext_int.t
val hi : t -> int -> Ext_int.t

val lo_why : t -> int -> Cert.deriv option
(** Derivation of the bound row [-t_i <= -lo], when the bound is finite
    and was installed with a provenance. *)

val hi_why : t -> int -> Cert.deriv option
(** Derivation of [t_i <= hi]. *)

val tighten_lo : ?why:Cert.deriv -> t -> int -> Zint.t -> unit
(** [why], if given, must derive the row [-t_i <= -v]; it is recorded
    when the bound strictly improves. *)

val tighten_hi : ?why:Cert.deriv -> t -> int -> Zint.t -> unit
(** [why] must derive [t_i <= v]. *)

val absorb :
  ?why:Cert.deriv -> t -> Consys.row -> [ `Absorbed | `Trivial | `False ]
(** Fold a zero- or one-variable row into the box. [`Trivial] means the
    row holds vacuously ([0 <= b], [b >= 0]); [`False] means it can
    never hold. [why], if given, must derive the absorbed row; the
    stored bound derivation wraps it in {!Cert.Tighten} when the
    coefficient is not a unit. @raise Invalid_argument on a row with two
    or more variables. *)

val consistent : t -> bool
(** Every interval non-empty. *)

val first_empty : t -> int option
(** Index of a variable whose interval is empty, if any. *)

val refute_empty : t -> Cert.infeasible option
(** A certificate that the box is empty: the crossing variable's two
    bound rows sum to [0 <= hi - lo < 0]. [None] when consistent.
    @raise Invalid_argument when the box is empty but the crossing
    bounds were installed without provenance. *)

val sample : t -> Zint.t array option
(** A point inside the box ([None] when inconsistent): the lower bound
    where finite, else the upper bound, else zero. *)

val to_rows : t -> Consys.row list
(** The box as single-variable rows of width [nvars]. *)

val pp : Format.formatter -> t -> unit
