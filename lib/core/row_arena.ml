open Dda_numeric

type t = {
  mutable data : Zint.t array;
  mutable len : int;
}

let create ?(capacity = 256) () =
  let capacity = max 1 capacity in
  { data = Array.make capacity Zint.zero; len = 0 }

let length a = a.len
let capacity a = Array.length a.data

let grow a needed =
  let cap = ref (Array.length a.data) in
  while !cap < needed do
    cap := 2 * !cap
  done;
  let data = Array.make !cap Zint.zero in
  Array.blit a.data 0 data 0 a.len;
  a.data <- data

let alloc a n =
  if n < 0 then invalid_arg "Row_arena.alloc: negative width";
  let off = a.len in
  if off + n > Array.length a.data then grow a (off + n);
  (* Slots past a truncation point may hold stale values; hand out
     zeroed slices so callers can accumulate in place. *)
  Array.fill a.data off n Zint.zero;
  a.len <- off + n;
  off

let get a i = a.data.(i)
let set a i v = a.data.(i) <- v

let blit_from a src =
  let n = Array.length src in
  let off = a.len in
  if off + n > Array.length a.data then grow a (off + n);
  Array.blit src 0 a.data off n;
  a.len <- off + n;
  off

let mark a = a.len

let truncate a m =
  if m < 0 || m > a.len then invalid_arg "Row_arena.truncate: bad mark";
  a.len <- m

let reset a = a.len <- 0

(* Matches the structural row hash the solver's dedup table always
   used: seeded by the width, one multiplicative mix per element. *)
let hash_slice a ~off ~len =
  let h = ref len in
  for i = off to off + len - 1 do
    h := (!h * 1000003) + Zint.hash a.data.(i)
  done;
  !h land max_int

let rec eq_slices (data : Zint.t array) i j k =
  k < 0 || (Zint.equal data.(i + k) data.(j + k) && eq_slices data i j (k - 1))

let equal_slice a i j ~len = eq_slices a.data i j (len - 1)
