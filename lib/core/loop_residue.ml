open Dda_numeric

type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Zint.t array

let two_var_form (r : Consys.row) =
  match Consys.nonzero_vars r with
  | [ i; j ] ->
    let ai = r.coeffs.(i) and aj = r.coeffs.(j) in
    if Zint.equal ai (Zint.neg aj) then
      (* a*(t_p - t_n) <= rhs with a > 0 *)
      let p, n, a = if Zint.is_positive ai then (i, j, ai) else (j, i, aj) in
      Some (p, n, a)
    else None
  | _ -> None

let applicable rows =
  List.for_all
    (fun (r : Consys.row) ->
       match Consys.num_vars_used r with
       | 0 | 1 -> true
       | 2 -> two_var_form r <> None
       | _ -> false)
    rows

(* Edges (src, dst, w, why) encode x_dst - x_src <= w; node [nvars] is
   the paper's special node n0 anchoring single-variable constraints
   (read as the constant 0, so every edge's inequality is literally a
   row of the system — tightened by the coefficient when it is not a
   unit — and [why] derives that row). *)
let edges_of box rows =
  let nvars = Bounds.nvars box in
  let n0 = nvars in
  let edges = ref [] in
  let add src dst w why = edges := (src, dst, w, why) :: !edges in
  let constant_false = ref None in
  List.iter
    (fun ({ Cert.row = r; why } : Cert.drow) ->
       let tightened a = if Zint.is_one (Zint.abs a) then why else Cert.Tighten why in
       match Consys.nonzero_vars r with
       | [] -> if Zint.is_negative r.rhs then constant_false := Some why
       | [ i ] ->
         let a = r.coeffs.(i) in
         if Zint.is_positive a then add n0 i (Zint.fdiv r.rhs a) (Some (tightened a))
         else add i n0 (Zint.neg (Zint.cdiv r.rhs a)) (Some (tightened a))
       | _ -> (
           match two_var_form r with
           | Some (p, n, a) -> add n p (Zint.fdiv r.rhs a) (Some (tightened a))
           | None -> invalid_arg "Loop_residue: inapplicable row"))
    rows;
  for i = 0 to nvars - 1 do
    (match Bounds.hi box i with
     | Ext_int.Fin h -> add n0 i h (Bounds.hi_why box i)
     | Ext_int.Neg_inf | Ext_int.Pos_inf -> ());
    match Bounds.lo box i with
    | Ext_int.Fin l -> add i n0 (Zint.neg l) (Bounds.lo_why box i)
    | Ext_int.Neg_inf | Ext_int.Pos_inf -> ()
  done;
  (!edges, !constant_false)

(* Every edge of a cycle derives a row [x_dst - x_src <= w]; around a
   cycle each vertex occurs as often as source and as destination, so
   the unit-multiplier sum of those rows is variable-free with
   right-hand side the (negative) cycle weight. *)
let cycle_cert cycle =
  let terms =
    List.map
      (fun (_, _, _, why) ->
         match why with
         | Some w -> (Zint.one, w)
         | None -> invalid_arg "Loop_residue: cycle edge lacks provenance")
      cycle
  in
  let weight =
    List.fold_left (fun acc (_, _, w, _) -> Zint.add acc w) Zint.zero cycle
  in
  assert (Zint.is_negative weight);
  Cert.Refute (Cert.Comb terms)

let m_calls = Dda_obs.Metrics.counter "test.loop_residue.calls"
let m_indep = Dda_obs.Metrics.counter "test.loop_residue.independent"

let run_inner ?budget box rows =
  Failpoint.hit "loop_residue.run";
  let tick cost = match budget with Some b -> Budget.tick b ~cost | None -> () in
  if not (applicable (List.map (fun (dr : Cert.drow) -> dr.row) rows)) then None
  else begin
    let nvars = Bounds.nvars box in
    let edges, constant_false = edges_of box rows in
    match constant_false with
    | Some why -> Some (Infeasible (Cert.Refute why))
    | None ->
      (* Bellman-Ford from a virtual source connected to every node with
         weight 0 (equivalently: all distances start at 0). *)
      let n = nvars + 1 in
      let dist = Array.make n Zint.zero in
      let pred = Array.make n None in
      let relax_pass () =
        tick (List.length edges + 1);
        let changed = ref None in
        List.iter
          (fun ((src, dst, w, _) as e) ->
             let cand = Zint.add dist.(src) w in
             if Zint.compare cand dist.(dst) < 0 then begin
               dist.(dst) <- cand;
               pred.(dst) <- Some e;
               changed := Some dst
             end)
          edges;
        !changed
      in
      (* n passes converge for n nodes; an improving (n+1)-th pass
         witnesses a negative cycle. *)
      for _ = 1 to n do
        ignore (relax_pass ())
      done;
      (match relax_pass () with
       | Some v ->
         (* A vertex improved after convergence should have: its
            predecessor chain is at least n+1 edges long, so walking it
            revisits a vertex, and any cycle in the predecessor graph
            has negative weight (each relaxation strictly decreased a
            distance along it). *)
         let visited = Array.make n false in
         let rec find_on_cycle u =
           if visited.(u) then u
           else begin
             visited.(u) <- true;
             match pred.(u) with
             | Some (src, _, _, _) -> find_on_cycle src
             | None -> assert false
           end
         in
         let start = find_on_cycle v in
         let rec collect u acc =
           match pred.(u) with
           | Some ((src, _, _, _) as e) ->
             let acc = e :: acc in
             if src = start then acc else collect src acc
           | None -> assert false
         in
         Some (Infeasible (cycle_cert (collect start [])))
       | None ->
         let d0 = dist.(nvars) in
         Some (Feasible (Array.init nvars (fun i -> Zint.sub dist.(i) d0))))
  end

let run ?budget box rows =
  Dda_obs.Metrics.incr m_calls;
  let out =
    Dda_obs.Trace.wrap ~name:"loop-residue"
      ~args:(fun out ->
          [ ( "verdict",
              match out with
              | Some (Infeasible _) -> 0
              | Some (Feasible _) -> 1
              | None -> 2 ) ])
      (fun () ->
         Dda_obs.Attrib.time Dda_obs.Attrib.Loop_residue (fun () ->
             run_inner ?budget box rows))
  in
  (match out with
   | Some (Infeasible _) -> Dda_obs.Metrics.incr m_indep
   | _ -> ());
  out

let to_dot box rows =
  let nvars = Bounds.nvars box in
  let edges, _ = edges_of box rows in
  let name i = if i = nvars then "n0" else Printf.sprintf "t%d" i in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph loop_residue {\n";
  List.iter
    (fun (src, dst, w, _) ->
       Buffer.add_string buf
         (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" (name src) (name dst)
            (Zint.to_string w)))
    (List.rev edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
