type 'a stripe = {
  lock : Mutex.t;
  table : 'a Memo_table.t;
  mutable contended : int;
}

type 'a t = {
  mask : int;  (* stripe count - 1; count is a power of two *)
  shift : int;  (* take the stripe index from the mixed hash's top bits *)
  stripes : 'a stripe array;
}

let m_contended = Dda_obs.Metrics.counter "memo.stripe.contended"

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(stripes = 32) ?initial_buckets () : _ t =
  let n = next_pow2 (max 1 stripes) in
  let log2 = ref 0 in
  while 1 lsl !log2 < n do incr log2 done;
  { mask = n - 1;
    shift = Sys.int_size - 1 - !log2;
    stripes =
      Array.init n (fun _ ->
          { lock = Mutex.create ();
            table = Memo_table.create ?initial_buckets ();
            contended = 0 }) }

let stripes (t : _ t) = Array.length t.stripes

(* Fibonacci multiplicative mix (Knuth): the per-stripe Memo_table
   buckets index with [h mod nbuckets] over power-of-two bucket
   counts, i.e. the hash's low bits — so the stripe index must come
   from independent bits or each stripe would populate only
   1/stripes of its buckets. *)
let stripe_for (t : _ t) h =
  t.stripes.(((h * 0x6b43a9b5) lsr t.shift) land t.mask)

(* Acquire, counting the acquisitions that had to block. try_lock
   first: a failure means another domain holds the stripe right now —
   that is the contention signal the bench uses to prove stripes are
   not a bottleneck. The per-stripe counter is bumped after the lock
   is finally held, so it needs no atomics. *)
let lock_stripe (s : _ stripe) =
  if not (Mutex.try_lock s.lock) then begin
    Dda_obs.Metrics.incr m_contended;
    Mutex.lock s.lock;
    s.contended <- s.contended + 1
  end

let find (t : _ t) key =
  let s = stripe_for t (Memo_table.hash_key key) in
  lock_stripe s;
  let r = Memo_table.find s.table key in
  Mutex.unlock s.lock;
  r

let add (t : _ t) key value =
  let s = stripe_for t (Memo_table.hash_key key) in
  lock_stripe s;
  Memo_table.add s.table key value;
  Mutex.unlock s.lock

let find_or_add (t : _ t) key compute =
  Failpoint.hit "memo.find_or_add";
  let s = stripe_for t (Memo_table.hash_key key) in
  lock_stripe s;
  match Memo_table.find s.table key with
  | Some v ->
    Mutex.unlock s.lock;
    (v, true)
  | None ->
    (* Compute with no lock held: a full-table compute recurses into
       the gcd table (possibly the same stripe of another instance —
       or, with one shared instance per kind, a different table
       entirely, but the discipline is uniform), and [compute] may
       raise (budgets, failpoints), in which case nothing is stored.
       A racing domain may add the key first; [Memo_table.add]
       replaces, and deterministic computes make the values
       equivalent, so the race only costs the duplicate compute.
       The key is copied before [compute] runs: the caller may have
       handed us a scratch buffer that nested lookups reuse. *)
    Mutex.unlock s.lock;
    let key = Array.copy key in
    let v = compute () in
    lock_stripe s;
    Memo_table.add s.table key v;
    Mutex.unlock s.lock;
    (v, false)

let length (t : _ t) =
  Array.fold_left
    (fun acc s ->
       lock_stripe s;
       let n = Memo_table.length s.table in
       Mutex.unlock s.lock;
       acc + n)
    0 t.stripes

let iter f (t : _ t) =
  Array.iter
    (fun s ->
       lock_stripe s;
       Fun.protect ~finally:(fun () -> Mutex.unlock s.lock)
         (fun () -> Memo_table.iter f s.table))
    t.stripes

let stats (t : _ t) : Memo_table.stats =
  Array.fold_left
    (fun (acc : Memo_table.stats) s ->
       lock_stripe s;
       let st = Memo_table.stats s.table in
       Mutex.unlock s.lock;
       { Memo_table.size = acc.size + st.size;
         buckets = acc.buckets + st.buckets;
         lookups = acc.lookups + st.lookups;
         hits = acc.hits + st.hits })
    { Memo_table.size = 0; buckets = 0; lookups = 0; hits = 0 }
    t.stripes

let contended (t : _ t) =
  Array.fold_left
    (fun acc s ->
       lock_stripe s;
       let c = s.contended in
       Mutex.unlock s.lock;
       acc + c)
    0 t.stripes

let reset_counters (t : _ t) =
  Array.iter
    (fun s ->
       lock_stripe s;
       Memo_table.reset_counters s.table;
       s.contended <- 0;
       Mutex.unlock s.lock)
    t.stripes
