open Dda_numeric
open Dda_linalg

type reduction = {
  nfree : int;
  x_const : Zint.t array;
  x_coeff : Zint.t array array;
  system : Consys.t;
}

type outcome =
  | Independent of Cert.eq_refutation
  | Reduced of reduction

(* Scale the rational refutation vector from the echelon solve into
   integer multipliers plus a modulus: with [y = multipliers / L] and
   [A . y] integral, [sum_j multipliers.(j) * a_ij] is divisible by [L]
   for every variable [i] while [sum_j multipliers.(j) * c_j] is not
   (because [c . y] is not an integer — which also forces [L >= 2]). *)
let refutation_of_y y =
  let l = Array.fold_left (fun acc q -> Zint.lcm acc (Qnum.den q)) Zint.one y in
  assert (Zint.compare l Zint.two >= 0);
  let multipliers =
    Array.map (fun q -> Qnum.to_zint_exn (Qnum.mul q (Qnum.of_zint l))) y
  in
  { Cert.multipliers; modulus = l }

let transform_row red (r : Consys.row) =
  let nv = Array.length red.x_const in
  if Array.length r.coeffs <> nv then invalid_arg "Gcd_test.transform_row: width";
  let coeffs = Array.make red.nfree Zint.zero in
  let const = ref Zint.zero in
  Array.iteri
    (fun i a ->
       if not (Zint.is_zero a) then begin
         const := Zint.add !const (Zint.mul a red.x_const.(i));
         for j = 0 to red.nfree - 1 do
           coeffs.(j) <- Zint.add coeffs.(j) (Zint.mul a red.x_coeff.(i).(j))
         done
       end)
    r.coeffs;
  Consys.normalize_row { Consys.coeffs; rhs = Zint.sub r.rhs !const }

let m_calls = Dda_obs.Metrics.counter "test.gcd.calls"
let m_indep = Dda_obs.Metrics.counter "test.gcd.independent"

let run_eqs_inner ?budget (p : Problem.t) =
  Failpoint.hit "gcd.run_eqs";
  let n = Problem.nvars p in
  let eqs = Array.of_list p.eqs in
  let m = Array.length eqs in
  (match budget with
   | Some b -> Budget.tick b ~cost:((n * m) + 1)
   | None -> ());
  if n = 0 then begin
    (* No variables at all (everything canonicalized away): each
       equality is a closed claim [0 = rhs]. *)
    let offender = ref (-1) in
    Array.iteri
      (fun j (r : Consys.row) ->
         if !offender < 0 && not (Zint.is_zero r.rhs) then offender := j)
      eqs;
    if !offender < 0 then
      Reduced
        {
          nfree = 0;
          x_const = [||];
          x_coeff = [||];
          system = Consys.make ~nvars:0 [];
        }
    else begin
      (* [0 = rhs] with rhs <> 0: multiplier 1 on that equation and any
         modulus exceeding |rhs| refutes it. *)
      let multipliers = Array.make m Zint.zero in
      multipliers.(!offender) <- Zint.one;
      Independent
        { Cert.multipliers; modulus = Zint.succ (Zint.abs eqs.(!offender).rhs) }
    end
  end
  else if m = 0 then
    (* No subscript equations (rank-0 corner cases): every variable is
       its own free parameter. *)
    Reduced
      {
        nfree = n;
        x_const = Array.make n Zint.zero;
        x_coeff =
          Array.init n (fun i ->
              Array.init n (fun j -> if i = j then Zint.one else Zint.zero));
        system = Consys.make ~nvars:n [];
      }
  else begin
    (* x . A = c with A an n x m matrix. *)
    let a = Array.init n (fun i -> Array.init m (fun j -> eqs.(j).Consys.coeffs.(i))) in
    let c = Array.init m (fun j -> eqs.(j).Consys.rhs) in
    let { Matrix.u; d; rank; _ } = Matrix.unimodular_factor a in
    match Matrix.solve_echelon ~d ~c with
    | None ->
      let y =
        match Matrix.echelon_refutation ~d ~c with
        | Some y -> y
        | None -> assert false (* solve failed, so a refutation exists *)
      in
      Independent (refutation_of_y y)
    | Some { Matrix.fixed; nfree } ->
      (* x = t . U; t = (fixed_0 .. fixed_{rank-1}, free parameters). *)
      let x_const =
        Array.init n (fun i ->
            let acc = ref Zint.zero in
            for k = 0 to rank - 1 do
              acc := Zint.add !acc (Zint.mul fixed.(k) u.(k).(i))
            done;
            !acc)
      in
      let x_coeff = Array.init n (fun i -> Array.init nfree (fun j -> u.(rank + j).(i))) in
      Reduced { nfree; x_const; x_coeff; system = Consys.make ~nvars:nfree [] }
  end

let run_eqs ?budget (p : Problem.t) =
  Dda_obs.Metrics.incr m_calls;
  let out =
    Dda_obs.Trace.wrap ~name:"gcd"
      ~args:(fun out ->
          [ ( "verdict",
              match out with Independent _ -> 0 | Reduced _ -> 1 ) ])
      (fun () ->
         Dda_obs.Attrib.time Dda_obs.Attrib.Gcd (fun () ->
             run_eqs_inner ?budget p))
  in
  (match out with Independent _ -> Dda_obs.Metrics.incr m_indep | _ -> ());
  out

let attach_bounds (p : Problem.t) red =
  let rows = List.map (transform_row red) (Problem.ineq_rows p) in
  { red with system = Consys.make ~nvars:red.nfree rows }

let run ?budget p =
  match run_eqs ?budget p with
  | Independent _ as i -> i
  | Reduced red -> Reduced (attach_bounds p red)

let x_of_t red t =
  if Array.length t <> red.nfree then invalid_arg "Gcd_test.x_of_t: width";
  Array.mapi
    (fun i x0 ->
       let acc = ref x0 in
       for j = 0 to red.nfree - 1 do
         acc := Zint.add !acc (Zint.mul red.x_coeff.(i).(j) t.(j))
       done;
       !acc)
    red.x_const

let delta red p q =
  let rec same j =
    j >= red.nfree
    || (Zint.equal red.x_coeff.(p).(j) red.x_coeff.(q).(j) && same (j + 1))
  in
  if same 0 then Some (Zint.sub red.x_const.(p) red.x_const.(q)) else None
