open Dda_numeric
open Dda_lang

type memo_mode =
  | Memo_off
  | Memo_simple
  | Memo_improved
  | Memo_symmetric

type config = {
  symbolic : bool;
  memo : memo_mode;
  directions : bool;
  prune : Direction.prune;
  fm_tighten : bool;
  run_pipeline : bool;
  within_nest_only : bool;
  limits : Budget.limits;
}

let default_config =
  {
    symbolic = true;
    memo = Memo_improved;
    directions = true;
    prune = Direction.full_pruning;
    fm_tighten = false;
    run_pipeline = true;
    within_nest_only = true;
    limits = Budget.default_limits;
  }

type outcome =
  | Constant of bool
  | Assumed_dependent
  | Gcd_independent
  | Tested of {
      dependent : bool;
      unknown : bool;
      decided_by : Cascade.test option;
      directions : Direction.dir array list;
      distance : Zint.t array option;
      implicit_bb : bool;
      degraded : Budget.reason option;
          (* the query's budget ran out: [dependent]/[directions] are a
             sound over-approximation, not the exact answer *)
    }

type pair_report = {
  array_name : string;
  loc1 : Loc.t;
  loc2 : Loc.t;
  stmt1 : Loc.t;
  stmt2 : Loc.t;
  role1 : [ `Read | `Write ];
  role2 : [ `Read | `Write ];
  self_pair : bool;
  ncommon : int;
  common_ids : int list;
  enclosing_ids1 : int list;
  enclosing_ids2 : int list;
  outcome : outcome;
}

type dep_kind =
  | Flow
  | Anti
  | Output
  | Input

let pp_dep_kind fmt k =
  Format.pp_print_string fmt
    (match k with Flow -> "flow" | Anti -> "anti" | Output -> "output" | Input -> "input")

let vector_kind report v =
  (* The leading non-"=" direction says which reference's instance runs
     first; all-"=" is loop-independent, so textual order decides. *)
  let rec source k =
    if k >= Array.length v then `First
    else
      match v.(k) with
      | Direction.Deq -> source (k + 1)
      | Direction.Dlt | Direction.Dany -> `First
      | Direction.Dgt -> `Second
  in
  let src_role, dst_role =
    match source 0 with
    | `First -> (report.role1, report.role2)
    | `Second -> (report.role2, report.role1)
  in
  match (src_role, dst_role) with
  | `Write, `Read -> Flow
  | `Read, `Write -> Anti
  | `Write, `Write -> Output
  | `Read, `Read -> Input

type stats = {
  mutable pairs : int;
  mutable constant_cases : int;
  mutable gcd_independent : int;
  mutable assumed : int;
  mutable plain_by_test : int array;
  dir_counts : Direction.counts;
  mutable implicit_bb_cases : int;
  mutable degraded_pairs : int;
  mutable independent_pairs : int;
  mutable dependent_pairs : int;
  mutable vectors_reported : int;
  mutable memo_lookups_nobounds : int;
  mutable memo_hits_nobounds : int;
  mutable memo_unique_nobounds : int;
  mutable memo_lookups_full : int;
  mutable memo_hits_full : int;
  mutable memo_unique_full : int;
}

let fresh_stats () =
  {
    pairs = 0;
    constant_cases = 0;
    gcd_independent = 0;
    assumed = 0;
    plain_by_test = Array.make 4 0;
    dir_counts = Direction.fresh_counts ();
    implicit_bb_cases = 0;
    degraded_pairs = 0;
    independent_pairs = 0;
    dependent_pairs = 0;
    vectors_reported = 0;
    memo_lookups_nobounds = 0;
    memo_hits_nobounds = 0;
    memo_unique_nobounds = 0;
    memo_lookups_full = 0;
    memo_hits_full = 0;
    memo_unique_full = 0;
  }

let merge_stats ~into src =
  into.pairs <- into.pairs + src.pairs;
  into.constant_cases <- into.constant_cases + src.constant_cases;
  into.gcd_independent <- into.gcd_independent + src.gcd_independent;
  into.assumed <- into.assumed + src.assumed;
  Array.iteri
    (fun i v -> into.plain_by_test.(i) <- into.plain_by_test.(i) + v)
    src.plain_by_test;
  Direction.merge_counts ~into:into.dir_counts src.dir_counts;
  into.implicit_bb_cases <- into.implicit_bb_cases + src.implicit_bb_cases;
  into.degraded_pairs <- into.degraded_pairs + src.degraded_pairs;
  into.independent_pairs <- into.independent_pairs + src.independent_pairs;
  into.dependent_pairs <- into.dependent_pairs + src.dependent_pairs;
  into.vectors_reported <- into.vectors_reported + src.vectors_reported;
  into.memo_lookups_nobounds <- into.memo_lookups_nobounds + src.memo_lookups_nobounds;
  into.memo_hits_nobounds <- into.memo_hits_nobounds + src.memo_hits_nobounds;
  into.memo_unique_nobounds <- into.memo_unique_nobounds + src.memo_unique_nobounds;
  into.memo_lookups_full <- into.memo_lookups_full + src.memo_lookups_full;
  into.memo_hits_full <- into.memo_hits_full + src.memo_hits_full;
  into.memo_unique_full <- into.memo_unique_full + src.memo_unique_full

(* Flat integer serialization, for the batch journal: every field in a
   fixed order, the two per-test arrays and the direction counts
   flattened in place. *)
let stats_to_list s =
  [ s.pairs; s.constant_cases; s.gcd_independent; s.assumed ]
  @ Array.to_list s.plain_by_test
  @ Array.to_list s.dir_counts.Direction.by_test
  @ Array.to_list s.dir_counts.Direction.indep_by_test
  @ [
      s.implicit_bb_cases;
      s.degraded_pairs;
      s.independent_pairs;
      s.dependent_pairs;
      s.vectors_reported;
      s.memo_lookups_nobounds;
      s.memo_hits_nobounds;
      s.memo_unique_nobounds;
      s.memo_lookups_full;
      s.memo_hits_full;
      s.memo_unique_full;
    ]

let stats_of_list l =
  match l with
  | [
      pairs; constant_cases; gcd_independent; assumed;
      p0; p1; p2; p3;
      d0; d1; d2; d3;
      i0; i1; i2; i3;
      implicit_bb_cases; degraded_pairs; independent_pairs; dependent_pairs;
      vectors_reported;
      memo_lookups_nobounds; memo_hits_nobounds; memo_unique_nobounds;
      memo_lookups_full; memo_hits_full; memo_unique_full;
    ] ->
    let s = fresh_stats () in
    s.pairs <- pairs;
    s.constant_cases <- constant_cases;
    s.gcd_independent <- gcd_independent;
    s.assumed <- assumed;
    s.plain_by_test <- [| p0; p1; p2; p3 |];
    s.dir_counts.Direction.by_test <- [| d0; d1; d2; d3 |];
    s.dir_counts.Direction.indep_by_test <- [| i0; i1; i2; i3 |];
    s.implicit_bb_cases <- implicit_bb_cases;
    s.degraded_pairs <- degraded_pairs;
    s.independent_pairs <- independent_pairs;
    s.dependent_pairs <- dependent_pairs;
    s.vectors_reported <- vectors_reported;
    s.memo_lookups_nobounds <- memo_lookups_nobounds;
    s.memo_hits_nobounds <- memo_hits_nobounds;
    s.memo_unique_nobounds <- memo_unique_nobounds;
    s.memo_lookups_full <- memo_lookups_full;
    s.memo_hits_full <- memo_hits_full;
    s.memo_unique_full <- memo_unique_full;
    Some s
  | _ -> None

type report = {
  pair_reports : pair_report list;
  stats : stats;
}

let test_index = function
  | Cascade.T_svpc -> 0
  | Cascade.T_acyclic -> 1
  | Cascade.T_loop_residue -> 2
  | Cascade.T_fourier -> 3

(* The memoized value: the outcome with direction vectors expressed in
   the canonical (reduced) problem's common levels; each pair reinserts
   its own dropped levels. *)
type memo_value = outcome

(* The pluggable memo backend. The analyzer is a pure query layer over
   this record: every cached lookup in the pipeline goes through these
   two functions, so a backend can be a pair of in-process tables (the
   default), a write-through durable store, or a mutex-guarded shared
   table — without the analyzer knowing. Contract: [find_or_add_*] may
   run [compute] outside any lock but must never store a value whose
   computation raised. *)
type cache = {
  find_or_add_gcd :
    int array -> (unit -> Gcd_test.outcome) -> Gcd_test.outcome * bool;
  find_or_add_full : int array -> (unit -> memo_value) -> memo_value * bool;
  cache_stats : unit -> Memo_table.stats * Memo_table.stats;
      (* (gcd, full) lookup/hit/occupancy snapshots *)
  cache_flush : unit -> unit;
      (* push write-through state to stable storage; no-op in memory *)
}

let table_cache gcd_table full_table =
  {
    find_or_add_gcd = Memo_table.find_or_add gcd_table;
    find_or_add_full = Memo_table.find_or_add full_table;
    cache_stats =
      (fun () -> (Memo_table.stats gcd_table, Memo_table.stats full_table));
    cache_flush = (fun () -> ());
  }

let memory_cache () = table_cache (Memo_table.create ()) (Memo_table.create ())

(* Live cross-domain sharing: one pair of lock-striped tables that
   every worker queries during the run, so a repeat landing on a
   different domain is a hit instead of a recomputation that only a
   post-run merge would have deduplicated. *)
type shared = {
  sh_gcd : Gcd_test.outcome Sharded_table.t;
  sh_full : memo_value Sharded_table.t;
}

let create_shared ?stripes () =
  { sh_gcd = Sharded_table.create ?stripes ();
    sh_full = Sharded_table.create ?stripes () }

let shared_cache sh =
  {
    find_or_add_gcd = Sharded_table.find_or_add sh.sh_gcd;
    find_or_add_full = Sharded_table.find_or_add sh.sh_full;
    cache_stats =
      (fun () ->
         (Sharded_table.stats sh.sh_gcd, Sharded_table.stats sh.sh_full));
    cache_flush = (fun () -> ());
  }

let shared_table_stats sh =
  (Sharded_table.stats sh.sh_gcd, Sharded_table.stats sh.sh_full)

let shared_contended sh =
  Sharded_table.contended sh.sh_gcd + Sharded_table.contended sh.sh_full

(* Wrap a cache with query-local counters. [analyze] reports memo
   statistics as a delta of [cache_stats] snapshots, which is only
   meaningful when no other domain moves the counters between the
   snapshots — exactly what happens on a live-shared cache. The
   wrapper gives each item its own counters: lookups are a pure
   function of the item (jobs-invariant); hits are as observed by this
   item (cross-item hits depend on scheduling at [--jobs > 1]); the
   occupancy slot counts this item's completed misses. *)
let counted_cache (c : cache) : cache =
  let gl = ref 0 and gh = ref 0 and gm = ref 0 in
  let fl = ref 0 and fh = ref 0 and fm = ref 0 in
  let count l h m f k compute =
    incr l;
    let v, hit = f k compute in
    if hit then incr h else incr m;
    (v, hit)
  in
  {
    find_or_add_gcd = (fun k compute -> count gl gh gm c.find_or_add_gcd k compute);
    find_or_add_full =
      (fun k compute -> count fl fh fm c.find_or_add_full k compute);
    cache_stats =
      (fun () ->
         ( { Memo_table.size = !gm; buckets = 0; lookups = !gl; hits = !gh },
           { Memo_table.size = !fm; buckets = 0; lookups = !fl; hits = !fh } ));
    cache_flush = c.cache_flush;
  }

type state = {
  cfg : config;
  stats : stats;
  cache : cache;
  cancel : unit -> bool;
      (* cooperative watchdog (e.g. the batch engine's per-item
         deadline); deliberately outside [config], which is marshaled
         into sessions and compared structurally *)
}

let m_pairs = Dda_obs.Metrics.counter "analyzer.pairs"
let m_queries = Dda_obs.Metrics.counter "analyzer.queries"
let h_budget_steps = Dda_obs.Metrics.histogram "analyzer.budget_steps"

(* Compute the outcome for a canonical problem (a cache miss). *)
let compute_inner st budget (p : Problem.t) ~self =
  let gcd_outcome =
    match st.cfg.memo with
    | Memo_off -> Gcd_test.run_eqs ~budget p
    | Memo_simple | Memo_improved | Memo_symmetric ->
      fst
        (st.cache.find_or_add_gcd (Problem.key_without_bounds_scratch p) (fun () ->
             Gcd_test.run_eqs ~budget p))
  in
  match gcd_outcome with
  | Gcd_test.Independent _ ->
    st.stats.gcd_independent <- st.stats.gcd_independent + 1;
    Gcd_independent
  | Gcd_test.Reduced red0 ->
    let red = Gcd_test.attach_bounds p red0 in
    if st.cfg.directions || self then begin
      (* Self pairs always go through refinement: excluding the
         identity instance needs direction constraints. *)
      (* Unused-level pruning would let a self pair claim cross-
         iteration dependence it never tested; disable it there. *)
      let prune =
        if self then { st.cfg.prune with Direction.unused = false }
        else st.cfg.prune
      in
      let r =
        Direction.refine ~budget ~prune ~fm_tighten:st.cfg.fm_tighten
          ~counts:st.stats.dir_counts ~exclude_all_eq:self p red
      in
      if r.implicit_bb then st.stats.implicit_bb_cases <- st.stats.implicit_bb_cases + 1;
      Tested
        {
          dependent = r.dependent;
          unknown = r.degraded <> None;
          decided_by = None;
          directions = r.vectors;
          distance = r.distance;
          implicit_bb = r.implicit_bb;
          degraded = r.degraded;
        }
    end
    else begin
      let r = Cascade.run ~budget ~fm_tighten:st.cfg.fm_tighten red.Gcd_test.system in
      st.stats.plain_by_test.(test_index r.decided_by) <-
        st.stats.plain_by_test.(test_index r.decided_by) + 1;
      let dependent, unknown, degraded =
        match r.verdict with
        | Cascade.Independent _ -> (false, false, None)
        | Cascade.Dependent _ -> (true, false, None)
        | Cascade.Unknown -> (true, true, None)
        | Cascade.Exhausted reason -> (true, true, Some reason)
      in
      Tested
        {
          dependent;
          unknown;
          decided_by = Some r.decided_by;
          directions = [];
          distance = None;
          implicit_bb = false;
          degraded;
        }
    end

(* One histogram sample per executed query (a memo miss), observed on
   both normal return and escape — an exhaustion that outruns the
   cascade still records the steps it burned. *)
let compute st (p : Problem.t) ~self =
  Dda_obs.Metrics.incr m_queries;
  let budget = Budget.create ~cancel:st.cancel st.cfg.limits in
  let settle () =
    let used = Budget.steps_used budget in
    Dda_obs.Metrics.observe h_budget_steps used;
    Dda_obs.Attrib.add_steps used
  in
  match compute_inner st budget p ~self with
  | out ->
    settle ();
    out
  | exception e ->
    settle ();
    raise e

let reinsert_outcome info = function
  | Tested t ->
    Tested
      {
        t with
        directions = List.map (Canonical.reinsert_vector info) t.directions;
      }
  | (Constant _ | Assumed_dependent | Gcd_independent) as o -> o

(* A memo hit under the swapped orientation answers the mirror-image
   question: flip every direction and negate distances. *)
let mirror_outcome = function
  | Tested t ->
    let mirror_dir = function
      | Direction.Dlt -> Direction.Dgt
      | Direction.Dgt -> Direction.Dlt
      | (Direction.Deq | Direction.Dany) as d -> d
    in
    Tested
      {
        t with
        directions = List.map (Array.map mirror_dir) t.directions;
        distance = Option.map (Array.map Zint.neg) t.distance;
      }
  | (Constant _ | Assumed_dependent | Gcd_independent) as o -> o

let rec analyze_pair_inner st (s1 : Affine.site) (s2 : Affine.site) =
  Failpoint.hit "analyzer.pair";
  st.stats.pairs <- st.stats.pairs + 1;
  let self = Loc.equal s1.site_loc s2.site_loc in
  let ncommon = Affine.common_loops s1 s2 in
  let ids (s : Affine.site) = List.map (fun c -> c.Affine.lid) s.loops in
  let finish outcome =
    (match outcome with
     | Constant d -> if d then st.stats.dependent_pairs <- st.stats.dependent_pairs + 1
       else st.stats.independent_pairs <- st.stats.independent_pairs + 1
     | Assumed_dependent -> st.stats.dependent_pairs <- st.stats.dependent_pairs + 1
     | Gcd_independent -> st.stats.independent_pairs <- st.stats.independent_pairs + 1
     | Tested t ->
       if t.degraded <> None then
         st.stats.degraded_pairs <- st.stats.degraded_pairs + 1;
       if t.dependent then begin
         st.stats.dependent_pairs <- st.stats.dependent_pairs + 1;
         st.stats.vectors_reported <-
           st.stats.vectors_reported + List.length t.directions
       end
       else st.stats.independent_pairs <- st.stats.independent_pairs + 1);
    {
      array_name = s1.array;
      loc1 = s1.site_loc;
      loc2 = s2.site_loc;
      stmt1 = s1.stmt_loc;
      stmt2 = s2.stmt_loc;
      role1 = s1.role;
      role2 = s2.role;
      self_pair = self;
      ncommon;
      common_ids = List.filteri (fun i _ -> i < ncommon) (ids s1);
      enclosing_ids1 = ids s1;
      enclosing_ids2 = ids s2;
      outcome;
    }
  in
  match (Affine.constant_subscripts s1, Affine.constant_subscripts s2) with
  | Some c1, Some c2 when List.length c1 = List.length c2 && not self ->
    (* The paper's "array constants" column: compared directly, no
       dependence testing. *)
    st.stats.constant_cases <- st.stats.constant_cases + 1;
    finish (Constant (List.for_all2 Zint.equal c1 c2))
  | _ -> (
      match Build_problem.build s1 s2 with
      | None ->
        st.stats.assumed <- st.stats.assumed + 1;
        finish Assumed_dependent
      | Some problem -> (
          (* Backstop for exhaustion paths the cascade and the
             refinement could not absorb (a tick in Extended GCD, an
             injected exhaustion): an unmemoized, fully conservative
             degraded verdict. Nothing half-computed is cached —
             [Memo_table.find_or_add] stores only on normal return. *)
          try analyze_problem st ~self ~finish problem
          with Budget.Exhausted reason ->
            finish
              (Tested
                 {
                   dependent = true;
                   unknown = true;
                   decided_by = None;
                   directions = [];
                   distance = None;
                   implicit_bb = false;
                   degraded = Some reason;
                 })))

and analyze_problem st ~self ~finish problem =
          let info_of prob =
            match st.cfg.memo with
            | Memo_improved | Memo_symmetric -> Canonical.reduce ~keep_common:self prob
            | Memo_off | Memo_simple ->
              {
                Canonical.problem = prob;
                kept_common = Array.make prob.Problem.ncommon true;
                dropped_any = false;
              }
          in
          let info = info_of problem in
          (* The symmetric scheme canonicalizes the pair's orientation:
             whichever of the problem and its swap keys smaller wins,
             and a hit under the swapped orientation is mirrored back. *)
          let mirrored, info =
            if st.cfg.memo = Memo_symmetric && not self then begin
              let info_s = info_of (Problem.swap problem) in
              if
                compare (Problem.to_key info_s.Canonical.problem)
                  (Problem.to_key info.Canonical.problem)
                < 0
              then (true, info_s)
              else (false, info)
            end
            else (false, info)
          in
          (* Borrowed scratch key: every cache backend copies it on a
             miss before computing, and the hit path discards it. *)
          let key =
            Problem.to_key_scratch ~tag:(if self then 1 else 0) info.Canonical.problem
          in
          let deliver value =
            let out = reinsert_outcome info value in
            finish (if mirrored then mirror_outcome out else out)
          in
          match st.cfg.memo with
          | Memo_off -> deliver (compute st info.Canonical.problem ~self)
          | Memo_simple | Memo_improved | Memo_symmetric ->
            let value, _hit =
              st.cache.find_or_add_full key (fun () ->
                  compute st info.Canonical.problem ~self)
            in
            deliver value

let analyze_pair st s1 s2 =
  Dda_obs.Metrics.incr m_pairs;
  Dda_obs.Trace.wrap ~name:"pair"
    ~args:(fun (r : pair_report) ->
        [ ( "outcome",
            match r.outcome with
            | Constant _ -> 0
            | Assumed_dependent -> 1
            | Gcd_independent -> 2
            | Tested _ -> 3 );
          ( "dependent",
            match r.outcome with
            | Constant d -> if d then 1 else 0
            | Assumed_dependent -> 1
            | Gcd_independent -> 0
            | Tested t -> if t.dependent then 1 else 0 ) ])
    (fun () -> analyze_pair_inner st s1 s2)

let finalize st =
  let gcd, full = st.cache.cache_stats () in
  st.stats.memo_lookups_nobounds <- gcd.Memo_table.lookups;
  st.stats.memo_hits_nobounds <- gcd.Memo_table.hits;
  st.stats.memo_unique_nobounds <- gcd.Memo_table.size;
  st.stats.memo_lookups_full <- full.Memo_table.lookups;
  st.stats.memo_hits_full <- full.Memo_table.hits;
  st.stats.memo_unique_full <- full.Memo_table.size

let fresh_state ?(cancel = fun () -> false) ?cache cfg =
  {
    cfg;
    stats = fresh_stats ();
    cache = (match cache with Some c -> c | None -> memory_cache ());
    cancel;
  }

let site_pairs cfg sites =
  let arr = Array.of_list sites in
  let out = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i to Array.length arr - 1 do
      let s1 = arr.(i) and s2 = arr.(j) in
      let self = i = j in
      if
        String.equal s1.Affine.array s2.Affine.array
        && (s1.role = `Write || s2.role = `Write)
        && ((not self) || s1.role = `Write)
        && ((not self) || cfg.directions)
        (* self pairs need direction machinery; skip in plain mode *)
        && ((not cfg.within_nest_only) || self || Affine.common_loops s1 s2 >= 1)
      then out := (s1, s2) :: !out
    done
  done;
  List.rev !out

let analyze_sites ?(config = default_config) ?cancel ?cache pairs =
  let st = fresh_state ?cancel ?cache config in
  (* Lookups/hits are reported as this call's delta: with the default
     fresh in-memory cache the snapshot is zero and the delta is the
     absolute count, but a caller-supplied cache (the serve daemon's
     durable one) carries counters from earlier queries. Unique counts
     stay absolute, as in sessions. *)
  let gcd0, full0 = st.cache.cache_stats () in
  let reports = List.map (fun (s1, s2) -> analyze_pair st s1 s2) pairs in
  finalize st;
  st.stats.memo_lookups_nobounds <-
    st.stats.memo_lookups_nobounds - gcd0.Memo_table.lookups;
  st.stats.memo_hits_nobounds <-
    st.stats.memo_hits_nobounds - gcd0.Memo_table.hits;
  st.stats.memo_lookups_full <-
    st.stats.memo_lookups_full - full0.Memo_table.lookups;
  st.stats.memo_hits_full <- st.stats.memo_hits_full - full0.Memo_table.hits;
  { pair_reports = reports; stats = st.stats }

let analyze ?(config = default_config) ?cancel ?cache program =
  let program = if config.run_pipeline then Dda_passes.Pipeline.run program else program in
  let sites = Affine.extract ~symbolic:config.symbolic program in
  analyze_sites ~config ?cancel ?cache (site_pairs config sites)

(* ------------------------------------------------------------------ *)
(* Sessions: memoization across compilations                          *)
(* ------------------------------------------------------------------ *)

type session = {
  (* The session owns its raw tables (they are what [save_session]
     marshals and [merge_sessions] unions); [session_state] wraps them
     in a {!table_cache}. *)
  s_gcd : Gcd_test.outcome Memo_table.t;
  s_full : memo_value Memo_table.t;
  mutable session_state : state;
}

let session_of_tables ?(cancel = fun () -> false) cfg gcd full =
  {
    s_gcd = gcd;
    s_full = full;
    session_state = fresh_state ~cancel ~cache:(table_cache gcd full) cfg;
  }

let create_session ?(config = default_config) () =
  session_of_tables config (Memo_table.create ()) (Memo_table.create ())

let session_config s = s.session_state.cfg

let analyze_session ?cancel session program =
  (* Fresh per-call statistics, shared memo tables; the watchdog is
     per-call, so it never outlives the query it guards. *)
  let st =
    {
      session.session_state with
      stats = fresh_stats ();
      cancel =
        (match cancel with
         | Some c -> c
         | None -> session.session_state.cancel);
    }
  in
  (* Snapshot the table counters rather than resetting them: the
     report's memo statistics are the per-call delta, while the tables
     keep session-lifetime counts for {!session_table_stats} (the batch
     engine's corpus-wide hit rates). *)
  let gcd_lookups0 = Memo_table.lookups session.s_gcd
  and gcd_hits0 = Memo_table.hits session.s_gcd
  and full_lookups0 = Memo_table.lookups session.s_full
  and full_hits0 = Memo_table.hits session.s_full in
  session.session_state <- st;
  let config = st.cfg in
  let program = if config.run_pipeline then Dda_passes.Pipeline.run program else program in
  let sites = Affine.extract ~symbolic:config.symbolic program in
  let reports =
    List.map (fun (s1, s2) -> analyze_pair st s1 s2) (site_pairs config sites)
  in
  finalize st;
  st.stats.memo_lookups_nobounds <- st.stats.memo_lookups_nobounds - gcd_lookups0;
  st.stats.memo_hits_nobounds <- st.stats.memo_hits_nobounds - gcd_hits0;
  st.stats.memo_lookups_full <- st.stats.memo_lookups_full - full_lookups0;
  st.stats.memo_hits_full <- st.stats.memo_hits_full - full_hits0;
  { pair_reports = reports; stats = st.stats }

(* On-disk format: a magic string, a format version, then the marshaled
   (config, gcd table, full table). Keys are config-dependent, so a
   session only reloads under the configuration that built it. *)
let session_magic = "dda-session"

(* Version 2: [config] grew the [limits] field (budget caps).
   Version 3: memo keys became [int array] and entries store their
   hash, changing the marshaled table layout. *)
let session_version = 3

(* The durable cache marshals the same key/value types the session
   format does, so its compatibility fingerprint tracks the same
   version number. *)
let memo_format_version = session_version

let merge_sessions ~into src =
  if into == src then
    invalid_arg "Analyzer.merge_sessions: a session cannot absorb itself";
  if into.session_state.cfg <> src.session_state.cfg then
    invalid_arg "Analyzer.merge_sessions: sessions built under different configurations";
  Memo_table.merge_into ~into:into.s_gcd src.s_gcd;
  Memo_table.merge_into ~into:into.s_full src.s_full

let session_table_sizes session =
  (Memo_table.length session.s_gcd, Memo_table.length session.s_full)

let session_table_stats session =
  (Memo_table.stats session.s_gcd, Memo_table.stats session.s_full)

let save_session session path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc session_magic;
       output_binary_int oc session_version;
       Marshal.to_channel oc
         (session.session_state.cfg, session.s_gcd, session.s_full)
         [])

let load_session path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let magic = really_input_string ic (String.length session_magic) in
       if not (String.equal magic session_magic) then
         failwith "Analyzer.load_session: not a saved session";
       let version = input_binary_int ic in
       if version <> session_version then
         failwith "Analyzer.load_session: unsupported session version";
       let cfg, gcd_table, full_table =
         (Marshal.from_channel ic
          : config * Gcd_test.outcome Memo_table.t * memo_value Memo_table.t)
       in
       session_of_tables cfg gcd_table full_table)

(* ------------------------------------------------------------------ *)
(* Parallel-loop client                                                *)
(* ------------------------------------------------------------------ *)

let vector_carries_at v k =
  let outer_may_eq j = match v.(j) with Direction.Deq | Direction.Dany -> true | Direction.Dlt | Direction.Dgt -> false in
  let rec outers j = j >= k || (outer_may_eq j && outers (j + 1)) in
  (match v.(k) with Direction.Deq -> false | Direction.Dlt | Direction.Dgt | Direction.Dany -> true)
  && outers 0

let vector_carrier v =
  let n = Array.length v in
  let rec go k =
    if k >= n then None
    else if vector_carries_at v k then Some k
    else go (k + 1)
  in
  go 0

let pair_carries report lid =
  let rec index_of k = function
    | [] -> None
    | id :: _ when id = lid -> Some k
    | _ :: rest -> index_of (k + 1) rest
  in
  match index_of 0 report.common_ids with
  | None -> false
  | Some k -> (
      match report.outcome with
      | Constant false | Gcd_independent -> false
      | Constant true | Assumed_dependent -> true
      | Tested t ->
        t.dependent
        && (t.directions = [] (* no vector info: conservative *)
            || List.exists (fun v -> vector_carries_at v k) t.directions))

let parallel_loops { pair_reports; _ } sites =
  let ids = ref [] in
  List.iter
    (fun (s : Affine.site) ->
       List.iter
         (fun (c : Affine.loop_ctx) ->
            if not (List.mem_assoc c.Affine.lid !ids) then
              ids := (c.Affine.lid, ()) :: !ids)
         s.loops)
    sites;
  List.rev_map
    (fun (lid, ()) ->
       (lid, not (List.exists (fun r -> pair_carries r lid) pair_reports)))
    !ids
  |> List.sort compare
