open Dda_numeric

type bound = {
  row : Consys.row;
  subject : int;
}

type t = {
  names : string array;
  n1 : int;
  n2 : int;
  nsym : int;
  ncommon : int;
  eqs : Consys.row list;
  ineqs : bound list;
}

let nvars p = p.n1 + p.n2 + p.nsym

let ineq_rows p = List.map (fun b -> b.row) p.ineqs

let make ~names ~n1 ~n2 ~nsym ~ncommon ~eqs ~ineqs =
  let p = { names; n1; n2; nsym; ncommon; eqs; ineqs } in
  if Array.length names <> nvars p then invalid_arg "Problem.make: names length";
  if ncommon > min n1 n2 || ncommon < 0 then invalid_arg "Problem.make: ncommon";
  let check r =
    if Array.length r.Consys.coeffs <> nvars p then
      invalid_arg "Problem.make: row width"
  in
  List.iter check eqs;
  List.iter
    (fun b ->
       check b.row;
       if b.subject < 0 || b.subject >= nvars p then
         invalid_arg "Problem.make: bound subject")
    ineqs;
  p

let var1 p k =
  if k < 0 || k >= p.n1 then invalid_arg "Problem.var1";
  k

let var2 p k =
  if k < 0 || k >= p.n2 then invalid_arg "Problem.var2";
  p.n1 + k

let sym_var p k =
  if k < 0 || k >= p.nsym then invalid_arg "Problem.sym_var";
  p.n1 + p.n2 + k

let with_extra_ineqs p bounds =
  List.iter
    (fun b ->
       if Array.length b.row.Consys.coeffs <> nvars p then
         invalid_arg "Problem.with_extra_ineqs: row width")
    bounds;
  { p with ineqs = bounds @ p.ineqs }

let satisfies point p =
  List.for_all
    (fun (r : Consys.row) ->
       let acc = ref Zint.zero in
       Array.iteri (fun i c -> acc := Zint.add !acc (Zint.mul c point.(i))) r.coeffs;
       Zint.equal !acc r.rhs)
    p.eqs
  && List.for_all (fun b -> Consys.satisfies point b.row) p.ineqs

let int_of_z z =
  match Zint.to_int z with
  | Some n -> n
  | None -> failwith "Problem.to_key: coefficient exceeds native int"

(* Keys are built once per analyzed pair on the memoization hot path,
   so they are written into a single flat array instead of concatenated
   per-row lists. [write_row] returns the offset past the written row
   (coefficients then rhs). *)
let write_row a off (r : Consys.row) =
  let n = Array.length r.coeffs in
  for i = 0 to n - 1 do
    a.(off + i) <- int_of_z r.coeffs.(i)
  done;
  a.(off + n) <- int_of_z r.rhs;
  off + n + 1

(* Equality rows mean the same constraint under negation; written with
   the first non-zero coefficient positive. This makes a problem and
   its {!swap} of the mirror-image problem key identically. *)
let write_eq a off (r : Consys.row) =
  let n = Array.length r.coeffs in
  let rec first i =
    if i >= n then 0
    else
      let s = Zint.sign r.coeffs.(i) in
      if s <> 0 then s else first (i + 1)
  in
  if first 0 >= 0 then write_row a off r
  else begin
    for i = 0 to n - 1 do
      a.(off + i) <- -int_of_z r.coeffs.(i)
    done;
    a.(off + n) <- -int_of_z r.rhs;
    off + n + 1
  end

let write_header a off p ~neqs =
  a.(off) <- nvars p;
  a.(off + 1) <- p.n1;
  a.(off + 2) <- p.n2;
  a.(off + 3) <- p.nsym;
  a.(off + 4) <- p.ncommon;
  a.(off + 5) <- neqs;
  let o = ref (off + 6) in
  List.iter (fun r -> o := write_eq a !o r) p.eqs;
  !o

(* Per-domain scratch buffers for memo keys, one per exact length.
   Most keys are discarded right after a table hit, so the hot path
   borrows a reusable buffer instead of allocating; the buffer is only
   valid until the next scratch-key call of the same length on the
   same domain, and cache implementations copy before retaining. *)
let scratch_key : (int, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let scratch n =
  let tbl = Domain.DLS.get scratch_key in
  match Hashtbl.find_opt tbl n with
  | Some a -> a
  | None ->
    let a = Array.make n 0 in
    Hashtbl.add tbl n a;
    a

let fill_key_without_bounds a p ~neqs =
  ignore (write_header a 0 p ~neqs);
  a

let key_without_bounds p =
  let neqs = List.length p.eqs in
  fill_key_without_bounds (Array.make (6 + (neqs * (nvars p + 1))) 0) p ~neqs

let key_without_bounds_scratch p =
  let neqs = List.length p.eqs in
  fill_key_without_bounds (scratch (6 + (neqs * (nvars p + 1)))) p ~neqs

let swap p =
  let nv = nvars p in
  (* old index -> new index: the two loop-variable blocks trade places,
     symbols stay in place. *)
  let remap i =
    if i < p.n1 then p.n2 + i
    else if i < p.n1 + p.n2 then i - p.n1
    else i
  in
  let map_row (r : Consys.row) =
    let coeffs = Array.make nv Zint.zero in
    Array.iteri (fun i c -> coeffs.(remap i) <- c) r.coeffs;
    { Consys.coeffs; rhs = r.rhs }
  in
  let names = Array.make nv "" in
  let strip_prime s =
    if String.length s > 0 && s.[String.length s - 1] = '\'' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  Array.iteri
    (fun i name ->
       let name =
         if i < p.n1 then name ^ "'"
         else if i < p.n1 + p.n2 then strip_prime name
         else name
       in
       names.(remap i) <- name)
    p.names;
  (* Keep each reference's bounds contiguous and in loop order, as
     [Build_problem] emits them, so mirror problems key identically. *)
  let block2, block1 =
    List.partition (fun (b : bound) -> b.subject >= p.n1 && b.subject < p.n1 + p.n2) p.ineqs
  in
  let map_bound (b : bound) = { row = map_row b.row; subject = remap b.subject } in
  {
    names;
    n1 = p.n2;
    n2 = p.n1;
    nsym = p.nsym;
    ncommon = p.ncommon;
    eqs = List.map map_row p.eqs;
    ineqs = List.map map_bound block2 @ List.map map_bound block1;
  }

let fill_key a ?tag p ~neqs ~nineqs ~pre =
  (match tag with Some t -> a.(0) <- t | None -> ());
  let off = write_header a pre p ~neqs in
  a.(off) <- nineqs;
  let o = ref (off + 1) in
  List.iter (fun (b : bound) -> o := write_row a !o b.row) p.ineqs;
  a

let to_key ?tag p =
  let neqs = List.length p.eqs and nineqs = List.length p.ineqs in
  let pre = match tag with Some _ -> 1 | None -> 0 in
  let a = Array.make (pre + 7 + ((neqs + nineqs) * (nvars p + 1))) 0 in
  fill_key a ?tag p ~neqs ~nineqs ~pre

let to_key_scratch ?tag p =
  let neqs = List.length p.eqs and nineqs = List.length p.ineqs in
  let pre = match tag with Some _ -> 1 | None -> 0 in
  let a = scratch (pre + 7 + ((neqs + nineqs) * (nvars p + 1))) in
  fill_key a ?tag p ~neqs ~nineqs ~pre

let pp fmt p =
  let names = p.names in
  Format.fprintf fmt "@[<v>vars:";
  Array.iter (fun n -> Format.fprintf fmt " %s" n) names;
  Format.fprintf fmt "@,equalities:@,";
  List.iter
    (fun (r : Consys.row) ->
       Format.fprintf fmt "  %a (as =)@," (Consys.pp_row ~names) r)
    p.eqs;
  Format.fprintf fmt "bounds:@,";
  List.iter
    (fun b -> Format.fprintf fmt "  %a@," (Consys.pp_row ~names) b.row)
    p.ineqs;
  Format.fprintf fmt "@]"
