open Dda_numeric

type test =
  | T_svpc
  | T_acyclic
  | T_loop_residue
  | T_fourier

let test_name = function
  | T_svpc -> "svpc"
  | T_acyclic -> "acyclic"
  | T_loop_residue -> "loop-residue"
  | T_fourier -> "fourier-motzkin"

let pp_test fmt t = Format.pp_print_string fmt (test_name t)

type verdict =
  | Independent of Cert.infeasible
  | Dependent of Zint.t array
  | Unknown
  | Exhausted of Budget.reason

type result = {
  verdict : verdict;
  decided_by : test;
}

let dependent sys w decided_by =
  assert (Consys.satisfies_all w sys);
  { verdict = Dependent w; decided_by }

let run ?budget ?(fm_tighten = false) (sys : Consys.t) =
  (* [stage] tracks how far the cascade got, so a budget blow-up can
     still report which test was running when the account ran out. *)
  let stage = ref T_svpc in
  try
    match Svpc.run ?budget sys with
    | Svpc.Infeasible cert -> { verdict = Independent cert; decided_by = T_svpc }
    | Svpc.Feasible box -> (
        match Bounds.sample box with
        | Some w -> dependent sys w T_svpc
        | None -> assert false (* Feasible boxes are consistent *))
    | Svpc.Partial (box, multi) -> (
        stage := T_acyclic;
        match Acyclic.run ?budget box multi with
        | Acyclic.Infeasible cert ->
          { verdict = Independent cert; decided_by = T_acyclic }
        | Acyclic.Feasible (box', elims) -> (
            (* The box point satisfies the residual system; replaying the
               eliminations extends it to the full variable set. *)
            match Bounds.sample box' with
            | Some base -> dependent sys (Acyclic.witness elims base) T_acyclic
            | None -> assert false)
        | Acyclic.Cycle (box', elims, core) -> (
            stage := T_loop_residue;
            match Loop_residue.run ?budget box' core with
            | Some (Loop_residue.Infeasible cert) ->
              { verdict = Independent cert; decided_by = T_loop_residue }
            | Some (Loop_residue.Feasible w) ->
              (* The potentials satisfy the box and the cyclic core; the
                 eliminated variables are filled in the same way. *)
              dependent sys (Acyclic.witness elims w) T_loop_residue
            | None -> (
                (* Back-up test on the full system, so any witness and any
                   certificate refer to the original rows directly. *)
                stage := T_fourier;
                match Fourier.run ?budget ~tighten:fm_tighten sys with
                | Fourier.Infeasible cert ->
                  { verdict = Independent cert; decided_by = T_fourier }
                | Fourier.Feasible w -> dependent sys w T_fourier
                | Fourier.Unknown -> { verdict = Unknown; decided_by = T_fourier }
                | Fourier.Exhausted r ->
                  { verdict = Exhausted r; decided_by = T_fourier })))
  with Budget.Exhausted r -> { verdict = Exhausted r; decided_by = !stage }
