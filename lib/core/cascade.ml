open Dda_numeric

type test =
  | T_svpc
  | T_acyclic
  | T_loop_residue
  | T_fourier

let test_name = function
  | T_svpc -> "svpc"
  | T_acyclic -> "acyclic"
  | T_loop_residue -> "loop-residue"
  | T_fourier -> "fourier-motzkin"

let pp_test fmt t = Format.pp_print_string fmt (test_name t)

type verdict =
  | Independent of Cert.infeasible
  | Dependent of Zint.t array
  | Unknown
  | Exhausted of Budget.reason

type result = {
  verdict : verdict;
  decided_by : test;
}

let dependent sys w decided_by =
  assert (Consys.satisfies_all w sys);
  { verdict = Dependent w; decided_by }

let m_runs = Dda_obs.Metrics.counter "cascade.runs"

let m_dec_svpc = Dda_obs.Metrics.counter "cascade.decided.svpc"
let m_dec_acyclic = Dda_obs.Metrics.counter "cascade.decided.acyclic"
let m_dec_loop_residue = Dda_obs.Metrics.counter "cascade.decided.loop_residue"
let m_dec_fourier = Dda_obs.Metrics.counter "cascade.decided.fourier"

let m_decided = function
  | T_svpc -> m_dec_svpc
  | T_acyclic -> m_dec_acyclic
  | T_loop_residue -> m_dec_loop_residue
  | T_fourier -> m_dec_fourier

let m_independent = Dda_obs.Metrics.counter "cascade.verdict.independent"
let m_dependent = Dda_obs.Metrics.counter "cascade.verdict.dependent"
let m_unknown = Dda_obs.Metrics.counter "cascade.verdict.unknown"
let m_exhausted = Dda_obs.Metrics.counter "cascade.verdict.exhausted"

let test_code = function
  | T_svpc -> 0
  | T_acyclic -> 1
  | T_loop_residue -> 2
  | T_fourier -> 3

let run_inner ?budget ?(fm_tighten = false) (sys : Consys.t) =
  (* [stage] tracks how far the cascade got, so a budget blow-up can
     still report which test was running when the account ran out. *)
  let stage = ref T_svpc in
  try
    match Svpc.run ?budget sys with
    | Svpc.Infeasible cert -> { verdict = Independent cert; decided_by = T_svpc }
    | Svpc.Feasible box -> (
        match Bounds.sample box with
        | Some w -> dependent sys w T_svpc
        | None -> assert false (* Feasible boxes are consistent *))
    | Svpc.Partial (box, multi) -> (
        stage := T_acyclic;
        match Acyclic.run ?budget box multi with
        | Acyclic.Infeasible cert ->
          { verdict = Independent cert; decided_by = T_acyclic }
        | Acyclic.Feasible (box', elims) -> (
            (* The box point satisfies the residual system; replaying the
               eliminations extends it to the full variable set. *)
            match Bounds.sample box' with
            | Some base -> dependent sys (Acyclic.witness elims base) T_acyclic
            | None -> assert false)
        | Acyclic.Cycle (box', elims, core) -> (
            stage := T_loop_residue;
            match Loop_residue.run ?budget box' core with
            | Some (Loop_residue.Infeasible cert) ->
              { verdict = Independent cert; decided_by = T_loop_residue }
            | Some (Loop_residue.Feasible w) ->
              (* The potentials satisfy the box and the cyclic core; the
                 eliminated variables are filled in the same way. *)
              dependent sys (Acyclic.witness elims w) T_loop_residue
            | None -> (
                (* Back-up test on the full system, so any witness and any
                   certificate refer to the original rows directly. *)
                stage := T_fourier;
                match Fourier.run ?budget ~tighten:fm_tighten sys with
                | Fourier.Infeasible cert ->
                  { verdict = Independent cert; decided_by = T_fourier }
                | Fourier.Feasible w -> dependent sys w T_fourier
                | Fourier.Unknown -> { verdict = Unknown; decided_by = T_fourier }
                | Fourier.Exhausted r ->
                  { verdict = Exhausted r; decided_by = T_fourier })))
  with Budget.Exhausted r -> { verdict = Exhausted r; decided_by = !stage }

let run ?budget ?fm_tighten (sys : Consys.t) =
  Dda_obs.Metrics.incr m_runs;
  let res =
    Dda_obs.Trace.wrap ~name:"cascade"
      ~args:(fun res ->
          [ ("decided_by", test_code res.decided_by);
            ( "verdict",
              match res.verdict with
              | Independent _ -> 0
              | Dependent _ -> 1
              | Unknown -> 2
              | Exhausted _ -> 3 ) ])
      (fun () -> run_inner ?budget ?fm_tighten sys)
  in
  Dda_obs.Metrics.incr (m_decided res.decided_by);
  Dda_obs.Metrics.incr
    (match res.verdict with
     | Independent _ -> m_independent
     | Dependent _ -> m_dependent
     | Unknown -> m_unknown
     | Exhausted _ -> m_exhausted);
  res
