(** The cascaded exact dependence test (paper sections 3 and 4).

    After Extended GCD preprocessing, the tests are attempted cheapest
    first — SVPC, Acyclic, Loop Residue, Fourier-Motzkin — each one
    exact on its applicable class, so at most one test {e decides} any
    query; the earlier ones contribute their simplifications (absorbed
    bounds, eliminated variables) to the later ones. *)

open Dda_numeric

type test =
  | T_svpc
  | T_acyclic
  | T_loop_residue
  | T_fourier

val test_name : test -> string
val pp_test : Format.formatter -> test -> unit

type verdict =
  | Independent of Cert.infeasible
      (** infeasibility certificate over the input system's rows,
          checkable by [Dda_check.Certcheck.check_infeasible] *)
  | Dependent of Zint.t array
      (** a full witness over {e all} of the system's variables — the
          eliminations performed by the early tests are replayed, so no
          verdict is ever witness-free *)
  | Unknown  (** Fourier-Motzkin ran out of branch depth: assume
                 dependent *)
  | Exhausted of Budget.reason
      (** the per-query {!Budget} ran out mid-test ([decided_by] is the
          stage that was running): assume dependent, flagged degraded.
          {!Budget.Exhausted} never escapes [run]. *)

type result = {
  verdict : verdict;
  decided_by : test;
}

val run : ?budget:Budget.t -> ?fm_tighten:bool -> Consys.t -> result
(** Decide feasibility of a system of inequalities over integer
    variables (the [t]-space system from {!Gcd_test.run}, possibly with
    direction-vector rows appended). Every verdict carries evidence:
    [Dependent] a point satisfying every row, [Independent] a
    {!Cert.infeasible} certificate whose hypotheses are the input rows
    in order. *)
