(** Minimal JSON emission (strings, numbers, booleans, arrays,
    objects) and the analyzer report rendered as JSON — enough for
    tooling to consume analysis results without scraping text. No
    parser: this library only produces JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with correct string escaping. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering. *)

val report : Analyzer.report -> t
(** The whole report: one object per pair (locations, roles, outcome,
    direction vectors with dependence kinds, distance) plus the
    statistics block. *)

val pair : Analyzer.pair_report -> t
(** One pair object, as embedded in {!report}. *)

val stats : Analyzer.stats -> t
(** The statistics block alone (used for the batch driver's merged
    corpus statistics). *)

val metrics : Dda_obs.Metrics.snapshot -> t
(** A metrics-registry snapshot: counters as a name-keyed object,
    histograms as [{count, sum, buckets: [[lo, n], ...]}]. *)
