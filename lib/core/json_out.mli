(** Minimal JSON emission (strings, numbers, booleans, arrays,
    objects) and the analyzer report rendered as JSON — enough for
    tooling to consume analysis results without scraping text — plus a
    parser for exactly the subset this module emits, so the batch
    journal can read its own records back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with correct string escaping. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering. *)

val of_string : string -> (t, string) result
(** Parse the subset of JSON this module emits — in particular, numbers
    must be integers (no fraction or exponent). Round-trips
    {!to_string}: [of_string (to_string j) = Ok j]. Used by the batch
    journal reader; the error carries a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k]; [None] when
    absent or when the value is not an object. *)

val report : Analyzer.report -> t
(** The whole report: one object per pair (locations, roles, outcome,
    direction vectors with dependence kinds, distance) plus the
    statistics block. *)

val pair : Analyzer.pair_report -> t
(** One pair object, as embedded in {!report}. *)

val stats : Analyzer.stats -> t
(** The statistics block alone (used for the batch driver's merged
    corpus statistics). *)

val metrics : Dda_obs.Metrics.snapshot -> t
(** A metrics-registry snapshot: counters as a name-keyed object,
    histograms as [{count, sum, buckets: [[lo, n], ...]}]. *)
