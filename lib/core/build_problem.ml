open Dda_numeric

(* Index a site's loop variables: level k of site 1 occupies slot k,
   level k of site 2 occupies slot n1 + k; symbols come last. *)

(* Is [v] one of the first [k] loop variables? Explicit parameters so
   the scan compiles to a closure-free loop: [build] runs once per
   site pair, which makes this module the whole batch's single largest
   allocator — every spare block here is multiplied by O(sites^2). *)
let rec mem_loops (loops : Affine.loop_ctx array) k v i =
  i < k && (String.equal loops.(i).Affine.lvar v || mem_loops loops k v (i + 1))

(* Per-domain workspace. The two [Symexpr.iter] callbacks are built
   once per domain and thread their state through these mutable
   fields: a fresh closure per iter call (the obvious style) costs
   tens of megabytes over a batch. *)
type ctx = {
  mutable c_loops : Affine.loop_ctx array;  (* site whose vars resolve *)
  mutable c_limit : int;  (* note: how many leading loop vars in scope *)
  mutable c_base : int;  (* accum: slot of the site's level-0 variable *)
  mutable c_syms : string list;  (* discovery order, reversed *)
  mutable c_sym_arr : string array;
  mutable c_sym_base : int;
  mutable c_coeffs : Zint.t array;
  mutable c_sign : int;
  mutable c_note : string -> Zint.t -> unit;
  mutable c_acc : string -> Zint.t -> unit;
}

(* Collect symbols: every Symexpr variable that is not an in-scope
   loop variable of the current site. *)
let note_sym ctx v (_ : Zint.t) =
  if (not (mem_loops ctx.c_loops ctx.c_limit v 0)) && not (List.mem v ctx.c_syms)
  then ctx.c_syms <- v :: ctx.c_syms

let rec sym_slot (syms : string array) base v i =
  if i >= Array.length syms then -1
  else if String.equal syms.(i) v then base + i
  else sym_slot syms base v (i + 1)

let rec loop_slot (loops : Affine.loop_ctx array) base v k =
  if k >= Array.length loops then -1
  else if String.equal loops.(k).Affine.lvar v then base + k
  else loop_slot loops base v (k + 1)

(* Accumulate [c_sign * coeff] into the slot for [v]. Loop variables
   shadow symbols of the same name (cannot happen after versioning,
   but keep the lookup order sane). *)
let accum_term ctx v c =
  let i =
    match loop_slot ctx.c_loops ctx.c_base v 0 with
    | -1 -> sym_slot ctx.c_sym_arr ctx.c_sym_base v 0
    | i -> i
  in
  assert (i >= 0);
  ctx.c_coeffs.(i) <-
    (if ctx.c_sign > 0 then Zint.add ctx.c_coeffs.(i) c
     else Zint.sub ctx.c_coeffs.(i) c)

let fresh_ctx () =
  let ctx =
    {
      c_loops = [||];
      c_limit = 0;
      c_base = 0;
      c_syms = [];
      c_sym_arr = [||];
      c_sym_base = 0;
      c_coeffs = [||];
      c_sign = 1;
      c_note = (fun _ _ -> ());
      c_acc = (fun _ _ -> ());
    }
  in
  ctx.c_note <- note_sym ctx;
  ctx.c_acc <- accum_term ctx;
  ctx

let ctx_key = Domain.DLS.new_key fresh_ctx

let note_one ctx loops limit e =
  ctx.c_loops <- loops;
  ctx.c_limit <- limit;
  Symexpr.iter ctx.c_note e

let rec note_subs ctx loops limit = function
  | [] -> ()
  | Some e :: rest ->
    note_one ctx loops limit e;
    note_subs ctx loops limit rest
  | None :: rest -> note_subs ctx loops limit rest

(* The level-[k] bounds may only refer to the [k] outer loop
   variables, so the membership scan is bounded per call site. *)
let note_bounds ctx (loops : Affine.loop_ctx array) =
  for k = 0 to Array.length loops - 1 do
    let c = loops.(k) in
    (match c.Affine.lb with Some e -> note_one ctx loops k e | None -> ());
    match c.Affine.ub with Some e -> note_one ctx loops k e | None -> ()
  done

(* Accumulate [sign * e] into [coeffs] (one pass over the coeff map,
   no variable-list detour); returns the signed constant. *)
let accum ctx loops base sign coeffs e =
  ctx.c_loops <- loops;
  ctx.c_base <- base;
  ctx.c_sign <- sign;
  ctx.c_coeffs <- coeffs;
  Symexpr.iter ctx.c_acc e;
  if sign > 0 then Symexpr.const_part e else Zint.neg (Symexpr.const_part e)

(* Equalities: sub1_d(x) - sub2_d(x') = 0, built in a single array per
   dimension. Subscript lists were length-checked by [build]. *)
let rec build_eqs ctx loops1 loops2 n1 nvars subs1 subs2 =
  match (subs1, subs2) with
  | [], _ | _, [] -> []
  | e1 :: r1, e2 :: r2 ->
    let e1 = Option.get e1 and e2 = Option.get e2 in
    let coeffs = Array.make nvars Zint.zero in
    let k1 = accum ctx loops1 0 1 coeffs e1 in
    let nk2 = accum ctx loops2 n1 (-1) coeffs e2 in
    { Consys.coeffs; rhs = Zint.sub (Zint.neg nk2) k1 }
    :: build_eqs ctx loops1 loops2 n1 nvars r1 r2

(* Bounds rows for each loop level, in the order the rest of the
   system depends on (level ascending, lower before upper): built
   back-to-front by prepending. *)
let bounds_for ctx (loops : Affine.loop_ctx array) base nvars =
  let rec go k acc =
    if k < 0 then acc
    else begin
      let c = loops.(k) in
      let subject = base + k in
      let acc =
        match c.Affine.ub with
        | Some ub ->
          (* var <= ub  ==>  var - ub <= 0 *)
          let coeffs = Array.make nvars Zint.zero in
          let const = accum ctx loops base (-1) coeffs ub in
          coeffs.(subject) <- Zint.add coeffs.(subject) Zint.one;
          { Problem.row = { Consys.coeffs; rhs = Zint.neg const }; subject } :: acc
        | None -> acc
      in
      let acc =
        match c.Affine.lb with
        | Some lb ->
          (* lb <= var  ==>  lb - var <= 0 *)
          let coeffs = Array.make nvars Zint.zero in
          let const = accum ctx loops base 1 coeffs lb in
          coeffs.(subject) <- Zint.sub coeffs.(subject) Zint.one;
          { Problem.row = { Consys.coeffs; rhs = Zint.neg const }; subject } :: acc
        | None -> acc
      in
      go (k - 1) acc
    end
  in
  go (Array.length loops - 1) []

let build (s1 : Affine.site) (s2 : Affine.site) =
  if not (Affine.analyzable s1 && Affine.analyzable s2) then None
  else if List.length s1.subscripts <> List.length s2.subscripts then None
  else begin
    let loops1 = Array.of_list s1.loops and loops2 = Array.of_list s2.loops in
    let n1 = Array.length loops1 and n2 = Array.length loops2 in
    let ncommon = Affine.common_loops s1 s2 in
    let ctx = Domain.DLS.get ctx_key in
    ctx.c_syms <- [];
    (* Symbols from both sites' subscripts and bounds. *)
    note_subs ctx loops1 n1 s1.subscripts;
    note_subs ctx loops2 n2 s2.subscripts;
    note_bounds ctx loops1;
    note_bounds ctx loops2;
    let syms = Array.of_list (List.rev ctx.c_syms) in
    let nsym = Array.length syms in
    let nvars = n1 + n2 + nsym in
    ctx.c_sym_arr <- syms;
    ctx.c_sym_base <- n1 + n2;
    let eqs = build_eqs ctx loops1 loops2 n1 nvars s1.subscripts s2.subscripts in
    let ineqs = bounds_for ctx loops1 0 nvars @ bounds_for ctx loops2 n1 nvars in
    let names =
      Array.init nvars (fun i ->
          if i < n1 then loops1.(i).Affine.lvar
          else if i < n1 + n2 then loops2.(i - n1).Affine.lvar ^ "'"
          else syms.(i - n1 - n2))
    in
    Some (Problem.make ~names ~n1 ~n2 ~nsym ~ncommon ~eqs ~ineqs)
  end
