type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Bounds.t
  | Partial of Bounds.t * Cert.drow list

exception Row_false of Cert.deriv

let m_calls = Dda_obs.Metrics.counter "test.svpc.calls"
let m_indep = Dda_obs.Metrics.counter "test.svpc.independent"

let run_inner ?budget (sys : Consys.t) =
  Failpoint.hit "svpc.run";
  (match budget with
   | Some b -> Budget.tick b ~cost:(List.length sys.rows + 1)
   | None -> ());
  let box = Bounds.create sys.nvars in
  match
    let multi = ref [] in
    List.iteri
      (fun i (r : Consys.row) ->
         let why = Cert.Hyp i in
         if Consys.num_vars_used r >= 2 then
           multi := { Cert.row = r; why } :: !multi
         else
           match Bounds.absorb ~why box r with
           | `Absorbed | `Trivial -> ()
           | `False -> raise (Row_false why))
      sys.rows;
    List.rev !multi
  with
  | exception Row_false why -> Infeasible (Cert.Refute why)
  | multi -> (
    match Bounds.refute_empty box with
    | Some cert -> Infeasible cert
    | None -> if multi = [] then Feasible box else Partial (box, multi))

let run ?budget (sys : Consys.t) =
  Dda_obs.Metrics.incr m_calls;
  let out =
    Dda_obs.Trace.wrap ~name:"svpc"
      ~args:(fun out ->
          [ ( "verdict",
              match out with
              | Infeasible _ -> 0
              | Feasible _ -> 1
              | Partial _ -> 2 ) ])
      (fun () ->
         Dda_obs.Attrib.time Dda_obs.Attrib.Svpc (fun () ->
             run_inner ?budget sys))
  in
  (match out with Infeasible _ -> Dda_obs.Metrics.incr m_indep | _ -> ());
  out
