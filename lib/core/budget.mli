(** Per-query resource accounting (the robustness backbone).

    Fourier-Motzkin elimination is worst-case exponential, and the
    cascade's whole point is that the expensive corner is rare — but a
    production service cannot bet on "rare". A {!t} is a per-query
    account threaded through every solver stage; when any dimension
    runs out the stage raises {!Exhausted}, which {!Cascade.run} (and,
    as a backstop, the analyzer) converts into a {e sound, flagged}
    conservative verdict: assume dependent, mark the answer degraded.
    Exhaustion never escapes the analyzer and never costs soundness —
    "dependent" is always a safe over-approximation.

    The account is cooperative: stages call {!tick}/{!check_rows}/
    {!check_coeff} at their work loops. The optional [cancel] callback
    is polled every few dozen ticks, letting an external watchdog (the
    batch engine's per-item deadline) stop a stuck query without
    signals or domain-kills. *)

type reason =
  | Steps  (** the solver step account ran out *)
  | Rows  (** a Fourier-Motzkin system exceeded the row cap *)
  | Coeff  (** a derived coefficient exceeded the magnitude cap *)
  | Deadline  (** the [cancel] callback asked us to stop *)
  | Injected  (** a {!Failpoint} forced exhaustion (testing only) *)

val reason_name : reason -> string
val pp_reason : Format.formatter -> reason -> unit

type limits = {
  fm_depth : int;  (** Fourier branch-and-bound depth (default 32) *)
  fm_branches : int;
      (** total branch-and-bound splits per Fourier solve (default 64,
          the historical hardcoded budget); running out yields
          [Fourier.Unknown], not {!Exhausted} — that path predates the
          budget machinery and is already flagged as inexact *)
  max_steps : int option;  (** total solver steps per query *)
  max_rows : int option;  (** peak rows in any Fourier system *)
  max_coeff_bits : int option;
      (** cap on derived coefficient magnitude, as a bit count:
          exhausted when [|c| > 2^bits] *)
}

val default_limits : limits
(** Depth 32, branches 64, every new dimension unlimited — exactly the
    pre-budget behavior. *)

type t

exception Exhausted of reason
(** Internal control flow: raised by the checks below, caught by
    {!Cascade.run} / the analyzer. Never escapes the analyzer API. *)

val create : ?cancel:(unit -> bool) -> limits -> t
(** [cancel] is polled roughly every 64 ticks; returning [true]
    exhausts the budget with reason {!Deadline}. *)

val unlimited : unit -> t
(** [create default_limits]: checks cost almost nothing. *)

val limits : t -> limits

val tick : ?cost:int -> t -> unit
(** Charge [cost] (default 1) solver steps; raises {!Exhausted} when
    the account runs out (sticky: every later call re-raises). *)

val check_rows : t -> int -> unit
val check_coeff : t -> Dda_numeric.Zint.t -> unit

val exhaust : t -> reason -> 'a
(** Mark the account spent and raise. *)

val spent : t -> reason option
val steps_used : t -> int
