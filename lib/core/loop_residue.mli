(** The Simple Loop Residue test (paper section 3.4; Pratt's difference
    constraints with Shostak's graph formulation, plus the paper's
    exactness-preserving extension to equal coefficients
    [a*ti <= a*tj + c]).

    Applicable when every residual constraint relates at most two
    variables with equal-magnitude opposite coefficients. Such a system
    is feasible over the integers iff its residue graph has no negative
    cycle — and that equivalence is exact, because difference
    constraint systems have integral solutions whenever they have real
    ones. An infeasible answer is certified by the negative cycle
    itself: each edge derives a row [x_dst - x_src <= w], and summing
    around the cycle leaves [0 <= weight < 0]. *)

open Dda_numeric

type outcome =
  | Infeasible of Cert.infeasible  (** a negative cycle: exact independence *)
  | Feasible of Zint.t array  (** integral witness from the potentials *)

val applicable : Consys.row list -> bool
(** True when every row has at most two variables and every two-variable
    row's coefficients are opposite and equal in magnitude. *)

val run : ?budget:Budget.t -> Bounds.t -> Cert.drow list -> outcome option
(** May raise {!Budget.Exhausted} when a budget is supplied; the
    cascade converts that into a degraded verdict.

    [None] when not applicable. The box contributes the single-variable
    edges through the paper's special node [n0].
    @raise Invalid_argument when an infeasibility certificate is needed
    but a box bound lacks provenance (boxes from {!Svpc.run} /
    {!Acyclic.run} always carry it). *)

val to_dot : Bounds.t -> Cert.drow list -> string
(** The residue graph in Graphviz format (paper Figure 1). *)
