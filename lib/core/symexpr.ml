open Dda_numeric

module Vm = Map.Make (String)

(* Canonical: no zero coefficients stored. *)
type t = {
  coeffs : Zint.t Vm.t;
  const : Zint.t;
}

let const c = { coeffs = Vm.empty; const = c }
let of_int n = const (Zint.of_int n)
let zero = const Zint.zero
let var v = { coeffs = Vm.singleton v Zint.one; const = Zint.zero }

let put v c m = if Zint.is_zero c then Vm.remove v m else Vm.add v c m

let add a b =
  {
    coeffs =
      Vm.union (fun _ x y -> let s = Zint.add x y in if Zint.is_zero s then None else Some s)
        a.coeffs b.coeffs;
    const = Zint.add a.const b.const;
  }

let neg a = { coeffs = Vm.map Zint.neg a.coeffs; const = Zint.neg a.const }
let sub a b = add a (neg b)

let scale k a =
  if Zint.is_zero k then zero
  else { coeffs = Vm.map (Zint.mul k) a.coeffs; const = Zint.mul k a.const }

let is_const a = Vm.is_empty a.coeffs
let to_const a = if is_const a then Some a.const else None

let mul a b =
  match (to_const a, to_const b) with
  | Some ka, _ -> Some (scale ka b)
  | _, Some kb -> Some (scale kb a)
  | None, None -> None

let div_exact a k =
  if Zint.is_zero k then None
  else if Vm.for_all (fun _ c -> Zint.divides k c) a.coeffs && Zint.divides k a.const
  then
    Some
      {
        coeffs = Vm.map (fun c -> Zint.divexact c k) a.coeffs;
        const = Zint.divexact a.const k;
      }
  else None

let coeff a v = match Vm.find_opt v a.coeffs with Some c -> c | None -> Zint.zero
let const_part a = a.const
let vars a = Vm.bindings a.coeffs |> List.map fst
let iter f a = Vm.iter f a.coeffs
let exists_var p a = Vm.exists (fun v _ -> p v) a.coeffs

let eval lookup a =
  Vm.fold (fun v c acc -> Zint.add acc (Zint.mul c (lookup v))) a.coeffs a.const

let rename f a =
  let coeffs =
    Vm.fold
      (fun v c m ->
         let v' = f v in
         if Vm.mem v' m then invalid_arg "Symexpr.rename: name collision"
         else put v' c m)
      a.coeffs Vm.empty
  in
  { a with coeffs }

let subst v e t =
  let c = coeff t v in
  if Zint.is_zero c then t
  else add { t with coeffs = Vm.remove v t.coeffs } (scale c e)

let equal a b = Zint.equal a.const b.const && Vm.equal Zint.equal a.coeffs b.coeffs

let compare a b =
  match Zint.compare a.const b.const with
  | 0 -> Vm.compare Zint.compare a.coeffs b.coeffs
  | c -> c

let pp fmt a =
  let terms = Vm.bindings a.coeffs in
  if terms = [] then Zint.pp fmt a.const
  else begin
    let first = ref true in
    List.iter
      (fun (v, c) ->
         if !first then begin
           first := false;
           if Zint.is_one c then Format.pp_print_string fmt v
           else if Zint.equal c Zint.minus_one then Format.fprintf fmt "-%s" v
           else Format.fprintf fmt "%a%s" Zint.pp c v
         end
         else if Zint.is_negative c then
           if Zint.equal c Zint.minus_one then Format.fprintf fmt " - %s" v
           else Format.fprintf fmt " - %a%s" Zint.pp (Zint.neg c) v
         else if Zint.is_one c then Format.fprintf fmt " + %s" v
         else Format.fprintf fmt " + %a%s" Zint.pp c v)
      terms;
    if Zint.is_negative a.const then Format.fprintf fmt " - %a" Zint.pp (Zint.neg a.const)
    else if not (Zint.is_zero a.const) then Format.fprintf fmt " + %a" Zint.pp a.const
  end

let rec of_ast ~classify (e : Dda_lang.Ast.expr) =
  match e.desc with
  | Dda_lang.Ast.Int n -> Some (of_int n)
  | Dda_lang.Ast.Var v -> (
      match classify v with `Var -> Some (var v) | `NonAffine -> None)
  | Dda_lang.Ast.Neg a -> Option.map neg (of_ast ~classify a)
  | Dda_lang.Ast.Aref _ -> None
  | Dda_lang.Ast.Bin (op, a, b) -> (
      match (of_ast ~classify a, of_ast ~classify b) with
      | Some ea, Some eb -> (
          match op with
          | Dda_lang.Ast.Add -> Some (add ea eb)
          | Dda_lang.Ast.Sub -> Some (sub ea eb)
          | Dda_lang.Ast.Mul -> mul ea eb
          | Dda_lang.Ast.Div -> (
              (* Only exact division by a constant keeps the expression
                 affine with the language's truncating semantics. *)
              match to_const eb with
              | Some k when not (Zint.is_zero k) -> div_exact ea k
              | _ -> None))
      | _ -> None)
