(** The paper's memoization hash table (section 5).

    A purpose-built open-hashing (chained) table over integer-vector
    keys with the paper's hash function [h(x) = size(x) + sum 2^i x_i]
    — chosen "so that symmetrical or partially symmetrical references
    would not collide". Grows by rehashing at load factor 2. *)

type 'a t

val create : ?initial_buckets:int -> unit -> 'a t

val find : 'a t -> int list -> 'a option
val add : 'a t -> int list -> 'a -> unit
(** Replaces any previous binding of the key. *)

val find_or_add : 'a t -> int list -> (unit -> 'a) -> 'a * bool
(** [(value, was_hit)]; computes and stores on a miss. *)

val merge_into : into:'a t -> 'a t -> unit
(** Absorb the second table into the first: the key sets are unioned
    (an existing binding in [into] wins over the absorbed one) and the
    lookup/hit counters are summed. The absorbed table is left
    untouched. Used to combine per-domain tables after a parallel batch
    run, where [length] of the merged table is the number of distinct
    problems across the whole corpus.
    @raise Invalid_argument when both arguments are the same table. *)

val length : 'a t -> int
(** Number of distinct keys stored. *)

val lookups : 'a t -> int
val hits : 'a t -> int
(** Lookup/hit counters for the memoization-effectiveness tables. *)

val reset_counters : 'a t -> unit

val hash_key : int list -> int
(** The paper's hash function, exposed for tests. *)
