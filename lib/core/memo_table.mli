(** The paper's memoization hash table (section 5).

    A purpose-built open-hashing (chained) table over integer-vector
    keys with the paper's hash function [h(x) = size(x) + sum 2^i x_i]
    — chosen "so that symmetrical or partially symmetrical references
    would not collide". Keys are flat [int array]s (built once per
    query, no per-element boxing); each stored entry keeps its key's
    hash, so growing the table and merging tables never rehash keys.
    Grows by doubling when [length] exceeds {!load_factor} entries per
    bucket. *)

type 'a t

val load_factor : int
(** Mean chain length that triggers a doubling rehash (2). *)

val create : ?initial_buckets:int -> unit -> 'a t

val find : 'a t -> int array -> 'a option

val add : 'a t -> int array -> 'a -> unit
(** Replaces any previous binding of the key. *)

val find_or_add : 'a t -> int array -> (unit -> 'a) -> 'a * bool
(** [(value, was_hit)]; computes and stores on a miss. The key is
    hashed exactly once per call, and never retained: on a miss it is
    copied before [compute] runs, so callers may pass a reusable
    scratch buffer ({!Problem.to_key_scratch}). *)

val merge_into : into:'a t -> 'a t -> unit
(** Absorb the second table into the first: the key sets are unioned
    (an existing binding in [into] wins over the absorbed one) and the
    lookup/hit counters are summed. The absorbed table is left
    untouched. Used to combine per-domain tables after a parallel batch
    run, where [length] of the merged table is the number of distinct
    problems across the whole corpus.
    @raise Invalid_argument when both arguments are the same table. *)

val iter : (int array -> 'a -> unit) -> 'a t -> unit
(** Apply [f] to every stored binding, in unspecified order. The
    durable cache uses this to spill a table to disk; [f] must not
    mutate the table. *)

val length : 'a t -> int
(** Number of distinct keys stored. *)

val lookups : 'a t -> int
val hits : 'a t -> int
(** Lookup/hit counters for the memoization-effectiveness tables. *)

type stats = {
  size : int;  (** distinct keys stored *)
  buckets : int;  (** current bucket-array length *)
  lookups : int;
  hits : int;
}

val stats : 'a t -> stats
(** One-shot snapshot of occupancy and counter state, for reporting
    (e.g. [ddtest batch] output). *)

val reset_counters : 'a t -> unit

val hash_key : int array -> int
(** The paper's hash function, exposed for tests. *)
