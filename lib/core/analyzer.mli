(** The whole-program dependence analyzer: optimizer prepass, affine
    extraction, pair enumeration, memoized cascaded testing, and
    direction/distance vectors — the full pipeline the paper evaluates
    on the PERFECT Club. *)

open Dda_numeric
open Dda_lang

type memo_mode =
  | Memo_off
  | Memo_simple  (** exact-match memoization (paper's simple scheme) *)
  | Memo_improved
      (** with unused loop variables eliminated before keying (paper's
          improved scheme) *)
  | Memo_symmetric
      (** improved, plus the paper's "symmetrical cases" optimization:
          a pair and its mirror image ([a\[i\]] vs [a\[i-1\]] /
          [a\[i-1\]] vs [a\[i\]]) share one entry, with direction
          vectors and distances mirrored on retrieval *)

type config = {
  symbolic : bool;  (** treat loop-invariant unknowns as variables (s8) *)
  memo : memo_mode;
  directions : bool;  (** compute direction/distance vectors (s6) *)
  prune : Direction.prune;
  fm_tighten : bool;
  run_pipeline : bool;  (** run the optimizer prepass first *)
  within_nest_only : bool;
      (** only pair references that share at least one enclosing loop
          (the loop-parallelization use case, and what the paper's
          per-program counts measure); [false] additionally tests
          cross-nest pairs *)
  limits : Budget.limits;
      (** per-query resource caps; exhaustion degrades to a flagged
          assumed-dependent verdict, never an exception or a hang.
          Pure data (no callbacks): the config is marshaled into
          sessions — pass a watchdog via [?cancel] instead. *)
}

val default_config : config
(** Symbolic on, improved memoization, directions on with full pruning,
    paper-faithful Fourier-Motzkin, optimizer prepass on. *)

type outcome =
  | Constant of bool
      (** both references' subscripts are constants; the bool is
          "dependent" (equal) — handled without dependence testing *)
  | Assumed_dependent  (** not affine: conservatively dependent *)
  | Gcd_independent  (** the bounds-free equalities already fail *)
  | Tested of {
      dependent : bool;
      unknown : bool;  (** true when assumed dependent by exhaustion *)
      decided_by : Cascade.test option;
          (** the deciding test of the plain query ([None] when memoized
              direction refinement answered without a plain query) *)
      directions : Direction.dir array list;
          (** over the pair's common loops (empty unless [directions]) *)
      distance : Zint.t array option;
      implicit_bb : bool;
      degraded : Budget.reason option;
          (** the query's {!Budget} ran out: [dependent], [directions]
              and [distance] are a sound {e over}-approximation of the
              exact answer (assume dependent, all directions possible at
              unrefined levels), and no exactness claim — in particular
              [implicit_bb] — is made. [unknown] is also true. *)
    }

type pair_report = {
  array_name : string;
  loc1 : Loc.t;
  loc2 : Loc.t;
  stmt1 : Loc.t;  (** statement enclosing the first reference *)
  stmt2 : Loc.t;
  role1 : [ `Read | `Write ];
  role2 : [ `Read | `Write ];
  self_pair : bool;
  ncommon : int;
  common_ids : int list;  (** loop ids of the common loops, outermost first *)
  enclosing_ids1 : int list;  (** all loop ids enclosing the first site *)
  enclosing_ids2 : int list;
  outcome : outcome;
}

type dep_kind =
  | Flow  (** write then read *)
  | Anti  (** read then write *)
  | Output  (** write then write *)
  | Input  (** read then read (never produced for tested pairs) *)

val pp_dep_kind : Format.formatter -> dep_kind -> unit

val vector_kind : pair_report -> Direction.dir array -> dep_kind
(** Classify one direction vector of a dependent pair: the source is
    the reference whose instance executes first (the leading non-[=]
    direction decides; an all-[=] vector is loop-independent and the
    textually earlier reference — the first — is the source). A leading
    ["*"] is ambiguous and classified as if the first reference were
    the source. *)

val vector_carries_at : Direction.dir array -> int -> bool
(** [vector_carries_at v k]: whether direction vector [v] admits an
    instance pair carried at common-loop index [k] (0 = outermost) —
    [v.(k)] is [<], [>] or [*], and every outer level admits [=]
    (is [=] or [*]). *)

val vector_carrier : Direction.dir array -> int option
(** The outermost common-loop index at which the vector can be
    carried, or [None] for a loop-independent (all-[=]) vector. *)

val pair_carries : pair_report -> int -> bool
(** [pair_carries r lid]: whether the pair may be carried by the loop
    with id [lid]. Conservative in exactly the way
    {!parallel_loops} is: [Constant true] and [Assumed_dependent]
    outcomes (no vector information) and tested-dependent outcomes
    with an empty direction set carry at {e every} common loop; a
    loop that is not common to both references never carries. *)

type stats = {
  mutable pairs : int;
  mutable constant_cases : int;
  mutable gcd_independent : int;
  mutable assumed : int;
  mutable plain_by_test : int array;  (** length 4, indexed like {!Direction.counts} *)
  dir_counts : Direction.counts;
  mutable implicit_bb_cases : int;
  mutable degraded_pairs : int;
      (** pairs whose verdict is a budget-degraded over-approximation *)
  mutable independent_pairs : int;
  mutable dependent_pairs : int;
  mutable vectors_reported : int;
  mutable memo_lookups_nobounds : int;
  mutable memo_hits_nobounds : int;
  mutable memo_unique_nobounds : int;
  mutable memo_lookups_full : int;
  mutable memo_hits_full : int;
  mutable memo_unique_full : int;
}

val fresh_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** Field-wise accumulation of the second statistics record into the
    first, {!Direction.counts} included. Memo counters are summed too:
    when each record comes from an independent analysis (its own memo
    tables), the sums are the corpus totals; when records share a
    session, sum the per-call lookups/hits but take unique-entry counts
    from the session's tables (see {!session_table_sizes}), since each
    per-call value is already cumulative. *)

val stats_to_list : stats -> int list
(** Every field flattened into a fixed-order integer list — a stable,
    version-checked wire form for the streaming batch journal.
    [stats_of_list (stats_to_list s)] restores an equal record. *)

val stats_of_list : int list -> stats option
(** Inverse of {!stats_to_list}; [None] when the list has the wrong
    arity (e.g. a journal written by an incompatible build). *)

type report = {
  pair_reports : pair_report list;
  stats : stats;
}

(** {1 The pluggable memo cache}

    The analyzer is a pure query layer over this interface: every
    memoized lookup (the bounds-free gcd table and the full canonical
    table) goes through one [cache] record, so the backend can be a
    pair of fresh in-process tables (the default), a session's shared
    tables, or a write-through durable store with a mutex around it
    ([Dda_cache]). Keys are the canonical problem keys
    ({!Problem.to_key} / {!Problem.key_without_bounds}); whoever
    persists them must fingerprint the {!config} and
    {!memo_format_version}, since both determine key and value
    compatibility. *)

type cache = {
  find_or_add_gcd :
    int array -> (unit -> Gcd_test.outcome) -> Gcd_test.outcome * bool;
      (** [(value, was_hit)]; must compute and store on a miss, and
          store nothing when [compute] raises. The analyzer passes
          scratch-buffer keys ({!Problem.to_key_scratch}) that later
          lookups overwrite: an implementation that retains the key
          must copy it {e before} invoking [compute] (nested lookups
          during [compute] reuse the buffer) *)
  find_or_add_full : int array -> (unit -> outcome) -> outcome * bool;
  cache_stats : unit -> Memo_table.stats * Memo_table.stats;
      (** [(gcd, full)] occupancy and lookup/hit counters *)
  cache_flush : unit -> unit;
      (** push write-through state to stable storage (no-op for
          in-memory backends) *)
}

val memory_cache : unit -> cache
(** A fresh pair of in-process {!Memo_table}s — the backend {!analyze}
    uses when no cache is supplied. Not safe to share across domains
    without external locking. *)

type shared
(** One gcd + one full lock-striped {!Sharded_table} pair, safe to
    query live from every worker domain of a parallel run. This is the
    live-sharing alternative to per-domain sessions merged after the
    fact: a cross-item repeat is a hit the moment any domain has
    computed it. *)

val create_shared : ?stripes:int -> unit -> shared

val shared_cache : shared -> cache
(** The shared tables as a {!cache}. [cache_stats] aggregates across
    stripes and across every domain that used the cache — do not feed
    it to {!analyze} directly (its per-item delta arithmetic is racy on
    a shared backend); wrap it in {!counted_cache} per item instead. *)

val counted_cache : cache -> cache
(** Wrap a cache with query-local counters, for per-item reporting
    over a shared backend: full-table lookups are a pure function of
    the item and stay jobs-invariant; hits — and with them the gcd
    traffic, which only happens on full-table misses — depend on what
    the shared tables already held (scheduling-dependent at
    [--jobs > 1]); the occupancy slot counts this wrapper's completed
    misses. The wrapper is not itself domain-safe — one wrapper per
    item. *)

val shared_table_stats : shared -> Memo_table.stats * Memo_table.stats
(** [(gcd, full)] aggregated over stripes. Sizes (distinct problems)
    are jobs-invariant, as are full-table lookup totals; gcd lookup
    and all hit totals depend on cross-domain timing and are only
    deterministic at [--jobs 1]. *)

val shared_contended : shared -> int
(** Total stripe-lock acquisitions (both tables) that had to block —
    the live-sharing cost signal ([memo.stripe.contended]). *)

val memo_format_version : int
(** Version of the marshaled memo key/value representation (the same
    number the session file format carries). Durable cache backends
    include it in their header fingerprint: a cache written by an
    incompatible build must read as a cold start, never as data. *)

val analyze :
  ?config:config -> ?cancel:(unit -> bool) -> ?cache:cache -> Ast.program -> report
(** Analyze a whole program. Pairs are every (textually ordered) pair
    of same-array references with at least one write, including each
    write against itself (whose identical-iteration solution is
    excluded, so a self pair is dependent only when distinct iterations
    collide).

    Domain safety: every piece of mutable state ([stats], memo tables,
    pass-internal accumulators) lives in values created per call or per
    session — the analyzer keeps no module-level mutable globals — so
    concurrent [analyze] calls, and [analyze_session] calls on
    {e distinct} sessions, are safe from different domains. A single
    session must not be shared across domains; cross-domain sharing
    goes through a {!shared} cache ([Dda_engine.Batch]'s live mode),
    or each domain gets its own session merged afterwards (the
    merge-after oracle mode).

    [cancel] is a cooperative watchdog polled by the per-query budget
    every few dozen solver steps; returning [true] degrades the current
    pair (reason [Deadline]) and every later one. The batch engine uses
    it to bound per-item wall time without killing domains. *)

val site_pairs :
  config -> Affine.site list -> (Affine.site * Affine.site) list
(** The pair enumeration {!analyze} performs after extraction: every
    textually ordered pair of same-array references with at least one
    write (self pairs only for writes, and only when [directions] is
    on), filtered by [within_nest_only]. Exposed so the verification
    layer can replay the analyzer's work pair by pair. *)

val analyze_sites :
  ?config:config ->
  ?cancel:(unit -> bool) ->
  ?cache:cache ->
  (Affine.site * Affine.site) list ->
  report
(** Analyze explicit site pairs (used by the benchmark harness, which
    generates problems directly, and by the verifier). *)

(** {1 Sessions: memoization across compilations}

    The paper suggests storing the hash table across compilations to
    eliminate the dependence cost of incremental recompilation, or even
    priming a standard table from a benchmark suite. A session carries
    the memo tables from one [analyze] call to the next and can be
    saved to and loaded from disk. *)

type session

val create_session : ?config:config -> unit -> session
val session_config : session -> config

val analyze_session : ?cancel:(unit -> bool) -> session -> Ast.program -> report
(** Like {!analyze}, but reusing (and extending) the session's memo
    tables. The report's memo statistics are per-call; table sizes are
    cumulative. [cancel] applies to this call only. Note that degraded
    verdicts are memoized like any other (they are deterministic under
    the step/row/coefficient caps); a [Deadline]-degraded verdict,
    however, depends on wall time, so sharing sessions across runs with
    watchdogs can cache a verdict a later run would have refined. *)

val merge_sessions : into:session -> session -> unit
(** Absorb the second session's memo tables into the first
    ({!Memo_table.merge_into} on both tables): keys are unioned, the
    first session's bindings win on overlap, counters are summed. The
    parallel batch engine uses this to combine per-domain sessions into
    one corpus-wide table; it is equally useful for merging primed
    tables built from different suites.
    @raise Invalid_argument when the sessions were built under
    different configurations (their memo keys are not comparable), or
    when both arguments are the same session. *)

val session_table_sizes : session -> int * int
(** [(gcd_entries, full_entries)]: distinct problems currently stored
    in the session's two memo tables. *)

val session_table_stats : session -> Memo_table.stats * Memo_table.stats
(** [(gcd_stats, full_stats)]: full {!Memo_table.stats} snapshots
    (entries, bucket count, lifetime lookups and hits) for the
    session's two memo tables. After {!merge_sessions} the counters
    cover every absorbed session, so the batch engine can report
    corpus-wide hit rates. *)

val save_session : session -> string -> unit
(** Persist the session's memo tables. *)

val load_session : string -> session
(** Restores the tables {e and the configuration they were built
    under} (memo keys are config-dependent, so the two travel
    together); check {!session_config} if a particular setup is
    required.
    @raise Failure when the file is not a saved session or has an
    unsupported version. *)

val parallel_loops : report -> Affine.site list -> (int * bool) list
(** For each loop id occurring in the sites: is the loop parallelizable
    (no dependence carried at its level)? A conservative client of the
    direction vectors, as in the paper's introduction. *)
