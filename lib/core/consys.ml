open Dda_numeric

type row = {
  coeffs : Zint.t array;
  rhs : Zint.t;
}

type t = {
  nvars : int;
  rows : row list;
}

let make ~nvars rows =
  List.iter
    (fun r ->
       if Array.length r.coeffs <> nvars then
         invalid_arg "Consys.make: row width mismatch")
    rows;
  { nvars; rows }

let row_of_ints coeffs rhs =
  { coeffs = Array.of_list (List.map Zint.of_int coeffs); rhs = Zint.of_int rhs }

let normalize_row r =
  let g = Array.fold_left (fun g c -> Zint.gcd g c) Zint.zero r.coeffs in
  if Zint.is_zero g || Zint.is_one g then r
  else
    {
      coeffs = Array.map (fun c -> Zint.divexact c g) r.coeffs;
      rhs = Zint.fdiv r.rhs g;
    }

let nonzero_vars r =
  let out = ref [] in
  Array.iteri (fun i c -> if not (Zint.is_zero c) then out := i :: !out) r.coeffs;
  List.rev !out

(* Counted directly — this runs once per derived row in the solver's
   dedup, so it must not build the [nonzero_vars] list. *)
let num_vars_used r =
  let n = ref 0 in
  Array.iter (fun c -> if not (Zint.is_zero c) then incr n) r.coeffs;
  !n

let satisfies point r =
  let acc = ref Zint.zero in
  Array.iteri (fun i c -> acc := Zint.add !acc (Zint.mul c point.(i))) r.coeffs;
  Zint.compare !acc r.rhs <= 0

let satisfies_all point sys = List.for_all (satisfies point) sys.rows

let equal_row a b =
  Zint.equal a.rhs b.rhs
  && Array.length a.coeffs = Array.length b.coeffs
  && (let ok = ref true in
      Array.iteri (fun i c -> if not (Zint.equal c b.coeffs.(i)) then ok := false) a.coeffs;
      !ok)

let pp_row ~names fmt r =
  let first = ref true in
  Array.iteri
    (fun i c ->
       if not (Zint.is_zero c) then begin
         let name = if i < Array.length names then names.(i) else Printf.sprintf "t%d" i in
         if !first then begin
           first := false;
           if Zint.is_one c then Format.pp_print_string fmt name
           else if Zint.equal c Zint.minus_one then Format.fprintf fmt "-%s" name
           else Format.fprintf fmt "%a%s" Zint.pp c name
         end
         else if Zint.is_negative c then
           if Zint.equal c Zint.minus_one then Format.fprintf fmt " - %s" name
           else Format.fprintf fmt " - %a%s" Zint.pp (Zint.neg c) name
         else if Zint.is_one c then Format.fprintf fmt " + %s" name
         else Format.fprintf fmt " + %a%s" Zint.pp c name
       end)
    r.coeffs;
  if !first then Format.pp_print_string fmt "0";
  Format.fprintf fmt " <= %a" Zint.pp r.rhs

let pp ?names fmt sys =
  let names =
    match names with
    | Some n -> n
    | None -> Array.init sys.nvars (Printf.sprintf "t%d")
  in
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_row ~names))
    sys.rows
