(** Compiled-in fault injection (chaos testing).

    The analyzer and engine carry named failpoint sites — plain
    [Failpoint.hit "site.name"] calls at the entry of every solver
    stage, the memo tables, and the batch workers. In production they
    cost one atomic load. Activated (via the [DDA_FAILPOINTS]
    environment variable or {!configure}) a site can raise, busy-delay,
    or exhaust the query budget, at a chosen hit or with a
    deterministic pseudo-probability — exactly the failures the
    resource-governance layer promises to survive, made reproducible.

    Spec grammar (comma-separated):
    {v site=action[@window] v}
    where [action] is [raise] | [exhaust] | [delay:MS] | [kill] (die
    immediately, simulating kill -9 — see {!set_kill_handler}) and
    [window] is
    [N] (the Nth hit only), [N-M] (hits N through M), [N+] (hit N
    onwards) or [pP] (each hit fires with pseudo-probability P, e.g.
    [p0.01]; deterministic in the per-site hit count, so runs are
    reproducible). No window means every hit fires.

    Example: [DDA_FAILPOINTS="batch.item=raise@1-2,fourier.solve=delay:1@p0.05"].

    Hit counting is global (mutex-protected), shared across domains. *)

exception Injected of string
(** Raised by a [raise]-action site; carries the site name. *)

val known_sites : string list
(** The sites compiled into this build, for documentation and spec
    validation (unknown names in a spec are a configuration error). *)

val hit : string -> unit
(** Mark a site. No-op (one atomic load) unless failpoints are active. *)

val configure : string -> (unit, string) result
(** Replace the active rules with the parsed spec (an empty string
    deactivates everything). *)

val set : string -> unit
(** [configure] or [invalid_arg]. For tests. *)

val clear : unit -> unit
(** Deactivate all failpoints (including [DDA_FAILPOINTS] ones). *)

val hits : string -> int
(** How many times a site was reached while active (testing). *)

val set_kill_handler : (unit -> unit) -> unit
(** How the [kill] action dies. The default is [exit 137] (which still
    runs [at_exit] — lib/core links no unix); binaries that can should
    install [fun () -> Unix.kill (Unix.getpid ()) Sys.sigkill] so the
    process dies exactly as under kill -9, mid-write included. *)
