(** A dependence problem in the paper's normal form.

    Two references enclosed in loop nests sharing [ncommon] outer
    loops. The unknowns are the loop variables of the first reference's
    iteration ([i]), those of the second ([i']), and the shared
    symbolic terms — laid out in that order. Subscript agreement gives
    one {e equality} row per array dimension; loop bounds give
    {e inequality} rows; symbolic terms are unconstrained. The
    references are dependent iff the system has an integer solution. *)

open Dda_numeric

type bound = {
  row : Consys.row;  (** read as [sum <= rhs] *)
  subject : int;
      (** the loop variable this row bounds (used by the
          unused-variable pruning rule, which must distinguish "appears
          in its own bound" from "appears in another variable's
          bound") *)
}

type t = {
  names : string array;  (** variable names, for printing *)
  n1 : int;  (** loops enclosing the first reference *)
  n2 : int;
  nsym : int;
  ncommon : int;  (** shared outer loops, [<= min n1 n2] *)
  eqs : Consys.row list;  (** rows read as [sum = rhs] *)
  ineqs : bound list;
}

val make :
  names:string array ->
  n1:int ->
  n2:int ->
  nsym:int ->
  ncommon:int ->
  eqs:Consys.row list ->
  ineqs:bound list ->
  t
(** Validates the layout invariants. *)

val ineq_rows : t -> Consys.row list

val nvars : t -> int
val var1 : t -> int -> int
(** Index of the first reference's level-[k] loop variable. *)

val var2 : t -> int -> int
val sym_var : t -> int -> int

val with_extra_ineqs : t -> bound list -> t

val swap : t -> t
(** Exchange the roles of the two references: the paper's "symmetrical
    cases" optimization rests on [a\[i\]] vs [a\[i-1\]] being the same
    problem as [a\[i-1\]] vs [a\[i\]] with the answer mirrored. The
    keys of mirror-image problems coincide because {!to_key}
    sign-normalizes equality rows. *)

val satisfies : Zint.t array -> t -> bool
(** Does a full assignment satisfy every equality and inequality? *)

val to_key : ?tag:int -> t -> int array
(** A canonical integer serialization, the memoization key, written
    into one flat array. Coefficients must fit in native ints (they do
    by construction: keys are built from source-program problems,
    before any test transforms them). Variable names are not part of
    the key — two textually different nests with the same shape
    memoize together, as in the paper. [tag] prepends one
    caller-chosen slot (e.g. the self-pair flag) without a second
    allocation. *)

val key_without_bounds : t -> int array
(** Serialization of the equalities only, keying the GCD-test memo
    table ("the GCD test does not make use of bounds"). *)

val to_key_scratch : ?tag:int -> t -> int array
val key_without_bounds_scratch : t -> int array
(** Like {!to_key} / {!key_without_bounds}, but written into a buffer
    owned by the calling domain and reused across calls: most keys are
    discarded immediately after a memo-table hit, so the lookup path
    borrows instead of allocating. The buffer is valid only until the
    next [*_scratch] call of the same key length on the same domain —
    anyone retaining the key past that (the memo tables, on a miss)
    must copy it first; {!Analyzer.cache} implementations do. *)

val pp : Format.formatter -> t -> unit
