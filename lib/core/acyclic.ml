open Dda_numeric

type elim =
  | Pinned of {
      var : int;
      value : Zint.t;
    }
  | Discharged of {
      var : int;
      upper : bool;
      rows : Cert.drow list;
    }

type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Bounds.t * elim list
  | Cycle of Bounds.t * elim list * Cert.drow list

(* Sign usage of every variable across the multi-variable rows. *)
let sign_usage nvars rows =
  let pos = Array.make nvars false and neg = Array.make nvars false in
  List.iter
    (fun (dr : Cert.drow) ->
       Array.iteri
         (fun i c ->
            if Zint.is_positive c then pos.(i) <- true
            else if Zint.is_negative c then neg.(i) <- true)
         dr.row.coeffs)
    rows;
  (pos, neg)

(* Substitute t_i := v in every row that mentions it; re-classify the
   results. [bound_why] derives the binding bound row ([-t_i <= -v]
   when pinning to the lower bound, [t_i <= v] to the upper): adding it
   |a| times to a row with coefficient [a] on t_i cancels the variable
   and yields exactly the substituted row, so provenance follows the
   rewriting for free. Returns the surviving multi-variable rows, or a
   refutation on a contradiction. *)
let substitute box i v bound_why rows =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ({ Cert.row = r; why } as dr) :: rest ->
      if Zint.is_zero r.coeffs.(i) then go (dr :: acc) rest
      else begin
        let coeffs = Array.copy r.coeffs in
        let a = coeffs.(i) in
        coeffs.(i) <- Zint.zero;
        let r' = { Consys.coeffs; rhs = Zint.sub r.rhs (Zint.mul a v) } in
        let why' = Cert.Comb [ (Zint.one, why); (Zint.abs a, bound_why) ] in
        if Consys.num_vars_used r' >= 2 then
          go ({ Cert.row = r'; why = why' } :: acc) rest
        else
          match Bounds.absorb ~why:why' box r' with
          | `Absorbed | `Trivial -> go acc rest
          | `False -> Error (Cert.Refute why')
      end
  in
  go [] rows

let m_calls = Dda_obs.Metrics.counter "test.acyclic.calls"
let m_indep = Dda_obs.Metrics.counter "test.acyclic.independent"

let run_inner ?budget box rows =
  Failpoint.hit "acyclic.run";
  let tick cost = match budget with Some b -> Budget.tick b ~cost | None -> () in
  let box = Bounds.copy box in
  let nvars = Bounds.nvars box in
  let rec loop rows elims =
    tick (List.length rows + 1);
    match Bounds.refute_empty box with
    | Some cert -> Infeasible cert
    | None ->
      if rows = [] then Feasible (box, List.rev elims)
      else begin
        let pos, neg = sign_usage nvars rows in
        (* A variable used with a single sign is constrained in only one
           direction by the rows: pin it to the opposite extreme of its
           box (or discharge the rows if that extreme is infinite). *)
        let candidate = ref None in
        for i = nvars - 1 downto 0 do
          if pos.(i) && not neg.(i) then candidate := Some (i, `Upper_only)
          else if neg.(i) && not pos.(i) then candidate := Some (i, `Lower_only)
        done;
        match !candidate with
        | None -> Cycle (box, List.rev elims, rows)
        | Some (i, dir) -> (
            let extreme, why =
              match dir with
              | `Upper_only ->
                (Bounds.lo box i, Bounds.lo_why box i)
                (* rows only cap it from above *)
              | `Lower_only -> (Bounds.hi box i, Bounds.hi_why box i)
            in
            match extreme with
            | Ext_int.Fin v -> (
                let why =
                  match why with
                  | Some w -> w
                  | None -> invalid_arg "Acyclic.run: bound lacks provenance"
                in
                match substitute box i v why rows with
                | Error cert -> Infeasible cert
                | Ok rows' -> loop rows' (Pinned { var = i; value = v } :: elims))
            | Ext_int.Neg_inf | Ext_int.Pos_inf ->
              (* Unbounded in the helpful direction: every row mentioning
                 t_i is satisfiable regardless of the other variables. *)
              let mentions (dr : Cert.drow) = not (Zint.is_zero dr.row.coeffs.(i)) in
              let dropped, rows' = List.partition mentions rows in
              loop rows'
                (Discharged { var = i; upper = (dir = `Upper_only); rows = dropped }
                 :: elims))
      end
  in
  loop rows []

let run ?budget box rows =
  Dda_obs.Metrics.incr m_calls;
  let out =
    Dda_obs.Trace.wrap ~name:"acyclic"
      ~args:(fun out ->
          [ ( "verdict",
              match out with
              | Infeasible _ -> 0
              | Feasible _ -> 1
              | Cycle _ -> 2 ) ])
      (fun () ->
         Dda_obs.Attrib.time Dda_obs.Attrib.Acyclic (fun () ->
             run_inner ?budget box rows))
  in
  (match out with Infeasible _ -> Dda_obs.Metrics.incr m_indep | _ -> ());
  out

let witness elims base =
  let x = Array.copy base in
  (* Later-eliminated variables were assigned knowing nothing about the
     earlier ones (their coefficients were already gone), so replay the
     eliminations backwards: by the time a variable is (re)assigned,
     every other variable its recorded rows mention is final. *)
  List.iter
    (function
      | Pinned { var; value } -> x.(var) <- value
      | Discharged { var; upper; rows } ->
        let v = ref x.(var) in
        List.iter
          (fun (dr : Cert.drow) ->
             let r = dr.Cert.row in
             let a = r.coeffs.(var) in
             let rest = ref Zint.zero in
             Array.iteri
               (fun j c ->
                  if j <> var && not (Zint.is_zero c) then
                    rest := Zint.add !rest (Zint.mul c x.(j)))
               r.coeffs;
             let slack = Zint.sub r.rhs !rest in
             (* a * t_var <= slack: an upper bound when a > 0, a lower
                bound when a < 0; the variable is free on its other
                side, so clamping the base value satisfies the row
                without leaving the box. *)
             if upper then v := Zint.min !v (Zint.fdiv slack a)
             else v := Zint.max !v (Zint.cdiv slack a))
          rows;
        x.(var) <- !v)
    (List.rev elims);
  x
