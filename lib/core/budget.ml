open Dda_numeric

type reason =
  | Steps
  | Rows
  | Coeff
  | Deadline
  | Injected

let reason_name = function
  | Steps -> "steps"
  | Rows -> "rows"
  | Coeff -> "coefficients"
  | Deadline -> "deadline"
  | Injected -> "injected"

let pp_reason fmt r = Format.pp_print_string fmt (reason_name r)

type limits = {
  fm_depth : int;
  fm_branches : int;
  max_steps : int option;
  max_rows : int option;
  max_coeff_bits : int option;
}

let default_limits =
  {
    fm_depth = 32;
    fm_branches = 64;
    max_steps = None;
    max_rows = None;
    max_coeff_bits = None;
  }

type t = {
  limits : limits;
  cancel : unit -> bool;
  coeff_limit : Zint.t option;  (* 2^max_coeff_bits, precomputed *)
  mutable steps : int;
  mutable until_poll : int;  (* countdown to the next cancel poll *)
  mutable spent : reason option;
}

exception Exhausted of reason

let poll_interval = 64

let create ?(cancel = fun () -> false) limits =
  {
    limits;
    cancel;
    coeff_limit = Option.map (Zint.pow Zint.two) limits.max_coeff_bits;
    steps = 0;
    until_poll = poll_interval;
    spent = None;
  }

let unlimited () = create default_limits
let limits t = t.limits
let spent t = t.spent
let steps_used t = t.steps

let m_ex_steps = Dda_obs.Metrics.counter "budget.exhausted.steps"
let m_ex_rows = Dda_obs.Metrics.counter "budget.exhausted.rows"
let m_ex_coeff = Dda_obs.Metrics.counter "budget.exhausted.coefficients"
let m_ex_deadline = Dda_obs.Metrics.counter "budget.exhausted.deadline"
let m_ex_injected = Dda_obs.Metrics.counter "budget.exhausted.injected"

let m_exhausted = function
  | Steps -> m_ex_steps
  | Rows -> m_ex_rows
  | Coeff -> m_ex_coeff
  | Deadline -> m_ex_deadline
  | Injected -> m_ex_injected

let reason_code = function
  | Steps -> 0
  | Rows -> 1
  | Coeff -> 2
  | Deadline -> 3
  | Injected -> 4

(* [exhaust] fires once per spent budget ([recheck] re-raises without
   coming back here), so the counter is one-per-exhausted-query. *)
let exhaust t reason =
  t.spent <- Some reason;
  Dda_obs.Metrics.incr (m_exhausted reason);
  Dda_obs.Trace.instant "budget.exhausted"
    ~args:[ ("reason", reason_code reason); ("steps", t.steps) ];
  raise (Exhausted reason)

(* Sticky: once any dimension is spent, every later check re-raises so a
   stage cannot resume half-way through an exhausted query. *)
let recheck t =
  match t.spent with Some r -> raise (Exhausted r) | None -> ()

let tick ?(cost = 1) t =
  recheck t;
  t.steps <- t.steps + cost;
  (match t.limits.max_steps with
   | Some cap when t.steps > cap -> exhaust t Steps
   | Some _ | None -> ());
  t.until_poll <- t.until_poll - cost;
  if t.until_poll <= 0 then begin
    t.until_poll <- poll_interval;
    if t.cancel () then exhaust t Deadline
  end

let check_rows t n =
  recheck t;
  match t.limits.max_rows with
  | Some cap when n > cap -> exhaust t Rows
  | Some _ | None -> ()

let check_coeff t c =
  recheck t;
  match t.coeff_limit with
  | Some lim when Zint.compare (Zint.abs c) lim > 0 -> exhaust t Coeff
  | Some _ | None -> ()
