(** The Single Variable Per Constraint test (paper section 3.2).

    Every constraint with at most one variable is an upper or lower
    bound for that variable; the system is feasible iff every variable's
    tightest lower bound is at most its tightest upper bound. Exact
    whenever no multi-variable constraint remains; when some do, the
    absorbed bounds still feed the follow-on tests. *)

type outcome =
  | Infeasible of Cert.infeasible
      (** Some variable's bounds cross (or a constant row is false):
          exact independence, with the refutation built from the
          crossing bound rows. *)
  | Feasible of Bounds.t
      (** Every constraint was single-variable and the box is
          non-empty: exact dependence (any point of the box is a
          witness). *)
  | Partial of Bounds.t * Cert.drow list
      (** Multi-variable rows remain (each carrying its hypothesis
          index); the box summarizes the rest. The test alone is not
          decisive. *)

val run : ?budget:Budget.t -> Consys.t -> outcome
(** May raise {!Budget.Exhausted} when a budget is supplied; the
    cascade converts that into a degraded verdict.
    Bound derivations in the returned box are rooted at [Cert.Hyp i]
    for row [i] of the input system. *)
