open Dda_lang

let node_id (loc : Loc.t) = Printf.sprintf "n_%d_%d" loc.line loc.col

let vector_string v = Format.asprintf "%a" Direction.pp_vector v

(* Which endpoint is the source: the instance executing first. *)
let source_of v =
  let rec go k =
    if k >= Array.length v then `First (* loop-independent: textual order *)
    else
      match v.(k) with
      | Direction.Deq -> go (k + 1)
      | Direction.Dlt -> `First
      | Direction.Dgt -> `Second
      | Direction.Dany -> `Ambiguous
  in
  go 0

let to_dot (report : Analyzer.report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dependences {\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  (* Nodes: every site that occurs in some pair. *)
  let nodes = Hashtbl.create 32 in
  let note_node (loc : Loc.t) array role =
    if not (Hashtbl.mem nodes loc) then begin
      Hashtbl.add nodes loc ();
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s %s @ %s\"];\n" (node_id loc) array
           (match role with `Write -> "write" | `Read -> "read")
           (Loc.to_string loc))
    end
  in
  List.iter
    (fun (r : Analyzer.pair_report) ->
       note_node r.loc1 r.array_name r.role1;
       if not r.self_pair then note_node r.loc2 r.array_name r.role2)
    report.pair_reports;
  (* Edges. *)
  let edge src dst label attrs =
    Buffer.add_string buf
      (Printf.sprintf "  %s -> %s [label=\"%s\"%s];\n" (node_id src) (node_id dst)
         label attrs)
  in
  (* Carried (DOALL-blocking) edges are drawn red; loop-independent
     ones keep the default color. Conservative outcomes block every
     common loop, so they are red whenever the pair has one. *)
  let blocking_attrs r =
    if r.Analyzer.ncommon > 0 then ", color=red" else ""
  in
  List.iter
    (fun (r : Analyzer.pair_report) ->
       match r.outcome with
       | Analyzer.Constant false | Analyzer.Gcd_independent -> ()
       | Analyzer.Constant true ->
         edge r.loc1 r.loc2 "constant cell"
           (", style=dashed, dir=both" ^ blocking_attrs r)
       | Analyzer.Assumed_dependent ->
         edge r.loc1 r.loc2 "assumed (not affine)"
           (", style=dashed, dir=both" ^ blocking_attrs r)
       | Analyzer.Tested t when not t.dependent -> ()
       | Analyzer.Tested t ->
         if t.directions = [] then
           edge r.loc1 r.loc2 "dependent"
             (", style=dashed, dir=both" ^ blocking_attrs r)
         else
           List.iter
             (fun v ->
                let kind =
                  Format.asprintf "%a" Analyzer.pp_dep_kind (Analyzer.vector_kind r v)
                in
                let dist =
                  match t.distance with
                  | Some d ->
                    Printf.sprintf " d=(%s)"
                      (String.concat ","
                         (Array.to_list (Array.map Dda_numeric.Zint.to_string d)))
                  | None -> ""
                in
                let carrier, color =
                  match Analyzer.vector_carrier v with
                  | Some k ->
                    (Printf.sprintf " carried L%d" (List.nth r.common_ids k),
                     ", color=red")
                  | None -> (" loop-indep", "")
                in
                let label =
                  Printf.sprintf "%s %s%s%s" kind (vector_string v) dist carrier
                in
                match source_of v with
                | `First -> edge r.loc1 r.loc2 label color
                | `Second -> edge r.loc2 r.loc1 label color
                | `Ambiguous ->
                  edge r.loc1 r.loc2 label (", style=dotted, dir=both" ^ color))
             t.directions)
    report.pair_reports;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
