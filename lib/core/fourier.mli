(** The Fourier-Motzkin backup test (paper section 3.5).

    Exact over the rationals: eliminating a variable pairs each of its
    lower bounds with each of its upper bounds; the original system has
    a rational solution iff the final variable-free system does. An
    "infeasible" answer therefore proves integer independence exactly.

    For a rationally feasible system the test back-substitutes,
    choosing the integer in the middle of each variable's allowed range
    (the paper's heuristic). Two refinements recover exactness in most
    remaining cases:
    - if the {e first} back-substituted variable's (constant) range
      holds no integer, there is provably no integer solution;
    - otherwise the paper's branch-and-bound step splits on the
      fractional variable with [x <= floor] / [x >= ceil] companion
      systems, to a configurable depth.

    [Unknown] — assumed dependent — is returned only when the depth
    budget or the branch budget ([Budget.limits.fm_branches], default
    64 splits per query, guarding against exponential blow-up on
    unbounded symbolic systems) runs out; neither happens in the
    paper's benchmarks or ours. [Exhausted] is the analogous answer
    for the newer {!Budget} dimensions (steps, rows, coefficient
    magnitude, deadline): also assumed dependent, but flagged as a
    degraded verdict all the way up through the analyzer. *)

open Dda_numeric

type outcome =
  | Infeasible of Cert.infeasible
      (** a Farkas-style refutation: a nonnegative combination of rows
          (with integer tightenings) deriving [0 <= b < 0], possibly
          under a tree of branch-and-bound {!Cert.Split}s *)
  | Feasible of Zint.t array  (** an integral witness *)
  | Unknown
  | Exhausted of Budget.reason
      (** the per-query {!Budget} ran out mid-solve; assume dependent *)

type stats = {
  mutable eliminations : int;  (** variables eliminated *)
  mutable max_rows : int;  (** peak constraint count *)
  mutable branches : int;  (** branch-and-bound splits taken *)
}

val fresh_stats : unit -> stats

val run :
  ?budget:Budget.t ->
  ?tighten:bool ->
  ?stats:stats ->
  Consys.t ->
  outcome
(** [tighten] (default [false], the paper-faithful setting) additionally
    divides each derived row by the gcd of its coefficients and floors
    the bound — sound for integer variables and strictly stronger, in
    the style of the later Omega test. [budget] supplies the branch
    depth and split caps (defaults 32 and 64) and the step/row/
    coefficient/deadline accounting; {!Budget.Exhausted} never escapes
    this function. *)
