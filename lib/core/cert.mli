(** Machine-checkable evidence for cascade verdicts.

    Every test in the cascade justifies an "independent" answer with a
    certificate rooted in the rows of the system it was asked about:
    a {!deriv} is a Farkas-style derivation of a single implied row
    (nonnegative combinations of hypothesis rows, integer tightenings),
    and an {!infeasible} certificate either refutes the system outright
    — derives [0 <= b] with [b < 0] — or splits on an integer variable
    and refutes both halves (Fourier-Motzkin branch-and-bound).

    Certificates are validated by {!Dda_check.Certcheck} against the
    original system using nothing but row arithmetic, so a verdict never
    has to be taken on the solvers' word. *)

open Dda_numeric

(** A derivation of one implied row [sum a_i t_i <= b]. *)
type deriv =
  | Hyp of int  (** the [i]-th row of the system under refutation *)
  | Cut of int
      (** the [i]-th branch-and-bound cut on the current {!Split} path,
          outermost first: the left branch of the [i]-th split
          contributes [t_var <= bound], the right branch
          [-t_var <= -(bound+1)] *)
  | Comb of (Zint.t * deriv) list
      (** sum of scaled rows; every multiplier must be positive *)
  | Tighten of deriv
      (** divide the coefficients by their gcd [g] and floor the bound:
          exact for integer variables ([2x <= 5] tightens to [x <= 2]);
          the identity when [g <= 1] *)

(** Evidence that a system has no integer solution. *)
type infeasible =
  | Refute of deriv
      (** the derived row is variable-free with a negative bound *)
  | Split of {
      var : int;
      bound : Zint.t;
      left : infeasible;  (** refutes the system plus [t_var <= bound] *)
      right : infeasible;
          (** refutes the system plus [t_var >= bound + 1] *)
    }

type eq_refutation = {
  multipliers : Zint.t array;  (** one per equality row of the problem *)
  modulus : Zint.t;  (** [>= 2] *)
}
(** Evidence from the Extended GCD test that the subscript {e equalities}
    alone have no integer solution: modulo [modulus], the combination
    [sum_j multipliers.(j) * eq_j] has all-zero variable coefficients
    but a non-zero right-hand side. *)

type drow = {
  row : Consys.row;
  why : deriv;  (** derivation of [row] from the hypothesis rows *)
}
(** A row travelling through the cascade with its provenance. *)

val hyps_of_rows : Consys.row list -> drow list
(** Row [i] justified as [Hyp i]. *)

val pp_deriv : Format.formatter -> deriv -> unit
val pp_infeasible : Format.formatter -> infeasible -> unit

val deriv_size : deriv -> int
val size : infeasible -> int
(** Node counts, for reporting certificate sizes. *)
