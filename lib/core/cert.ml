open Dda_numeric

type deriv =
  | Hyp of int
  | Cut of int
  | Comb of (Zint.t * deriv) list
  | Tighten of deriv

type infeasible =
  | Refute of deriv
  | Split of {
      var : int;
      bound : Zint.t;
      left : infeasible;
      right : infeasible;
    }

type eq_refutation = {
  multipliers : Zint.t array;
  modulus : Zint.t;
}

type drow = {
  row : Consys.row;
  why : deriv;
}

let hyps_of_rows rows = List.mapi (fun i row -> { row; why = Hyp i }) rows

let rec pp_deriv fmt = function
  | Hyp i -> Format.fprintf fmt "h%d" i
  | Cut i -> Format.fprintf fmt "c%d" i
  | Tighten d -> Format.fprintf fmt "[%a]" pp_deriv d
  | Comb terms ->
    Format.fprintf fmt "(@[%a@])"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ + ")
         (fun fmt (m, d) -> Format.fprintf fmt "%a*%a" Zint.pp m pp_deriv d))
      terms

let rec pp_infeasible fmt = function
  | Refute d -> Format.fprintf fmt "refute %a" pp_deriv d
  | Split { var; bound; left; right } ->
    Format.fprintf fmt "@[<v 2>split t%d at %a {@,left: %a@,right: %a@]@,}" var
      Zint.pp bound pp_infeasible left pp_infeasible right

let rec deriv_size = function
  | Hyp _ | Cut _ -> 1
  | Tighten d -> 1 + deriv_size d
  | Comb terms -> List.fold_left (fun n (_, d) -> n + deriv_size d) 1 terms

let rec size = function
  | Refute d -> deriv_size d
  | Split { left; right; _ } -> 1 + size left + size right
