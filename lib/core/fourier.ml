open Dda_numeric

type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Zint.t array
  | Unknown
  | Exhausted of Budget.reason

type stats = {
  mutable eliminations : int;
  mutable max_rows : int;
  mutable branches : int;
}

let fresh_stats () = { eliminations = 0; max_rows = 0; branches = 0 }

(* Working rows live in a {!Row_arena}: the coefficient vector is the
   [nvars]-wide arena slice at [off], so combining two rows allocates
   arena slots (reused across runs) instead of a fresh array per
   combination. Only the bound and the provenance are materialized. *)
type arow = {
  off : int;
  arhs : Zint.t;
  awhy : Cert.deriv;
}

(* Per-domain solver workspace: the row arena plus the dedup table's
   backing store, all reused run to run (a run resets them on entry;
   nothing row-shaped escapes the solver — outcomes carry only witness
   copies and derivations). [busy] guards against re-entrant runs on
   the same domain, which would tear the arena; a nested run (none
   exist today) would fall back to a private workspace. *)
type ws = {
  arena : Row_arena.t;
  dtab : (int, int list ref) Hashtbl.t;  (* slice hash -> indices into dout *)
  mutable dout : arow array;
  mutable dlen : int;
  mutable busy : bool;
}

let dummy_arow = { off = 0; arhs = Zint.zero; awhy = Cert.Hyp 0 }

let fresh_ws () =
  {
    arena = Row_arena.create ();
    dtab = Hashtbl.create 64;
    dout = Array.make 64 dummy_arow;
    dlen = 0;
    busy = false;
  }

let ws_key = Domain.DLS.new_key fresh_ws

let with_ws f =
  let ws = Domain.DLS.get ws_key in
  if ws.busy then f (fresh_ws ())
  else begin
    ws.busy <- true;
    Fun.protect ~finally:(fun () -> ws.busy <- false) (fun () -> f ws)
  end

let slice_num_used arena off n =
  let used = ref 0 in
  for i = off to off + n - 1 do
    if not (Zint.is_zero (Row_arena.get arena i)) then incr used
  done;
  !used

let dout_push ws r =
  if ws.dlen = Array.length ws.dout then begin
    let bigger = Array.make (2 * ws.dlen) dummy_arow in
    Array.blit ws.dout 0 bigger 0 ws.dlen;
    ws.dout <- bigger
  end;
  ws.dout.(ws.dlen) <- r;
  ws.dlen <- ws.dlen + 1

type dedup_result =
  | Contradiction of Cert.deriv
  | Rows of arow list

(* Keep one row per coefficient vector (the tightest), drop trivially
   true rows, and detect trivially false ones. Keyed structurally on
   the arena slice — a combined hash plus element-wise equality, so a
   collision can never corrupt a row. Survivors come back in
   first-seen order, independent of hash values. *)
let dedup ws ~n rows =
  Hashtbl.clear ws.dtab;
  ws.dlen <- 0;
  let arena = ws.arena in
  let contradiction = ref None in
  List.iter
    (fun (r : arow) ->
       if slice_num_used arena r.off n = 0 then begin
         if Zint.is_negative r.arhs && !contradiction = None then
           contradiction := Some r.awhy
       end
       else begin
         let h = Row_arena.hash_slice arena ~off:r.off ~len:n in
         match Hashtbl.find_opt ws.dtab h with
         | None ->
           Hashtbl.add ws.dtab h (ref [ ws.dlen ]);
           dout_push ws r
         | Some bucket ->
           let rec find = function
             | [] ->
               bucket := ws.dlen :: !bucket;
               dout_push ws r
             | j :: rest ->
               if Row_arena.equal_slice arena ws.dout.(j).off r.off ~len:n then begin
                 if Zint.compare ws.dout.(j).arhs r.arhs > 0 then ws.dout.(j) <- r
               end
               else find rest
           in
           find !bucket
       end)
    rows;
  match !contradiction with
  | Some why -> Contradiction why
  | None ->
    let rec collect i acc =
      if i < 0 then acc else collect (i - 1) (ws.dout.(i) :: acc)
    in
    Rows (collect (ws.dlen - 1) [])

type step = {
  var : int;
  step_rows : arow list;  (* the rows mentioning [var] at its turn *)
}

(* One combination row, with normalization fused in: the combined
   coefficients are written straight into a fresh arena slice while
   the gcd accumulates in the same pass, and dividing through by the
   gcd rewrites that slice in place — no per-combination array, and no
   second allocation for the normalized row. Without [tighten],
   dividing by the gcd only happens when it divides the bound too, so
   the row stays equivalent over the rationals. With [tighten], the
   bound is floored: sound for integer variables, stronger than
   rational reasoning. Either change is exactly what [Cert.Tighten]
   derives (exact division is flooring that loses nothing), so the
   provenance records one [Tighten]. *)
let combine ws ~budget ~tighten ~n (u : arow) (l : arow) v =
  let arena = ws.arena in
  let a = Row_arena.get arena (u.off + v) in
  let b = Zint.neg (Row_arena.get arena (l.off + v)) in
  (* b*u + a*l cancels v; both multipliers positive. *)
  let off = Row_arena.alloc arena n in
  let g = ref Zint.zero in
  for i = 0 to n - 1 do
    let c =
      Zint.add
        (Zint.mul b (Row_arena.get arena (u.off + i)))
        (Zint.mul a (Row_arena.get arena (l.off + i)))
    in
    Row_arena.set arena (off + i) c;
    g := Zint.gcd !g c
  done;
  Budget.tick budget;
  let rhs = Zint.add (Zint.mul b u.arhs) (Zint.mul a l.arhs) in
  let why = Cert.Comb [ (b, u.awhy); (a, l.awhy) ] in
  let g = !g in
  let divide_through () =
    for i = 0 to n - 1 do
      Row_arena.set arena (off + i) (Zint.divexact (Row_arena.get arena (off + i)) g)
    done
  in
  let dr =
    if Zint.is_zero g || Zint.is_one g then { off; arhs = rhs; awhy = why }
    else if tighten then begin
      divide_through ();
      { off; arhs = Zint.fdiv rhs g; awhy = Cert.Tighten why }
    end
    else if Zint.divides g rhs then begin
      divide_through ();
      { off; arhs = Zint.divexact rhs g; awhy = Cert.Tighten why }
    end
    else { off; arhs = rhs; awhy = why }
  in
  for i = 0 to n - 1 do
    Budget.check_coeff budget (Row_arena.get arena (dr.off + i))
  done;
  dr

(* Eliminate [v]: pair every upper bound with each lower bound. *)
let eliminate ws ~budget ~tighten ~n v rows =
  let arena = ws.arena in
  let uppers, lowers, rest =
    List.fold_left
      (fun (u, l, r) (dr : arow) ->
         let c = Row_arena.get arena (dr.off + v) in
         if Zint.is_positive c then (dr :: u, l, r)
         else if Zint.is_negative c then (u, dr :: l, r)
         else (u, l, dr :: r))
      ([], [], []) rows
  in
  let combos =
    List.concat_map
      (fun (u : arow) ->
         List.map (fun (l : arow) -> combine ws ~budget ~tighten ~n u l v) lowers)
      uppers
  in
  (uppers @ lowers, combos @ rest)

(* Tightening a single-variable row [a*t_v <= r] yields exactly the
   integer bound used during back-substitution: [t_v <= fdiv r a] for
   [a > 0], [-t_v <= fdiv r |a|] (i.e. [t_v >= ceil(r/a)]) for
   [a < 0]. *)
let tightened_bound_why ws ~n (dr : arow) v =
  assert (slice_num_used ws.arena dr.off n = 1);
  if Zint.is_one (Zint.abs (Row_arena.get ws.arena (dr.off + v))) then dr.awhy
  else Cert.Tighten dr.awhy

let arow_satisfies arena ~n point (r : arow) =
  let acc = ref Zint.zero in
  for i = 0 to n - 1 do
    acc := Zint.add !acc (Zint.mul (Row_arena.get arena (r.off + i)) point.(i))
  done;
  Zint.compare !acc r.arhs <= 0

let rec solve ws ~budget ~tighten ~stats ~depth ~ncuts ~nvars rows =
  Budget.tick budget ~cost:(List.length rows);
  match dedup ws ~n:nvars rows with
  | Contradiction why -> Infeasible (Cert.Refute why)
  | Rows rows ->
    stats.max_rows <- max stats.max_rows (List.length rows);
    Budget.check_rows budget (List.length rows);
    (* Elimination order: ascending variable index over the variables
       actually present, as in the paper. *)
    let used = Array.make nvars false in
    List.iter
      (fun (dr : arow) ->
         for i = 0 to nvars - 1 do
           if not (Zint.is_zero (Row_arena.get ws.arena (dr.off + i))) then
             used.(i) <- true
         done)
      rows;
    let order = ref [] in
    for i = nvars - 1 downto 0 do
      if used.(i) then order := i :: !order
    done;
    let rec eliminate_all rows steps = function
      | [] -> Ok (List.rev steps, rows)
      | v :: vs -> (
          stats.eliminations <- stats.eliminations + 1;
          let mentioning, remaining = eliminate ws ~budget ~tighten ~n:nvars v rows in
          match dedup ws ~n:nvars remaining with
          | Contradiction why -> Error why
          | Rows remaining ->
            stats.max_rows <- max stats.max_rows (List.length remaining);
            Budget.check_rows budget (List.length remaining);
            eliminate_all remaining ({ var = v; step_rows = mentioning } :: steps) vs)
    in
    (match eliminate_all rows [] !order with
     | Error why -> Infeasible (Cert.Refute why)
     | Ok (steps, residue) ->
       (* The residue is variable-free; dedup already rejected negative
          bounds, so the system is rationally feasible. *)
       assert (
         List.for_all
           (fun (dr : arow) -> slice_num_used ws.arena dr.off nvars = 0)
           residue);
       back_substitute ws ~budget ~tighten ~stats ~depth ~ncuts ~nvars
         ~original:rows steps)

and back_substitute ws ~budget ~tighten ~stats ~depth ~ncuts ~nvars ~original steps =
  let arena = ws.arena in
  let values = Array.make nvars Qnum.zero in
  (* Walk the steps in reverse elimination order; the first variable
     visited has constant bounds. *)
  let rec assign ~first = function
    | [] ->
      let witness = Array.map Qnum.to_zint_exn values in
      assert (List.for_all (arow_satisfies arena ~n:nvars witness) original);
      Feasible witness
    | { var = v; step_rows } :: rest -> (
        Budget.tick budget ~cost:(List.length step_rows);
        let lo = ref None and hi = ref None in
        List.iter
          (fun (dr : arow) ->
             let a = Row_arena.get arena (dr.off + v) in
             let sum = ref (Qnum.of_zint dr.arhs) in
             for i = 0 to nvars - 1 do
               let c = Row_arena.get arena (dr.off + i) in
               if i <> v && not (Zint.is_zero c) then
                 sum := Qnum.sub !sum (Qnum.mul (Qnum.of_zint c) values.(i))
             done;
             let bound = Qnum.div !sum (Qnum.of_zint a) in
             if Zint.is_positive a then (
               match !hi with
               | Some (h, _) when Qnum.compare bound h >= 0 -> ()
               | Some _ | None -> hi := Some (bound, dr))
             else
               match !lo with
               | Some (l, _) when Qnum.compare bound l <= 0 -> ()
               | Some _ | None -> lo := Some (bound, dr))
          step_rows;
        match (!lo, !hi) with
        | None, None ->
          values.(v) <- Qnum.zero;
          assign ~first:false rest
        | Some (l, _), None ->
          values.(v) <- Qnum.of_zint (Qnum.ceil l);
          assign ~first:false rest
        | None, Some (h, _) ->
          values.(v) <- Qnum.of_zint (Qnum.floor h);
          assign ~first:false rest
        | Some (l, lo_dr), Some (h, hi_dr) -> (
            match Qnum.mid_integer l h with
            | Some m ->
              values.(v) <- Qnum.of_zint m;
              assign ~first:false rest
            | None ->
              if first then
                (* Constant range with no integer: provably no integer
                   solution anywhere (paper's special case). The binding
                   rows are single-variable here, so their integer
                   tightenings [t_v <= floor h] and [-t_v <= -ceil l]
                   sum to [0 <= floor h - ceil l < 0]. *)
                Infeasible
                  (Cert.Refute
                     (Cert.Comb
                        [
                          (Zint.one, tightened_bound_why ws ~n:nvars hi_dr v);
                          (Zint.one, tightened_bound_why ws ~n:nvars lo_dr v);
                        ]))
              else if
                depth <= 0 || stats.branches >= (Budget.limits budget).fm_branches
              then Unknown
              else begin
                (* Branch-and-bound: [l, h] lies strictly between two
                   consecutive integers m and m+1. *)
                stats.branches <- stats.branches + 1;
                let m = Qnum.floor l in
                let le_off = Row_arena.alloc arena nvars in
                Row_arena.set arena (le_off + v) Zint.one;
                let le_row = { off = le_off; arhs = m; awhy = Cert.Cut ncuts } in
                let ge_off = Row_arena.alloc arena nvars in
                Row_arena.set arena (ge_off + v) Zint.minus_one;
                let ge_row =
                  { off = ge_off; arhs = Zint.neg (Zint.succ m); awhy = Cert.Cut ncuts }
                in
                (* Rows combined inside a branch die with it: pop the
                   arena back once the subtree answers. *)
                let stack_mark = Row_arena.mark arena in
                let left =
                  solve ws ~budget ~tighten ~stats ~depth:(depth - 1)
                    ~ncuts:(ncuts + 1) ~nvars (le_row :: original)
                in
                Row_arena.truncate arena stack_mark;
                match left with
                | Feasible _ as ok -> ok
                | Infeasible _ | Unknown | Exhausted _ -> (
                    let right =
                      solve ws ~budget ~tighten ~stats ~depth:(depth - 1)
                        ~ncuts:(ncuts + 1) ~nvars (ge_row :: original)
                    in
                    Row_arena.truncate arena stack_mark;
                    match (left, right) with
                    | _, (Feasible _ as ok) -> ok
                    | Infeasible cl, Infeasible cr ->
                      Infeasible
                        (Cert.Split { var = v; bound = m; left = cl; right = cr })
                    | Exhausted r, _ | _, Exhausted r -> Exhausted r
                    | _, _ -> Unknown)
              end))
  in
  assign ~first:true (List.rev steps)

let m_calls = Dda_obs.Metrics.counter "test.fourier.calls"
let m_indep = Dda_obs.Metrics.counter "test.fourier.independent"
let m_elims = Dda_obs.Metrics.counter "test.fourier.eliminations"
let m_branches = Dda_obs.Metrics.counter "test.fourier.branches"

let run_inner ?budget ?(tighten = false) ?stats (sys : Consys.t) =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Failpoint.hit "fourier.solve";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  with_ws @@ fun ws ->
  Row_arena.reset ws.arena;
  (* Hypotheses are staged into the arena up front; every derived row
     follows them, so a run's rows occupy one contiguous region. *)
  let rows =
    List.mapi
      (fun i (r : Consys.row) ->
         { off = Row_arena.blit_from ws.arena r.coeffs; arhs = r.rhs; awhy = Cert.Hyp i })
      sys.rows
  in
  match
    solve ws ~budget ~tighten ~stats ~depth:(Budget.limits budget).fm_depth
      ~ncuts:0 ~nvars:sys.nvars rows
  with
  | outcome -> outcome
  | exception Budget.Exhausted reason -> Exhausted reason

let run ?budget ?(tighten = false) ?stats (sys : Consys.t) =
  Dda_obs.Metrics.incr m_calls;
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let e0 = stats.eliminations and b0 = stats.branches in
  let out =
    Dda_obs.Trace.wrap ~name:"fourier-motzkin"
      ~args:(fun out ->
          [ ( "verdict",
              match out with
              | Infeasible _ -> 0
              | Feasible _ -> 1
              | Unknown -> 2
              | Exhausted _ -> 3 );
            ("eliminations", stats.eliminations - e0);
            ("branches", stats.branches - b0);
            ("max_rows", stats.max_rows) ])
      (fun () ->
         Dda_obs.Attrib.time Dda_obs.Attrib.Fourier (fun () ->
             run_inner ?budget ~tighten ~stats sys))
  in
  Dda_obs.Metrics.add m_elims (stats.eliminations - e0);
  Dda_obs.Metrics.add m_branches (stats.branches - b0);
  (match out with Infeasible _ -> Dda_obs.Metrics.incr m_indep | _ -> ());
  out
