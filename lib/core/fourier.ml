open Dda_numeric

type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Zint.t array
  | Unknown
  | Exhausted of Budget.reason

type stats = {
  mutable eliminations : int;
  mutable max_rows : int;
  mutable branches : int;
}

let fresh_stats () = { eliminations = 0; max_rows = 0; branches = 0 }

(* Dedup keys rows by their coefficient vector, structurally: a
   combined hash of the Zint coefficients plus element-wise equality.
   No per-row string rendering (the old scheme concatenated decimal
   strings — an allocation hotspot and, in principle, ambiguous), and
   no collision can corrupt a row: equality compares the vectors
   themselves. The key aliases the row's own [coeffs] array, which is
   never mutated after construction. *)
module Row_tbl = Hashtbl.Make (struct
  type t = Zint.t array

  let equal a b =
    Array.length a = Array.length b
    && (let rec go i = i < 0 || (Zint.equal a.(i) b.(i) && go (i - 1)) in
        go (Array.length a - 1))

  let hash a =
    let h = ref (Array.length a) in
    Array.iter (fun c -> h := (!h * 1000003) + Zint.hash c) a;
    !h land max_int
end)

type dedup_result =
  | Contradiction of Cert.deriv
  | Rows of Cert.drow list

(* Keep one row per coefficient vector (the tightest), drop trivially
   true rows, and detect trivially false ones. *)
let dedup rows =
  let table : Cert.drow Row_tbl.t = Row_tbl.create 64 in
  let contradiction = ref None in
  List.iter
    (fun ({ Cert.row = r; why = _ } as dr : Cert.drow) ->
       if Consys.num_vars_used r = 0 then begin
         if Zint.is_negative r.rhs && !contradiction = None then
           contradiction := Some dr.why
       end
       else
         match Row_tbl.find_opt table r.coeffs with
         | Some prev when Zint.compare prev.row.rhs r.rhs <= 0 -> ()
         | Some _ | None -> Row_tbl.replace table r.coeffs dr)
    rows;
  match !contradiction with
  | Some why -> Contradiction why
  | None -> Rows (Row_tbl.fold (fun _ dr acc -> dr :: acc) table [])

type step = {
  var : int;
  step_rows : Cert.drow list;  (* the rows mentioning [var] at its turn *)
}

(* One combination row, with normalization fused in: the combined
   coefficients are staged in [scratch] (one preallocated buffer per
   solver run) while the gcd accumulates in the same pass, and exactly
   one array is then allocated for the surviving row — instead of one
   intermediate array per combination plus a second from the gcd map.
   Without [tighten], dividing by the gcd only happens when it divides
   the bound too, so the row stays equivalent over the rationals. With
   [tighten], the bound is floored: sound for integer variables,
   stronger than rational reasoning. Either change is exactly what
   [Cert.Tighten] derives (exact division is flooring that loses
   nothing), so the provenance records one [Tighten]. *)
let combine ~budget ~tighten ~scratch (u : Cert.drow) (l : Cert.drow) v =
  let n = Array.length u.row.coeffs in
  let a = u.row.coeffs.(v) in
  let b = Zint.neg l.row.coeffs.(v) in
  (* b*u + a*l cancels v; both multipliers positive. *)
  let g = ref Zint.zero in
  for i = 0 to n - 1 do
    let c = Zint.add (Zint.mul b u.row.coeffs.(i)) (Zint.mul a l.row.coeffs.(i)) in
    scratch.(i) <- c;
    g := Zint.gcd !g c
  done;
  Budget.tick budget;
  let rhs = Zint.add (Zint.mul b u.row.rhs) (Zint.mul a l.row.rhs) in
  let why = Cert.Comb [ (b, u.why); (a, l.why) ] in
  let g = !g in
  let dr =
    if Zint.is_zero g || Zint.is_one g then
      { Cert.row = { Consys.coeffs = Array.sub scratch 0 n; rhs }; why }
    else if tighten then
      {
        Cert.row =
          {
            Consys.coeffs = Array.init n (fun i -> Zint.divexact scratch.(i) g);
            rhs = Zint.fdiv rhs g;
          };
        why = Cert.Tighten why;
      }
    else if Zint.divides g rhs then
      {
        Cert.row =
          {
            Consys.coeffs = Array.init n (fun i -> Zint.divexact scratch.(i) g);
            rhs = Zint.divexact rhs g;
          };
        why = Cert.Tighten why;
      }
    else { Cert.row = { Consys.coeffs = Array.sub scratch 0 n; rhs }; why }
  in
  Array.iter (Budget.check_coeff budget) dr.Cert.row.coeffs;
  dr

(* Eliminate [v]: pair every upper bound with each lower bound. *)
let eliminate ~budget ~tighten ~scratch v rows =
  let uppers, lowers, rest =
    List.fold_left
      (fun (u, l, r) (dr : Cert.drow) ->
         let c = dr.row.coeffs.(v) in
         if Zint.is_positive c then (dr :: u, l, r)
         else if Zint.is_negative c then (u, dr :: l, r)
         else (u, l, dr :: r))
      ([], [], []) rows
  in
  let combos =
    List.concat_map
      (fun (u : Cert.drow) ->
         List.map (fun (l : Cert.drow) -> combine ~budget ~tighten ~scratch u l v) lowers)
      uppers
  in
  (uppers @ lowers, combos @ rest)

(* Tightening a single-variable row [a*t_v <= r] yields exactly the
   integer bound used during back-substitution: [t_v <= fdiv r a] for
   [a > 0], [-t_v <= fdiv r |a|] (i.e. [t_v >= ceil(r/a)]) for
   [a < 0]. *)
let tightened_bound_why (dr : Cert.drow) v =
  assert (Consys.num_vars_used dr.row = 1);
  if Zint.is_one (Zint.abs dr.row.coeffs.(v)) then dr.why
  else Cert.Tighten dr.why

let rec solve ~budget ~tighten ~stats ~scratch ~depth ~ncuts ~nvars rows =
  Budget.tick budget ~cost:(List.length rows);
  match dedup rows with
  | Contradiction why -> Infeasible (Cert.Refute why)
  | Rows rows ->
    stats.max_rows <- max stats.max_rows (List.length rows);
    Budget.check_rows budget (List.length rows);
    (* Elimination order: ascending variable index over the variables
       actually present, as in the paper. *)
    let used = Array.make nvars false in
    List.iter
      (fun (dr : Cert.drow) ->
         List.iter (fun i -> used.(i) <- true) (Consys.nonzero_vars dr.row))
      rows;
    let order = ref [] in
    for i = nvars - 1 downto 0 do
      if used.(i) then order := i :: !order
    done;
    let rec eliminate_all rows steps = function
      | [] -> Ok (List.rev steps, rows)
      | v :: vs -> (
          stats.eliminations <- stats.eliminations + 1;
          let mentioning, remaining = eliminate ~budget ~tighten ~scratch v rows in
          match dedup remaining with
          | Contradiction why -> Error why
          | Rows remaining ->
            stats.max_rows <- max stats.max_rows (List.length remaining);
            Budget.check_rows budget (List.length remaining);
            eliminate_all remaining ({ var = v; step_rows = mentioning } :: steps) vs)
    in
    (match eliminate_all rows [] !order with
     | Error why -> Infeasible (Cert.Refute why)
     | Ok (steps, residue) ->
       (* The residue is variable-free; dedup already rejected negative
          bounds, so the system is rationally feasible. *)
       assert (
         List.for_all (fun (dr : Cert.drow) -> Consys.num_vars_used dr.row = 0) residue);
       back_substitute ~budget ~tighten ~stats ~scratch ~depth ~ncuts ~nvars
         ~original:rows steps)

and back_substitute ~budget ~tighten ~stats ~scratch ~depth ~ncuts ~nvars ~original steps =
  let values = Array.make nvars Qnum.zero in
  (* Walk the steps in reverse elimination order; the first variable
     visited has constant bounds. *)
  let rec assign ~first = function
    | [] ->
      let witness = Array.map Qnum.to_zint_exn values in
      assert (
        List.for_all (fun (dr : Cert.drow) -> Consys.satisfies witness dr.row) original);
      Feasible witness
    | { var = v; step_rows } :: rest -> (
        Budget.tick budget ~cost:(List.length step_rows);
        let lo = ref None and hi = ref None in
        List.iter
          (fun (dr : Cert.drow) ->
             let r = dr.Cert.row in
             let a = r.coeffs.(v) in
             let sum = ref (Qnum.of_zint r.rhs) in
             Array.iteri
               (fun i c ->
                  if i <> v && not (Zint.is_zero c) then
                    sum := Qnum.sub !sum (Qnum.mul (Qnum.of_zint c) values.(i)))
               r.coeffs;
             let bound = Qnum.div !sum (Qnum.of_zint a) in
             if Zint.is_positive a then (
               match !hi with
               | Some (h, _) when Qnum.compare bound h >= 0 -> ()
               | Some _ | None -> hi := Some (bound, dr))
             else
               match !lo with
               | Some (l, _) when Qnum.compare bound l <= 0 -> ()
               | Some _ | None -> lo := Some (bound, dr))
          step_rows;
        match (!lo, !hi) with
        | None, None ->
          values.(v) <- Qnum.zero;
          assign ~first:false rest
        | Some (l, _), None ->
          values.(v) <- Qnum.of_zint (Qnum.ceil l);
          assign ~first:false rest
        | None, Some (h, _) ->
          values.(v) <- Qnum.of_zint (Qnum.floor h);
          assign ~first:false rest
        | Some (l, lo_dr), Some (h, hi_dr) -> (
            match Qnum.mid_integer l h with
            | Some m ->
              values.(v) <- Qnum.of_zint m;
              assign ~first:false rest
            | None ->
              if first then
                (* Constant range with no integer: provably no integer
                   solution anywhere (paper's special case). The binding
                   rows are single-variable here, so their integer
                   tightenings [t_v <= floor h] and [-t_v <= -ceil l]
                   sum to [0 <= floor h - ceil l < 0]. *)
                Infeasible
                  (Cert.Refute
                     (Cert.Comb
                        [
                          (Zint.one, tightened_bound_why hi_dr v);
                          (Zint.one, tightened_bound_why lo_dr v);
                        ]))
              else if
                depth <= 0 || stats.branches >= (Budget.limits budget).fm_branches
              then Unknown
              else begin
                (* Branch-and-bound: [l, h] lies strictly between two
                   consecutive integers m and m+1. *)
                stats.branches <- stats.branches + 1;
                let m = Qnum.floor l in
                let le_row =
                  let coeffs = Array.make nvars Zint.zero in
                  coeffs.(v) <- Zint.one;
                  { Cert.row = { Consys.coeffs; rhs = m }; why = Cert.Cut ncuts }
                in
                let ge_row =
                  let coeffs = Array.make nvars Zint.zero in
                  coeffs.(v) <- Zint.minus_one;
                  {
                    Cert.row = { Consys.coeffs; rhs = Zint.neg (Zint.succ m) };
                    why = Cert.Cut ncuts;
                  }
                in
                let left =
                  solve ~budget ~tighten ~stats ~scratch ~depth:(depth - 1)
                    ~ncuts:(ncuts + 1) ~nvars (le_row :: original)
                in
                match left with
                | Feasible _ as ok -> ok
                | Infeasible _ | Unknown | Exhausted _ -> (
                    let right =
                      solve ~budget ~tighten ~stats ~scratch ~depth:(depth - 1)
                        ~ncuts:(ncuts + 1) ~nvars (ge_row :: original)
                    in
                    match (left, right) with
                    | _, (Feasible _ as ok) -> ok
                    | Infeasible cl, Infeasible cr ->
                      Infeasible
                        (Cert.Split { var = v; bound = m; left = cl; right = cr })
                    | Exhausted r, _ | _, Exhausted r -> Exhausted r
                    | _, _ -> Unknown)
              end))
  in
  assign ~first:true (List.rev steps)

let m_calls = Dda_obs.Metrics.counter "test.fourier.calls"
let m_indep = Dda_obs.Metrics.counter "test.fourier.independent"
let m_elims = Dda_obs.Metrics.counter "test.fourier.eliminations"
let m_branches = Dda_obs.Metrics.counter "test.fourier.branches"

let run_inner ?budget ?(tighten = false) ?stats (sys : Consys.t) =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Failpoint.hit "fourier.solve";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  (* The combination scratch buffer: one per run, reused by every
     elimination (including branch-and-bound recursion — combinations
     are copied out before the solver recurses). Never module-level:
     concurrent runs on different domains each get their own. *)
  let scratch = Array.make sys.nvars Zint.zero in
  match
    solve ~budget ~tighten ~stats ~scratch ~depth:(Budget.limits budget).fm_depth
      ~ncuts:0 ~nvars:sys.nvars
      (Cert.hyps_of_rows sys.rows)
  with
  | outcome -> outcome
  | exception Budget.Exhausted reason -> Exhausted reason

let run ?budget ?(tighten = false) ?stats (sys : Consys.t) =
  Dda_obs.Metrics.incr m_calls;
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let e0 = stats.eliminations and b0 = stats.branches in
  let out =
    Dda_obs.Trace.wrap ~name:"fourier-motzkin"
      ~args:(fun out ->
          [ ( "verdict",
              match out with
              | Infeasible _ -> 0
              | Feasible _ -> 1
              | Unknown -> 2
              | Exhausted _ -> 3 );
            ("eliminations", stats.eliminations - e0);
            ("branches", stats.branches - b0);
            ("max_rows", stats.max_rows) ])
      (fun () -> run_inner ?budget ~tighten ~stats sys)
  in
  Dda_obs.Metrics.add m_elims (stats.eliminations - e0);
  Dda_obs.Metrics.add m_branches (stats.branches - b0);
  (match out with Infeasible _ -> Dda_obs.Metrics.incr m_indep | _ -> ());
  out
