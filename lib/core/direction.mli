(** Direction and distance vectors (paper section 6).

    Directions relate the two references' iterations of each common
    loop; a vector is refined hierarchically after Burke and Cytron:
    test [(*,...,*)], and wherever the answer is "dependent" expand the
    leftmost [*] into [<], [=], [>], pruning whole subtrees whose test
    answers "independent".

    Two pruning rules from the paper cut the test count by an order of
    magnitude without losing exactness:
    - {e unused variables}: a common loop whose index appears in neither
      the subscripts nor any other variable's bounds gets direction [*]
      outright;
    - {e distance pruning}: when the GCD solution makes
      [i_k - i'_k] a constant, the direction of level [k] is its sign —
      no test needed (and a constant on {e every} level yields the
      distance vector).

    The hierarchy also realizes the paper's "implicit branch and bound"
    (section 6 end): when the un-directed test cannot prove
    independence but every refined vector can, the pair is
    independent. *)

open Dda_numeric

type dir =
  | Dlt  (** [i < i'] *)
  | Deq
  | Dgt
  | Dany  (** unrefined ["*"] *)

val pp_dir : Format.formatter -> dir -> unit
val pp_vector : Format.formatter -> dir array -> unit

type prune = {
  unused : bool;
  distance : bool;
  separable : bool;
      (** Burke and Cytron's dimension-by-dimension treatment of "nice"
          cases, which the paper suggests as a further optimization: a
          common level whose variables share no constraint with any
          other level's gets its three directions tested in isolation
          (3 tests) instead of multiplying the hierarchy (3^n); the
          vector set is the cross product. Exact by independence of the
          components. Ignored for self pairs (the identity-vector
          exclusion is a cross-level constraint). *)
}

val no_pruning : prune
val full_pruning : prune
(** [full_pruning] enables the paper's two rules (unused variables,
    distance); [separable] stays off to match the paper's Table 5
    configuration. *)

val separable_pruning : prune
(** [full_pruning] plus the dimension-by-dimension treatment. *)

type counts = {
  mutable by_test : int array;  (** cascade calls decided by each test *)
  mutable indep_by_test : int array;
      (** how many of those calls answered "independent" (the paper's
          section 7 per-test return rates) *)
}

val fresh_counts : unit -> counts
val count_of : counts -> Cascade.test -> int
val indep_count_of : counts -> Cascade.test -> int

val merge_counts : into:counts -> counts -> unit
(** Add the second counter set into the first, per test. Used to fold
    per-domain (or per-program) counters into corpus totals. *)

val dir_rows : Problem.t -> int -> dir -> Consys.row list
(** The constraint rows a direction at common level [k] adds, in
    original-variable space: [Dlt] is [i_k - i'_k <= -1], [Deq] the two
    opposite [<= 0] rows, [Dgt] the mirror, [Dany] nothing. Exposed for
    the verification layer, which re-derives the per-direction systems
    when certifying self-pair verdicts. *)

type result = {
  dependent : bool;
  vectors : dir array list;
      (** direction vectors (length [ncommon]) under which the
          references are dependent; a [Dany] entry means the level was
          pruned, standing for all three directions *)
  distance : Zint.t array option;
      (** the distance vector when every common level has constant
          difference *)
  implicit_bb : bool;
      (** true when the plain test could not prove independence but
          every direction vector could *)
  degraded : Budget.reason option;
      (** the per-query {!Budget} ran out mid-refinement: the vector
          set is a sound {e over}-approximation (untestable subtrees
          are recorded as single conservative cells with [*] at the
          unrefined levels), not the exact set *)
}

val refine :
  ?budget:Budget.t ->
  ?prune:prune ->
  ?fm_tighten:bool ->
  ?counts:counts ->
  ?exclude_all_eq:bool ->
  Problem.t ->
  Gcd_test.reduction ->
  result
(** [refine problem reduction] assumes {!Gcd_test.run} already returned
    [Reduced reduction] for [problem].

    [exclude_all_eq] serves self pairs (a write tested against itself):
    the all-[=] vector is the reference's own instance, not a
    dependence, so it is neither tested nor reported — a self pair with
    no other vector is independent. *)
