(** Banerjee's Extended GCD test as a preprocessing step (paper
    section 3.1).

    The subscript equalities [x . A = c] are factored through a
    unimodular [U] with [U . A = D] echelon. If [t . D = c] has no
    integer solution the references are {e independent} regardless of
    bounds. Otherwise the solution is [x = t . U] with the first [rank]
    entries of [t] forced and the rest free: the problem's inequalities
    are rewritten over the free parameters, leaving a smaller, simpler
    system for the exact tests — and an affine map from parameters back
    to the original variables, used for distance/direction vectors and
    witness reconstruction. *)

open Dda_numeric

type reduction = {
  nfree : int;
  x_const : Zint.t array;
      (** constant part of each original variable, [x_i = x_const.(i)
          + sum_j x_coeff.(i).(j) * t_j] *)
  x_coeff : Zint.t array array;  (** [nvars x nfree] *)
  system : Consys.t;  (** the problem's inequalities over [t] *)
}

type outcome =
  | Independent of Cert.eq_refutation
      (** no integer solution even ignoring bounds: exact, certified by
          a divisibility refutation over the problem's equality rows *)
  | Reduced of reduction

val run : ?budget:Budget.t -> Problem.t -> outcome

val run_eqs : ?budget:Budget.t -> Problem.t -> outcome
(** The bounds-free half: solve the equalities only; a [Reduced] result
    has an {e empty} system. This is what the without-bounds memo table
    caches ("the GCD test does not make use of bounds"). *)

val attach_bounds : Problem.t -> reduction -> reduction
(** Transform the problem's inequalities into the reduction's parameter
    space. [run p = attach_bounds p (run_eqs p)] for reduced
    problems. *)

val x_of_t : reduction -> Zint.t array -> Zint.t array
(** Map a parameter assignment back to original variables. *)

val transform_row : reduction -> Consys.row -> Consys.row
(** Rewrite an inequality over original variables into one over the
    free parameters (used for direction-vector constraints). *)

val delta : reduction -> int -> int -> Zint.t option
(** [delta red p q] is [Some d] when [x_p - x_q] is the constant [d]
    for every parameter assignment — the distance-vector fast path. *)
