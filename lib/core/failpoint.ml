exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "failpoint %S injected" site)
    | _ -> None)

let known_sites =
  [
    "svpc.run";
    "acyclic.run";
    "loop_residue.run";
    "fourier.solve";
    "gcd.run_eqs";
    "memo.find_or_add";
    "analyzer.pair";
    "batch.item";
    "pool.job";
    "stream.journal";
    "cache.open";
    "cache.append";
    "cache.append.mid";
    "cache.flush";
    "serve.request";
  ]

type action =
  | Raise
  | Exhaust
  | Delay of float  (* milliseconds *)
  | Kill

(* The [kill] action simulates kill -9: die without flushing buffers or
   running [at_exit]. lib/core carries no unix dependency, so the
   default is the closest stdlib equivalent (an immediate [Sys.command]
   -free hard exit via a C-level _exit is unavailable; [exit 137]
   still runs [at_exit]); executables that link unix install the real
   SIGKILL-self handler at startup. *)
let kill_handler : (unit -> unit) ref = ref (fun () -> Stdlib.exit 137)
let set_kill_handler f = kill_handler := f

type window =
  | Always
  | At of int
  | Range of int * int
  | From of int
  | Prob of float

type rule = {
  action : action;
  window : window;
  mutable count : int;
}

let mutex = Mutex.create ()
let table : (string, rule) Hashtbl.t = Hashtbl.create 8
let active = Atomic.make false

let parse_action s =
  match s with
  | "raise" -> Ok Raise
  | "exhaust" -> Ok Exhaust
  | "kill" -> Ok Kill
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "delay" -> (
         let ms = String.sub s (i + 1) (String.length s - i - 1) in
         match float_of_string_opt ms with
         | Some f when f >= 0. -> Ok (Delay f)
         | Some _ | None -> Error (Printf.sprintf "bad delay %S" ms))
     | _ -> Error (Printf.sprintf "unknown action %S" s))

let parse_window s =
  let fail () = Error (Printf.sprintf "bad window %S" s) in
  let n = String.length s in
  if n = 0 then fail ()
  else if s.[0] = 'p' then
    match float_of_string_opt (String.sub s 1 (n - 1)) with
    | Some p when p >= 0. && p <= 1. -> Ok (Prob p)
    | Some _ | None -> fail ()
  else if s.[n - 1] = '+' then
    match int_of_string_opt (String.sub s 0 (n - 1)) with
    | Some a when a >= 1 -> Ok (From a)
    | Some _ | None -> fail ()
  else
    match String.index_opt s '-' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (n - i - 1)) )
        with
        | Some a, Some b when a >= 1 && b >= a -> Ok (Range (a, b))
        | _ -> fail ())
    | None -> (
        match int_of_string_opt s with
        | Some a when a >= 1 -> Ok (At a)
        | Some _ | None -> fail ())

let parse_entry s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "missing '=' in %S" s)
  | Some i -> (
      let site = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if not (List.mem site known_sites) then
        Error (Printf.sprintf "unknown site %S" site)
      else
        let action_s, window =
          match String.index_opt rest '@' with
          | None -> (rest, Ok Always)
          | Some j ->
            ( String.sub rest 0 j,
              parse_window (String.sub rest (j + 1) (String.length rest - j - 1)) )
        in
        match (parse_action action_s, window) with
        | Ok action, Ok window -> Ok (site, { action; window; count = 0 })
        | Error e, _ | _, Error e -> Error e)

let configure spec =
  let entries =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_entry (String.trim e) with
        | Ok r -> parse (r :: acc) rest
        | Error _ as err -> err)
  in
  match parse [] entries with
  | Error _ as err -> err
  | Ok rules ->
    Mutex.protect mutex (fun () ->
        Hashtbl.reset table;
        List.iter (fun (site, rule) -> Hashtbl.replace table site rule) rules;
        Atomic.set active (Hashtbl.length table > 0));
    Ok ()

let set spec =
  match configure spec with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Failpoint.set: %s" msg)

let clear () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset table;
      Atomic.set active false)

let hits site =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table site with Some r -> r.count | None -> 0)

(* Deterministic in the hit count: reproducible chaos. *)
let pseudo_hit n p =
  let h = n * 2654435761 land 0xFFFFFF in
  float_of_int h /. float_of_int 0x1000000 < p

let fires rule =
  rule.count <- rule.count + 1;
  let n = rule.count in
  match rule.window with
  | Always -> true
  | At k -> n = k
  | Range (a, b) -> n >= a && n <= b
  | From a -> n >= a
  | Prob p -> pseudo_hit n p

(* Wall clocks live in the engine layer, not here; a failpoint delay
   only needs to be "long enough to trip a watchdog", so CPU-time
   busy-waiting is fine. *)
let busy_wait ms =
  let stop = Sys.time () +. (ms /. 1000.) in
  while Sys.time () < stop do
    Domain.cpu_relax ()
  done

let m_fired = Dda_obs.Metrics.counter "failpoint.fired"

let hit site =
  if Atomic.get active then begin
    let fired =
      Mutex.protect mutex (fun () ->
          match Hashtbl.find_opt table site with
          | None -> None
          | Some rule -> if fires rule then Some rule.action else None)
    in
    match fired with
    | None -> ()
    | Some action ->
      Dda_obs.Metrics.incr m_fired;
      Dda_obs.Trace.instant ("failpoint:" ^ site);
      (match action with
       | Raise -> raise (Injected site)
       | Exhaust -> raise (Budget.Exhausted Budget.Injected)
       | Delay ms -> busy_wait ms
       | Kill -> !kill_handler ())
  end

let () =
  match Sys.getenv_opt "DDA_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "warning: DDA_FAILPOINTS ignored: %s\n%!" msg)
