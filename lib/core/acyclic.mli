(** The Acyclic test (paper section 3.3).

    A variable that appears with only one sign across the remaining
    multi-variable constraints is constrained in only one direction by
    them, so it can be pinned to its extreme single-variable bound (or
    discharged entirely when that bound is infinite) without changing
    feasibility. When the constraint graph is acyclic this eliminates
    every variable, deciding the system exactly; a cyclic core is
    handed to the next test, already simplified.

    Each elimination is recorded, so a satisfying point of the residual
    system extends to a {e full} witness by replaying the eliminations
    backwards ({!witness}) — closing the partial-witness gap the
    original cascade had on Acyclic- and Loop-Residue-decided
    queries. *)

open Dda_numeric

(** One variable elimination, in the order performed. *)
type elim =
  | Pinned of {
      var : int;
      value : Zint.t;  (** the finite extreme it was pinned to *)
    }
  | Discharged of {
      var : int;
      upper : bool;
          (** [true] when the dropped rows upper-bound the variable
              (its lower side was unbounded) *)
      rows : Cert.drow list;  (** the rows dropped with it *)
    }

type outcome =
  | Infeasible of Cert.infeasible
  | Feasible of Bounds.t * elim list
      (** The box after propagation plus every elimination performed;
          [witness elims (sample box)] is a full witness. *)
  | Cycle of Bounds.t * elim list * Cert.drow list
      (** Variables remain that are constrained in both directions: the
          residual cyclic core, plus the eliminations already done
          (needed to extend a core witness to a full one). *)

val run : ?budget:Budget.t -> Bounds.t -> Cert.drow list -> outcome
(** May raise {!Budget.Exhausted} when a budget is supplied; the
    cascade converts that into a degraded verdict.

    [run box rows] with [rows] the multi-variable residue from
    {!Svpc.run}. [box] is copied, not mutated. Certificate derivations
    are expressed over the same hypothesis rows as the input
    derivations (for the cascade: the original system's rows).
    @raise Invalid_argument when a needed bound of [box] carries no
    provenance (boxes built by {!Svpc.run} always provide it). *)

val witness : elim list -> Zint.t array -> Zint.t array
(** [witness elims base] extends [base] — any point satisfying the
    residual system {e and} the final box — to a point satisfying the
    pre-elimination system: eliminations are replayed in reverse,
    pinned variables take their pinned values, discharged variables
    clamp the base value against their dropped rows. [base] is not
    mutated. *)
