(** Dependence-graph export: the analyzer's pair reports as a Graphviz
    digraph over reference sites, edges labeled with dependence kind,
    direction vector and (when constant) distance — what a
    transformation framework or a human debugging a refusal to
    parallelize wants to look at. *)

val to_dot : Analyzer.report -> string
(** Nodes are reference sites ([array\[..\]] read/write at a location);
    one edge per direction vector of every dependent pair, oriented
    source to sink (the instance that executes first points at the one
    that executes second; a leading ["*"] is drawn from the textually
    earlier site and marked ambiguous). Each edge is labeled with its
    flow/anti/output/input classification and its carrier — the
    outermost loop that can carry it ([carried L<id>]) or
    [loop-indep] — and carried (DOALL-blocking) edges are colored red.
    Conservative outcomes (non-affine, constant-subscript collisions)
    appear as dashed edges, red whenever the pair has a common
    loop. *)
