open Dda_numeric

type dir =
  | Dlt
  | Deq
  | Dgt
  | Dany

let pp_dir fmt d =
  Format.pp_print_string fmt
    (match d with Dlt -> "<" | Deq -> "=" | Dgt -> ">" | Dany -> "*")

let pp_vector fmt v =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i d ->
       if i > 0 then Format.fprintf fmt ",";
       pp_dir fmt d)
    v;
  Format.fprintf fmt ")"

type prune = {
  unused : bool;
  distance : bool;
  separable : bool;
}

let no_pruning = { unused = false; distance = false; separable = false }
let full_pruning = { unused = true; distance = true; separable = false }
let separable_pruning = { full_pruning with separable = true }

type counts = {
  mutable by_test : int array;
  mutable indep_by_test : int array;
}

let fresh_counts () = { by_test = Array.make 4 0; indep_by_test = Array.make 4 0 }

let test_index = function
  | Cascade.T_svpc -> 0
  | Cascade.T_acyclic -> 1
  | Cascade.T_loop_residue -> 2
  | Cascade.T_fourier -> 3

let merge_counts ~into src =
  Array.iteri (fun i v -> into.by_test.(i) <- into.by_test.(i) + v) src.by_test;
  Array.iteri
    (fun i v -> into.indep_by_test.(i) <- into.indep_by_test.(i) + v)
    src.indep_by_test

let count_of c t = c.by_test.(test_index t)
let indep_count_of c t = c.indep_by_test.(test_index t)

type result = {
  dependent : bool;
  vectors : dir array list;
  distance : Zint.t array option;
  implicit_bb : bool;
  degraded : Budget.reason option;
}

(* Direction constraint rows for level k, in original-variable space. *)
let dir_rows problem k d =
  let nv = Problem.nvars problem in
  let p = Problem.var1 problem k and q = Problem.var2 problem k in
  let row pc qc rhs =
    let coeffs = Array.make nv Zint.zero in
    coeffs.(p) <- Zint.of_int pc;
    coeffs.(q) <- Zint.of_int qc;
    { Consys.coeffs; rhs = Zint.of_int rhs }
  in
  match d with
  | Dlt -> [ row 1 (-1) (-1) ]  (* x_p - x_q <= -1 *)
  | Deq -> [ row 1 (-1) 0; row (-1) 1 0 ]
  | Dgt -> [ row (-1) 1 (-1) ]
  | Dany -> []

(* Direction rows in reduced (free-variable) space, memoized per
   (level, direction): the refinement tree re-tests each level
   constraint many times, and [Gcd_test.transform_row] is a dense
   matrix-vector product worth doing once. Rows are immutable, so
   sharing them across the systems of different vectors is safe. The
   cache lives per [refine] call — no module-level state. *)
let make_dir_row_cache problem red =
  let cache = Array.make (3 * problem.Problem.ncommon) None in
  fun k d ->
    match d with
    | Dany -> []
    | Dlt | Deq | Dgt ->
      let idx = (3 * k) + (match d with Dlt -> 0 | Deq -> 1 | Dgt -> 2 | Dany -> assert false) in
      (match cache.(idx) with
       | Some rows -> rows
       | None ->
         let rows = List.map (Gcd_test.transform_row red) (dir_rows problem k d) in
         cache.(idx) <- Some rows;
         rows)

let system_for red dir_rows_tr vector =
  let extra = ref [] in
  Array.iteri
    (fun k d -> List.iter (fun r -> extra := r :: !extra) (dir_rows_tr k d))
    vector;
  { red.Gcd_test.system with
    Consys.rows = !extra @ red.Gcd_test.system.Consys.rows }

(* A common level is "unused" when its two variables appear in no
   subscript equation and only in their own bound rows. *)
let unused_level problem k =
  let p = Problem.var1 problem k and q = Problem.var2 problem k in
  let absent_in_eqs =
    List.for_all
      (fun (r : Consys.row) ->
         Zint.is_zero r.coeffs.(p) && Zint.is_zero r.coeffs.(q))
      problem.Problem.eqs
  in
  absent_in_eqs
  && List.for_all
       (fun (b : Problem.bound) ->
          (Zint.is_zero b.row.Consys.coeffs.(p) || b.subject = p)
          && (Zint.is_zero b.row.Consys.coeffs.(q) || b.subject = q))
       problem.Problem.ineqs

let refine ?budget ?(prune = full_pruning) ?(fm_tighten = false) ?counts
    ?(exclude_all_eq = false) problem red =
  let counts = match counts with Some c -> c | None -> fresh_counts () in
  (* Set once the budget runs out mid-refinement; the exhaustion is
     sticky, so every later test answers [Exhausted] instantly and the
     hierarchy unwinds recording conservative cells. *)
  let degraded = ref None in
  let ncommon = problem.Problem.ncommon in
  let all_eq v = Array.for_all (fun d -> d = Deq) v in
  (* Levels fixed by pruning: Some dir (possibly Dany for unused). *)
  let fixed = Array.make ncommon None in
  if prune.unused then
    for k = 0 to ncommon - 1 do
      if unused_level problem k then fixed.(k) <- Some Dany
    done;
  let deltas =
    Array.init ncommon (fun k ->
        Gcd_test.delta red (Problem.var1 problem k) (Problem.var2 problem k))
  in
  if prune.distance then
    for k = 0 to ncommon - 1 do
      if fixed.(k) = None then
        match deltas.(k) with
        | Some d ->
          (* x_p - x_q = d always; direction is determined by sign. *)
          let dir =
            let s = Zint.sign d in
            if s < 0 then Dlt else if s = 0 then Deq else Dgt
          in
          fixed.(k) <- Some dir
        | None -> ()
    done;
  let distance =
    (* delta is x_p - x_q = i - i'; the distance vector is i' - i. *)
    let all_const = Array.for_all (fun d -> d <> None) deltas in
    if all_const && ncommon > 0 then
      Some (Array.map (fun d -> Zint.neg (Option.get d)) deltas)
    else None
  in
  let dir_rows_tr = make_dir_row_cache problem red in
  let run_test vector =
    let r = Cascade.run ?budget ~fm_tighten (system_for red dir_rows_tr vector) in
    let i = test_index r.decided_by in
    counts.by_test.(i) <- counts.by_test.(i) + 1;
    (match r.verdict with
     | Cascade.Independent _ -> counts.indep_by_test.(i) <- counts.indep_by_test.(i) + 1
     | Cascade.Exhausted reason -> if !degraded = None then degraded := Some reason
     | Cascade.Dependent _ | Cascade.Unknown -> ());
    r.verdict
  in
  (* Burke-Cytron dimension-by-dimension treatment: a common level
     whose variables share no row (equality, bound, or the implicit
     p-q direction coupling) with any other level's variables can have
     its three directions decided in isolation; the final vector set is
     the cross product. Disabled for self pairs: excluding the identity
     vector is a cross-level constraint. *)
  let separable =
    if prune.separable && (not exclude_all_eq) && ncommon > 1 then begin
      let nv = Problem.nvars problem in
      let parent = Array.init nv Fun.id in
      let rec find i =
        if parent.(i) = i then i
        else begin
          let r = find parent.(i) in
          parent.(i) <- r;
          r
        end
      in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let union_row (r : Consys.row) =
        match Consys.nonzero_vars r with
        | [] -> ()
        | first :: rest -> List.iter (union first) rest
      in
      List.iter union_row problem.Problem.eqs;
      List.iter (fun (b : Problem.bound) -> union_row b.row) problem.Problem.ineqs;
      for k = 0 to ncommon - 1 do
        union (Problem.var1 problem k) (Problem.var2 problem k)
      done;
      let comp k = find (Problem.var1 problem k) in
      Array.init ncommon (fun k ->
          fixed.(k) = None
          &&
          let c = comp k in
          let rec alone k' =
            k' >= ncommon || ((k' = k || comp k' <> c) && alone (k' + 1))
          in
          alone 0)
    end
    else Array.make ncommon false
  in
  (* Hierarchical refinement. [k] is the next level to expand;
     pruning-fixed and separable levels are skipped (the former carry
     their direction in [vector], the latter are combined afterwards). *)
  let vectors = ref [] in
  let root_vector = Array.init ncommon (fun k -> Option.value fixed.(k) ~default:Dany) in
  let rec expand vector k verdict_known_dependent =
    (* Find next expandable level. *)
    let rec next k =
      if k >= ncommon then None
      else if fixed.(k) = None && not separable.(k) then Some k
      else next (k + 1)
    in
    match next k with
    | None ->
      (* Fully refined (modulo pruning): record if dependent. The
         all-[=] vector of a self pair is the identity instance. *)
      if exclude_all_eq && all_eq vector then false
      else begin
        let dependent =
          if verdict_known_dependent then true
          else
            match run_test vector with
            | Cascade.Independent _ -> false
            | Cascade.Dependent _ | Cascade.Unknown | Cascade.Exhausted _ -> true
        in
        if dependent then vectors := Array.copy vector :: !vectors;
        dependent
      end
    | Some k ->
      let any = ref false in
      List.iter
        (fun d ->
           vector.(k) <- d;
           (match run_test vector with
            | Cascade.Independent _ -> ()
            | Cascade.Exhausted _ ->
              (* The budget is gone (and sticky): record this whole
                 subtree as one conservative cell — deeper levels stay
                 [*] — instead of recursing into tests that can no
                 longer answer. *)
              if not (exclude_all_eq && all_eq vector) then
                vectors := Array.copy vector :: !vectors;
              any := true
            | Cascade.Dependent _ | Cascade.Unknown ->
              if expand vector (k + 1) true then any := true);
           vector.(k) <- Dany)
        [ Dlt; Deq; Dgt ];
      !any
  in
  if exclude_all_eq && ncommon = 0 then
    (* A loop-less self pair has only the identity instance. *)
    { dependent = false; vectors = []; distance = None; implicit_bb = false;
      degraded = None }
  else begin
  (* Root test: the paper's (*,...,*) query. *)
  let root = run_test root_vector in
  match root with
  | Cascade.Independent _ ->
    { dependent = false; vectors = []; distance = None; implicit_bb = false;
      degraded = !degraded }
  | Cascade.Exhausted _ ->
    (* No resources even for the root query: the whole pruned space is
       one conservative cell. *)
    {
      dependent = true;
      vectors = [ Array.copy root_vector ];
      distance;
      implicit_bb = false;
      degraded = !degraded;
    }
  | Cascade.Dependent _ | Cascade.Unknown ->
    (* Isolated 3-direction tests for the separable levels. *)
    let dir_sets = Array.make ncommon [] in
    let separable_feasible = ref true in
    for k = 0 to ncommon - 1 do
      if separable.(k) then begin
        let v = Array.copy root_vector in
        let feasible =
          List.filter
            (fun d ->
               v.(k) <- d;
               match run_test v with
               | Cascade.Independent _ -> false
               | Cascade.Dependent _ | Cascade.Unknown | Cascade.Exhausted _ ->
                 true)
            [ Dlt; Deq; Dgt ]
        in
        dir_sets.(k) <- feasible;
        if feasible = [] then separable_feasible := false
      end
    done;
    let cross_product base =
      let acc = ref base in
      for k = 0 to ncommon - 1 do
        if separable.(k) then
          acc :=
            List.concat_map
              (fun v ->
                 List.map
                   (fun d ->
                      let v' = Array.copy v in
                      v'.(k) <- d;
                      v')
                   dir_sets.(k))
              !acc
      done;
      !acc
    in
    if not !separable_feasible then
      (* A separable level admits no direction at all: independent
         (only possible when the root verdict was not exact). *)
      { dependent = false; vectors = []; distance = None; implicit_bb = true;
        degraded = !degraded }
    else begin
      let has_expandable =
        Array.exists Fun.id (Array.init ncommon (fun k -> fixed.(k) = None && not separable.(k)))
      in
      if not has_expandable then
        if exclude_all_eq && all_eq root_vector then
          { dependent = false; vectors = []; distance = None; implicit_bb = false;
            degraded = !degraded }
        else
          (* Every level pruned or separable: combine. *)
          {
            dependent = true;
            vectors = cross_product [ root_vector ];
            distance;
            implicit_bb = false;
            degraded = !degraded;
          }
      else begin
        let dependent = expand (Array.copy root_vector) 0 false in
        (* The plain test answered "dependent/unknown" but every refined
           vector proved independent: the paper's implicit branch and
           bound (an exact claim only the refinement could make). *)
        {
          dependent;
          vectors = cross_product (List.rev !vectors);
          distance = (if dependent then distance else None);
          implicit_bb = not dependent && !degraded = None;
          degraded = !degraded;
        }
      end
    end
  end
