(* h(x) = size(x) + sum_i 2^i * x_i, computed with wrapping native
   arithmetic (deterministic; only the bucket index needs to be
   stable). *)
let hash_key key =
  let h = ref (Array.length key) in
  let p = ref 1 in
  Array.iter
    (fun x ->
       h := !h + (!p * x);
       p := !p * 2)
    key;
  !h land max_int

(* Every entry carries its key's hash: rehashing and merging move
   entries between bucket arrays without touching the keys again, and
   lookups compare hashes before walking the key. *)
type 'a entry = {
  key : int array;
  hash : int;
  value : 'a;
}

type 'a t = {
  mutable buckets : 'a entry list array;
  mutable size : int;
  mutable lookups : int;
  mutable hits : int;
}

type stats = {
  size : int;
  buckets : int;
  lookups : int;
  hits : int;
}

let load_factor = 2

let create ?(initial_buckets = 64) () : _ t =
  { buckets = Array.make initial_buckets []; size = 0; lookups = 0; hits = 0 }

let equal_key (a : int array) (b : int array) =
  a == b
  || (Array.length a = Array.length b
      && (let n = Array.length a in
          let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
          go 0))

let rehash (t : _ t) =
  let old = t.buckets in
  t.buckets <- Array.make (Array.length old * 2) [];
  let nb = Array.length t.buckets in
  Array.iter
    (List.iter (fun e ->
         let b = e.hash mod nb in
         t.buckets.(b) <- e :: t.buckets.(b)))
    old

let find_entry (t : _ t) key h =
  List.find_opt
    (fun e -> e.hash = h && equal_key e.key key)
    t.buckets.(h mod Array.length t.buckets)

(* Lookups and hits are per-query events, so the process-wide counters
   stay jobs-invariant (each pair performs the same lookups whatever
   worker runs it). Merges are *not* counted: the number of session
   merges is a function of the chunking, and a counter would leak the
   worker count into otherwise deterministic batch output — they are
   trace events instead. *)
let m_lookups = Dda_obs.Metrics.counter "memo.lookups"
let m_hits = Dda_obs.Metrics.counter "memo.hits"

let find (t : _ t) key =
  t.lookups <- t.lookups + 1;
  Dda_obs.Metrics.incr m_lookups;
  match find_entry t key (hash_key key) with
  | Some e ->
    t.hits <- t.hits + 1;
    Dda_obs.Metrics.incr m_hits;
    Some e.value
  | None -> None

(* [h] is the key's precomputed hash; the caller guarantees the key is
   not already present. *)
let add_new (t : _ t) key h value =
  let b = h mod Array.length t.buckets in
  t.buckets.(b) <- { key; hash = h; value } :: t.buckets.(b);
  t.size <- t.size + 1;
  if t.size > load_factor * Array.length t.buckets then rehash t

let add (t : _ t) key value =
  let h = hash_key key in
  let b = h mod Array.length t.buckets in
  if List.exists (fun e -> e.hash = h && equal_key e.key key) t.buckets.(b) then begin
    t.buckets.(b) <-
      List.filter (fun e -> not (e.hash = h && equal_key e.key key)) t.buckets.(b);
    t.size <- t.size - 1
  end;
  add_new t key h value

let find_or_add (t : _ t) key compute =
  Failpoint.hit "memo.find_or_add";
  t.lookups <- t.lookups + 1;
  Dda_obs.Metrics.incr m_lookups;
  let h = hash_key key in
  match find_entry t key h with
  | Some e ->
    t.hits <- t.hits + 1;
    Dda_obs.Metrics.incr m_hits;
    (e.value, true)
  | None ->
    (* Copy before computing: the caller may have handed us a scratch
       buffer ({!Problem.to_key_scratch}) that [compute] itself reuses
       for nested lookups. [compute] may raise (budget exhaustion
       mid-computation, injected faults): nothing is stored then, so
       the table never caches a half-computed value. *)
    let key = Array.copy key in
    let v = compute () in
    add_new t key h v;
    (v, false)

let merge_into ~into (src : _ t) =
  if into == src then invalid_arg "Memo_table.merge_into: a table cannot absorb itself";
  Dda_obs.Trace.instant "memo.merge"
    ~args:[ ("src_entries", src.size); ("into_entries", into.size) ];
  Array.iter
    (List.iter (fun e ->
         if find_entry into e.key e.hash = None then
           add_new into e.key e.hash e.value))
    src.buckets;
  into.lookups <- into.lookups + src.lookups;
  into.hits <- into.hits + src.hits

let iter f (t : _ t) =
  Array.iter (List.iter (fun e -> f e.key e.value)) t.buckets

let length (t : _ t) = t.size
let lookups (t : _ t) = t.lookups
let hits (t : _ t) = t.hits

let stats (t : _ t) : stats =
  { size = t.size; buckets = Array.length t.buckets; lookups = t.lookups;
    hits = t.hits }

let reset_counters (t : _ t) =
  t.lookups <- 0;
  t.hits <- 0
