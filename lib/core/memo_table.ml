(* h(x) = size(x) + sum_i 2^i * x_i, computed with wrapping native
   arithmetic (deterministic; only the bucket index needs to be
   stable). *)
let hash_key key =
  let h = ref (List.length key) in
  let p = ref 1 in
  List.iter
    (fun x ->
       h := !h + (!p * x);
       p := !p * 2)
    key;
  !h land max_int

type 'a entry = {
  key : int list;
  value : 'a;
}

type 'a t = {
  mutable buckets : 'a entry list array;
  mutable size : int;
  mutable lookups : int;
  mutable hits : int;
}

let create ?(initial_buckets = 64) () =
  { buckets = Array.make initial_buckets []; size = 0; lookups = 0; hits = 0 }

let bucket_of t key = hash_key key mod Array.length t.buckets

let rehash t =
  let old = t.buckets in
  t.buckets <- Array.make (Array.length old * 2) [];
  Array.iter
    (List.iter (fun e ->
         let b = bucket_of t e.key in
         t.buckets.(b) <- e :: t.buckets.(b)))
    old

let find t key =
  t.lookups <- t.lookups + 1;
  let b = bucket_of t key in
  match List.find_opt (fun e -> e.key = key) t.buckets.(b) with
  | Some e ->
    t.hits <- t.hits + 1;
    Some e.value
  | None -> None

let add t key value =
  let b = bucket_of t key in
  (if List.exists (fun e -> e.key = key) t.buckets.(b) then
     t.buckets.(b) <- List.filter (fun e -> e.key <> key) t.buckets.(b)
   else t.size <- t.size + 1);
  t.buckets.(b) <- { key; value } :: t.buckets.(b);
  if t.size > 2 * Array.length t.buckets then rehash t

let find_or_add t key compute =
  Failpoint.hit "memo.find_or_add";
  match find t key with
  | Some v -> (v, true)
  | None ->
    (* [compute] may raise (budget exhaustion mid-computation, injected
       faults): nothing is stored then, so the table never caches a
       half-computed value. *)
    let v = compute () in
    add t key v;
    (v, false)

let merge_into ~into src =
  if into == src then invalid_arg "Memo_table.merge_into: a table cannot absorb itself";
  Array.iter
    (List.iter (fun e ->
         let b = bucket_of into e.key in
         if not (List.exists (fun e' -> e'.key = e.key) into.buckets.(b)) then begin
           into.buckets.(b) <- e :: into.buckets.(b);
           into.size <- into.size + 1;
           if into.size > 2 * Array.length into.buckets then rehash into
         end))
    src.buckets;
  into.lookups <- into.lookups + src.lookups;
  into.hits <- into.hits + src.hits

let length t = t.size
let lookups t = t.lookups
let hits t = t.hits

let reset_counters t =
  t.lookups <- 0;
  t.hits <- 0
