(** A growable flat arena of {!Dda_numeric.Zint.t} slots backing
    constraint-row coefficient vectors.

    Fourier–Motzkin elimination manufactures one combination row per
    upper/lower bound pair, and the test cascade replays thousands of
    such eliminations per batch; allocating a fresh coefficient array
    per row made the solver the analyzer's dominant allocator. Rows
    staged here live in one flat buffer owned by the calling domain:
    a solver run {!reset}s the arena once, {!alloc}ates slices as rows
    are combined, and {!truncate}s back to a {!mark} when a
    branch-and-bound subtree's rows die with the subtree.

    The arena is a dumb region: it never reads row meaning, and slices
    are plain [int] offsets the caller pairs with a width. Nothing is
    freed individually — lifetime is strictly stack-shaped
    (reset / mark / truncate), which is exactly the shape of the
    elimination cascade. Not thread-safe: each domain owns its own. *)

open Dda_numeric

type t

val create : ?capacity:int -> unit -> t
(** A fresh arena. [capacity] (default 256) is the initial slot count;
    the arena doubles as needed. *)

val length : t -> int
(** Slots currently in use. *)

val capacity : t -> int
(** Slots allocated (the high-water mark survives {!reset}). *)

val alloc : t -> int -> int
(** [alloc a n] reserves [n] slots, zero-filled, returning the offset
    of the first. *)

val get : t -> int -> Zint.t
val set : t -> int -> Zint.t -> unit

val blit_from : t -> Zint.t array -> int
(** [blit_from a src] copies [src] into freshly allocated slots and
    returns the slice offset: the bridge from materialized
    {!Consys.row} coefficients into the arena. *)

val mark : t -> int
(** The current length, to {!truncate} back to. *)

val truncate : t -> int -> unit
(** Pop every slot at or past the mark. Slices allocated before the
    mark are untouched.
    @raise Invalid_argument if the mark exceeds the current length. *)

val reset : t -> unit
(** Pop everything ([truncate] to zero); capacity is retained. *)

val hash_slice : t -> off:int -> len:int -> int
(** Order-sensitive structural hash of a slice, compatible with
    {!equal_slice}. *)

val equal_slice : t -> int -> int -> len:int -> bool
(** Element-wise equality of two equal-width slices. *)
