(** A lock-striped memoization table shared live across domains.

    Same int-array keys, stored hashes, and paper hash function as
    {!Memo_table}: the table is an array of independent [Memo_table]
    stripes, each guarded by its own mutex, with the key's hash
    selecting the stripe. Lookups from different domains only contend
    when their keys land on the same stripe, so the paper's
    memoization win (section 5) is shared *during* a parallel run
    instead of being merged after it.

    Stripe selection uses a Fibonacci multiplicative mix of the stored
    hash: the per-stripe [Memo_table] buckets already consume the
    hash's low bits ([h mod nbuckets] with power-of-two bucket
    counts), so taking the stripe from those same bits would leave
    most buckets of every stripe permanently empty.

    Concurrency protocol (the recursion-safety discipline from
    [lib/cache/durable.ml]): [find_or_add] looks up under the stripe
    lock, but runs [compute] with no lock held — a full-table compute
    recurses into the gcd table, and holding a stripe lock across it
    would deadlock when both keys collide on a stripe. Two domains
    racing on the same key may thus both compute it; [Memo_table.add]
    replaces the binding, and computes are deterministic functions of
    the key, so the survivor is equivalent and [length] still counts
    the key once. A [compute] that raises stores nothing. *)

type 'a t

val create : ?stripes:int -> ?initial_buckets:int -> unit -> 'a t
(** [stripes] is rounded up to a power of two (default 32).
    [initial_buckets] is the per-stripe {!Memo_table.create} size. *)

val stripes : 'a t -> int
(** Actual (power-of-two) stripe count. *)

val find : 'a t -> int array -> 'a option
(** Locked lookup; counts a lookup (and hit) on the key's stripe. *)

val add : 'a t -> int array -> 'a -> unit
(** Locked insert; replaces any previous binding. Not counted as a
    lookup (mirrors {!Memo_table.add}) — the durable store's replay
    path uses this to warm the table without skewing hit rates. *)

val find_or_add : 'a t -> int array -> (unit -> 'a) -> 'a * bool
(** [(value, was_hit)]. Compute-outside-lock: see the module
    description for the race and recursion semantics. The key is not
    retained: on a miss it is copied before [compute] runs, so callers
    may pass a reusable scratch buffer. *)

val length : 'a t -> int
(** Total distinct keys across stripes (locks each stripe briefly). *)

val iter : (int array -> 'a -> unit) -> 'a t -> unit
(** Iterate all bindings, stripe by stripe, holding each stripe's lock
    while it is walked. [f] must not touch the table. Quiescent use
    only (spilling to disk, post-run merging into a plain table). *)

val stats : 'a t -> Memo_table.stats
(** Aggregated across stripes: sizes, bucket counts, lookups and hits
    summed. Every [find_or_add] counts exactly one lookup, so lookup
    totals are deterministic whenever the {e number} of [find_or_add]
    calls is (beware nested tables: the analyzer consults its gcd
    table only on full-table misses, so gcd traffic varies with hit
    timing); hit totals depend on cross-domain timing and are only
    deterministic at [--jobs 1]. Sizes are always the distinct-key
    count, whatever the racing. *)

val contended : 'a t -> int
(** Number of stripe-lock acquisitions that found the lock held
    ([Mutex.try_lock] failed and the caller had to block). Also
    surfaced process-wide as the [memo.stripe.contended] metrics
    counter. Scheduling-dependent by nature — never part of
    deterministic output. *)

val reset_counters : 'a t -> unit
(** Zero every stripe's lookup/hit counters and the contention
    count (bindings are kept). *)
