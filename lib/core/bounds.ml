open Dda_numeric

type t = {
  los : Ext_int.t array;
  his : Ext_int.t array;
  lo_whys : Cert.deriv option array;
  hi_whys : Cert.deriv option array;
}

let create n =
  {
    los = Array.make n Ext_int.neg_inf;
    his = Array.make n Ext_int.pos_inf;
    lo_whys = Array.make n None;
    hi_whys = Array.make n None;
  }

let copy b =
  {
    los = Array.copy b.los;
    his = Array.copy b.his;
    lo_whys = Array.copy b.lo_whys;
    hi_whys = Array.copy b.hi_whys;
  }

let nvars b = Array.length b.los
let lo b i = b.los.(i)
let hi b i = b.his.(i)
let lo_why b i = b.lo_whys.(i)
let hi_why b i = b.hi_whys.(i)

(* The derivation accompanying a bound is replaced only when the bound
   strictly improves (it justifies the new value, not the old one); on
   a tie it fills a missing derivation but never displaces one. *)
let tighten_lo ?why b i v =
  let v = Ext_int.fin v in
  let c = Ext_int.compare v b.los.(i) in
  if c > 0 then begin
    b.los.(i) <- v;
    b.lo_whys.(i) <- why
  end
  else if c = 0 && b.lo_whys.(i) = None then b.lo_whys.(i) <- why

let tighten_hi ?why b i v =
  let v = Ext_int.fin v in
  let c = Ext_int.compare v b.his.(i) in
  if c < 0 then begin
    b.his.(i) <- v;
    b.hi_whys.(i) <- why
  end
  else if c = 0 && b.hi_whys.(i) = None then b.hi_whys.(i) <- why

let absorb ?why b (r : Consys.row) =
  match Consys.nonzero_vars r with
  | [] -> if Zint.is_negative r.rhs then `False else `Trivial
  | [ i ] ->
    let a = r.coeffs.(i) in
    (* a*t <= b: upper bound floor(b/a) for a > 0, lower bound
       ceil(b/a) for a < 0. Dividing by |a| with a floored bound is
       exactly what [Cert.Tighten] derives, so the stored bound row
       ([t_i <= hi] or [-t_i <= -lo]) follows from the absorbed row. *)
    let why =
      match why with
      | None -> None
      | Some w -> Some (if Zint.is_one (Zint.abs a) then w else Cert.Tighten w)
    in
    if Zint.is_positive a then tighten_hi ?why b i (Zint.fdiv r.rhs a)
    else tighten_lo ?why b i (Zint.cdiv r.rhs a);
    `Absorbed
  | _ :: _ :: _ -> invalid_arg "Bounds.absorb: multi-variable row"

let first_empty b =
  let n = nvars b in
  let rec go i =
    if i >= n then None
    else if Ext_int.compare b.los.(i) b.his.(i) > 0 then Some i
    else go (i + 1)
  in
  go 0

let consistent b = first_empty b = None

let refute_empty b =
  match first_empty b with
  | None -> None
  | Some i -> (
    match (b.lo_whys.(i), b.hi_whys.(i)) with
    | Some lw, Some hw ->
      (* (-t_i <= -lo) + (t_i <= hi) = (0 <= hi - lo), negative here. *)
      Some (Cert.Refute (Cert.Comb [ (Zint.one, lw); (Zint.one, hw) ]))
    | _ ->
      invalid_arg "Bounds.refute_empty: crossing bounds lack provenance")

let sample b =
  if not (consistent b) then None
  else
    Some
      (Array.init (nvars b) (fun i ->
           match (b.los.(i), b.his.(i)) with
           | Ext_int.Fin l, _ -> l
           | Ext_int.Neg_inf, Ext_int.Fin h -> h
           | Ext_int.Neg_inf, _ -> Zint.zero
           | Ext_int.Pos_inf, _ -> assert false))

let to_rows b =
  let n = nvars b in
  let unit_row i c rhs =
    let coeffs = Array.make n Zint.zero in
    coeffs.(i) <- c;
    { Consys.coeffs; rhs }
  in
  let out = ref [] in
  for i = n - 1 downto 0 do
    (match b.his.(i) with
     | Ext_int.Fin h -> out := unit_row i Zint.one h :: !out
     | Ext_int.Neg_inf | Ext_int.Pos_inf -> ());
    match b.los.(i) with
    | Ext_int.Fin l -> out := unit_row i Zint.minus_one (Zint.neg l) :: !out
    | Ext_int.Neg_inf | Ext_int.Pos_inf -> ()
  done;
  !out

let pp fmt b =
  Format.fprintf fmt "@[<v>";
  for i = 0 to nvars b - 1 do
    Format.fprintf fmt "%a <= t%d <= %a@," Ext_int.pp b.los.(i) i Ext_int.pp b.his.(i)
  done;
  Format.fprintf fmt "@]"
