(* Two-tier integers: a native-int fast path and a sign-magnitude
   bignum fallback.

   [Small v] holds |v| <= max_small (= max_int / 2) directly in a
   native int; [Big b] is the original little-endian base-2^15 limb
   representation and holds exactly the values the fast path cannot.
   The split is canonical — every value with magnitude at or below the
   guard bound is ALWAYS [Small], zero included — so [equal], [compare]
   and [hash] can dispatch on the constructor alone and never see the
   same value in two representations. Every operation that can shrink
   a magnitude (subtraction of like signs, division, gcd, parsing)
   demotes through the one smart constructor [mk_t].

   The guard bound max_small = max_int / 2 is chosen so the sum or
   difference of any two Small payloads still fits a native int,
   making the add/sub overflow check a plain range test. Base 2^15
   limbs keep every limb product plus carries well inside 63 bits. *)

type big = { sign : int; mag : int array }

type t =
  | Small of int
  | Big of big

let max_small = max_int / 2
let small_capacity = max_small

let base = 32768
let base_bits = 15

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) helpers. All take/return canonical arrays.    *)
(* ------------------------------------------------------------------ *)

let mzero : int array = [||]

let mnorm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mis_zero a = Array.length a = 0

let mcompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec scan i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else scan (i - 1) in
    scan (la - 1)

let madd a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  mnorm r

(* Requires [a >= b]. *)
let msub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mnorm r

let mmul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mzero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land (base - 1);
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land (base - 1);
        carry := s lsr base_bits;
        incr k
      done
    done;
    mnorm r
  end

(* Multiply by a small non-negative int (< 2^45 is safe; callers stay
   far below that). *)
let mmul_small a d =
  if d = 0 || mis_zero a then mzero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 4) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * d) + !carry in
      r.(i) <- s land (base - 1);
      carry := s lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land (base - 1);
      carry := !carry lsr base_bits;
      incr k
    done;
    mnorm r
  end

let madd_small a d =
  if d = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref d in
    let i = ref 0 in
    while !carry <> 0 do
      let s = r.(!i) + !carry in
      r.(!i) <- s land (base - 1);
      carry := s lsr base_bits;
      incr i
    done;
    mnorm r
  end

(* Divide by a small positive int; returns quotient magnitude and the
   int remainder. *)
let mdivmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mnorm q, !rem)

let mbits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let b = ref 0 and v = ref top in
    while !v > 0 do incr b; v := !v lsr 1 done;
    ((la - 1) * base_bits) + !b
  end

let mgetbit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

let mshl1_plus a bit =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref bit in
  for i = 0 to la - 1 do
    let s = (a.(i) lsl 1) lor !carry in
    r.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  r.(la) <- !carry;
  mnorm r

(* Schoolbook binary long division on magnitudes: adequate for the small
   operands dependence systems produce. Requires [b] non-zero. *)
let mdivmod a b =
  if mcompare a b < 0 then (mzero, a)
  else if Array.length b = 1 then begin
    let q, r = mdivmod_small a b.(0) in
    (q, if r = 0 then mzero else [| r |])
  end
  else begin
    let nbits = mbits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref mzero in
    for i = nbits - 1 downto 0 do
      r := mshl1_plus !r (mgetbit a i);
      if mcompare !r b >= 0 then begin
        r := msub !r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mnorm q, !r)
  end

(* ------------------------------------------------------------------ *)
(* Representation plumbing.                                           *)
(* ------------------------------------------------------------------ *)

(* Values within a few hundred of zero — loop bounds, strides,
   subscript coefficients — dominate every workload; share one block
   per value instead of allocating a fresh [Small] each time. *)
let cache_radius = 256

let small_cache = Array.init ((2 * cache_radius) + 1) (fun i -> Small (i - cache_radius))

let small n =
  if n >= -cache_radius && n <= cache_radius then
    Array.unsafe_get small_cache (n + cache_radius)
  else Small n

let fits_small n = n >= -max_small && n <= max_small

(* [big_of_int] accepts any native int, [min_int] included. *)
let big_of_int n =
  let sign = if n > 0 then 1 else -1 in
  (* Work with negative residues so that [min_int] is handled. *)
  let n = if n > 0 then -n else n in
  let buf = Array.make 5 0 in
  let rec go n i =
    if n = 0 then i
    else begin
      buf.(i) <- -(n mod base);
      go (n / base) (i + 1)
    end
  in
  let len = go n 0 in
  { sign; mag = Array.sub buf 0 len }

(* The ONLY way a signed result is built from a magnitude: demotes to
   [Small] whenever the guard bound allows, keeping the representation
   canonical. A magnitude of <= 61 bits is exactly the [Small] range
   (max_small = 2^61 - 1). *)
let mk_t sign mag =
  if mis_zero mag then small 0
  else if mbits mag <= 61 then begin
    let v = ref 0 in
    for i = Array.length mag - 1 downto 0 do
      v := (!v lsl base_bits) lor mag.(i)
    done;
    small (if sign < 0 then - !v else !v)
  end
  else Big { sign; mag }

let of_int n = if fits_small n then small n else Big (big_of_int n)

let to_big = function
  | Small v -> if v = 0 then { sign = 0; mag = mzero } else big_of_int v
  | Big b -> b

let zero = small 0
let one = small 1
let minus_one = small (-1)
let two = small 2

let sign = function Small v -> Stdlib.compare v 0 | Big b -> b.sign
let is_zero = function Small 0 -> true | Small _ | Big _ -> false
let is_one = function Small 1 -> true | Small _ | Big _ -> false
let is_negative = function Small v -> v < 0 | Big b -> b.sign < 0
let is_positive = function Small v -> v > 0 | Big b -> b.sign > 0

let equal a b =
  match (a, b) with
  | Small x, Small y -> x = y
  | Big x, Big y -> x.sign = y.sign && mcompare x.mag y.mag = 0
  | Small _, Big _ | Big _, Small _ -> false (* canonical: disjoint ranges *)

let compare a b =
  match (a, b) with
  | Small x, Small y -> Stdlib.compare x y
  | Big x, Big y ->
    if x.sign <> y.sign then Stdlib.compare x.sign y.sign
    else if x.sign >= 0 then mcompare x.mag y.mag
    else mcompare y.mag x.mag
  (* A canonical Big has magnitude beyond every Small: its sign wins. *)
  | Small _, Big y -> if y.sign > 0 then -1 else 1
  | Big x, Small _ -> if x.sign > 0 then 1 else -1

let hash = function
  | Small v -> (v * 0x9e3779b1) land max_int
  | Big b ->
    let h = ref (b.sign + 0x9e37) in
    Array.iter (fun limb -> h := (!h * 31) + limb) b.mag;
    !h land max_int

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_small = function Small _ -> true | Big _ -> false

(* ------------------------------------------------------------------ *)
(* Arithmetic.                                                        *)
(* ------------------------------------------------------------------ *)

(* Canonical values are already shared blocks; whenever the result of
   an operation is mathematically identical to an operand (or to the
   interned [zero]), return that block instead of rebuilding it. The
   analyzer's hot loops fold into zero-initialized coefficient arrays
   and combine mostly-zero sparse rows, so these identities fire on a
   large fraction of calls. *)

let neg = function
  | Small 0 as z -> z
  | Small v -> small (-v) (* |v| <= max_small < max_int: never wraps *)
  | Big b -> Big { b with sign = -b.sign }

let abs a =
  match a with
  | Small v -> if v < 0 then small (-v) else a
  | Big b -> if b.sign >= 0 then a else Big { b with sign = -b.sign }

let big_add (a : big) (b : big) =
  if a.sign = 0 then mk_t b.sign b.mag
  else if b.sign = 0 then mk_t a.sign a.mag
  else if a.sign = b.sign then mk_t a.sign (madd a.mag b.mag)
  else begin
    let c = mcompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk_t a.sign (msub a.mag b.mag)
    else mk_t b.sign (msub b.mag a.mag)
  end

let add a b =
  match (a, b) with
  | Small 0, _ -> b
  | _, Small 0 -> a
  | Small x, Small y ->
    (* |x|, |y| <= max_small = max_int/2, so x + y never wraps. *)
    let s = x + y in
    if fits_small s then small s else Big (big_of_int s)
  | _ -> big_add (to_big a) (to_big b)

let sub a b =
  match (a, b) with
  | _, Small 0 -> a
  | Small x, Small y ->
    let s = x - y in
    if fits_small s then small s else Big (big_of_int s)
  | _ -> big_add (to_big a) (to_big (neg b))

let big_mul a b = mk_t (a.sign * b.sign) (mmul a.mag b.mag)

let mul a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> zero
  | Small 1, _ -> b
  | _, Small 1 -> a
  | Small x, Small y ->
    if x = 0 || y = 0 then zero
    else begin
      let p = x * y in
      (* [p / y = x] certifies no wrap: a wrapped product differs from
         the true one by a multiple of 2^63, which the small remainder
         of the division cannot absorb. *)
      if fits_small p && p / y = x then small p else big_mul (to_big a) (to_big b)
    end
  | _ -> big_mul (to_big a) (to_big b)

let mul_int a d =
  if d = 0 then zero
  else if d = 1 then a
  else
    match a with
    | Small _ -> mul a (of_int d)
    | Big b ->
      if d >= 0 && d < base then mk_t b.sign (mmul_small b.mag d)
      else mul a (of_int d)

let succ z = add z one
let pred z = sub z one

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y ->
    (* Native [/] and [mod] are truncated division, exactly the
       contract; quotient and remainder magnitudes never exceed the
       operands', so both stay Small. *)
    (small (x / y), small (x mod y))
  | _ ->
    let a = to_big a and b = to_big b in
    if b.sign = 0 then raise Division_by_zero;
    let qm, rm = mdivmod a.mag b.mag in
    (mk_t (a.sign * b.sign) qm, mk_t a.sign rm)

let div_trunc a b =
  match (a, b) with
  | Small x, Small y -> small (x / y)
  | _ -> fst (divmod a b)

let rem a b =
  match (a, b) with
  | Small x, Small y -> small (x mod y)
  | _ -> snd (divmod a b)

let fdiv a b =
  match (a, b) with
  | _, Small 1 -> a
  | Small x, Small y ->
    let q = x / y and r = x mod y in
    (* [r <> 0] implies |q| < max_small (a full-magnitude quotient
       needs |y| = 1, which divides exactly), so q-1 stays in range. *)
    if r <> 0 && (r < 0) <> (y < 0) then small (q - 1) else small q
  | _ ->
    let q, r = divmod a b in
    (* Truncated division rounds toward zero; floor rounds toward -inf. *)
    if is_zero r || sign r = sign b then q else pred q

let cdiv a b =
  match (a, b) with
  | _, Small 1 -> a
  | Small x, Small y ->
    let q = x / y and r = x mod y in
    if r <> 0 && (r < 0) = (y < 0) then small (q + 1) else small q
  | _ ->
    let q, r = divmod a b in
    if is_zero r || sign r <> sign b then q else succ q

let divexact a b =
  match (a, b) with
  | _, Small 1 -> a
  | Small x, Small y when y <> 0 ->
    if x mod y <> 0 then failwith "Zint.divexact: inexact division";
    small (x / y)
  | _ ->
    let q, r = divmod a b in
    if not (is_zero r) then failwith "Zint.divexact: inexact division";
    q

let divides d n =
  match (d, n) with
  | Small 0, _ -> is_zero n
  | Small x, Small y -> y mod x = 0
  | _ -> if is_zero d then is_zero n else is_zero (rem n d)

let rec gcd_mag a b = if mis_zero b then a else gcd_mag b (snd (mdivmod a b))

let gcd a b =
  match (a, b) with
  | Small 0, _ -> abs b
  | _, Small 0 -> abs a
  | Small x, Small y ->
    let rec go a b = if b = 0 then a else go b (a mod b) in
    small (go (Stdlib.abs x) (Stdlib.abs y))
  | _ -> mk_t 1 (gcd_mag (to_big a).mag (to_big b).mag)

let ext_gcd a b =
  (* Invariants: r0 = a*x0 + b*y0, r1 = a*x1 + b*y1. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if is_zero r1 then (r0, x0, y0)
    else begin
      let q = div_trunc r0 r1 in
      go r1 x1 y1 (sub r0 (mul q r1)) (sub x0 (mul q x1)) (sub y0 (mul q y1))
    end
  in
  let g, x, y = go a one zero b zero one in
  if is_negative g then (neg g, neg x, neg y) else (g, x, y)

let lcm a b =
  if is_zero a || is_zero b then zero else abs (mul (divexact a (gcd a b)) b)

let pow b e =
  if e < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* ------------------------------------------------------------------ *)
(* Conversions.                                                       *)
(* ------------------------------------------------------------------ *)

let to_int = function
  | Small v -> Some v
  | Big z ->
    (* Canonical Big values can still fit a native int (magnitudes in
       (max_small, max_int], plus [min_int]); reconstruct and guard the
       only corner, [min_int] itself. *)
    let b = mbits z.mag in
    if b > 63 then None
    else begin
      let v = ref 0 and ok = ref true in
      (try
         for i = Array.length z.mag - 1 downto 0 do
           if !v > (max_int - z.mag.(i)) / base then begin ok := false; raise Exit end;
           v := (!v * base) + z.mag.(i)
         done
       with Exit -> ());
      if !ok then Some (if z.sign < 0 then - !v else !v)
      else if z.sign < 0 && b = 63 && mcompare z.mag (big_of_int Stdlib.min_int).mag = 0
      then Some Stdlib.min_int
      else None
    end

let to_int_exn z =
  match to_int z with
  | Some n -> n
  | None -> failwith "Zint.to_int_exn: value does not fit in an int"

let to_string = function
  | Small v -> string_of_int v
  | Big z ->
    let buf = Buffer.create 16 in
    let rec chunks m acc =
      if mis_zero m then acc
      else begin
        let q, r = mdivmod_small m 10000 in
        chunks q (r :: acc)
      end
    in
    (match chunks z.mag [] with
     | [] -> assert false
     | first :: rest ->
       if z.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Zint.of_string: empty string";
  let sgn, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Zint.of_string: missing digits";
  let mag = ref mzero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Zint.of_string: invalid digit";
    mag := madd_small (mmul_small !mag 10) (Char.code c - Char.code '0')
  done;
  mk_t sgn !mag

let pp fmt z = Format.pp_print_string fmt (to_string z)
