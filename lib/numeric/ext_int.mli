(** Integers extended with [-oo] and [+oo].

    Variable bounds in dependence systems are frequently one-sided
    (symbolic terms have no bounds at all), so the bound-tracking in the
    SVPC and Acyclic tests works over this extended domain. *)

type t =
  | Neg_inf
  | Fin of Zint.t
  | Pos_inf

val neg_inf : t
val pos_inf : t
val fin : Zint.t -> t
val of_int : int -> t

val is_finite : t -> bool
val to_zint : t -> Zint.t option
val to_zint_exn : t -> Zint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t
(** Total. Agrees with integer addition on finite operands; an infinite
    operand absorbs. The indeterminate [-oo + +oo] rounds {e up} to
    [+oo], making [add] the right sum for {e upper} bounds (the result
    is never below any resolution of the indeterminate form). Use
    {!add_down} when summing lower bounds. *)

val add_down : t -> t -> t
(** Like {!add} but [-oo + +oo] rounds {e down} to [-oo]: the safe sum
    for {e lower} bounds. Identical to {!add} on all other inputs. *)

val neg : t -> t

val mul_zint : Zint.t -> t -> t
(** Total. Multiplication by a finite integer; the sign of the
    multiplier flips infinities, and a zero multiplier collapses even
    an infinite value to [0] (the interval-scaling convention: a zero
    coefficient wipes out the unbounded term). *)

val pp : Format.formatter -> t -> unit
