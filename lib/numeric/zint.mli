(** Arbitrary-precision integers.

    Dependence testing must be exact: Fourier-Motzkin elimination and
    unimodular row reduction can grow coefficients past the native word
    size, and a silent wrap-around would turn an "independent" verdict
    into a miscompilation. [Zint] is a small, self-contained bignum.

    Internally, values with magnitude at most {!small_capacity} live on
    an overflow-checked native-int fast path; only larger values fall
    back to the sign-magnitude limb representation (little-endian
    base-2^15 limbs). The split is canonical — a value is on the fast
    path {e iff} its magnitude fits — so the paper's observation that
    real subscript systems use tiny coefficients makes the common case
    allocation-light and word-sized.

    All functions are pure; values are immutable and canonical (no
    leading zero limbs; zero has an empty magnitude). *)

type t

val small_capacity : int
(** The fast-path guard bound ([max_int / 2]): values with
    [|v| <= small_capacity] are always held in a native int. Exposed
    for the differential test suite; arithmetic behaves identically on
    either side of the boundary. *)

val is_small : t -> bool
(** True when the value is held in the native-int fast-path
    representation. Canonically this is exactly
    [compare (abs v) (of_int small_capacity) <= 0]; exposed so tests
    can assert the representation invariant. *)

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t
val two : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int option
(** [to_int z] is [Some n] when [z] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally ['-']/['+']-prefixed decimal literal.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_positive : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division (like OCaml's [/] and [mod]): the quotient is
    rounded toward zero and the remainder has the sign of the dividend.
    @raise Division_by_zero on a zero divisor. *)

val div_trunc : t -> t -> t
val rem : t -> t -> t

val fdiv : t -> t -> t
(** Floor division: largest integer [q] with [q * b <= a] (for [b > 0]).
    Used to tighten upper bounds [a*x <= c  ==>  x <= fdiv c a]. *)

val cdiv : t -> t -> t
(** Ceiling division: smallest integer [q] with [q * b >= a] (for
    [b > 0]). Used to tighten lower bounds. *)

val divexact : t -> t -> t
(** Division known to be exact.
    @raise Failure if the division leaves a remainder. *)

val divides : t -> t -> bool
(** [divides d n] is true when [d] divides [n]. [divides zero n] is
    [n = 0]. *)

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val ext_gcd : t -> t -> t * t * t
(** [ext_gcd a b] is [(g, x, y)] with [g = gcd a b >= 0] and
    [a*x + b*y = g]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative [e]. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
