type t =
  | Neg_inf
  | Fin of Zint.t
  | Pos_inf

let neg_inf = Neg_inf
let pos_inf = Pos_inf
let fin z = Fin z
let of_int n = Fin (Zint.of_int n)

let is_finite = function Fin _ -> true | Neg_inf | Pos_inf -> false

let to_zint = function Fin z -> Some z | Neg_inf | Pos_inf -> None

let to_zint_exn = function
  | Fin z -> z
  | Neg_inf | Pos_inf -> failwith "Ext_int.to_zint_exn: infinite"

let compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ | _, Pos_inf -> -1
  | _, Neg_inf | Pos_inf, _ -> 1
  | Fin x, Fin y -> Zint.compare x y

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* [-oo + +oo] has no single right answer, but bound arithmetic always
   knows which way it may safely round: an upper bound rounds up, a
   lower bound rounds down. [add] rounds up, [add_down] rounds down;
   both are total, so no analyzer-constructed sum can raise. *)
let add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (Zint.add x y)
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> Pos_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf

let add_down a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (Zint.add x y)
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> Neg_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf

let neg = function
  | Neg_inf -> Pos_inf
  | Pos_inf -> Neg_inf
  | Fin z -> Fin (Zint.neg z)

(* 0 * (+-oo) = 0: the only consistent choice for interval scaling,
   where the zero coefficient wipes out the unbounded term. *)
let mul_zint k = function
  | Fin z -> Fin (Zint.mul k z)
  | (Neg_inf | Pos_inf) as inf ->
    let s = Zint.sign k in
    if s > 0 then inf else if s < 0 then neg inf else Fin Zint.zero

let pp fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-oo"
  | Pos_inf -> Format.pp_print_string fmt "+oo"
  | Fin z -> Zint.pp fmt z
