(** Prometheus text exposition (format 0.0.4) for the {!Metrics}
    registry, plus a parser for exactly what it emits.

    Rendering rules:
    - Names are sanitized to the Prometheus grammar
      ([[a-zA-Z_:][a-zA-Z0-9_:]*]) and prefixed [dda_]: every
      disallowed character becomes [_], so [serve.op.analyze.ns]
      exposes as [dda_serve_op_analyze_ns]. Registry names are ASCII
      identifiers chosen by instrumentation sites; sanitization is
      injective on them in practice, and {!to_string} raises
      [Invalid_argument] if two distinct names ever collide rather
      than silently merging series.
    - Every metric gets a [# HELP] and a [# TYPE] line.
    - Counters expose as their integer value.
    - {!Metrics} log2 histograms expose as Prometheus cumulative
      histograms: one [_bucket{le="..."}] line per populated log2
      bucket carrying the {e cumulative} count (bucket [i]'s upper
      bound is [2^i - 1], bucket 0's is [0]), a final
      [_bucket{le="+Inf"}] equal to [_count], plus [_sum] and
      [_count]. Bucket lines are monotone non-decreasing by
      construction — a property the test suite checks on arbitrary
      snapshots.
    - Extra gauges (uptime, RSS — values sampled at scrape time rather
      than accumulated) render as [# TYPE ... gauge].

    The parser {!parse} reads this exposition back into counters,
    gauges and cumulative histograms. It exists for two consumers: the
    QCheck round-trip property (snapshot → exposition → parse must
    lose nothing), and [ddtest top], which scrapes [/metrics] over
    HTTP and needs the numbers, not the text. *)

val sanitize : string -> string
(** The exposed name for a registry name (with the [dda_] prefix). *)

val to_string :
  ?extra_gauges:(string * int) list -> Metrics.snapshot -> string
(** Render a snapshot. [extra_gauges] are appended after the registry
    metrics (names sanitized the same way).
    @raise Invalid_argument when two distinct names sanitize to the
    same exposed name. *)

type parsed_hist = {
  p_count : int;
  p_sum : int;
  p_cumulative : (string * int) list;
      (** [(le label, cumulative count)] in exposition order, the
          [+Inf] bucket included last *)
}

type parsed = {
  p_counters : (string * int) list;  (** by exposed name, sorted *)
  p_gauges : (string * int) list;
  p_histograms : (string * parsed_hist) list;
}

val parse : string -> (parsed, string) result
(** Parse an exposition produced by {!to_string}. Unknown or malformed
    lines are an [Error] (with the offending line), not skipped: the
    round-trip property is only meaningful if the parser is strict. *)
