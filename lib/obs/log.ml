type level =
  | Quiet
  | Warn
  | Info
  | Debug

let rank = function Quiet -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* Stored as a rank so reads are one atomic load. *)
let current = Atomic.make (rank Warn)

let set_level l = Atomic.set current (rank l)

let level () =
  match Atomic.get current with
  | 0 -> Quiet
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let all_levels =
  [ ("quiet", Quiet); ("warn", Warn); ("info", Info); ("debug", Debug) ]

let level_of_string s =
  List.assoc_opt (String.lowercase_ascii s) all_levels

let level_name l =
  match List.find_opt (fun (_, l') -> l' = l) all_levels with
  | Some (name, _) -> name
  | None -> assert false

(* Both branches must build the same format type, so the prefix is
   printed separately rather than concatenated into [fmt]. *)
let emit threshold prefix fmt =
  if threshold <= Atomic.get current then begin
    Format.eprintf "%s" prefix;
    Format.eprintf (fmt ^^ "@.")
  end
  else Format.ifprintf Format.err_formatter (fmt ^^ "@.")

let err fmt =
  Format.eprintf "error: ";
  Format.eprintf (fmt ^^ "@.")

let warn fmt = emit 1 "warning: " fmt
let info fmt = emit 2 "info: " fmt
let debug fmt = emit 3 "debug: " fmt
