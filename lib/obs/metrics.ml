(* Striped atomics: each domain lands on the stripe indexed by its
   domain id, so workers hammering the same counter touch different
   words. A snapshot sums the stripes — the same fold-per-domain merge
   shape as Analyzer.merge_stats. *)

let stripes = 8  (* power of two; domain ids wrap onto it *)

type counter = int Atomic.t array

let nbuckets = 63

type histogram = {
  h_count : counter;
  h_sum : counter;
  h_buckets : int Atomic.t array;  (* one cell per bucket, unstriped *)
}

type metric =
  | Counter of counter
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let make_cells n = Array.init n (fun _ -> Atomic.make 0)

let register name make wrap unwrap =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match unwrap m with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Metrics: %S is already registered as another kind" name))
      | None ->
        let v = make () in
        Hashtbl.replace registry name (wrap v);
        v)

let counter name =
  register name
    (fun () -> make_cells stripes)
    (fun c -> Counter c)
    (function Counter c -> Some c | Histogram _ -> None)

let histogram name =
  register name
    (fun () ->
       { h_count = make_cells stripes;
         h_sum = make_cells stripes;
         h_buckets = make_cells nbuckets })
    (fun h -> Histogram h)
    (function Histogram h -> Some h | Counter _ -> None)

let stripe () = (Domain.self () :> int) land (stripes - 1)

let add c n = ignore (Atomic.fetch_and_add c.(stripe ()) n)
let incr c = add c 1

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* bit length of v, capped to the table *)
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (nbuckets - 1)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  add h.h_count 1;
  add h.h_sum v;
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)

let total cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let cs = ref [] and hs = ref [] in
      Hashtbl.iter
        (fun name m ->
           match m with
           | Counter c -> cs := (name, total c) :: !cs
           | Histogram h ->
             let buckets = ref [] in
             for i = nbuckets - 1 downto 0 do
               let n = Atomic.get h.h_buckets.(i) in
               if n > 0 then buckets := (i, n) :: !buckets
             done;
             hs :=
               (name, { count = total h.h_count; sum = total h.h_sum;
                        buckets = !buckets })
               :: !hs)
        registry;
      let by_name (a, _) (b, _) = String.compare a b in
      { counters = List.sort by_name !cs; histograms = List.sort by_name !hs })

let merge a b =
  let merge_assoc combine xs ys =
    let names =
      List.sort_uniq String.compare (List.map fst xs @ List.map fst ys)
    in
    List.map
      (fun n ->
         (n, combine (List.assoc_opt n xs) (List.assoc_opt n ys)))
      names
  in
  let add_opt x y = Option.value x ~default:0 + Option.value y ~default:0 in
  let merge_hist x y =
    let x = Option.value x ~default:{ count = 0; sum = 0; buckets = [] }
    and y = Option.value y ~default:{ count = 0; sum = 0; buckets = [] } in
    let buckets =
      List.sort_uniq compare (List.map fst x.buckets @ List.map fst y.buckets)
      |> List.map (fun i ->
          ( i,
            Option.value (List.assoc_opt i x.buckets) ~default:0
            + Option.value (List.assoc_opt i y.buckets) ~default:0 ))
    in
    { count = x.count + y.count; sum = x.sum + y.sum; buckets }
  in
  {
    counters = merge_assoc add_opt a.counters b.counters;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
           let zero = Array.iter (fun c -> Atomic.set c 0) in
           match m with
           | Counter c -> zero c
           | Histogram h ->
             zero h.h_count;
             zero h.h_sum;
             zero h.h_buckets)
        registry)

let find_counter snap name =
  Option.value (List.assoc_opt name snap.counters) ~default:0

let pp_text fmt snap =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "counter %s %d@." name v)
    snap.counters;
  List.iter
    (fun (name, h) ->
       Format.fprintf fmt "histogram %s count=%d sum=%d buckets=%s@." name
         h.count h.sum
         (String.concat ","
            (List.map
               (fun (i, n) -> Printf.sprintf "%d:%d" (bucket_lo i) n)
               h.buckets)))
    snap.histograms

let to_json_string snap =
  let b = Buffer.create 512 in
  (* Names are ASCII identifiers chosen by instrumentation sites; the
     escape covers them defensively anyway. *)
  let str s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string b "\\\""
         | '\\' -> Buffer.add_string b "\\\\"
         | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'
  in
  let fields xs emit =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         str k;
         Buffer.add_char b ':';
         emit v)
      xs;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  fields snap.counters (fun v -> Buffer.add_string b (string_of_int v));
  Buffer.add_string b ",\"histograms\":";
  fields snap.histograms (fun h ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"buckets\":[" h.count h.sum);
      List.iteri
        (fun i (bk, n) ->
           if i > 0 then Buffer.add_char b ',';
           Buffer.add_string b (Printf.sprintf "[%d,%d]" (bucket_lo bk) n))
        h.buckets;
      Buffer.add_string b "]}");
  Buffer.add_char b '}';
  Buffer.contents b
