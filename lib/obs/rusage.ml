(* VmHWM from /proc/self/status: the kernel's high-water mark of
   resident set size. Monotonic over the process lifetime, which is
   exactly what a "did the streamed run stay flat?" watchdog wants —
   but useless for before/after comparisons inside one process. *)

let parse_vmhwm line =
  (* "VmHWM:    123456 kB" *)
  let n = String.length line in
  let rec skip_non_digit i =
    if i >= n then i
    else if line.[i] >= '0' && line.[i] <= '9' then i
    else skip_non_digit (i + 1)
  in
  let start = skip_non_digit 0 in
  let rec take_digits i =
    if i < n && line.[i] >= '0' && line.[i] <= '9' then take_digits (i + 1)
    else i
  in
  let stop = take_digits start in
  if stop > start then int_of_string_opt (String.sub line start (stop - start))
  else None

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then
          parse_vmhwm line
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r
