(* Prometheus text exposition 0.0.4 over the integer-only Metrics
   registry. Everything here is rendering and parsing of decimal
   integers — no floats, so a round trip through the text form is
   exact, which is what the QCheck property leans on. *)

let sanitize name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "dda_";
  String.iter
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
       | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* Bucket i of a Metrics histogram holds samples in [2^(i-1), 2^i - 1]
   (bucket 0: <= 0), so its Prometheus upper bound is inclusive:
   le = 2^i - 1 (le = 0 for bucket 0). *)
let le_label i = if i <= 0 then "0" else string_of_int ((1 lsl i) - 1)

type parsed_hist = {
  p_count : int;
  p_sum : int;
  p_cumulative : (string * int) list;
}

type parsed = {
  p_counters : (string * int) list;
  p_gauges : (string * int) list;
  p_histograms : (string * parsed_hist) list;
}

let to_string ?(extra_gauges = []) (snap : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let exposed orig =
    let name = sanitize orig in
    (match Hashtbl.find_opt seen name with
     | Some other when not (String.equal other orig) ->
       invalid_arg
         (Printf.sprintf
            "Expo: %S and %S both expose as %S — two series would merge"
            other orig name)
     | _ -> Hashtbl.replace seen name orig);
    name
  in
  let head name orig kind =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s dda registry metric %s\n" name orig);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (orig, v) ->
       let name = exposed orig in
       head name orig "counter";
       Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    snap.Metrics.counters;
  List.iter
    (fun (orig, (h : Metrics.hist_snapshot)) ->
       let name = exposed orig in
       head name orig "histogram";
       let cum = ref 0 in
       List.iter
         (fun (i, n) ->
            cum := !cum + n;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (le_label i) !cum))
         h.Metrics.buckets;
       Buffer.add_string b
         (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.count);
       Buffer.add_string b (Printf.sprintf "%s_sum %d\n" name h.Metrics.sum);
       Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.Metrics.count))
    snap.Metrics.histograms;
  List.iter
    (fun (orig, v) ->
       let name = exposed orig in
       head name orig "gauge";
       Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    extra_gauges;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (strict: only what to_string emits)                         *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable types : (string * string) list;  (* exposed name -> kind *)
  mutable counters : (string * int) list;
  mutable gauges : (string * int) list;
  mutable hists : (string * parsed_hist) list;  (* built in place *)
}

let parse text =
  let acc = { types = []; counters = []; gauges = []; hists = [] } in
  let kind_of name = List.assoc_opt name acc.types in
  let hist_of name =
    match List.assoc_opt name acc.hists with
    | Some h -> h
    | None ->
      let h = { p_count = 0; p_sum = 0; p_cumulative = [] } in
      acc.hists <- (name, h) :: acc.hists;
      h
  in
  let set_hist name h =
    acc.hists <- (name, h) :: List.remove_assoc name acc.hists
  in
  let strip_suffix s suf =
    let n = String.length s and m = String.length suf in
    if n > m && String.equal (String.sub s (n - m) m) suf then
      Some (String.sub s 0 (n - m))
    else None
  in
  let exception Bad of string in
  let line_no = ref 0 in
  try
    String.split_on_char '\n' text
    |> List.iter (fun line ->
        incr line_no;
        if String.equal line "" then ()
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ kind ] ->
            acc.types <- (name, kind) :: acc.types
          | "#" :: "HELP" :: _ -> ()
          | _ -> raise (Bad line)
        end
        else
          match String.split_on_char ' ' line with
          | [ name; value ] -> (
              let v =
                match int_of_string_opt value with
                | Some v -> v
                | None -> raise (Bad line)
              in
              (* A labeled name is a histogram bucket line. *)
              match String.index_opt name '{' with
              | Some i -> (
                  let bare = String.sub name 0 i in
                  let label = String.sub name i (String.length name - i) in
                  let le =
                    (* {le="X"} *)
                    let n = String.length label in
                    if
                      n > 7
                      && String.equal (String.sub label 0 5) "{le=\""
                      && String.equal (String.sub label (n - 2) 2) "\"}"
                    then String.sub label 5 (n - 7)
                    else raise (Bad line)
                  in
                  match strip_suffix bare "_bucket" with
                  | Some base when kind_of base = Some "histogram" ->
                    let h = hist_of base in
                    set_hist base
                      { h with p_cumulative = h.p_cumulative @ [ (le, v) ] }
                  | _ -> raise (Bad line))
              | None -> (
                  match kind_of name with
                  | Some "counter" -> acc.counters <- (name, v) :: acc.counters
                  | Some "gauge" -> acc.gauges <- (name, v) :: acc.gauges
                  | Some _ -> raise (Bad line)
                  | None -> (
                      match
                        ( strip_suffix name "_sum",
                          strip_suffix name "_count" )
                      with
                      | Some base, _ when kind_of base = Some "histogram" ->
                        set_hist base { (hist_of base) with p_sum = v }
                      | _, Some base when kind_of base = Some "histogram" ->
                        set_hist base { (hist_of base) with p_count = v }
                      | _ -> raise (Bad line))))
          | _ -> raise (Bad line));
    let by_name (a, _) (b, _) = String.compare a b in
    Ok
      {
        p_counters = List.sort by_name acc.counters;
        p_gauges = List.sort by_name acc.gauges;
        p_histograms = List.sort by_name acc.hists;
      }
  with Bad line ->
    Error (Printf.sprintf "line %d: unparseable: %s" !line_no line)
