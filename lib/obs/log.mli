(** One leveled logger for every diagnostic the tools emit.

    Everything goes to stderr, so machine-readable stdout (batch JSON,
    trace files, reports) is never interleaved with progress noise.
    Levels nest: [Quiet] shows nothing but errors, [Warn] adds
    warnings, [Info] adds progress notes, [Debug] everything.
    {!err} ignores the level — an error precedes an exit and must
    always be visible. *)

type level =
  | Quiet
  | Warn
  | Info
  | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
val level_name : level -> string
val all_levels : (string * level) list
(** For CLI enum options: [("quiet", Quiet); ...]. *)

val err : ('a, Format.formatter, unit) format -> 'a
(** Always printed, prefixed [error:]. *)

val warn : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val debug : ('a, Format.formatter, unit) format -> 'a
