type event = {
  name : string;
  ts : int;
  dur : int;
  tid : int;
  args : (string * int) list;
}

let dummy = { name = ""; ts = 0; dur = 0; tid = 0; args = [] }

(* Per-domain ring buffer. [total] counts every push; once [arr] has
   grown to [capacity] the ring wraps, overwriting the oldest events
   and counting the loss. *)
let capacity = 1 lsl 16

(* Ring overflow is silent at the trace layer (old events just fall
   off); the counter makes it visible on /metrics. *)
let m_dropped = Metrics.counter "trace.dropped"

type ring = {
  r_tid : int;
  mutable arr : event array;
  mutable len : int;  (* live events, <= capacity *)
  mutable next : int;  (* write position *)
  mutable lost : int;
  mutable gen : int;  (* registration generation, see [clear] *)
}

let on = Atomic.make false
let rings : ring list ref = ref []
let rings_lock = Mutex.create ()

(* [clear] bumps the generation instead of chasing down every domain's
   DLS slot: a stale ring re-registers itself (empty) on its next
   push. *)
let generation = Atomic.make 0

let ring_key =
  Domain.DLS.new_key (fun () ->
      {
        r_tid = (Domain.self () :> int);
        arr = Array.make 256 dummy;
        len = 0;
        next = 0;
        lost = 0;
        gen = -1;
      })

let my_ring () =
  let r = Domain.DLS.get ring_key in
  let g = Atomic.get generation in
  if r.gen <> g then begin
    r.len <- 0;
    r.next <- 0;
    r.lost <- 0;
    r.gen <- g;
    Mutex.protect rings_lock (fun () -> rings := r :: !rings)
  end;
  r

let push ev =
  let r = my_ring () in
  let n = Array.length r.arr in
  if r.len = n && n < capacity then begin
    (* Grow (amortized) up to the ring capacity, unrolling so the
       oldest event lands at index 0 — [next] may have wrapped, and
       leaving it at 0 would overwrite the oldest events while the
       grown tail stayed [dummy]. *)
    let bigger = Array.make (min capacity (n * 2)) dummy in
    for k = 0 to n - 1 do
      bigger.(k) <- r.arr.((r.next + k) mod n)
    done;
    r.arr <- bigger;
    r.next <- n
  end;
  let n = Array.length r.arr in
  r.arr.(r.next) <- ev;
  r.next <- (r.next + 1) mod n;
  if r.len < n then r.len <- r.len + 1
  else begin
    r.lost <- r.lost + 1;
    Metrics.incr m_dropped
  end

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let none = min_int

let start () = if Atomic.get on then Clock.now () else none

let complete ?(args = []) name t0 =
  if t0 <> none && Atomic.get on then
    push
      {
        name;
        ts = t0;
        dur = Clock.now () - t0;
        tid = (Domain.self () :> int);
        args;
      }

let wrap ~name ~args f =
  let t0 = start () in
  if t0 = none then f ()
  else
    match f () with
    | v ->
      complete ~args:(args v) name t0;
      v
    | exception e ->
      complete ~args:[ ("raised", 1) ] name t0;
      raise e

let instant ?(args = []) name =
  if Atomic.get on then
    push
      { name; ts = Clock.now (); dur = -1; tid = (Domain.self () :> int); args }

let clear () =
  Mutex.protect rings_lock (fun () ->
      ignore (Atomic.fetch_and_add generation 1);
      rings := [])

let snapshot_rings () = Mutex.protect rings_lock (fun () -> !rings)

let events () =
  let out = ref [] in
  List.iter
    (fun r ->
       (* oldest first: the ring's write position points at it once full *)
       let n = Array.length r.arr in
       let first = if r.len < n then 0 else r.next in
       for k = r.len - 1 downto 0 do
         out := r.arr.((first + k) mod n) :: !out
       done)
    (snapshot_rings ());
  List.stable_sort
    (fun a b -> if a.tid <> b.tid then compare a.tid b.tid else compare a.ts b.ts)
    !out

let dropped () =
  List.fold_left (fun acc r -> acc + r.lost) 0 (snapshot_rings ())

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_char b '"';
       escape b k;
       Buffer.add_string b "\":";
       Buffer.add_string b (string_of_int v))
    args;
  Buffer.add_char b '}'

let to_chrome_string () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  (* Name each track so Perfetto shows "domain N" rather than bare
     thread ids; domain 0 is the main/driver domain. *)
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.iter
    (fun tid ->
       sep ();
       Buffer.add_string b
         (Printf.sprintf
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
             \"args\":{\"name\":\"domain %d\"}}"
            tid tid))
    tids;
  List.iter
    (fun e ->
       sep ();
       Buffer.add_string b "{\"name\":\"";
       escape b e.name;
       Buffer.add_string b "\",\"cat\":\"dda\",\"ph\":\"";
       Buffer.add_string b (if e.dur < 0 then "i" else "X");
       Buffer.add_string b "\"";
       if e.dur >= 0 then
         Buffer.add_string b (Printf.sprintf ",\"dur\":%d" e.dur)
       else Buffer.add_string b ",\"s\":\"t\"";
       Buffer.add_string b
         (Printf.sprintf ",\"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":" e.ts e.tid);
       add_args b e.args;
       Buffer.add_char b '}')
    evs;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string ()))
