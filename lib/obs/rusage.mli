(** Process resource usage probes. *)

val peak_rss_kb : unit -> int option
(** The process's peak resident set size in kilobytes (Linux
    [/proc/self/status] [VmHWM]); [None] where procfs is unavailable.
    Monotonic within a process — it reports the high-water mark, so it
    cannot show a later phase using {e less} memory. The streaming
    batch driver logs it so CI can assert that peak memory does not
    grow with corpus size across separate runs. *)
