(** A process-wide registry of named integer metrics.

    Zero-dependency and integer-only: counters are monotonically
    increasing ints, histograms are log2-bucketed int distributions.
    Both are built from striped atomics — each domain updates its own
    stripe (indexed by its domain id), so concurrent workers never
    contend on a cache line — and a {!snapshot} sums the stripes, the
    same merge shape as [Analyzer.merge_stats] folding per-domain
    statistics into corpus totals.

    Every count is a pure function of the analysis work performed:
    running a corpus on one worker or on eight yields the same
    snapshot (a property the test suite checks), so metrics can be
    embedded in batch output without breaking output determinism. *)

type counter
type histogram

val counter : string -> counter
(** Find-or-register the counter with this name (idempotent: the same
    name always returns the same counter). *)

val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit

val observe : histogram -> int -> unit
(** Record one sample. Bucket 0 holds samples [<= 0]; bucket [i >= 1]
    holds samples in [[2^(i-1), 2^i - 1]]. *)

val bucket_of : int -> int
(** The bucket index {!observe} files a sample under. *)

val bucket_lo : int -> int
(** The smallest sample a bucket holds ([0] for bucket 0). *)

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;  (** (bucket index, samples), sparse *)
}

type snapshot = {
  counters : (string * int) list;      (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum by name, for combining snapshots taken in different
    processes (e.g. per-shard bench runs). *)

val reset : unit -> unit
(** Zero every registered metric (benchmarks and tests; the registry
    itself — the set of names — is kept). *)

val find_counter : snapshot -> string -> int
(** 0 when absent. *)

val pp_text : Format.formatter -> snapshot -> unit
(** One metric per line: [counter NAME VALUE] and
    [histogram NAME count=.. sum=.. buckets=lo:n,...]. *)

val to_json_string : snapshot -> string
(** Compact JSON object:
    [{"counters":{...},"histograms":{"name":{"count":..,"sum":..,
    "buckets":[[lo,n],...]},...}}]. *)
