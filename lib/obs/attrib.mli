(** Per-query stage attribution: where did this request's time go?

    The cascade's claim (paper Tables 1/3/4) is that cheap stages
    answer almost everything and the expensive ones run rarely; a
    live server wants that escalation profile visible {e per request},
    not only as process-wide counters. This module is a scoped,
    per-domain collector: the serve daemon opens a {!collect} window
    around one analysis call, the solver stages charge their wall time
    into it through {!time}, and the window's {!snapshot} becomes the
    response's ["explain"] block.

    Like {!Trace}, the collector is a pure observer and is never
    load-bearing: nothing in the analysis reads it, and the inactive
    path — no window open anywhere in the process — is a single atomic
    load (the bench harness holds the admin plane to the same <2%
    overhead gate as disabled trace spans). Collection is per-domain
    (domain-local storage), so concurrent requests on different worker
    domains attribute independently; a domain has at most one open
    window. *)

type stage =
  | Gcd  (** Extended-GCD equality preprocessing *)
  | Svpc
  | Acyclic
  | Loop_residue
  | Fourier

val stage_name : stage -> string
(** ["gcd"], ["svpc"], ["acyclic"], ["loop_residue"], ["fourier"]. *)

val all_stages : stage list
(** In cascade order, cheapest first. *)

type stage_stat = {
  calls : int;  (** times the stage ran inside the window *)
  ns : int;  (** total wall time charged, in time-source units *)
}

type snapshot = {
  stages : (stage * stage_stat) list;  (** in {!all_stages} order *)
  budget_steps : int;  (** solver steps spent by executed queries *)
}

val set_time_source : (unit -> int) -> unit
(** Replace the stage timer. The default is {!Clock.now} (the
    deterministic tick counter unless a front end installed a real
    source), so unit tests see exact, reproducible "durations". The
    serve daemon installs a nanosecond wall clock. *)

val time : stage -> (unit -> 'a) -> 'a
(** Run a stage, charging its wall time and one call to the calling
    domain's open window. Without an open window this is [f ()] after
    one atomic load. If [f] raises, the time is still charged. *)

val add_steps : int -> unit
(** Charge solver steps (a {!Budget} account's final reading) to the
    calling domain's open window; a no-op without one. *)

val collect : (unit -> 'a) -> 'a * snapshot
(** [collect f] opens a window on the calling domain, runs [f], and
    returns its result with everything charged during the run. Windows
    do not nest (the outer window keeps collecting; an inner [collect]
    returns an empty snapshot) and do not cross domains: work [f]
    hands to other domains is not attributed. If [f] raises, the
    window closes and the exception continues. *)

val collecting : unit -> bool
(** Whether the calling domain has an open window. *)
