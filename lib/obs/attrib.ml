type stage =
  | Gcd
  | Svpc
  | Acyclic
  | Loop_residue
  | Fourier

let stage_name = function
  | Gcd -> "gcd"
  | Svpc -> "svpc"
  | Acyclic -> "acyclic"
  | Loop_residue -> "loop_residue"
  | Fourier -> "fourier"

let all_stages = [ Gcd; Svpc; Acyclic; Loop_residue; Fourier ]

let nstages = 5

let stage_index = function
  | Gcd -> 0
  | Svpc -> 1
  | Acyclic -> 2
  | Loop_residue -> 3
  | Fourier -> 4

type stage_stat = {
  calls : int;
  ns : int;
}

type snapshot = {
  stages : (stage * stage_stat) list;
  budget_steps : int;
}

(* [active] counts open windows process-wide: the inactive fast path in
   [time]/[add_steps] is this one atomic load, nothing domain-local. *)
let active = Atomic.make 0

type window = {
  mutable open_ : bool;
  calls : int array;
  ns : int array;
  mutable steps : int;
}

let window_key =
  Domain.DLS.new_key (fun () ->
      { open_ = false; calls = Array.make nstages 0; ns = Array.make nstages 0;
        steps = 0 })

let time_source = ref Clock.now

let set_time_source f = time_source := f

let collecting () =
  Atomic.get active > 0 && (Domain.DLS.get window_key).open_

let time stage f =
  if Atomic.get active = 0 then f ()
  else begin
    let w = Domain.DLS.get window_key in
    if not w.open_ then f ()
    else begin
      let i = stage_index stage in
      let t0 = !time_source () in
      (* Charge on both return and escape: an exhaustion blowing out of
         a stage still spent the time. *)
      let charge () =
        w.calls.(i) <- w.calls.(i) + 1;
        w.ns.(i) <- w.ns.(i) + (!time_source () - t0)
      in
      match f () with
      | v -> charge (); v
      | exception e -> charge (); raise e
    end
  end

let add_steps n =
  if Atomic.get active > 0 then begin
    let w = Domain.DLS.get window_key in
    if w.open_ then w.steps <- w.steps + n
  end

let read_snapshot w =
  {
    stages =
      List.map
        (fun s ->
           let i = stage_index s in
           (s, { calls = w.calls.(i); ns = w.ns.(i) }))
        all_stages;
    budget_steps = w.steps;
  }

let empty_snapshot =
  { stages = List.map (fun s -> (s, { calls = 0; ns = 0 })) all_stages;
    budget_steps = 0 }

let collect f =
  let w = Domain.DLS.get window_key in
  if w.open_ then
    (* Nested window: the outer one keeps collecting; report nothing
       here rather than double-charging or clobbering its counters. *)
    (f (), empty_snapshot)
  else begin
    Array.fill w.calls 0 nstages 0;
    Array.fill w.ns 0 nstages 0;
    w.steps <- 0;
    w.open_ <- true;
    ignore (Atomic.fetch_and_add active 1);
    let close () =
      w.open_ <- false;
      ignore (Atomic.fetch_and_add active (-1))
    in
    match f () with
    | v ->
      let snap = read_snapshot w in
      close ();
      (v, snap)
    | exception e ->
      close ();
      raise e
  end
