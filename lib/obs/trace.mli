(** A low-overhead span/event trace collector.

    Events accumulate in a per-domain ring buffer (registered lazily
    through domain-local storage, so worker domains spawned by the
    engine each get their own track); export renders Chrome
    [trace_event] JSON loadable in Perfetto, one track per domain.

    Collection is off by default and the off path is a single atomic
    load: instrumentation left in the hot analysis code costs nothing
    measurable when tracing is disabled (the bench harness checks the
    overhead stays under 2%).

    Timestamps come from {!Clock.now}, which is strictly increasing
    process-wide — so the events of any one track are strictly
    timestamp-ordered, a property the test suite asserts.

    The collector is a pure observer: nothing in the analysis reads it,
    so it sits outside the certificate checker's trusted base and can
    never affect verdicts. Args are integers only, keeping the whole
    subsystem allocation-light and deterministic to render. *)

type event = {
  name : string;
  ts : int;  (** span start (or instant time) *)
  dur : int;  (** span duration; [-1] marks an instant event *)
  tid : int;  (** domain id = Perfetto track *)
  args : (string * int) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val none : int
(** The sentinel {!start} returns while disabled. *)

val start : unit -> int
(** Begin a span: the current timestamp, or {!none} when disabled.
    Pass it to {!complete}; instrumentation can test it against
    {!none} to skip building args on the disabled path. *)

val complete : ?args:(string * int) list -> string -> int -> unit
(** [complete name t0] records the span begun at [t0] as a Chrome
    complete ("X") event on the calling domain's track. A [none] start
    (or tracing turned off meanwhile) records nothing. *)

val wrap : name:string -> args:('a -> (string * int) list) -> (unit -> 'a) -> 'a
(** [wrap ~name ~args f] runs [f] inside a span; [args] renders the
    result once the span closes. If [f] raises, the span closes with
    [("raised", 1)] and the exception continues. Disabled: calls [f]
    directly. *)

val instant : ?args:(string * int) list -> string -> unit
(** A zero-duration marker event. *)

val clear : unit -> unit
(** Drop every buffered event (all domains). *)

val events : unit -> event list
(** Everything buffered, sorted by (track, timestamp). *)

val dropped : unit -> int
(** Events lost to ring-buffer overflow since the last {!clear}. *)

val to_chrome_string : unit -> string
(** The buffered events as a Chrome [trace_event] JSON document
    ([{"traceEvents": [...]}]) with per-track thread-name metadata.
    Load it at https://ui.perfetto.dev. *)

val write_chrome : string -> unit
(** Write {!to_chrome_string} to a file. *)
