(** Strictly monotonic integer timestamps for the trace collector.

    The default source is a process-wide atomic tick counter: cheap,
    allocation-free and fully deterministic, so unit tests can assert
    exact event orderings. Front ends that want wall-clock-meaningful
    traces install a real source with {!set_source} (e.g. microseconds
    since startup from [Unix.gettimeofday]) — keeping [Unix] out of
    this library and out of the core analysis stack.

    Whatever the source, {!now} is strictly increasing across the whole
    process: two calls never return the same value, so events on any
    one track are strictly timestamp-ordered by construction. *)

val now : unit -> int
(** The current timestamp. Strictly greater than every earlier return
    value, whichever domain asked. *)

val set_source : (unit -> int) -> unit
(** Replace the timestamp source. The strict-monotonicity guarantee is
    enforced on top of the source: a coarse or non-monotonic source is
    nudged forward rather than allowed to repeat. *)

val use_tick_counter : unit -> unit
(** Restore the default deterministic tick counter (used by tests). *)
