let tick = Atomic.make 0

let default_source () = Atomic.fetch_and_add tick 1

(* [None] = the tick counter; boxed so installing a source is atomic. *)
let source : (unit -> int) option Atomic.t = Atomic.make None

let last = Atomic.make min_int

let now () =
  let raw =
    match Atomic.get source with
    | None -> default_source ()
    | Some f -> f ()
  in
  (* Enforce strict monotonicity over whatever the source returns. *)
  let rec bump () =
    let l = Atomic.get last in
    let v = if raw > l then raw else l + 1 in
    if Atomic.compare_and_set last l v then v else bump ()
  in
  bump ()

let set_source f = Atomic.set source (Some f)
let use_tick_counter () = Atomic.set source None
