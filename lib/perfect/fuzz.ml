(* A seeded random affine-program generator: where Patterns emits
   hand-shaped nests aimed at one cascade stage each, the fuzzer walks
   a small grammar and produces arbitrary (but always parseable and
   semantically valid) combinations — the corpus source for the
   streaming batch driver and the crash/resume chaos tests. *)

type profile = Mixed | Small

let all_profiles = [ Mixed; Small ]
let profile_name = function Mixed -> "mixed" | Small -> "small"

let profile_of_string = function
  | "mixed" -> Some Mixed
  | "small" -> Some Small
  | _ -> None

(* Derive item [index]'s PRNG seed from the corpus seed with an
   avalanche mix, so consecutive indices get unrelated streams. The
   constants are arbitrary odd numbers; only determinism matters. *)
let item_seed seed index =
  let x = ref ((seed * 0x1000193) lxor (index * 0x5DEECE6D)) in
  for _ = 1 to 3 do
    x := !x lxor (!x lsr 31);
    x := (!x * 0x27D4EB2D) land max_int
  done;
  if !x = 0 then 0x9E3779B9 else !x

type limits = {
  max_depth : int;
  max_bound : int;  (* constant loop bounds drawn from [2, max_bound] *)
  max_coef : int;
  max_off : int;
  symbolic : bool;  (* allow "n" bounds and offsets (needs read(n)) *)
  max_nests : int;
  use_patterns : bool;  (* mix in Patterns nests alongside grammar walks *)
}

(* Small keeps iteration spaces tiny (trip counts <= 6, depth <= 2, no
   symbolic terms) so the brute-force oracle in the verification layer
   can enumerate them exhaustively. *)
let limits_of = function
  | Mixed ->
    {
      max_depth = 3;
      max_bound = 40;
      max_coef = 3;
      max_off = 4;
      symbolic = true;
      max_nests = 2;
      use_patterns = true;
    }
  | Small ->
    {
      max_depth = 2;
      max_bound = 6;
      max_coef = 2;
      max_off = 3;
      symbolic = false;
      max_nests = 2;
      use_patterns = false;
    }

let arrays = [ "a"; "b"; "c"; "u" ]
let arrays2 = [ "aa"; "bb" ]
let var_names = [| "i"; "j"; "k" |]

(* An affine expression over the in-scope loop variables:
   [c1*v1 + c2*v2 + d], any subset of terms, signs included. Falls
   back to a bare constant when no variable is in scope. *)
let affine rng lim ~uses_n vars =
  let buf = Buffer.create 16 in
  let first = ref true in
  let add neg s =
    if !first then begin
      if neg then Buffer.add_char buf '-';
      Buffer.add_string buf s;
      first := false
    end
    else begin
      Buffer.add_string buf (if neg then " - " else " + ");
      Buffer.add_string buf s
    end
  in
  let nvars = List.length vars in
  let nterms = if nvars = 0 then 0 else 1 + Prng.int rng (min 2 nvars) in
  let chosen =
    (* distinct variables, innermost-biased by a rotated start *)
    let arr = Array.of_list vars in
    let start = Prng.int rng nvars in
    List.init nterms (fun t -> arr.((start + t) mod nvars))
  in
  List.iter
    (fun v ->
      let c = 1 + Prng.int rng lim.max_coef in
      let term = if c = 1 then v else Printf.sprintf "%d*%s" c v in
      add (Prng.bool rng) term)
    (if nterms = 0 then [] else chosen);
  let off = Prng.int rng (lim.max_off + 1) in
  if off <> 0 || !first then add (Prng.bool rng) (string_of_int off);
  if lim.symbolic && Prng.int rng 6 = 0 then begin
    uses_n := true;
    add false "n"
  end;
  Buffer.contents buf

let reference rng lim ~uses_n vars =
  if Prng.int rng 5 = 0 then
    Printf.sprintf "%s[%s][%s]"
      (Prng.choose rng arrays2)
      (affine rng lim ~uses_n vars)
      (affine rng lim ~uses_n vars)
  else
    Printf.sprintf "%s[%s]" (Prng.choose rng arrays)
      (affine rng lim ~uses_n vars)

let statement rng lim ~uses_n ~indent vars =
  let lhs = reference rng lim ~uses_n vars in
  let rhs =
    match Prng.int rng 4 with
    | 0 -> string_of_int (Prng.range rng 0 9)
    | 1 -> Printf.sprintf "%s + 1" (reference rng lim ~uses_n vars)
    | 2 ->
      Printf.sprintf "%s + %s"
        (reference rng lim ~uses_n vars)
        (reference rng lim ~uses_n vars)
    | _ -> Printf.sprintf "2 * %s" (reference rng lim ~uses_n vars)
  in
  Printf.sprintf "%s%s = %s\n" indent lhs rhs

let rec nest rng lim ~uses_n ~depth ~indent vars =
  let level = List.length vars in
  let v = var_names.(level) in
  let lo = string_of_int (Prng.range rng 1 2) in
  let hi =
    if lim.symbolic && Prng.int rng 4 = 0 then begin
      uses_n := true;
      "n"
    end
    else string_of_int (Prng.range rng 2 lim.max_bound)
  in
  let step = if Prng.int rng 5 = 0 then " step 2" else "" in
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "%sfor %s = %s to %s%s do\n" indent v lo hi step);
  let inner_indent = indent ^ "  " in
  let vars = vars @ [ v ] in
  let nstmts = 1 + Prng.int rng 2 in
  for _ = 1 to nstmts do
    Buffer.add_string buf (statement rng lim ~uses_n ~indent:inner_indent vars)
  done;
  if depth > 1 && Prng.int rng 2 = 0 then
    Buffer.add_string buf
      (nest rng lim ~uses_n ~depth:(depth - 1) ~indent:inner_indent vars);
  Buffer.add_string buf (Printf.sprintf "%send\n" indent);
  Buffer.contents buf

let grammar_nest rng lim =
  let uses_n = ref false in
  let depth = 1 + Prng.int rng lim.max_depth in
  let body = nest rng lim ~uses_n ~depth ~indent:"" [] in
  if !uses_n then "read(n)\n" ^ body else body

let program profile ~seed ~index =
  let lim = limits_of profile in
  let rng = Prng.create (item_seed seed index) in
  let nnests = 1 + Prng.int rng lim.max_nests in
  let nests =
    List.init nnests (fun _ ->
        if lim.use_patterns && Prng.bool rng then
          Patterns.generate rng (Prng.choose rng Patterns.all_categories)
        else grammar_nest rng lim)
  in
  Printf.sprintf "# fuzz profile=%s seed=%d index=%d\n%s"
    (profile_name profile) seed index
    (String.concat "\n" nests)
