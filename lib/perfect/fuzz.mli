(** Seeded random affine-program fuzzer.

    Walks a small grammar (nested [for] loops, affine subscripts over
    the live loop variables, optional symbolic terms) and, in the
    {!Mixed} profile, interleaves {!Patterns} nests — producing
    arbitrary but always parseable, semantically valid programs. The
    streaming batch driver uses it as an unbounded corpus source; the
    oracle smoke test feeds {!Small} programs through brute-force
    iteration-space enumeration. *)

type profile =
  | Mixed
      (** grammar walks plus {!Patterns} nests, symbolic bounds and
          offsets allowed, loop depth up to 3 *)
  | Small
      (** oracle-friendly: constant bounds [<= 6], depth [<= 2], no
          symbolic terms — iteration spaces small enough to enumerate
          exhaustively *)

val all_profiles : profile list
val profile_name : profile -> string
val profile_of_string : string -> profile option

val program : profile -> seed:int -> index:int -> string
(** The [index]-th program of the corpus identified by [seed]:
    deterministic (the same [(profile, seed, index)] always yields the
    same bytes, independent of generation order) — the property the
    resume machinery relies on to re-derive a corpus after a crash. *)
