(** An exhaustive integer-programming oracle for small boxed systems.

    Ground truth for differential testing: when every variable of a
    system is boxed by its single-variable rows and the box is small,
    feasibility is decided by brute enumeration — no solver cleverness,
    no certificates, just trying every point. The cascade must agree
    with this on every in-scope system. *)

open Dda_numeric
open Dda_core

type verdict =
  | Feasible of Zint.t array  (** the first point found, lexicographic *)
  | Infeasible
  | Out_of_scope
      (** some variable is unbounded below or above by the
          single-variable rows, or the box exceeds the point budget *)

val exhaustive : ?max_points:int -> Consys.t -> verdict
(** [max_points] defaults to [100_000]. *)
