open Dda_numeric
open Dda_core

type verdict =
  | Feasible of Zint.t array
  | Infeasible
  | Out_of_scope

(* Local row evaluation — the oracle is as solver-free as the
   certificate checker. *)
let dot coeffs x =
  let acc = ref Zint.zero in
  Array.iteri (fun i c -> acc := Zint.add !acc (Zint.mul c x.(i))) coeffs;
  !acc

let satisfies x (r : Consys.row) = Zint.compare (dot r.coeffs x) r.rhs <= 0

exception Answered of verdict

let exhaustive ?(max_points = 100_000) (sys : Consys.t) =
  let n = sys.nvars in
  let lo = Array.make n None and hi = Array.make n None in
  let better_hi i v =
    match hi.(i) with None -> hi.(i) <- Some v | Some h -> if Zint.compare v h < 0 then hi.(i) <- Some v
  in
  let better_lo i v =
    match lo.(i) with None -> lo.(i) <- Some v | Some l -> if Zint.compare v l > 0 then lo.(i) <- Some v
  in
  try
    (* Extract the box from single-variable rows; a variable-free row
       with a negative bound refutes outright. *)
    List.iter
      (fun (r : Consys.row) ->
         let nz = ref [] in
         Array.iteri
           (fun i c -> if not (Zint.is_zero c) then nz := (i, c) :: !nz)
           r.coeffs;
         match !nz with
         | [] -> if Zint.is_negative r.rhs then raise (Answered Infeasible)
         | [ (i, a) ] ->
           if Zint.is_positive a then better_hi i (Zint.fdiv r.rhs a)
           else better_lo i (Zint.cdiv r.rhs a)
         | _ -> ())
      sys.rows;
    let box =
      Array.init n (fun i ->
          match (lo.(i), hi.(i)) with
          | Some l, Some h -> (l, h)
          | _ -> raise (Answered Out_of_scope))
    in
    (* Budget: product of widths, with early exit past the cap. *)
    let points = ref 1 in
    Array.iter
      (fun (l, h) ->
         if Zint.compare l h > 0 then raise (Answered Infeasible);
         let w =
           match Zint.to_int (Zint.succ (Zint.sub h l)) with
           | Some w -> w
           | None -> raise (Answered Out_of_scope)
         in
         if !points > max_points / w + 1 then raise (Answered Out_of_scope);
         points := !points * w;
         if !points > max_points then raise (Answered Out_of_scope))
      box;
    let x = Array.map fst box in
    let rec enum i =
      if i >= n then
        (if List.for_all (satisfies x) sys.rows then
           raise (Answered (Feasible (Array.copy x))))
      else begin
        let _, h = box.(i) in
        let rec walk v =
          if Zint.compare v h <= 0 then begin
            x.(i) <- v;
            enum (i + 1);
            walk (Zint.succ v)
          end
        in
        walk (fst box.(i))
      end
    in
    enum 0;
    Infeasible
  with Answered v -> v
