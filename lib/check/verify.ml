open Dda_numeric
open Dda_lang
open Dda_core

type severity =
  | Sev_error
  | Sev_warning

type diagnostic = {
  severity : severity;
  loc : Loc.t;
  loc2 : Loc.t option;
  array_name : string option;
  code : string;
  message : string;
}

type summary = {
  diagnostics : diagnostic list;
  pairs : int;
  certificates : int;
  errors : int;
  warnings : int;
}

type acc = {
  mutable diags : diagnostic list;  (* reversed *)
  mutable ncerts : int;
  mutable nerrors : int;
  mutable nwarnings : int;
}

let emit acc ~severity ?at ?at2 ~(r : Analyzer.pair_report) ~code fmt =
  Format.kasprintf
    (fun message ->
       let loc = Option.value at ~default:r.loc1 in
       let loc2 =
         match at2 with
         | Some _ -> at2
         | None -> if Loc.equal r.loc1 r.loc2 then None else Some r.loc2
       in
       (match severity with
        | Sev_error -> acc.nerrors <- acc.nerrors + 1
        | Sev_warning -> acc.nwarnings <- acc.nwarnings + 1);
       acc.diags <-
         { severity; loc; loc2; array_name = Some r.array_name; code; message }
         :: acc.diags)
    fmt

(* Count a certificate validation; a rejection becomes an error
   diagnostic prefixed with what was being validated. *)
let checked acc ~r ~code ~what = function
  | Ok () -> acc.ncerts <- acc.ncerts + 1
  | Error e ->
    acc.ncerts <- acc.ncerts + 1;
    emit acc ~severity:Sev_error ~r ~code "array '%s': %s rejected: %s"
      r.Analyzer.array_name what e

(* ------------------------------------------------------------------ *)
(* Deliberate corruption (--corrupt): a deterministic self-test that   *)
(* the checker rejects bad evidence                                    *)
(* ------------------------------------------------------------------ *)

let corrupt_witness x =
  if Array.length x = 0 then [| Zint.one |]
  else Array.sub x 0 (Array.length x - 1)

let corrupt_infeasible _ = Cert.Refute (Cert.Hyp (-1))
let corrupt_refutation (c : Cert.eq_refutation) = { c with Cert.modulus = Zint.one }

(* ------------------------------------------------------------------ *)
(* Direction obligations                                               *)
(* ------------------------------------------------------------------ *)

(* The non-identity solutions of a pair's system partition by the first
   common level where the two iterations differ, and the sign of the
   difference: 2 * ncommon obligations, each a cascade query with the
   corresponding direction rows appended. Appending the all-equal cell
   as well ([include_all_eq]) covers the whole space — what the
   verification of a non-self "independent via direction vectors"
   (implicit branch-and-bound) claim needs. *)
let obligations p ~ncommon ~include_all_eq =
  let eqs_upto k =
    List.concat (List.init k (fun j -> Direction.dir_rows p j Direction.Deq))
  in
  let strict =
    List.concat_map
      (fun k ->
         List.map
           (fun sign -> (Some (k, sign), eqs_upto k @ Direction.dir_rows p k sign))
           [ Direction.Dlt; Direction.Dgt ])
      (List.init ncommon Fun.id)
  in
  if include_all_eq then strict @ [ (None, eqs_upto ncommon) ] else strict

let pp_sign fmt = function
  | Direction.Dlt -> Format.pp_print_string fmt "<"
  | Direction.Dgt -> Format.pp_print_string fmt ">"
  | Direction.Deq -> Format.pp_print_string fmt "="
  | Direction.Dany -> Format.pp_print_string fmt "*"

(* Check, with the checker's own arithmetic, that a witness realizes
   the obligation's iteration relation: equal on the levels before [k],
   strict at [k]. *)
let relation_error p x = function
  | None -> None
  | Some (k, sign) ->
    let v1 j = x.(Problem.var1 p j) and v2 j = x.(Problem.var2 p j) in
    let rec eqs j =
      if j >= k then
        let c = Zint.compare (v1 k) (v2 k) in
        let ok =
          match sign with
          | Direction.Dlt -> c < 0
          | Direction.Dgt -> c > 0
          | Direction.Deq | Direction.Dany -> true
        in
        if ok then None
        else
          Some
            (Format.asprintf
               "the witness does not realize direction %a at level %d" pp_sign
               sign k)
      else if Zint.equal (v1 j) (v2 j) then eqs (j + 1)
      else
        Some
          (Format.asprintf
             "the witness differs at level %d, before the claimed first \
              difference at level %d"
             j k)
    in
    eqs 0

(* Walk every obligation of a pair through the cascade and certify the
   answers. Returns (found_dependent, found_unknown). *)
let verify_obligations acc ~cancel ~corrupt ~(config : Analyzer.config) ~r p
    (red : Gcd_test.reduction) ~include_all_eq =
  let base = red.Gcd_test.system in
  let dependent_found = ref false and unknown_found = ref false in
  let degraded_warned = ref false in
  List.iter
    (fun (tag, extra_rows) ->
       let extra_t = List.map (Gcd_test.transform_row red) extra_rows in
       let sys = Consys.make ~nvars:base.Consys.nvars (base.Consys.rows @ extra_t) in
       let budget = Budget.create ~cancel config.Analyzer.limits in
       let cas = Cascade.run ~budget ~fm_tighten:config.Analyzer.fm_tighten sys in
       match cas.Cascade.verdict with
       | Cascade.Dependent w ->
         dependent_found := true;
         let x = Gcd_test.x_of_t red w in
         (match relation_error p x tag with
          | Some e ->
            acc.ncerts <- acc.ncerts + 1;
            emit acc ~severity:Sev_error ~r ~code:"bad-witness"
              "array '%s': %s" r.Analyzer.array_name e
          | None ->
            let x = if corrupt then corrupt_witness x else x in
            checked acc ~r ~code:"bad-witness" ~what:"direction-obligation witness"
              (Certcheck.check_problem_witness x p))
       | Cascade.Independent cert ->
         let cert = if corrupt then corrupt_infeasible cert else cert in
         checked acc ~r ~code:"bad-certificate"
           ~what:"direction-obligation independence certificate"
           (Certcheck.check_infeasible ~nvars:sys.Consys.nvars sys.Consys.rows
              cert)
       | Cascade.Unknown -> unknown_found := true
       | Cascade.Exhausted reason ->
         unknown_found := true;
         if not !degraded_warned then begin
           degraded_warned := true;
           emit acc ~severity:Sev_warning ~r ~code:"degraded"
             "array '%s': replaying a direction obligation exhausted the %s \
              budget; the conservative verdict stands uncertified"
             r.Analyzer.array_name (Budget.reason_name reason)
         end)
    (obligations p ~ncommon:p.Problem.ncommon ~include_all_eq);
  (!dependent_found, !unknown_found)

(* ------------------------------------------------------------------ *)
(* Per-pair verification                                               *)
(* ------------------------------------------------------------------ *)

let warn_symbolic_bounds acc ~r (s1 : Affine.site) =
  List.filteri (fun i _ -> i < r.Analyzer.ncommon) s1.Affine.loops
  |> List.iter (fun (c : Affine.loop_ctx) ->
      if Option.is_none c.Affine.lb || Option.is_none c.Affine.ub then
        emit acc ~severity:Sev_warning ~r ~code:"symbolic-bound"
          "bound of loop '%s' is not affine: the dependence system leaves \
           its range unconstrained, so this verdict may be conservative"
          c.Affine.lvar)

let warn_non_affine acc ~r ~at (s : Affine.site) =
  List.iteri
    (fun dim sub ->
       if Option.is_none sub then
         emit acc ~severity:Sev_warning ~r ~at ~code:"non-affine"
           "subscript %d of array '%s' is not affine: the pair is assumed \
            dependent without testing"
           dim s.Affine.array)
    s.Affine.subscripts

let verify_assumed acc ~r (s1 : Affine.site) (s2 : Affine.site) =
  match Build_problem.build s1 s2 with
  | Some _ ->
    emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
      "array '%s': the analyzer assumed dependence but the pair's problem \
       builds cleanly on replay"
      r.Analyzer.array_name
  | None ->
    warn_non_affine acc ~r ~at:r.Analyzer.loc1 s1;
    if not (Loc.equal r.Analyzer.loc1 r.Analyzer.loc2) then
      warn_non_affine acc ~r ~at:r.Analyzer.loc2 s2;
    let d1 = List.length s1.Affine.subscripts
    and d2 = List.length s2.Affine.subscripts in
    if Affine.analyzable s1 && Affine.analyzable s2 && d1 <> d2 then
      emit acc ~severity:Sev_warning ~r ~code:"rank-mismatch"
        "references to array '%s' disagree on rank (%d vs %d subscripts): \
         the pair is assumed dependent without testing"
        r.Analyzer.array_name d1 d2

let verify_constant acc ~r (s1 : Affine.site) (s2 : Affine.site) claimed =
  match (Affine.constant_subscripts s1, Affine.constant_subscripts s2) with
  | Some c1, Some c2 when List.length c1 = List.length c2 ->
    let truth = List.for_all2 Zint.equal c1 c2 in
    if truth <> claimed then
      emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
        "array '%s': constant subscripts compare %s but the pair was \
         reported %s"
        r.Analyzer.array_name
        (if truth then "equal" else "unequal")
        (if claimed then "dependent" else "independent")
  | _ ->
    emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
      "array '%s': reported as a constant-subscript pair but the subscripts \
       are not constant on replay"
      r.Analyzer.array_name

let verify_gcd_independent acc ~corrupt ~r (s1 : Affine.site) (s2 : Affine.site) =
  match Build_problem.build s1 s2 with
  | None ->
    emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
      "array '%s': the analyzer tested this pair but its problem does not \
       build on replay"
      r.Analyzer.array_name
  | Some p -> (
      match Gcd_test.run_eqs p with
      | Gcd_test.Independent cert ->
        let cert = if corrupt then corrupt_refutation cert else cert in
        checked acc ~r ~code:"bad-refutation" ~what:"equality refutation"
          (Certcheck.check_eq_refutation cert ~nvars:(Problem.nvars p)
             p.Problem.eqs)
      | Gcd_test.Reduced _ ->
        emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
          "array '%s': reported independent by the extended gcd test, but \
           the equalities reduce on replay"
          r.Analyzer.array_name)

let verify_tested acc ~cancel ~oracle ~corrupt ~(config : Analyzer.config) ~r
    (s1 : Affine.site) (s2 : Affine.site) ~reported_dep ~degraded =
  match Build_problem.build s1 s2 with
  | None ->
    emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
      "array '%s': the analyzer tested this pair but its problem does not \
       build on replay"
      r.Analyzer.array_name
  | Some p -> (
      match Gcd_test.run p with
      | Gcd_test.Independent _ ->
        emit acc ~severity:Sev_error ~r ~code:"replay-divergence"
          "array '%s': reported as tested, but the extended gcd test already \
           refutes the equalities on replay"
          r.Analyzer.array_name
      | Gcd_test.Reduced red ->
        if reported_dep then warn_symbolic_bounds acc ~r s1;
        if r.Analyzer.self_pair then begin
          (* A self dependence is a pair of distinct iterations: decompose
             by the first common level where they differ. *)
          let dep_found, unk_found =
            verify_obligations acc ~cancel ~corrupt ~config ~r p red
              ~include_all_eq:false
          in
          if dep_found && not reported_dep then
            emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
              "array '%s': a direction obligation has a verified witness but \
               the self pair was reported independent"
              r.Analyzer.array_name
          else if (not dep_found) && (not unk_found) && reported_dep then
            if Option.is_some degraded then
              (* A degraded verdict only claims an over-approximation:
                 replay proving full independence confirms it was sound,
                 merely imprecise. *)
              emit acc ~severity:Sev_warning ~r ~code:"degraded"
                "array '%s': the degraded analysis assumed this self pair \
                 dependent; replay certifies it independent"
                r.Analyzer.array_name
            else
              emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
                "array '%s': every direction obligation is certified \
                 independent but the self pair was reported dependent"
                r.Analyzer.array_name;
          if unk_found then
            emit acc ~severity:Sev_warning ~r ~code:"fm-exhausted"
              "array '%s': a direction obligation exhausted the \
               Fourier-Motzkin branch budget; the self dependence is assumed, \
               not certified"
              r.Analyzer.array_name
        end
        else begin
          let sys = red.Gcd_test.system in
          let budget = Budget.create ~cancel config.Analyzer.limits in
          let cas = Cascade.run ~budget ~fm_tighten:config.Analyzer.fm_tighten sys in
          (match cas.Cascade.verdict with
           | Cascade.Dependent w ->
             let x = Gcd_test.x_of_t red w in
             let x = if corrupt then corrupt_witness x else x in
             checked acc ~r ~code:"bad-witness" ~what:"dependence witness"
               (Certcheck.check_problem_witness x p);
             if not reported_dep then
               emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
                 "array '%s': a verified witness exists but the pair was \
                  reported independent"
                 r.Analyzer.array_name
           | Cascade.Independent cert ->
             let cert = if corrupt then corrupt_infeasible cert else cert in
             checked acc ~r ~code:"bad-certificate"
               ~what:"independence certificate"
               (Certcheck.check_infeasible ~nvars:sys.Consys.nvars
                  sys.Consys.rows cert);
             if reported_dep then
               if Option.is_some degraded then
                 emit acc ~severity:Sev_warning ~r ~code:"degraded"
                   "array '%s': the degraded analysis assumed this pair \
                    dependent; replay certifies it independent"
                   r.Analyzer.array_name
               else
                 emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
                   "array '%s': certified independent on replay but reported \
                    dependent"
                   r.Analyzer.array_name
           | Cascade.Unknown ->
             if not reported_dep then begin
               (* Independent via direction vectors (implicit branch and
                  bound): the plain query is out of budget, but the
                  direction cells cover the space — certify each one. *)
               let dep_found, unk_found =
                 verify_obligations acc ~cancel ~corrupt ~config ~r p red
                   ~include_all_eq:true
               in
               if dep_found then
                 emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
                   "array '%s': a direction obligation has a verified \
                    witness but the pair was reported independent"
                   r.Analyzer.array_name;
               if unk_found then
                 emit acc ~severity:Sev_warning ~r ~code:"fm-exhausted"
                   "array '%s': the implicit branch-and-bound independence \
                    claim cannot be fully certified within the \
                    Fourier-Motzkin budget"
                   r.Analyzer.array_name
             end
             else
               emit acc ~severity:Sev_warning ~r ~code:"fm-exhausted"
                 "array '%s': the Fourier-Motzkin branch budget was \
                  exhausted; the pair is assumed dependent, not certified"
                 r.Analyzer.array_name
           | Cascade.Exhausted reason ->
             if not reported_dep then begin
               (* Budgets are per query: the direction obligations may
                  each fit where the whole system did not. *)
               let dep_found, unk_found =
                 verify_obligations acc ~cancel ~corrupt ~config ~r p red
                   ~include_all_eq:true
               in
               if dep_found then
                 emit acc ~severity:Sev_error ~r ~code:"verdict-mismatch"
                   "array '%s': a direction obligation has a verified \
                    witness but the pair was reported independent"
                   r.Analyzer.array_name;
               if unk_found then
                 emit acc ~severity:Sev_warning ~r ~code:"degraded"
                   "array '%s': the independence claim cannot be fully \
                    certified within the replay budget"
                   r.Analyzer.array_name
             end
             else
               emit acc ~severity:Sev_warning ~r ~code:"degraded"
                 "array '%s': replay exhausted the %s budget; the pair is \
                  assumed dependent, not certified"
                 r.Analyzer.array_name (Budget.reason_name reason));
          if oracle then
            match (cas.Cascade.verdict, Oracle.exhaustive sys) with
            | Cascade.Dependent _, Oracle.Infeasible ->
              emit acc ~severity:Sev_error ~r ~code:"oracle-mismatch"
                "array '%s': the cascade found the system feasible but \
                 exhaustive enumeration finds no point"
                r.Analyzer.array_name
            | Cascade.Independent _, Oracle.Feasible _ ->
              emit acc ~severity:Sev_error ~r ~code:"oracle-mismatch"
                "array '%s': the cascade certified infeasibility but \
                 exhaustive enumeration finds a point"
                r.Analyzer.array_name
            | _, (Oracle.Feasible _ | Oracle.Infeasible | Oracle.Out_of_scope)
              -> ()
        end)

let verify_pair acc ~cancel ~oracle ~corrupt ~config ((s1 : Affine.site), s2)
    (r : Analyzer.pair_report) =
  match r.Analyzer.outcome with
  | Analyzer.Constant claimed -> verify_constant acc ~r s1 s2 claimed
  | Analyzer.Assumed_dependent -> verify_assumed acc ~r s1 s2
  | Analyzer.Gcd_independent -> verify_gcd_independent acc ~corrupt ~r s1 s2
  | Analyzer.Tested t ->
    verify_tested acc ~cancel ~oracle ~corrupt ~config ~r s1 s2
      ~reported_dep:t.dependent ~degraded:t.degraded

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let verify_report ?(cancel = fun () -> false) ?(oracle = true)
    ?(corrupt = false) ~config pairs (report : Analyzer.report) =
  if List.length pairs <> List.length report.Analyzer.pair_reports then
    invalid_arg "Verify.verify_report: pair list does not match the report";
  let acc = { diags = []; ncerts = 0; nerrors = 0; nwarnings = 0 } in
  List.iter2 (verify_pair acc ~cancel ~oracle ~corrupt ~config) pairs
    report.Analyzer.pair_reports;
  {
    diagnostics = List.rev acc.diags;
    pairs = List.length pairs;
    certificates = acc.ncerts;
    errors = acc.nerrors;
    warnings = acc.nwarnings;
  }

let run ?(config = Analyzer.default_config) ?cancel ?oracle ?corrupt program =
  let prepared =
    if config.Analyzer.run_pipeline then Dda_passes.Pipeline.run program
    else program
  in
  let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
  let pairs = Analyzer.site_pairs config sites in
  let report = Analyzer.analyze_sites ~config ?cancel pairs in
  verify_report ?cancel ?oracle ?corrupt ~config pairs report

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let severity_name = function Sev_error -> "error" | Sev_warning -> "warning"

let pp_diagnostic ~file fmt d =
  Format.fprintf fmt "%s:%a: %s: [%s] %s" file Loc.pp d.loc
    (severity_name d.severity) d.code d.message;
  match d.loc2 with
  | Some l -> Format.fprintf fmt " (second reference at %a)" Loc.pp l
  | None -> ()

let diagnostic_json d =
  Json_out.Obj
    ([
       ("severity", Json_out.Str (severity_name d.severity));
       ("code", Json_out.Str d.code);
       ("line", Json_out.Int d.loc.Loc.line);
       ("col", Json_out.Int d.loc.Loc.col);
     ]
     @ (match d.loc2 with
        | Some l ->
          [
            ("line2", Json_out.Int l.Loc.line);
            ("col2", Json_out.Int l.Loc.col);
          ]
        | None -> [])
     @ (match d.array_name with
        | Some a -> [ ("array", Json_out.Str a) ]
        | None -> [])
     @ [ ("message", Json_out.Str d.message) ])

let pp_text ~file fmt s =
  List.iter
    (fun d -> Format.fprintf fmt "%a@." (pp_diagnostic ~file) d)
    s.diagnostics;
  Format.fprintf fmt "%s: %d pairs, %d certificates checked; %d errors, %d warnings@."
    (if s.errors = 0 then "OK" else "FAIL")
    s.pairs s.certificates s.errors s.warnings

let to_json ~file s =
  let diag = diagnostic_json in
  Json_out.Obj
    [
      ("file", Json_out.Str file);
      ("pairs", Json_out.Int s.pairs);
      ("certificates", Json_out.Int s.certificates);
      ("errors", Json_out.Int s.errors);
      ("warnings", Json_out.Int s.warnings);
      ("diagnostics", Json_out.List (List.map diag s.diagnostics));
    ]
