(** The trusted certificate checker.

    This module is the proof-checking half of the self-verifying
    analysis: the solvers in [Dda_core] produce {!Dda_core.Cert}
    evidence with every verdict, and everything here re-validates that
    evidence against the {e original} problem using nothing but row
    arithmetic implemented locally — no code is shared with the
    solvers, so a bug in SVPC, the acyclic test, loop residue,
    Fourier-Motzkin or the Extended GCD reduction cannot silently
    validate its own wrong answer.

    The trusted computing base is therefore this module plus
    {!Dda_numeric.Zint} and the plain record types [Consys.row],
    [Problem.t] and [Cert.t] (data only, no behaviour).

    Every check returns [(unit, string) result]; the [Error] string
    says which rule failed and where. *)

open Dda_numeric
open Dda_core

val check_witness : Zint.t array -> Consys.t -> (unit, string) result
(** Does the point satisfy every inequality row of the system? *)

val check_problem_witness : Zint.t array -> Problem.t -> (unit, string) result
(** Does the point satisfy every subscript {e equality} exactly and
    every loop-bound inequality of the original problem? *)

val check_eq_refutation :
  Cert.eq_refutation -> nvars:int -> Consys.row list -> (unit, string) result
(** Validate a divisibility refutation of equality rows: modulo
    [modulus] ([>= 2]) the multiplier combination must zero every
    variable's coefficient while leaving a non-zero right-hand side —
    hence no integer solution exists. *)

val check_infeasible :
  nvars:int -> Consys.row list -> Cert.infeasible -> (unit, string) result
(** Validate an infeasibility certificate against hypothesis rows
    (referenced by {!Dda_core.Cert.Hyp} index). [Refute] derivations
    must produce a variable-free row with a negative bound; [Split]
    nodes must refute both halves of an integer case split, with
    {!Dda_core.Cert.Cut} indices resolved along the current path. *)
