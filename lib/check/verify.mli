(** The self-verification driver: replay the analyzer pair by pair,
    re-derive every verdict's evidence, and validate it with
    {!Certcheck} against the original problem.

    For each reported pair the driver rebuilds the dependence problem
    from the same sites the analyzer saw and discharges the verdict:

    - a {e dependent} verdict must come with an integer witness, mapped
      back to original variables and checked against every subscript
      equality and loop bound;
    - an {e independent} verdict must come with an infeasibility
      certificate (or, for the bounds-free Extended GCD case, a
      divisibility refutation of the equality rows) that {!Certcheck}
      accepts;
    - a {e self} pair's verdict is decomposed into one obligation per
      (first differing common level, direction) — each certified
      independent or witnessed by a concrete pair of differing
      iterations;
    - conservative answers ({e assumed dependent}, Fourier-Motzkin
      exhaustion, symbolic bounds) are explained with warnings rather
      than certified.

    Failures surface as lint-style, source-located diagnostics. *)

open Dda_lang
open Dda_core

type severity =
  | Sev_error  (** a certificate failed to validate, or the replayed
                   verdict contradicts the reported one: the analysis
                   cannot be trusted on this pair *)
  | Sev_warning  (** a verdict that is conservative by design and
                    therefore carries no certificate *)

type diagnostic = {
  severity : severity;
  loc : Loc.t;  (** the pair's first reference *)
  loc2 : Loc.t option;  (** the second reference, when distinct *)
  array_name : string option;
  code : string;
      (** stable machine-readable tag: [bad-witness],
          [bad-certificate], [bad-refutation], [verdict-mismatch],
          [oracle-mismatch], [replay-divergence], [non-affine],
          [rank-mismatch], [symbolic-bound], [fm-exhausted],
          [degraded] *)
  message : string;
}

type summary = {
  diagnostics : diagnostic list;  (** in pair order *)
  pairs : int;  (** reference pairs examined *)
  certificates : int;
      (** witnesses, infeasibility certificates and equality
          refutations validated (or found invalid) *)
  errors : int;
  warnings : int;
}

val run :
  ?config:Analyzer.config ->
  ?cancel:(unit -> bool) ->
  ?oracle:bool ->
  ?corrupt:bool ->
  Ast.program ->
  summary
(** [oracle] (default [true]) additionally cross-checks every decided
    in-scope system against {!Oracle.exhaustive}. [corrupt] (default
    [false]) deliberately mangles every certificate and witness before
    checking — a self-test that the checker actually rejects bad
    evidence; a run with [corrupt:true] on a program with any tested or
    gcd-independent pair must produce errors.

    Replay runs under the budget of [config.limits] (plus the [cancel]
    deadline poll, default never). A replay that runs out of budget
    never fails the check: a verdict the analyzer itself flagged as
    degraded only claims an over-approximation, so the checker records
    [degraded] {e warnings} for anything it cannot (or need not)
    certify — including replay proving a degraded "dependent" pair
    independent, which confirms soundness rather than contradicting
    the report. *)

val verify_report :
  ?cancel:(unit -> bool) ->
  ?oracle:bool ->
  ?corrupt:bool ->
  config:Analyzer.config ->
  (Affine.site * Affine.site) list ->
  Analyzer.report ->
  summary
(** The core of {!run} for callers that already have the sites and the
    report (the batch driver): [pairs] must be the
    {!Analyzer.site_pairs} enumeration the report was computed from,
    in order. *)

val severity_name : severity -> string

val pp_diagnostic : file:string -> Format.formatter -> diagnostic -> unit
(** One [file:line:col: severity: [code] message] line (no trailing
    newline) — the rendering shared by {!pp_text} and the lint
    layer. *)

val diagnostic_json : diagnostic -> Json_out.t
(** One diagnostic as the JSON object {!to_json} embeds. *)

val pp_text : file:string -> Format.formatter -> summary -> unit
(** One [file:line:col: severity: [code] message] line per diagnostic,
    then a one-line summary. *)

val to_json : file:string -> summary -> Json_out.t
