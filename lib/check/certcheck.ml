open Dda_numeric
open Dda_core

(* Everything below re-implements the little row arithmetic it needs
   (evaluation, scaling, gcd tightening) instead of calling into the
   solver libraries: the point of the checker is that it shares no
   code with what it checks. *)

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

(* sum_i c_i * x_i, by local fold. *)
let dot coeffs x =
  let acc = ref Zint.zero in
  Array.iteri (fun i c -> acc := Zint.add !acc (Zint.mul c x.(i))) coeffs;
  !acc

let check_witness w (sys : Consys.t) =
  if Array.length w <> sys.nvars then
    errf "witness has %d entries, system has %d variables" (Array.length w)
      sys.nvars
  else
    let rec rows i = function
      | [] -> Ok ()
      | (r : Consys.row) :: rest ->
        let v = dot r.coeffs w in
        if Zint.compare v r.rhs <= 0 then rows (i + 1) rest
        else
          errf "witness violates row %d: %s > %s" i (Zint.to_string v)
            (Zint.to_string r.rhs)
    in
    rows 0 sys.rows

let check_problem_witness w (p : Problem.t) =
  let nvars = Problem.nvars p in
  if Array.length w <> nvars then
    errf "witness has %d entries, problem has %d variables" (Array.length w)
      nvars
  else
    let rec eqs i = function
      | [] -> Ok ()
      | (r : Consys.row) :: rest ->
        let v = dot r.coeffs w in
        if Zint.equal v r.rhs then eqs (i + 1) rest
        else
          errf "witness violates subscript equality %d: %s <> %s" i
            (Zint.to_string v) (Zint.to_string r.rhs)
    in
    let rec ineqs i = function
      | [] -> Ok ()
      | (b : Problem.bound) :: rest ->
        let v = dot b.row.coeffs w in
        if Zint.compare v b.row.rhs <= 0 then ineqs (i + 1) rest
        else
          errf "witness violates loop bound %d: %s > %s" i (Zint.to_string v)
            (Zint.to_string b.row.rhs)
    in
    let* () = eqs 0 p.eqs in
    ineqs 0 p.ineqs

let check_eq_refutation (cert : Cert.eq_refutation) ~nvars eqs =
  let m = List.length eqs in
  if Array.length cert.multipliers <> m then
    errf "refutation has %d multipliers for %d equality rows"
      (Array.length cert.multipliers) m
  else if Zint.compare cert.modulus Zint.two < 0 then
    errf "refutation modulus %s is below 2" (Zint.to_string cert.modulus)
  else begin
    (* Combine sum_j m_j * eq_j once, then check divisibility. *)
    let coeffs = Array.make nvars Zint.zero in
    let rhs = ref Zint.zero in
    List.iteri
      (fun j (r : Consys.row) ->
         if Array.length r.coeffs <> nvars then
           invalid_arg "Certcheck.check_eq_refutation: row width";
         let mj = cert.multipliers.(j) in
         Array.iteri
           (fun i c -> coeffs.(i) <- Zint.add coeffs.(i) (Zint.mul mj c))
           r.coeffs;
         rhs := Zint.add !rhs (Zint.mul mj r.rhs))
      eqs;
    let bad =
      Array.to_seq coeffs
      |> Seq.mapi (fun i c -> (i, c))
      |> Seq.find (fun (_, c) -> not (Zint.divides cert.modulus c))
    in
    match bad with
    | Some (i, c) ->
      errf "combined coefficient of t%d is %s, not divisible by %s" i
        (Zint.to_string c)
        (Zint.to_string cert.modulus)
    | None ->
      if Zint.divides cert.modulus !rhs then
        errf
          "combined right-hand side %s is divisible by %s: no contradiction"
          (Zint.to_string !rhs)
          (Zint.to_string cert.modulus)
      else Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Infeasibility certificates                                          *)
(* ------------------------------------------------------------------ *)

(* A derivation evaluates to one row; failures carry the path to the
   offending node. *)

type drow = { coeffs : Zint.t array; rhs : Zint.t }

let drow_of (r : Consys.row) ~nvars =
  if Array.length r.coeffs <> nvars then
    invalid_arg "Certcheck.check_infeasible: hypothesis row width"
  else { coeffs = Array.copy r.coeffs; rhs = r.rhs }

let add_scaled acc m (r : drow) =
  match acc with
  | None -> Some { coeffs = Array.map (Zint.mul m) r.coeffs; rhs = Zint.mul m r.rhs }
  | Some (a : drow) ->
    Array.iteri
      (fun i c -> a.coeffs.(i) <- Zint.add a.coeffs.(i) (Zint.mul m c))
      r.coeffs;
    Some { a with rhs = Zint.add a.rhs (Zint.mul m r.rhs) }

let tighten (r : drow) =
  let g = Array.fold_left (fun g c -> Zint.gcd g c) Zint.zero r.coeffs in
  if Zint.compare g Zint.one <= 0 then r
  else
    {
      coeffs = Array.map (fun c -> Zint.divexact c g) r.coeffs;
      rhs = Zint.fdiv r.rhs g;
    }

let rec eval_deriv ~nvars hyps cuts (d : Cert.deriv) =
  match d with
  | Cert.Hyp i ->
    if i < 0 || i >= Array.length hyps then
      errf "hypothesis index %d out of range (%d rows)" i (Array.length hyps)
    else Ok (drow_of hyps.(i) ~nvars)
  | Cert.Cut i ->
    if i < 0 || i >= Array.length cuts then
      errf "cut index %d out of range (%d cuts on this path)" i
        (Array.length cuts)
    else Ok { coeffs = Array.copy cuts.(i).coeffs; rhs = cuts.(i).rhs }
  | Cert.Comb terms ->
    if terms = [] then Error "empty combination"
    else
      let rec go acc = function
        | [] -> Ok (Option.get acc)
        | (m, sub) :: rest ->
          if not (Zint.is_positive m) then
            errf "combination multiplier %s is not positive" (Zint.to_string m)
          else
            let* r = eval_deriv ~nvars hyps cuts sub in
            go (add_scaled acc m r) rest
      in
      go None terms
  | Cert.Tighten sub ->
    let* r = eval_deriv ~nvars hyps cuts sub in
    Ok (tighten r)

let check_refute ~nvars hyps cuts d =
  let* r = eval_deriv ~nvars hyps cuts d in
  match Array.to_seq r.coeffs |> Seq.mapi (fun i c -> (i, c))
        |> Seq.find (fun (_, c) -> not (Zint.is_zero c))
  with
  | Some (i, c) ->
    errf "derived row still mentions t%d (coefficient %s)" i (Zint.to_string c)
  | None ->
    if Zint.is_negative r.rhs then Ok ()
    else
      errf "derived row is 0 <= %s, not a contradiction" (Zint.to_string r.rhs)

let check_infeasible ~nvars rows cert =
  let hyps = Array.of_list rows in
  let cut_row var v =
    (* t_var <= v as a checker-local row. *)
    let coeffs = Array.make nvars Zint.zero in
    coeffs.(var) <- Zint.one;
    { coeffs; rhs = v }
  in
  let neg_cut_row var v =
    (* t_var >= v + 1, i.e. -t_var <= -(v+1). *)
    let coeffs = Array.make nvars Zint.zero in
    coeffs.(var) <- Zint.minus_one;
    { coeffs; rhs = Zint.neg (Zint.succ v) }
  in
  let rec go cuts (c : Cert.infeasible) =
    match c with
    | Cert.Refute d -> check_refute ~nvars hyps cuts d
    | Cert.Split { var; bound; left; right } ->
      if var < 0 || var >= nvars then
        errf "split on t%d, outside the %d system variables" var nvars
      else
        let* () = go (Array.append cuts [| cut_row var bound |]) left in
        go (Array.append cuts [| neg_cut_row var bound |]) right
  in
  go [||] cert
