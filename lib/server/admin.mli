(** The admin plane: a minimal embedded HTTP/1.1 listener on
    127.0.0.1 serving operational read-only endpoints ([/metrics],
    [/healthz], [/readyz], [/status], [/tracez]) for a running
    [ddtest serve] daemon.

    Design constraints, in order:

    - {e Telemetry is never load-bearing.} The listener runs on its
      own domain, touches none of the serving data path, and every
      handler error becomes a 500 response (and a log line), never an
      escaping exception. Killing the admin plane — or flooding it —
      cannot fail or slow a query beyond the shared cost of the
      metrics counters the data path already pays.
    - {e Boring HTTP.} One request per connection ([Connection:
      close]), GET only, no keep-alive, no chunking; a serial accept
      loop is plenty for scrape traffic (a Prometheus scraper polls
      every few seconds). A per-connection receive timeout keeps a
      stalled client from wedging the loop.
    - {e Port 0 works.} The socket is bound in {!create} so an
      ephemeral port is already resolved by the time {!port} is asked
      for; tests bind port 0 and scrape whatever they got. *)

type response = {
  status : int;  (** 200, 404, 405, 500, 503 *)
  content_type : string;
  body : string;
}

val ok_text : string -> response
(** 200 [text/plain]. *)

val ok_json : string -> response
(** 200 [application/json]. *)

val unavailable : string -> response
(** 503 [text/plain] — [/readyz] while draining. *)

type t

val create : port:int -> routes:(string * (unit -> response)) list -> t
(** Bind and listen on [127.0.0.1:port] (0 picks an ephemeral port).
    [routes] maps exact paths (["/metrics"]) to handlers, evaluated
    per request on the admin domain; a handler that raises answers
    500. Unknown paths answer 404; non-GET methods 405.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port (useful after binding port 0). *)

val start : t -> unit
(** Spawn the accept-loop domain. *)

val stop : t -> unit
(** Stop the loop (self-pipe), join the domain, close the listener.
    Idempotent; safe to call even if {!start} was never called. *)
