open Dda_obs

type response = {
  status : int;
  content_type : string;
  body : string;
}

let ok_text body = { status = 200; content_type = "text/plain; version=0.0.4"; body }
let ok_json body = { status = 200; content_type = "application/json"; body }
let unavailable body = { status = 503; content_type = "text/plain"; body }

type t = {
  listen_fd : Unix.file_descr;
  a_port : int;
  routes : (string * (unit -> response)) list;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable domain : unit Domain.t option;
  mutable stopped : bool;
}

let m_requests = Metrics.counter "admin.requests"
let m_errors = Metrics.counter "admin.errors"

let create ~port ~routes =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let a_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  { listen_fd = fd; a_port; routes; stop_r; stop_w; domain = None;
    stopped = false }

let port t = t.a_port

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let send fd (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
  in
  write_all fd (head ^ r.body)

(* Read up to the end of the request head (we ignore the body — every
   endpoint is a GET). Bounded: a peer that never finishes its head is
   cut off at 8 KiB or at the socket receive timeout. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* String search is fine at this size. *)
        let rec find i =
          if i + 3 >= String.length s then None
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                  && s.[i + 3] = '\n'
          then Some (String.sub s 0 i)
          else find (i + 1)
        in
        (match find 0 with None -> go () | some -> some)
  in
  go ()

let handle t fd =
  Metrics.incr m_requests;
  match read_head fd with
  | None -> ()
  | Some head ->
    let request_line =
      match String.index_opt head '\r' with
      | Some i -> String.sub head 0 i
      | None -> head
    in
    let resp =
      match String.split_on_char ' ' request_line with
      | [ "GET"; path; _version ] -> (
          (* Strip any query string: /metrics?x=1 routes as /metrics. *)
          let path =
            match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          match List.assoc_opt path t.routes with
          | None ->
            { status = 404; content_type = "text/plain";
              body = "not found\n" }
          | Some h -> (
              try h ()
              with e ->
                Metrics.incr m_errors;
                Log.warn "admin: handler for %s raised: %s" path
                  (Printexc.to_string e);
                { status = 500; content_type = "text/plain";
                  body = "internal error\n" }))
      | _ ->
        { status = 405; content_type = "text/plain";
          body = "only GET is served here\n" }
    in
    send fd resp

let rec select_intr r timeout =
  try Unix.select r [] [] timeout
  with Unix.Unix_error (EINTR, _, _) -> select_intr r timeout

let loop t =
  let stop = ref false in
  while not !stop do
    let ready, _, _ = select_intr [ t.stop_r; t.listen_fd ] 0.5 in
    if List.mem t.stop_r ready then stop := true
    else if List.mem t.listen_fd ready then begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        (* Nothing a peer does may escape this domain. *)
        (try Unix.setsockopt_float fd SO_RCVTIMEO 5.0
         with Unix.Unix_error _ -> ());
        (try handle t fd
         with
         | Unix.Unix_error _ | Sys_error _ -> Metrics.incr m_errors
         | e ->
           Metrics.incr m_errors;
           Log.warn "admin: connection raised: %s" (Printexc.to_string e));
        (try Unix.close fd with Unix.Unix_error _ -> ())
    end
  done

let start t = if t.domain = None then t.domain <- Some (Domain.spawn (fun () -> loop t))

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ]
  end
