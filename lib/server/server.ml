open Dda_lang
open Dda_core
open Dda_obs

type config = {
  socket_path : string;
  jobs : int;
  queue_limit : int;
  request_timeout_ms : int;
  analyzer : Analyzer.config;
  cache_path : string option;
  cache_fsync : bool;
}

let default_config analyzer =
  {
    socket_path = "";
    jobs = 2;
    queue_limit = 64;
    request_timeout_ms = 0;
    analyzer;
    cache_path = None;
    cache_fsync = true;
  }

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read but not yet a complete line *)
  wlock : Mutex.t;  (* workers and the main loop interleave responses *)
  mutable pending : int;  (* worker tasks still holding this conn *)
  mutable eof : bool;  (* reap once [pending] drains to 0 *)
}

type t = {
  cfg : config;
  cache : Dda_cache.Durable.t;
  pool : Dda_engine.Pool.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  idle : Condition.t;  (* signaled when in_flight returns to 0 *)
  mutable in_flight : int;
  mutable conns : conn list;
  mutable requests : int;
  mutable shed : int;
  mutable quarantined : int;
}

let m_requests = Metrics.counter "serve.requests"
let m_responses = Metrics.counter "serve.responses"
let m_shed = Metrics.counter "serve.shed"
let m_quarantined = Metrics.counter "serve.quarantined"
let m_queue_depth = Metrics.histogram "serve.queue_depth"

let create cfg =
  if cfg.jobs < 1 then failwith "serve: jobs must be at least 1";
  if cfg.queue_limit < 1 then failwith "serve: queue limit must be at least 1";
  if String.equal cfg.socket_path "" then failwith "serve: no socket path";
  let cache, recovery =
    Dda_cache.Durable.create ?path:cfg.cache_path ~fsync:cfg.cache_fsync
      ~config:cfg.analyzer ()
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  ( {
      cfg;
      cache;
      pool = Dda_engine.Pool.create ~jobs:cfg.jobs;
      stop_r;
      stop_w;
      lock = Mutex.create ();
      idle = Condition.create ();
      in_flight = 0;
      conns = [];
      requests = 0;
      shed = 0;
      quarantined = 0;
    },
    recovery )

let drain t =
  (* Runs inside a signal handler: one write, nothing else. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* A failed write means the peer is gone: mark the connection for
   reaping, never kill the server. *)
let respond conn json =
  let line = Json_out.to_string json ^ "\n" in
  Mutex.lock conn.wlock;
  (try
     write_all conn.fd line;
     Metrics.incr m_responses
   with Unix.Unix_error _ | Sys_error _ -> conn.eof <- true);
  Mutex.unlock conn.wlock

let error_response id msg extra =
  Json_out.Obj
    ([ ("id", id); ("ok", Json_out.Bool false) ]
     @ extra
     @ [ ("error", Json_out.Str msg) ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let request_id req =
  match Json_out.member "id" req with Some v -> v | None -> Json_out.Null

let deadline_cancel ms =
  if ms <= 0 then fun () -> false
  else begin
    let until = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    fun () -> Unix.gettimeofday () > until
  end

let analyze_task t conn req id () =
  let result =
    try
      Failpoint.hit "serve.request";
      match Json_out.member "program" req with
      | Some (Json_out.Str src) ->
          let timeout_ms =
            match Json_out.member "timeout_ms" req with
            | Some (Json_out.Int ms) -> ms
            | _ -> t.cfg.request_timeout_ms
          in
          let prog = Parser.parse_program src in
          let report =
            Analyzer.analyze ~config:t.cfg.analyzer
              ~cancel:(deadline_cancel timeout_ms)
              ~cache:(Dda_cache.Durable.cache t.cache)
              prog
          in
          let want_stats =
            match Json_out.member "stats" req with
            | Some (Json_out.Bool b) -> b
            | _ -> false
          in
          Ok
            (Json_out.Obj
               ([
                  ("id", id);
                  ("ok", Json_out.Bool true);
                  ( "pairs",
                    Json_out.List
                      (List.map Json_out.pair report.Analyzer.pair_reports) );
                ]
                @
                if want_stats then
                  [ ("stats", Json_out.stats report.Analyzer.stats) ]
                else []))
      | _ -> Error ("analyze: missing \"program\" string", [])
    with
    | Parser.Error (msg, loc) ->
        Error (Format.asprintf "%a: syntax error: %s" Loc.pp loc msg, [])
    | Lexer.Error (msg, loc) ->
        Error (Format.asprintf "%a: lexical error: %s" Loc.pp loc msg, [])
    | e ->
        (* Poisoned request: quarantine it — answer with the failure,
           keep the worker. *)
        Mutex.lock t.lock;
        t.quarantined <- t.quarantined + 1;
        Mutex.unlock t.lock;
        Metrics.incr m_quarantined;
        Error
          ( Printexc.to_string e,
            [ ("quarantined", Json_out.Bool true) ] )
  in
  (match result with
   | Ok json -> respond conn json
   | Error (msg, extra) -> respond conn (error_response id msg extra));
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight - 1;
  conn.pending <- conn.pending - 1;
  if t.in_flight = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.lock

let status_json t =
  let gcd_entries, full_entries = Dda_cache.Durable.table_sizes t.cache in
  Mutex.lock t.lock;
  let requests = t.requests
  and in_flight = t.in_flight
  and shed = t.shed
  and quarantined = t.quarantined in
  Mutex.unlock t.lock;
  Json_out.Obj
    [
      ("ok", Json_out.Bool true);
      ( "server",
        Json_out.Obj
          [
            ("jobs", Json_out.Int t.cfg.jobs);
            ("queue_limit", Json_out.Int t.cfg.queue_limit);
            ("requests", Json_out.Int requests);
            ("in_flight", Json_out.Int in_flight);
            ("shed", Json_out.Int shed);
            ("quarantined", Json_out.Int quarantined);
            ( "cache",
              Json_out.Obj
                [
                  ( "path",
                    match Dda_cache.Durable.store_path t.cache with
                    | Some p -> Json_out.Str p
                    | None -> Json_out.Null );
                  ("gcd_entries", Json_out.Int gcd_entries);
                  ("full_entries", Json_out.Int full_entries);
                  ("appends", Json_out.Int (Dda_cache.Durable.store_appends t.cache));
                ] );
          ] );
    ]

let handle_line t conn line =
  Metrics.incr m_requests;
  Mutex.lock t.lock;
  t.requests <- t.requests + 1;
  Mutex.unlock t.lock;
  match Json_out.of_string line with
  | Error msg -> respond conn (error_response Json_out.Null ("bad request: " ^ msg) [])
  | Ok req -> (
      let id = request_id req in
      match Json_out.member "op" req with
      | Some (Json_out.Str "ping") ->
          respond conn
            (Json_out.Obj
               [ ("id", id); ("ok", Json_out.Bool true); ("pong", Json_out.Bool true) ])
      | Some (Json_out.Str "status") -> respond conn (status_json t)
      | Some (Json_out.Str "analyze") ->
          (* Shed before queueing: the queue is bounded by refusal, not
             by blocking the accept loop. *)
          Mutex.lock t.lock;
          let depth = t.in_flight in
          let accept = depth < t.cfg.queue_limit in
          if accept then begin
            t.in_flight <- t.in_flight + 1;
            conn.pending <- conn.pending + 1
          end
          else t.shed <- t.shed + 1;
          Mutex.unlock t.lock;
          Metrics.observe m_queue_depth depth;
          if accept then
            ignore (Dda_engine.Pool.submit t.pool (analyze_task t conn req id))
          else begin
            Metrics.incr m_shed;
            respond conn
              (error_response id
                 (Printf.sprintf
                    "server overloaded: %d request(s) outstanding (limit %d)"
                    depth t.cfg.queue_limit)
                 [ ("shed", Json_out.Bool true) ])
          end
      | Some (Json_out.Str op) ->
          respond conn (error_response id ("unknown op: " ^ op) [])
      | _ -> respond conn (error_response id "missing \"op\"" []))

(* ------------------------------------------------------------------ *)
(* The accept/read loop                                                *)
(* ------------------------------------------------------------------ *)

let drain_lines t conn =
  let contents = Buffer.contents conn.rbuf in
  let n = String.length contents in
  let start = ref 0 in
  (try
     while !start < n do
       let nl = String.index_from contents !start '\n' in
       let line = String.sub contents !start (nl - !start) in
       start := nl + 1;
       if not (String.equal (String.trim line) "") then handle_line t conn line
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear conn.rbuf;
    Buffer.add_substring conn.rbuf contents !start (n - !start)
  end

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      drain_lines t conn
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> conn.eof <- true

let rec select_intr r timeout =
  try Unix.select r [] [] timeout
  with Unix.Unix_error (EINTR, _, _) -> select_intr r timeout

let run t =
  let cfg = t.cfg in
  (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) : unit);
  (* A predecessor killed with -9 leaves its socket file behind; a
     crash-safe daemon must start over it. *)
  if Sys.file_exists cfg.socket_path then (
    match (Unix.stat cfg.socket_path).st_kind with
    | Unix.S_SOCK -> Unix.unlink cfg.socket_path
    | _ -> failwith (Printf.sprintf "serve: %s exists and is not a socket" cfg.socket_path));
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  Log.info "serve: listening on %s (%d worker(s), queue limit %d)"
    cfg.socket_path cfg.jobs cfg.queue_limit;
  let draining = ref false in
  while not !draining do
    (* Reap connections whose peer left and whose workers finished. *)
    Mutex.lock t.lock;
    let live, dead = List.partition (fun c -> not (c.eof && c.pending = 0)) t.conns in
    t.conns <- live;
    Mutex.unlock t.lock;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead;
    let readable =
      t.stop_r :: listen_fd
      :: List.filter_map (fun c -> if c.eof then None else Some c.fd) live
    in
    let ready, _, _ = select_intr readable 0.5 in
    if List.mem t.stop_r ready then draining := true
    else begin
      if List.mem listen_fd ready then begin
        let fd, _ = Unix.accept ~cloexec:true listen_fd in
        let conn =
          { fd; rbuf = Buffer.create 256; wlock = Mutex.create ();
            pending = 0; eof = false }
        in
        Mutex.lock t.lock;
        t.conns <- conn :: t.conns;
        Mutex.unlock t.lock
      end;
      List.iter
        (fun c -> if (not c.eof) && List.mem c.fd ready then read_conn t c)
        live
    end
  done;
  (* Graceful drain: no new intake, finish in-flight, make the cache
     durable, then release everything and let the caller exit 0. *)
  Log.info "serve: draining";
  Mutex.lock t.lock;
  while t.in_flight > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock;
  Dda_engine.Pool.shutdown t.pool;
  Dda_cache.Durable.close t.cache;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  Unix.close listen_fd;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.close t.stop_r;
  Unix.close t.stop_w;
  Log.info "serve: drained (%d request(s) served, %d shed, %d quarantined)"
    t.requests t.shed t.quarantined
