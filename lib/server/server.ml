open Dda_lang
open Dda_core
open Dda_obs

type config = {
  socket_path : string;
  jobs : int;
  queue_limit : int;
  request_timeout_ms : int;
  analyzer : Analyzer.config;
  cache_path : string option;
  cache_fsync : bool;
  admin_port : int option;
  access_log : string option;
  slow_ms : int;
}

let default_config analyzer =
  {
    socket_path = "";
    jobs = 2;
    queue_limit = 64;
    request_timeout_ms = 0;
    analyzer;
    cache_path = None;
    cache_fsync = true;
    admin_port = None;
    access_log = None;
    slow_ms = 0;
  }

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read but not yet a complete line *)
  wlock : Mutex.t;  (* workers and the main loop interleave responses *)
  mutable pending : int;  (* worker tasks still holding this conn *)
  mutable eof : bool;  (* reap once [pending] drains to 0 *)
}

type t = {
  cfg : config;
  cache : Dda_cache.Durable.t;
  pool : Dda_engine.Pool.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  idle : Condition.t;  (* signaled when in_flight returns to 0 *)
  started : float;  (* wall time at create, for uptime *)
  serving : bool Atomic.t;  (* true between bind and drain, for /readyz *)
  access : out_channel option;
  access_lock : Mutex.t;
  mutable admin : Admin.t option;
  mutable next_req : int;  (* server-assigned request ids (logs only) *)
  mutable in_flight : int;
  mutable conns : conn list;
  mutable requests : int;
  mutable shed : int;
  mutable quarantined : int;
}

let m_requests = Metrics.counter "serve.requests"
let m_responses = Metrics.counter "serve.responses"
let m_shed = Metrics.counter "serve.shed"
let m_quarantined = Metrics.counter "serve.quarantined"
let m_queue_depth = Metrics.histogram "serve.queue_depth"
let m_access_failed = Metrics.counter "serve.access_log.failed"

(* Per-op latency histograms. The op set is closed, so the registry
   never grows with traffic (unknown ops all land in [serve.op.other]). *)
let h_op_ping = Metrics.histogram "serve.op.ping.ns"
let h_op_status = Metrics.histogram "serve.op.status.ns"
let h_op_analyze = Metrics.histogram "serve.op.analyze.ns"
let h_op_other = Metrics.histogram "serve.op.other.ns"

let op_hist = function
  | "ping" -> h_op_ping
  | "status" -> h_op_status
  | "analyze" -> h_op_analyze
  | _ -> h_op_other

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Access log                                                          *)
(* ------------------------------------------------------------------ *)

(* One JSONL line per request, written when the request's response is
   known (so latency and verdict flags are real). Log I/O failure is a
   counter, never an exception: telemetry must not fail a query. *)
let access_line t ~req ~op ~ok ~ns ~(flags : (string * Json_out.t) list) =
  match t.access with
  | None -> ()
  | Some oc ->
    let line =
      Json_out.to_string
        (Json_out.Obj
           ([
              ("ts_ms", Json_out.Int (int_of_float (Unix.gettimeofday () *. 1000.)));
              ("req", Json_out.Int req);
              ("op", Json_out.Str op);
              ("ok", Json_out.Bool ok);
              ("ns", Json_out.Int ns);
            ]
            @ flags))
    in
    Mutex.lock t.access_lock;
    (try
       output_string oc line;
       output_char oc '\n';
       flush oc
     with Sys_error _ -> Metrics.incr m_access_failed);
    Mutex.unlock t.access_lock

let finish_request t ~req ~op ~ok ~t0 ~flags =
  let ns = now_ns () - t0 in
  Metrics.observe (op_hist op) ns;
  access_line t ~req ~op ~ok ~ns ~flags;
  if t.cfg.slow_ms > 0 && ns > t.cfg.slow_ms * 1_000_000 then
    Log.warn "serve: slow request #%d (%s): %d ms (threshold %d ms)" req op
      (ns / 1_000_000) t.cfg.slow_ms

(* ------------------------------------------------------------------ *)
(* Admin plane                                                         *)
(* ------------------------------------------------------------------ *)

let uptime_ns t = int_of_float ((Unix.gettimeofday () -. t.started) *. 1e9)

let extra_gauges t =
  let in_flight =
    Mutex.lock t.lock;
    let n = t.in_flight in
    Mutex.unlock t.lock;
    n
  in
  [ ("serve.uptime_ns", uptime_ns t); ("serve.in_flight", in_flight) ]
  @ (match Rusage.peak_rss_kb () with
     | Some kb -> [ ("serve.peak_rss_kb", kb) ]
     | None -> [])

let create cfg =
  if cfg.jobs < 1 then failwith "serve: jobs must be at least 1";
  if cfg.queue_limit < 1 then failwith "serve: queue limit must be at least 1";
  if String.equal cfg.socket_path "" then failwith "serve: no socket path";
  let cache, recovery =
    Dda_cache.Durable.create ?path:cfg.cache_path ~fsync:cfg.cache_fsync
      ~config:cfg.analyzer ()
  in
  let access =
    match cfg.access_log with
    | None -> None
    | Some path -> (
        try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
        with Sys_error msg -> failwith ("serve: cannot open access log: " ^ msg))
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      cfg;
      cache;
      pool = Dda_engine.Pool.create ~jobs:cfg.jobs;
      stop_r;
      stop_w;
      lock = Mutex.create ();
      idle = Condition.create ();
      started = Unix.gettimeofday ();
      serving = Atomic.make false;
      access;
      access_lock = Mutex.create ();
      admin = None;
      next_req = 0;
      in_flight = 0;
      conns = [];
      requests = 0;
      shed = 0;
      quarantined = 0;
    }
  in
  t, recovery

let drain t =
  (* Runs inside a signal handler: one write, nothing else. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* A failed write means the peer is gone: mark the connection for
   reaping, never kill the server. *)
let respond conn json =
  let line = Json_out.to_string json ^ "\n" in
  Mutex.lock conn.wlock;
  (try
     write_all conn.fd line;
     Metrics.incr m_responses
   with Unix.Unix_error _ | Sys_error _ -> conn.eof <- true);
  Mutex.unlock conn.wlock

let error_response id msg extra =
  Json_out.Obj
    ([ ("id", id); ("ok", Json_out.Bool false) ]
     @ extra
     @ [ ("error", Json_out.Str msg) ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let request_id req =
  match Json_out.member "id" req with Some v -> v | None -> Json_out.Null

let deadline_cancel ms =
  if ms <= 0 then fun () -> false
  else begin
    let until = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    fun () -> Unix.gettimeofday () > until
  end

let bool_member name req =
  match Json_out.member name req with
  | Some (Json_out.Bool b) -> b
  | _ -> false

let explain_json (snap : Attrib.snapshot) (stats : Analyzer.stats) =
  Json_out.Obj
    [
      ( "stages",
        Json_out.Obj
          (List.map
             (fun (stage, (s : Attrib.stage_stat)) ->
                ( Attrib.stage_name stage,
                  Json_out.Obj
                    [ ("calls", Json_out.Int s.Attrib.calls);
                      ("ns", Json_out.Int s.Attrib.ns) ] ))
             snap.Attrib.stages) );
      ( "memo",
        Json_out.Obj
          [
            ("gcd_lookups", Json_out.Int stats.Analyzer.memo_lookups_nobounds);
            ("gcd_hits", Json_out.Int stats.Analyzer.memo_hits_nobounds);
            ("full_lookups", Json_out.Int stats.Analyzer.memo_lookups_full);
            ("full_hits", Json_out.Int stats.Analyzer.memo_hits_full);
          ] );
      ("budget_steps", Json_out.Int snap.Attrib.budget_steps);
      ("degraded", Json_out.Bool (stats.Analyzer.degraded_pairs > 0));
    ]

type analyze_outcome = {
  json : (Json_out.t, string * (string * Json_out.t) list) result;
  a_ok : bool;
  a_flags : (string * Json_out.t) list;  (* access-log flags *)
}

let analyze_task t conn req id ~rid ~t0 () =
  let outcome =
    try
      Failpoint.hit "serve.request";
      match Json_out.member "program" req with
      | Some (Json_out.Str src) ->
          let timeout_ms =
            match Json_out.member "timeout_ms" req with
            | Some (Json_out.Int ms) -> ms
            | _ -> t.cfg.request_timeout_ms
          in
          let prog = Parser.parse_program src in
          (* The attribution window also feeds the access log (budget
             steps, degradation), so it is open for every analyze, not
             just explained ones; its cost is a handful of clock reads
             per cascade stage. *)
          let report, snap =
            Attrib.collect (fun () ->
                Analyzer.analyze ~config:t.cfg.analyzer
                  ~cancel:(deadline_cancel timeout_ms)
                  ~cache:(Dda_cache.Durable.cache t.cache)
                  prog)
          in
          let stats = report.Analyzer.stats in
          let want_stats = bool_member "stats" req in
          let want_explain = bool_member "explain" req in
          let degraded = stats.Analyzer.degraded_pairs > 0 in
          {
            json =
              Ok
                (Json_out.Obj
                   ([
                      ("id", id);
                      ("ok", Json_out.Bool true);
                      ( "pairs",
                        Json_out.List
                          (List.map Json_out.pair report.Analyzer.pair_reports)
                      );
                    ]
                    @ (if want_stats then
                         [ ("stats", Json_out.stats stats) ]
                       else [])
                    @
                    if want_explain then
                      [ ("explain", explain_json snap stats) ]
                    else []));
            a_ok = true;
            a_flags =
              [
                ("degraded", Json_out.Bool degraded);
                ( "memo_hits",
                  Json_out.Int
                    (stats.Analyzer.memo_hits_nobounds
                     + stats.Analyzer.memo_hits_full) );
                ( "memo_lookups",
                  Json_out.Int
                    (stats.Analyzer.memo_lookups_nobounds
                     + stats.Analyzer.memo_lookups_full) );
                ("budget_steps", Json_out.Int snap.Attrib.budget_steps);
              ];
          }
      | _ ->
        { json = Error ("analyze: missing \"program\" string", []);
          a_ok = false; a_flags = [] }
    with
    | Parser.Error (msg, loc) ->
        { json = Error (Format.asprintf "%a: syntax error: %s" Loc.pp loc msg, []);
          a_ok = false; a_flags = [] }
    | Lexer.Error (msg, loc) ->
        { json = Error (Format.asprintf "%a: lexical error: %s" Loc.pp loc msg, []);
          a_ok = false; a_flags = [] }
    | e ->
        (* Poisoned request: quarantine it — answer with the failure,
           keep the worker. *)
        Mutex.lock t.lock;
        t.quarantined <- t.quarantined + 1;
        Mutex.unlock t.lock;
        Metrics.incr m_quarantined;
        { json =
            Error
              ( Printexc.to_string e,
                [ ("quarantined", Json_out.Bool true) ] );
          a_ok = false;
          a_flags = [ ("quarantined", Json_out.Bool true) ] }
  in
  (match outcome.json with
   | Ok json -> respond conn json
   | Error (msg, extra) -> respond conn (error_response id msg extra));
  finish_request t ~req:rid ~op:"analyze" ~ok:outcome.a_ok ~t0
    ~flags:outcome.a_flags;
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight - 1;
  conn.pending <- conn.pending - 1;
  if t.in_flight = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.lock

let status_json t =
  let gcd_entries, full_entries = Dda_cache.Durable.table_sizes t.cache in
  Mutex.lock t.lock;
  let requests = t.requests
  and in_flight = t.in_flight
  and shed = t.shed
  and quarantined = t.quarantined in
  Mutex.unlock t.lock;
  Json_out.Obj
    [
      ("ok", Json_out.Bool true);
      ( "server",
        Json_out.Obj
          ([
             ("jobs", Json_out.Int t.cfg.jobs);
             ("queue_limit", Json_out.Int t.cfg.queue_limit);
             ("requests", Json_out.Int requests);
             ("in_flight", Json_out.Int in_flight);
             ("shed", Json_out.Int shed);
             ("quarantined", Json_out.Int quarantined);
             ("uptime_ns", Json_out.Int (uptime_ns t));
           ]
           @ (match Rusage.peak_rss_kb () with
              | Some kb -> [ ("peak_rss_kb", Json_out.Int kb) ]
              | None -> [])
           @ [
               ( "cache",
                 Json_out.Obj
                   [
                     ( "path",
                       match Dda_cache.Durable.store_path t.cache with
                       | Some p -> Json_out.Str p
                       | None -> Json_out.Null );
                     ("gcd_entries", Json_out.Int gcd_entries);
                     ("full_entries", Json_out.Int full_entries);
                     ("records", Json_out.Int (gcd_entries + full_entries));
                     ( "appends",
                       Json_out.Int (Dda_cache.Durable.store_appends t.cache) );
                   ] );
             ]) );
    ]

let handle_line t conn line =
  Metrics.incr m_requests;
  let t0 = now_ns () in
  Mutex.lock t.lock;
  t.requests <- t.requests + 1;
  t.next_req <- t.next_req + 1;
  let rid = t.next_req in
  Mutex.unlock t.lock;
  let finish = finish_request t ~req:rid ~t0 in
  match Json_out.of_string line with
  | Error msg ->
      respond conn (error_response Json_out.Null ("bad request: " ^ msg) []);
      finish ~op:"invalid" ~ok:false ~flags:[]
  | Ok req -> (
      let id = request_id req in
      match Json_out.member "op" req with
      | Some (Json_out.Str "ping") ->
          respond conn
            (Json_out.Obj
               [ ("id", id); ("ok", Json_out.Bool true); ("pong", Json_out.Bool true) ]);
          finish ~op:"ping" ~ok:true ~flags:[]
      | Some (Json_out.Str "status") ->
          respond conn (status_json t);
          finish ~op:"status" ~ok:true ~flags:[]
      | Some (Json_out.Str "analyze") ->
          (* Shed before queueing: the queue is bounded by refusal, not
             by blocking the accept loop. *)
          Mutex.lock t.lock;
          let depth = t.in_flight in
          let accept = depth < t.cfg.queue_limit in
          if accept then begin
            t.in_flight <- t.in_flight + 1;
            conn.pending <- conn.pending + 1
          end
          else t.shed <- t.shed + 1;
          Mutex.unlock t.lock;
          Metrics.observe m_queue_depth depth;
          if accept then
            ignore
              (Dda_engine.Pool.submit t.pool
                 (analyze_task t conn req id ~rid ~t0))
          else begin
            Metrics.incr m_shed;
            respond conn
              (error_response id
                 (Printf.sprintf
                    "server overloaded: %d request(s) outstanding (limit %d)"
                    depth t.cfg.queue_limit)
                 [ ("shed", Json_out.Bool true) ]);
            finish ~op:"analyze" ~ok:false
              ~flags:[ ("shed", Json_out.Bool true) ]
          end
      | Some (Json_out.Str op) ->
          respond conn (error_response id ("unknown op: " ^ op) []);
          finish ~op:"invalid" ~ok:false ~flags:[]
      | _ ->
          respond conn (error_response id "missing \"op\"" []);
          finish ~op:"invalid" ~ok:false ~flags:[])

(* ------------------------------------------------------------------ *)
(* The accept/read loop                                                *)
(* ------------------------------------------------------------------ *)

let drain_lines t conn =
  let contents = Buffer.contents conn.rbuf in
  let n = String.length contents in
  let start = ref 0 in
  (try
     while !start < n do
       let nl = String.index_from contents !start '\n' in
       let line = String.sub contents !start (nl - !start) in
       start := nl + 1;
       if not (String.equal (String.trim line) "") then handle_line t conn line
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear conn.rbuf;
    Buffer.add_substring conn.rbuf contents !start (n - !start)
  end

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      drain_lines t conn
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> conn.eof <- true

let rec select_intr r timeout =
  try Unix.select r [] [] timeout
  with Unix.Unix_error (EINTR, _, _) -> select_intr r timeout

let admin_routes t =
  [
    ( "/metrics",
      fun () ->
        Admin.ok_text
          (Expo.to_string ~extra_gauges:(extra_gauges t) (Metrics.snapshot ()))
    );
    ("/healthz", fun () -> Admin.ok_text "ok\n");
    ( "/readyz",
      fun () ->
        if not (Atomic.get t.serving) then Admin.unavailable "draining\n"
        else begin
          Mutex.lock t.lock;
          let headroom = t.in_flight < t.cfg.queue_limit in
          Mutex.unlock t.lock;
          if headroom then Admin.ok_text "ready\n"
          else Admin.unavailable "saturated\n"
        end );
    ("/status", fun () -> Admin.ok_json (Json_out.to_string (status_json t)));
    ( "/tracez",
      fun () ->
        (* Drain: a scrape empties the ring, so consecutive scrapes
           hand out disjoint event windows. *)
        let body = Trace.to_chrome_string () in
        Trace.clear ();
        Admin.ok_json body );
  ]

let admin_port t = Option.map Admin.port t.admin

let run t =
  let cfg = t.cfg in
  (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) : unit);
  (* A predecessor killed with -9 leaves its socket file behind; a
     crash-safe daemon must start over it. *)
  if Sys.file_exists cfg.socket_path then (
    match (Unix.stat cfg.socket_path).st_kind with
    | Unix.S_SOCK -> Unix.unlink cfg.socket_path
    | _ -> failwith (Printf.sprintf "serve: %s exists and is not a socket" cfg.socket_path));
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  Log.info "serve: listening on %s (%d worker(s), queue limit %d)"
    cfg.socket_path cfg.jobs cfg.queue_limit;
  Atomic.set t.serving true;
  (match cfg.admin_port with
   | None -> ()
   | Some port ->
     let admin = Admin.create ~port ~routes:(admin_routes t) in
     Admin.start admin;
     t.admin <- Some admin;
     Log.info "serve: admin listening on 127.0.0.1:%d" (Admin.port admin));
  let draining = ref false in
  while not !draining do
    (* Reap connections whose peer left and whose workers finished. *)
    Mutex.lock t.lock;
    let live, dead = List.partition (fun c -> not (c.eof && c.pending = 0)) t.conns in
    t.conns <- live;
    Mutex.unlock t.lock;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead;
    let readable =
      t.stop_r :: listen_fd
      :: List.filter_map (fun c -> if c.eof then None else Some c.fd) live
    in
    let ready, _, _ = select_intr readable 0.5 in
    if List.mem t.stop_r ready then draining := true
    else begin
      if List.mem listen_fd ready then begin
        let fd, _ = Unix.accept ~cloexec:true listen_fd in
        let conn =
          { fd; rbuf = Buffer.create 256; wlock = Mutex.create ();
            pending = 0; eof = false }
        in
        Mutex.lock t.lock;
        t.conns <- conn :: t.conns;
        Mutex.unlock t.lock
      end;
      List.iter
        (fun c -> if (not c.eof) && List.mem c.fd ready then read_conn t c)
        live
    end
  done;
  (* Graceful drain: no new intake, finish in-flight, make the cache
     durable, then release everything and let the caller exit 0. *)
  Log.info "serve: draining";
  Atomic.set t.serving false;
  Mutex.lock t.lock;
  while t.in_flight > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock;
  Dda_engine.Pool.shutdown t.pool;
  Dda_cache.Durable.close t.cache;
  (* The admin plane outlives intake (a scrape during drain still
     answers, with /readyz at 503) and dies before the process exits. *)
  (match t.admin with Some a -> Admin.stop a | None -> ());
  t.admin <- None;
  (match t.access with
   | Some oc -> (try close_out oc with Sys_error _ -> ())
   | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  Unix.close listen_fd;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.close t.stop_r;
  Unix.close t.stop_w;
  Log.info "serve: drained (%d request(s) served, %d shed, %d quarantined)"
    t.requests t.shed t.quarantined
