(** The [ddtest serve] daemon: a long-lived analysis service on a Unix
    domain socket, backed by the durable memo cache.

    Protocol: JSON Lines, one request and one response per line (the
    serializer escapes newlines inside strings, so a line is always a
    complete JSON value). Requests:

    {v
    {"op":"ping"}
    {"op":"status"}
    {"op":"analyze","id":1,"program":"for i = 1 to 10 { ... }",
     "stats":true,"explain":true,"timeout_ms":500}
    v}

    [id] is echoed back (null when absent); [stats] (default false)
    adds the full statistics object to the response; [explain]
    (default false) adds an ["explain"] block attributing the
    request's time per cascade stage ({!Dda_obs.Attrib}) alongside
    memo hit counts, budget steps spent and the degradation flag — the
    answer to "why was this query slow?"; [timeout_ms] overrides the
    server's default per-request deadline. Responses:

    {v
    {"id":1,"ok":true,"pairs":[...]}            analysis result
    {"id":1,"ok":true,"pairs":[...],"stats":{...}}
    {"ok":true,"pong":true}
    {"ok":true,"server":{...}}                  status
    {"id":1,"ok":false,"error":"..."}           bad request / parse error
    {"id":1,"ok":false,"error":"...","quarantined":true}
                                                request poisoned a worker
    {"id":1,"ok":false,"shed":true,"error":"server overloaded: ..."}
                                                load shed
    v}

    The [pairs] array reuses the exact per-pair JSON shape of
    [ddtest analyze --json] ({!Dda_core.Json_out.pair}); [stats] is
    {!Dda_core.Json_out.stats}. Analysis responses omit statistics
    unless asked: memo hit counters differ between a cold and a warm
    cache, and the default response must be byte-identical across
    restarts (the chaos suite diffs them).

    Robustness contract:
    - {e Load shedding}: at most [queue_limit] requests outstanding;
      beyond that the server answers immediately with a [shed]
      response instead of queueing unboundedly.
    - {e Quarantine}: a request that makes a worker raise gets an
      error response; the worker survives and keeps serving.
    - {e Deadlines}: each request runs under a cooperative watchdog;
      an expired deadline degrades remaining verdicts (sound
      over-approximation, flagged [degraded]) rather than hanging the
      worker.
    - {e Graceful drain}: {!drain} (async-signal-safe) stops intake,
      finishes in-flight requests, flushes and fsyncs the cache,
      closes and unlinks the socket; {!run} then returns so the
      process can exit 0.
    - {e Crash safety}: every memo miss is appended to the durable
      store before the response is written; kill -9 at any moment
      (failpoint sites [cache.append], [cache.append.mid],
      [cache.flush], [serve.request]) leaves a store the next start
      recovers to an intact prefix of.
    - {e Telemetry is never load-bearing}: the admin plane
      ({!Admin}), access log and attribution windows observe the data
      path but are not read by it; an admin-plane or log-write failure
      becomes a counter ([serve.access_log.failed], [admin.errors]),
      never a failed query.

    Operational telemetry (all opt-in via {!config}):
    - [admin_port] starts an {!Admin} HTTP listener on 127.0.0.1
      with [/metrics] (Prometheus exposition of the {!Dda_obs.Metrics}
      registry plus uptime/RSS/in-flight gauges), [/healthz],
      [/readyz] (503 while draining or saturated), [/status] (the
      socket [status] JSON) and [/tracez] (drains the Chrome trace
      ring).
    - [access_log] appends one JSONL line per request — server
      request id, op, latency, shed/quarantined/degraded flags, memo
      hits and budget steps — written when the response is known, so
      the line count equals the request count once drained.
    - [slow_ms] logs a warning for any request slower than the
      threshold. Per-op latency lands in [serve.op.*.ns] histograms
      regardless.

    Server-assigned request ids appear only in logs, never in
    responses: the default response must stay byte-identical across
    restarts. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains *)
  queue_limit : int;  (** max outstanding (queued + running) requests *)
  request_timeout_ms : int;  (** default per-request deadline; 0 = none *)
  analyzer : Dda_core.Analyzer.config;
  cache_path : string option;  (** durable store; [None] = memory only *)
  cache_fsync : bool;
  admin_port : int option;  (** HTTP admin plane; 0 = ephemeral port *)
  access_log : string option;  (** JSONL access log path (appended) *)
  slow_ms : int;  (** slow-request log threshold; 0 = off *)
}

val default_config : Dda_core.Analyzer.config -> config
(** jobs 2, queue_limit 64, no deadline, no durable store, no admin
    plane, no access log. *)

type t

val create : config -> t * Dda_cache.Store.recovery option
(** Open (and recover) the cache and spawn the worker pool. The
    socket itself is bound by {!run}.
    @raise Failure on cache I/O errors or invalid configuration. *)

val drain : t -> unit
(** Request graceful shutdown. Async-signal-safe (one [write] to a
    self-pipe): install it directly as the SIGINT/SIGTERM handler. *)

val admin_port : t -> int option
(** The bound admin port once {!run} has started the admin plane
    ([Some] only when the config asked for one); with [admin_port =
    Some 0] this is where the ephemeral port shows up. *)

val run : t -> unit
(** Bind the socket (unlinking any stale file a crashed predecessor
    left), serve until {!drain}, then finish in-flight work, flush the
    cache and release every resource. *)
