(* Minimal JSON for the bench harness's machine-readable results: the
   core Json_out is integer-only and write-only, while perf results
   need floats both ways (emit BENCH_results.json, re-read it in the
   --compare regression gate). Self-contained so the library proper
   never grows a JSON parser for the benchmarks' sake. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Num f -> Format.pp_print_string fmt (number_to_string f)
  | Str s -> Format.fprintf fmt "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string fmt "[]"
  | List items ->
    Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp)
      items
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
    let field fmt (k, v) = Format.fprintf fmt "@[<hov 2>\"%s\": %a@]" (escape k) pp v in
    Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") field)
      fields

let to_string t = Format.asprintf "%a" pp t

let write file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t ^ "\n"))

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'u' ->
            (* Results files are ASCII; decode BMP escapes bytewise. *)
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s !pos 4) in
            pos := !pos + 4;
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
            go ()
          | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file file =
  let ic = open_in_bin file in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

(* ------------------------------------------------------------------ *)
(* accessors (total: raise on shape mismatch, results files are ours)  *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_num = function
  | Num f -> f
  | v -> raise (Parse_error ("expected number, got " ^ to_string v))

let to_str = function
  | Str s -> s
  | v -> raise (Parse_error ("expected string, got " ^ to_string v))

let to_list = function
  | List l -> l
  | v -> raise (Parse_error ("expected array, got " ^ to_string v))
