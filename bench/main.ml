(* The benchmark harness: regenerates an analog of every table in the
   paper's evaluation on the synthetic PERFECT Club, plus the section 7
   accuracy comparison against the inexact baseline, the per-test
   return rates, and Bechamel micro-benchmarks of per-test cost.

   Absolute numbers differ from the paper (different machine, synthetic
   workload); the shapes are the claims under test: SVPC dominates,
   memoization collapses the test count by an order of magnitude,
   direction vectors explode without pruning and recover with it,
   symbolic testing adds a little work, the baseline misses
   independences and over-reports direction vectors, and the per-test
   costs are ordered SVPC < Acyclic < Loop Residue < Fourier-Motzkin. *)

open Dda_lang
open Dda_core
open Dda_perfect

let programs =
  List.map
    (fun (spec : Programs.spec) ->
       (spec, Parser.parse_program (Programs.source spec)))
    Programs.all

let line () = print_endline (String.make 78 '-')

let section title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

(* Configurations named after the tables they regenerate. *)
let cfg_table1 =
  {
    Analyzer.default_config with
    Analyzer.directions = false;
    memo = Analyzer.Memo_off;
    symbolic = false;
  }

let cfg_memo memo = { cfg_table1 with Analyzer.memo }

let cfg_directions ~prune ~symbolic ~memo =
  { Analyzer.default_config with Analyzer.prune; symbolic; memo }

let analyze_all config =
  List.map
    (fun (spec, prog) -> (spec, Analyzer.analyze ~config prog))
    programs

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1: times each test is called per program\n\
     (plain cascade; no memoization, no direction vectors, no symbolic terms)";
  Printf.printf "%-5s %7s %9s %7s %8s %8s %9s %8s\n" "Prog" "#Lines" "Constant"
    "GCD" "SVPC" "Acyclic" "LoopRes" "Fourier";
  let tot = Array.make 6 0 in
  List.iter
    (fun ((spec : Programs.spec), (r : Analyzer.report)) ->
       let s = r.stats in
       let row =
         [|
           s.constant_cases; s.gcd_independent; s.plain_by_test.(0);
           s.plain_by_test.(1); s.plain_by_test.(2); s.plain_by_test.(3);
         |]
       in
       Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row;
       Printf.printf "%-5s %7d %9d %7d %8d %8d %9d %8d\n" spec.name spec.lines
         row.(0) row.(1) row.(2) row.(3) row.(4) row.(5))
    (analyze_all cfg_table1);
  Printf.printf "%-5s %7s %9d %7d %8d %8d %9d %8d\n" "TOTAL" "" tot.(0) tot.(1)
    tot.(2) tot.(3) tot.(4) tot.(5)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let pct n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d

let table2 () =
  section
    "Table 2: memoization effectiveness, % of cases that are unique\n\
     (simple = exact-match keys; improved = unused loop variables eliminated)";
  Printf.printf "%-5s | %28s | %28s\n" "" "without bounds (GCD table)"
    "with bounds (full table)";
  Printf.printf "%-5s | %8s %9s %9s | %8s %9s %9s\n" "Prog" "total" "simple%"
    "improved%" "total" "simple%" "improved%";
  let simple = analyze_all (cfg_memo Analyzer.Memo_simple) in
  let improved = analyze_all (cfg_memo Analyzer.Memo_improved) in
  List.iter2
    (fun ((spec : Programs.spec), (rs : Analyzer.report))
      ((_ : Programs.spec), (ri : Analyzer.report)) ->
       let ss = rs.stats and si = ri.stats in
       Printf.printf "%-5s | %8d %8.1f%% %8.1f%% | %8d %8.1f%% %8.1f%%\n" spec.name
         ss.memo_lookups_nobounds
         (pct ss.memo_unique_nobounds ss.memo_lookups_nobounds)
         (pct si.memo_unique_nobounds si.memo_lookups_nobounds)
         ss.memo_lookups_full
         (pct ss.memo_unique_full ss.memo_lookups_full)
         (pct si.memo_unique_full si.memo_lookups_full))
    simple improved;
  let sum f l = List.fold_left (fun acc (_, (r : Analyzer.report)) -> acc + f r.Analyzer.stats) 0 l in
  Printf.printf "%-5s | %8d %8.1f%% %8.1f%% | %8d %8.1f%% %8.1f%%\n" "TOT"
    (sum (fun s -> s.Analyzer.memo_lookups_nobounds) simple)
    (pct (sum (fun s -> s.Analyzer.memo_unique_nobounds) simple)
       (sum (fun s -> s.Analyzer.memo_lookups_nobounds) simple))
    (pct (sum (fun s -> s.Analyzer.memo_unique_nobounds) improved)
       (sum (fun s -> s.Analyzer.memo_lookups_nobounds) improved))
    (sum (fun s -> s.Analyzer.memo_lookups_full) simple)
    (pct (sum (fun s -> s.Analyzer.memo_unique_full) simple)
       (sum (fun s -> s.Analyzer.memo_lookups_full) simple))
    (pct (sum (fun s -> s.Analyzer.memo_unique_full) improved)
       (sum (fun s -> s.Analyzer.memo_lookups_full) improved))

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section
    "Table 3: tests actually run with memoization on (unique cases only)";
  Printf.printf "%-5s %11s %8s %8s %9s %8s\n" "Prog" "TotalCases" "SVPC"
    "Acyclic" "LoopRes" "Fourier";
  let tot = Array.make 5 0 in
  let without = analyze_all cfg_table1 in
  let withmemo = analyze_all (cfg_memo Analyzer.Memo_improved) in
  List.iter
    (fun ((spec : Programs.spec), (r : Analyzer.report)) ->
       let s = r.stats in
       let row =
         [|
           s.memo_lookups_full; s.plain_by_test.(0); s.plain_by_test.(1);
           s.plain_by_test.(2); s.plain_by_test.(3);
         |]
       in
       Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row;
       Printf.printf "%-5s %11d %8d %8d %9d %8d\n" spec.name row.(0) row.(1)
         row.(2) row.(3) row.(4))
    withmemo;
  Printf.printf "%-5s %11d %8d %8d %9d %8d\n" "TOTAL" tot.(0) tot.(1) tot.(2)
    tot.(3) tot.(4);
  let before =
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) ->
         let s = r.Analyzer.stats in
         acc + s.plain_by_test.(0) + s.plain_by_test.(1) + s.plain_by_test.(2)
         + s.plain_by_test.(3))
      0 without
  in
  let after = tot.(1) + tot.(2) + tot.(3) + tot.(4) in
  Printf.printf
    "\nMemoization reduces the exact-test count from %d to %d (%.1fx)\n" before
    after
    (if after = 0 then 0.0 else float_of_int before /. float_of_int after)

(* ------------------------------------------------------------------ *)
(* Tables 4, 5, 7                                                      *)
(* ------------------------------------------------------------------ *)

let direction_table title config =
  section title;
  Printf.printf "%-5s %8s %8s %9s %8s %9s\n" "Prog" "SVPC" "Acyclic" "LoopRes"
    "Fourier" "Total";
  let tot = Array.make 4 0 in
  let results = analyze_all config in
  List.iter
    (fun ((spec : Programs.spec), (r : Analyzer.report)) ->
       let c = r.stats.dir_counts.Direction.by_test in
       Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) c;
       Printf.printf "%-5s %8d %8d %9d %8d %9d\n" spec.name c.(0) c.(1) c.(2)
         c.(3)
         (c.(0) + c.(1) + c.(2) + c.(3)))
    results;
  Printf.printf "%-5s %8d %8d %9d %8d %9d\n" "TOTAL" tot.(0) tot.(1) tot.(2)
    tot.(3)
    (tot.(0) + tot.(1) + tot.(2) + tot.(3));
  results

let table4 () =
  direction_table
    "Table 4: direction-vector tests, hierarchical but NO pruning\n\
     (unique cases; every vector of the Burke-Cytron hierarchy tested)"
    (cfg_directions ~prune:Direction.no_pruning ~symbolic:false
       ~memo:Analyzer.Memo_improved)

let table5 () =
  direction_table
    "Table 5: direction-vector tests with unused-variable elimination\n\
     and distance-vector pruning"
    (cfg_directions ~prune:Direction.full_pruning ~symbolic:false
       ~memo:Analyzer.Memo_improved)

let table7 () =
  direction_table
    "Table 7: direction-vector tests with symbolic terms enabled (section 8)"
    (cfg_directions ~prune:Direction.full_pruning ~symbolic:true
       ~memo:Analyzer.Memo_improved)

(* ------------------------------------------------------------------ *)
(* Table 6: cost of dependence testing vs whole compilation            *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let table6 () =
  section
    "Table 6 analog: absolute cost of exact dependence testing\n\
     (the paper compared against f77 -O3 on 500-18,500-line Fortran and saw\n\
     ~3% overhead; our front end is a thin mini-language compiler, so the\n\
     meaningful measures here are absolute and per-pair cost)";
  Printf.printf "%-5s %8s %14s %14s %14s\n" "Prog" "pairs" "dep test (ms)"
    "us per pair" "front end (ms)";
  let tot_a = ref 0.0 and tot_c = ref 0.0 and tot_p = ref 0 in
  List.iter
    (fun ((spec : Programs.spec), _) ->
       let src = Programs.source spec in
       (* The front end: parsing, semantic checks and the optimizer. *)
       let prepared, t_compile =
         time (fun () ->
             let prog = Parser.parse_program src in
             ignore (Semant.check prog);
             Dda_passes.Pipeline.run prog)
       in
       let report, t_analyze =
         time (fun () ->
             Analyzer.analyze
               ~config:{ Analyzer.default_config with Analyzer.run_pipeline = false }
               prepared)
       in
       let pairs = report.Analyzer.stats.pairs in
       tot_a := !tot_a +. t_analyze;
       tot_c := !tot_c +. t_compile;
       tot_p := !tot_p + pairs;
       Printf.printf "%-5s %8d %14.2f %14.2f %14.2f\n" spec.name pairs
         (t_analyze *. 1e3)
         (t_analyze *. 1e6 /. float_of_int (max 1 pairs))
         (t_compile *. 1e3))
    programs;
  Printf.printf "%-5s %8d %14.2f %14.2f %14.2f\n" "TOTAL" !tot_p (!tot_a *. 1e3)
    (!tot_a *. 1e6 /. float_of_int (max 1 !tot_p))
    (!tot_c *. 1e3)

(* ------------------------------------------------------------------ *)
(* Section 7: accuracy against the inexact baseline                    *)
(* ------------------------------------------------------------------ *)

let all_problem_pairs config =
  (* Every non-self, same-array, >=1-write pair of every program,
     together with the exact analyzer's verdicts. *)
  List.concat_map
    (fun ((_ : Programs.spec), prog) ->
       let prepared = Dda_passes.Pipeline.run prog in
       let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prepared in
       let report =
         Analyzer.analyze ~config:{ config with Analyzer.run_pipeline = false }
           prepared
       in
       let by_locs = Hashtbl.create 64 in
       List.iter
         (fun (r : Analyzer.pair_report) ->
            if not r.self_pair then Hashtbl.replace by_locs (r.loc1, r.loc2) r)
         report.pair_reports;
       let arr = Array.of_list sites in
       let out = ref [] in
       for i = 0 to Array.length arr - 1 do
         for j = i + 1 to Array.length arr - 1 do
           let s1 = arr.(i) and s2 = arr.(j) in
           match Hashtbl.find_opt by_locs (s1.Affine.site_loc, s2.Affine.site_loc) with
           | Some r -> (
               match Build_problem.build s1 s2 with
               | Some p -> out := (p, r) :: !out
               | None -> ())
           | None -> ()
         done
       done;
       !out)
    programs

let accuracy () =
  section
    "Section 7 analog: exact analyzer vs simple GCD + Banerjee bounds baseline";
  let config =
    cfg_directions ~prune:Direction.full_pruning ~symbolic:true
      ~memo:Analyzer.Memo_improved
  in
  let pairs = all_problem_pairs config in
  let exact_indep = ref 0 and base_indep = ref 0 and total = ref 0 in
  let exact_vectors = ref 0 and base_vectors = ref 0 in
  List.iter
    (fun ((p : Problem.t), (r : Analyzer.pair_report)) ->
       (* Constant-subscript pairs never reach the dependence tests in
          either system (the paper's "array constants" column); compare
          the tests on the rest. *)
       match r.outcome with
       | Analyzer.Constant _ -> ()
       | _ ->
         incr total;
         let exact_is_indep, evecs =
           match r.outcome with
           | Analyzer.Constant d -> (not d, [])
           | Analyzer.Gcd_independent -> (true, [])
           | Analyzer.Assumed_dependent -> (false, [])
           | Analyzer.Tested t -> (not t.dependent, t.directions)
         in
         if exact_is_indep then incr exact_indep;
         exact_vectors := !exact_vectors + List.length evecs;
         (match Dda_baselines.Banerjee.combined p with
          | Dda_baselines.Banerjee.Independent -> incr base_indep
          | Dda_baselines.Banerjee.Maybe_dependent -> ());
         match Dda_baselines.Banerjee.directions p with
         | None -> ()
         | Some vs -> base_vectors := !base_vectors + List.length vs)
    pairs;
  Printf.printf "reference pairs compared:        %d\n" !total;
  Printf.printf "independent pairs (exact):       %d\n" !exact_indep;
  Printf.printf "independent pairs (baseline):    %d  (misses %d = %.1f%%)\n"
    !base_indep (!exact_indep - !base_indep)
    (pct (!exact_indep - !base_indep) !exact_indep);
  Printf.printf "direction vectors (exact):       %d\n" !exact_vectors;
  Printf.printf "direction vectors (baseline):    %d  (%.1f%% more than exact)\n"
    !base_vectors
    (pct (!base_vectors - !exact_vectors) !exact_vectors)

(* ------------------------------------------------------------------ *)
(* Section 7: per-test independent-return rates; section 6 implicit BB *)
(* ------------------------------------------------------------------ *)

let returns results =
  section
    "Section 7 analog: how often each test answers \"independent\"\n\
     (in the Table 5 configuration)";
  let tot = Array.make 4 0 and ind = Array.make 4 0 in
  List.iter
    (fun ((_ : Programs.spec), (r : Analyzer.report)) ->
       Array.iteri
         (fun i v ->
            tot.(i) <- tot.(i) + v;
            ind.(i) <- ind.(i) + r.stats.dir_counts.Direction.indep_by_test.(i))
         r.stats.dir_counts.Direction.by_test)
    results;
  List.iteri
    (fun i name ->
       Printf.printf "%-14s independent in %4d of %4d calls (%.0f%%)\n" name
         ind.(i) tot.(i) (pct ind.(i) tot.(i)))
    [ "SVPC"; "Acyclic"; "Loop Residue"; "Fourier" ];
  let bb =
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) -> acc + r.Analyzer.stats.implicit_bb_cases)
      0 results
  in
  Printf.printf
    "\nImplicit branch-and-bound (section 6): %d pairs proven independent\n\
     only by refining every direction vector.\n"
    bb

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Representative reduced systems, one per cascade stage, taken from the
   pattern generators so they match what the suite actually tests. *)
let representative_system ?(seed = 7) category =
  let rng = Prng.create seed in
  let rec hunt tries =
    if tries > 200 then failwith "no representative system found"
    else begin
      let src = Patterns.generate rng category in
      let prog = Dda_passes.Pipeline.run (Parser.parse_program src) in
      let sites = Affine.extract ~symbolic:false prog in
      let candidates =
        let arr = Array.of_list sites in
        let out = ref [] in
        for i = 0 to Array.length arr - 1 do
          for j = i + 1 to Array.length arr - 1 do
            let s1 = arr.(i) and s2 = arr.(j) in
            if String.equal s1.Affine.array s2.Affine.array
               && (s1.Affine.role = `Write || s2.Affine.role = `Write)
               && Affine.common_loops s1 s2 >= 1
            then out := (s1, s2) :: !out
          done
        done;
        !out
      in
      let found =
        List.find_map
          (fun (s1, s2) ->
             match Build_problem.build s1 s2 with
             | None -> None
             | Some p -> (
                 match Gcd_test.run p with
                 | Gcd_test.Independent _ -> None
                 | Gcd_test.Reduced red ->
                   let sys = red.Gcd_test.system in
                   let decided = (Cascade.run sys).Cascade.decided_by in
                   let wanted =
                     match category with
                     | Patterns.Svpc -> Cascade.T_svpc
                     | Patterns.Acyclic -> Cascade.T_acyclic
                     | Patterns.Loop_residue -> Cascade.T_loop_residue
                     | Patterns.Fourier -> Cascade.T_fourier
                     | Patterns.Constant | Patterns.Gcd_indep | Patterns.Symbolic_mix ->
                       Cascade.T_fourier
                   in
                   if decided = wanted then Some sys else None))
          candidates
      in
      match found with Some sys -> sys | None -> hunt (tries + 1)
    end
  in
  hunt 0

let microbench ?(nbatch = 16) ?(quota = 0.25) () =
  section
    "Per-test cost (Bechamel): the paper's ordering is\n\
     SVPC < Acyclic < Loop Residue < Fourier-Motzkin";
  let open Bechamel in
  (* Average each test over a batch of the systems its cascade stage
     actually decides, the way the paper reports msec/test. The acyclic
     and loop-residue benchmarks start from the simplified systems
     their cascade predecessors hand over. *)
  let batch cat = List.init nbatch (fun i -> representative_system ~seed:(500 + (7 * i)) cat) in
  let svpc_batch = batch Patterns.Svpc in
  let fm_batch = batch Patterns.Fourier in
  let acyclic_batch =
    List.filter_map
      (fun sys ->
         match Svpc.run sys with
         | Svpc.Partial (box, multi) -> Some (box, multi)
         | Svpc.Infeasible _ | Svpc.Feasible _ -> None)
      (batch Patterns.Acyclic)
  in
  let lr_batch =
    List.filter_map
      (fun sys ->
         match Svpc.run sys with
         | Svpc.Partial (box, multi) -> (
             match Acyclic.run box multi with
             | Acyclic.Cycle (box', _, core) -> Some (box', core)
             | Acyclic.Infeasible _ | Acyclic.Feasible _ -> None)
         | Svpc.Infeasible _ | Svpc.Feasible _ -> None)
      (batch Patterns.Loop_residue)
  in
  let per_item = Hashtbl.create 8 in
  Hashtbl.replace per_item "dda/test-svpc" (List.length svpc_batch);
  Hashtbl.replace per_item "dda/test-acyclic" (List.length acyclic_batch);
  Hashtbl.replace per_item "dda/test-loop-residue" (List.length lr_batch);
  Hashtbl.replace per_item "dda/test-fourier" (List.length fm_batch);
  Hashtbl.replace per_item "dda/fourier-instead-of-svpc" (List.length svpc_batch);
  let ti = Parser.parse_program (Programs.source (Option.get (Programs.find "TI"))) in
  let tests =
    Test.make_grouped ~name:"dda"
      [
        Test.make ~name:"test-svpc"
          (Staged.stage (fun () -> List.iter (fun s -> ignore (Svpc.run s)) svpc_batch));
        Test.make ~name:"test-acyclic"
          (Staged.stage (fun () ->
               List.iter (fun (b, m) -> ignore (Acyclic.run b m)) acyclic_batch));
        Test.make ~name:"test-loop-residue"
          (Staged.stage (fun () ->
               List.iter (fun (b, c) -> ignore (Loop_residue.run b c)) lr_batch));
        Test.make ~name:"test-fourier"
          (Staged.stage (fun () -> List.iter (fun s -> ignore (Fourier.run s)) fm_batch));
        Test.make ~name:"fourier-instead-of-svpc"
          (Staged.stage (fun () ->
               List.iter (fun s -> ignore (Fourier.run s)) svpc_batch));
        Test.make ~name:"whole-program-TI"
          (Staged.stage (fun () -> Analyzer.analyze ~config:cfg_table1 ti));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, v) ->
       match Analyze.OLS.estimates v with
       | Some [ ns ] ->
         let n = match Hashtbl.find_opt per_item name with Some n when n > 0 -> n | _ -> 1 in
         let per_test = ns /. float_of_int n in
         Printf.printf "%-34s %12.1f ns/test  (batch of %d)\n" name per_test n;
         Some (name, per_test)
       | _ ->
         Printf.printf "%-34s (no estimate)\n" name;
         None)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations";
  (* Whole-suite wall clock for the plain cascade. *)
  let plain, t_cascade = time (fun () -> analyze_all cfg_table1) in
  let count_work l =
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) ->
         let s = r.Analyzer.stats in
         acc + s.plain_by_test.(0) + s.plain_by_test.(1) + s.plain_by_test.(2)
         + s.plain_by_test.(3))
      0 l
  in
  Printf.printf "cascade, %d plain tests over the suite:      %.1f ms\n"
    (count_work plain) (t_cascade *. 1e3);
  (* Memoization wall-clock effect. *)
  let _, t_off = time (fun () -> analyze_all (cfg_memo Analyzer.Memo_off)) in
  let _, t_simple = time (fun () -> analyze_all (cfg_memo Analyzer.Memo_simple)) in
  let _, t_impr = time (fun () -> analyze_all (cfg_memo Analyzer.Memo_improved)) in
  Printf.printf "memo off / simple / improved:                %.1f / %.1f / %.1f ms\n"
    (t_off *. 1e3) (t_simple *. 1e3) (t_impr *. 1e3);
  (* Direction-vector pruning effect (test counts, cf. tables 4/5). *)
  let count_dirs cfg =
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) ->
         let c = r.Analyzer.stats.dir_counts.Direction.by_test in
         acc + c.(0) + c.(1) + c.(2) + c.(3))
      0 (analyze_all cfg)
  in
  (* Simple memoization here: the improved scheme's canonicalization
     already deletes unused levels before refinement ever runs, which
     would mask what the pruning rules themselves contribute. *)
  let unpruned =
    count_dirs
      (cfg_directions ~prune:Direction.no_pruning ~symbolic:false
         ~memo:Analyzer.Memo_simple)
  in
  let pruned =
    count_dirs
      (cfg_directions ~prune:Direction.full_pruning ~symbolic:false
         ~memo:Analyzer.Memo_simple)
  in
  let separable_alone =
    count_dirs
      (cfg_directions
         ~prune:{ Direction.no_pruning with Direction.separable = true }
         ~symbolic:false ~memo:Analyzer.Memo_simple)
  in
  let all_rules =
    count_dirs
      (cfg_directions ~prune:Direction.separable_pruning ~symbolic:false
         ~memo:Analyzer.Memo_simple)
  in
  Printf.printf
    "direction tests (simple memo), none / dim-by-dim / paper / paper+dim:\n\
    \  %d / %d / %d / %d\n"
    unpruned separable_alone pruned all_rules;
  (* The symmetric memoization scheme (the paper's "further
     optimization"). *)
  let sym_unique =
    let results = analyze_all (cfg_memo Analyzer.Memo_symmetric) in
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) -> acc + r.Analyzer.stats.memo_unique_full)
      0 results
  in
  let impr_unique =
    let results = analyze_all (cfg_memo Analyzer.Memo_improved) in
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) -> acc + r.Analyzer.stats.memo_unique_full)
      0 results
  in
  Printf.printf "unique cases, improved vs symmetric memo:    %d vs %d\n"
    impr_unique sym_unique;
  (* Fourier-Motzkin integer tightening (Omega-style) ablation: same
     verdicts, smaller intermediate systems. *)
  let fm_systems =
    List.init 24 (fun i -> representative_system ~seed:(1000 + i) Patterns.Fourier)
  in
  let fm_profile tighten =
    let stats = Fourier.fresh_stats () in
    let verdicts =
      List.map (fun sys -> Fourier.run ~tighten ~stats sys) fm_systems
    in
    (stats, verdicts)
  in
  let s_plain, v_plain = fm_profile false in
  let s_tight, v_tight = fm_profile true in
  Printf.printf
    "fourier tightening ablation over %d systems:\n\
    \  eliminations %d -> %d, peak rows %d -> %d, b&b branches %d -> %d\n\
    \  verdicts identical: %b\n"
    (List.length fm_systems) s_plain.Fourier.eliminations
    s_tight.Fourier.eliminations s_plain.Fourier.max_rows s_tight.Fourier.max_rows
    s_plain.Fourier.branches s_tight.Fourier.branches
    (List.for_all2
       (fun a b ->
          match (a, b) with
          | Fourier.Infeasible _, Fourier.Infeasible _ -> true
          | Fourier.Feasible _, Fourier.Feasible _ -> true
          | Fourier.Unknown, Fourier.Unknown -> true
          | _ -> false)
       v_plain v_tight)

(* ------------------------------------------------------------------ *)
(* Batch engine: sequential vs parallel corpus analysis                *)
(* ------------------------------------------------------------------ *)

let batch_corpus_8x () =
  List.concat_map
    (fun ((spec : Programs.spec), prog) ->
       List.init 8 (fun k ->
           { Dda_engine.Batch.name = Printf.sprintf "%s#%d" spec.name k; program = prog }))
    programs

(* Everything the batch emits: per-item reports and merged stats,
   rendered to one canonical string. *)
let batch_fingerprint (r : Dda_engine.Batch.result) =
  String.concat "\n"
    (List.map
       (fun (a : Dda_engine.Batch.analyzed) ->
          a.name ^ " " ^ Dda_core.Json_out.to_string (Dda_core.Json_out.report a.report))
       r.Dda_engine.Batch.items)
  ^ Dda_core.Json_out.to_string (Dda_core.Json_out.stats r.Dda_engine.Batch.merged)

let batch_parallel () =
  section
    (Printf.sprintf
       "Batch engine: sequential vs parallel corpus analysis\n\
        (domain pool over the synthetic PERFECT Club, replicated 8x;\n\
        this machine reports %d core(s) -- speedup needs real cores)"
       (Domain.recommended_domain_count ()));
  let corpus = batch_corpus_8x () in
  let fingerprint = batch_fingerprint in
  let measure ?share_memo jobs =
    let r, t = time (fun () -> Dda_engine.Batch.run ?share_memo ~jobs corpus) in
    (fingerprint r, t)
  in
  let f1, t1 = measure 1 in
  let f2, t2 = measure 2 in
  let f4, t4 = measure 4 in
  Printf.printf "%d programs, independent-analysis mode:\n" (List.length corpus);
  Printf.printf "  jobs=1  %8.1f ms\n" (t1 *. 1e3);
  Printf.printf "  jobs=2  %8.1f ms  (%.2fx)\n" (t2 *. 1e3) (t1 /. t2);
  Printf.printf "  jobs=4  %8.1f ms  (%.2fx)\n" (t4 *. 1e3) (t1 /. t4);
  Printf.printf "  output byte-identical across jobs: %b\n" (f1 = f2 && f1 = f4);
  let _, s1 = measure ~share_memo:true 1 in
  let _, s4 = measure ~share_memo:true 4 in
  Printf.printf "shared-session mode: jobs=1 %.1f ms, jobs=4 %.1f ms (%.2fx)\n"
    (s1 *. 1e3) (s4 *. 1e3) (s1 /. s4)

(* ------------------------------------------------------------------ *)
(* --jobs scaling: live-shared tables vs merge-after sessions          *)
(* ------------------------------------------------------------------ *)

(* Per job count: (jobs, live wall ms, live full-table hit rate,
   merge-after wall ms, merge-after full-table hit rate). *)
let jobs_scaling_result :
  (int * (int * float * float * float * float) list * bool) option ref =
  ref None

(* Reports minus the memo counters: live sharing changes who hits (a
   scheduling fact the stats faithfully record) but must never change
   what any pair's verdict says. This fingerprints exactly the latter. *)
let verdict_fingerprint (r : Dda_engine.Batch.result) =
  String.concat "\n"
    (List.map
       (fun (a : Dda_engine.Batch.analyzed) ->
          a.name
          ^ " "
          ^ String.concat ";"
              (List.map
                 (fun p -> Dda_core.Json_out.to_string (Dda_core.Json_out.pair p))
                 a.report.Dda_core.Analyzer.pair_reports))
       r.Dda_engine.Batch.items)

(* The live-sharing claim, measured: at [--jobs n] the sharded tables
   turn any cross-item repeat into a hit the moment one domain has
   computed it, while the merge-after oracle only unions per-domain
   sessions at the end — so its workers re-solve problems their
   neighbours already finished. Wall clock and full-table hit rate per
   mode per job count, plus a byte-identity check over every verdict. *)
let jobs_scaling () =
  let cores = Domain.recommended_domain_count () in
  section
    (Printf.sprintf
       "--jobs scaling: live-shared memo tables vs merge-after sessions\n\
        (synthetic PERFECT Club replicated 8x; this machine reports\n\
        %d core(s) -- wall-clock scaling needs real cores)"
       cores);
  let corpus = batch_corpus_8x () in
  let full_hit_rate (r : Dda_engine.Batch.result) =
    match r.Dda_engine.Batch.table_stats with
    | Some (_, full) when full.Memo_table.lookups > 0 ->
      float_of_int full.Memo_table.hits /. float_of_int full.Memo_table.lookups
    | Some _ | None -> 0.
  in
  let fps = ref [] in
  let rows =
    List.map
      (fun jobs ->
         let live, t_live =
           time (fun () -> Dda_engine.Batch.run ~share_memo:true ~jobs corpus)
         in
         let merge, t_merge =
           time (fun () ->
               Dda_engine.Batch.run ~share_memo:true ~memo_merge_after:true
                 ~jobs corpus)
         in
         fps := verdict_fingerprint merge :: verdict_fingerprint live :: !fps;
         ( jobs,
           t_live *. 1e3,
           full_hit_rate live,
           t_merge *. 1e3,
           full_hit_rate merge ))
      [ 1; 2; 4 ]
  in
  let identical =
    match !fps with
    | [] -> true
    | f :: rest -> List.for_all (String.equal f) rest
  in
  Printf.printf "%d programs; full-table hit rates:\n" (List.length corpus);
  Printf.printf "  %4s  %14s %9s  %15s %9s\n" "jobs" "live wall (ms)"
    "hit rate" "merge wall (ms)" "hit rate";
  List.iter
    (fun (jobs, lw, lr, mw, mr) ->
       Printf.printf "  %4d  %14.1f %8.2f%%  %15.1f %8.2f%%\n" jobs lw
         (lr *. 100.) mw (mr *. 100.))
    rows;
  (match List.rev rows with
   | (4, _, lr4, _, mr4) :: _ ->
     Printf.printf
       "  live-shared hit rate at jobs=4 %s merge-after (%.4f vs %.4f)\n"
       (if lr4 > mr4 then "exceeds" else "does NOT exceed")
       lr4 mr4
   | _ -> ());
  Printf.printf "  verdicts byte-identical across modes and job counts: %b\n"
    identical;
  if cores < 2 then
    print_endline
      "  NOTE: single-core machine -- the wall-clock columns do not\n\
      \  measure scaling here; hit rates and identity stay meaningful.";
  jobs_scaling_result := Some (cores, rows, identical)

(* ------------------------------------------------------------------ *)
(* Certification overhead                                              *)
(* ------------------------------------------------------------------ *)

let certification () =
  section
    "Certification overhead: analysis alone vs replay + certificate\n\
     checking (ddtest check), with and without the exhaustive oracle";
  Printf.printf "%-5s %7s %12s %12s %13s\n" "Prog" "certs" "analyze (ms)"
    "+check (ms)" "+oracle (ms)";
  let tot_a = ref 0.0 and tot_c = ref 0.0 and tot_o = ref 0.0 in
  let tot_certs = ref 0 in
  List.iter
    (fun ((spec : Programs.spec), prog) ->
       let _, t_a = time (fun () -> Analyzer.analyze prog) in
       let s, t_c = time (fun () -> Dda_check.Verify.run ~oracle:false prog) in
       let _, t_o = time (fun () -> Dda_check.Verify.run prog) in
       if s.Dda_check.Verify.errors > 0 then
         Printf.printf "%-5s CERTIFICATE FAILURES (%d)!\n" spec.name
           s.Dda_check.Verify.errors;
       tot_a := !tot_a +. t_a;
       tot_c := !tot_c +. t_c;
       tot_o := !tot_o +. t_o;
       tot_certs := !tot_certs + s.Dda_check.Verify.certificates;
       Printf.printf "%-5s %7d %12.2f %12.2f %13.2f\n" spec.name
         s.Dda_check.Verify.certificates (t_a *. 1e3) (t_c *. 1e3) (t_o *. 1e3))
    programs;
  Printf.printf "%-5s %7d %12.2f %12.2f %13.2f\n" "TOTAL" !tot_certs
    (!tot_a *. 1e3) (!tot_c *. 1e3) (!tot_o *. 1e3);
  Printf.printf
    "\nChecking every certificate costs %.1fx the analysis itself\n\
     (%.1fx with the exhaustive differential oracle on top); the check\n\
     replays the full analysis, so pure validation is the excess over 2x.\n"
    (!tot_c /. !tot_a) (!tot_o /. !tot_a)

(* ------------------------------------------------------------------ *)
(* Consistency guard                                                   *)
(* ------------------------------------------------------------------ *)

let sanity () =
  (* The paper's headline: every case decided exactly. Confirm no
     "unknown" verdicts anywhere in the suite, in every configuration
     the tables used. *)
  let unknowns config =
    List.fold_left
      (fun acc (_, (r : Analyzer.report)) ->
         List.fold_left
           (fun acc (p : Analyzer.pair_report) ->
              match p.outcome with
              | Analyzer.Tested { unknown = true; _ } -> acc + 1
              | _ -> acc)
           acc r.Analyzer.pair_reports)
      0 (analyze_all config)
  in
  let u =
    unknowns cfg_table1
    + unknowns
        (cfg_directions ~prune:Direction.full_pruning ~symbolic:true
           ~memo:Analyzer.Memo_improved)
  in
  Printf.printf "\nExactness check: %d unresolved (assumed) verdicts across the suite%s\n"
    u
    (if u = 0 then " -- every case decided exactly, as in the paper." else " (!)")

(* ------------------------------------------------------------------ *)
(* Machine-readable results: bench --json and the regression gate      *)
(* ------------------------------------------------------------------ *)

(* (name, wall_ms, allocated_bytes), newest first. [Gc.allocated_bytes]
   is per-domain, so sections that fan out to worker domains
   under-report; the trajectory metric below is deliberately run
   sequentially on this domain. *)
let recorded : (string * float * float) list ref = ref []

let measured name f =
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let a1 = Gc.allocated_bytes () in
  recorded := (name, (t1 -. t0) *. 1e3, a1 -. a0) :: !recorded;
  r

(* The perf-trajectory headline: the whole suite, replicated 8x,
   analyzed sequentially on this domain under the default configuration
   so wall time and allocation are both attributable. A few warm-up
   programs keep one-time lazy setup out of the measured window. *)
let perfect_batch () =
  section
    "PERFECT batch (sequential, in-domain): the perf-trajectory metric\n\
     (default configuration over the suite replicated 8x)";
  let corpus =
    List.concat_map (fun (_, prog) -> List.init 8 (fun _ -> prog)) programs
  in
  List.iter
    (fun p -> ignore (Analyzer.analyze p))
    (List.filteri (fun i _ -> i < 4) corpus);
  (* Reset the registry so the snapshot embedded in the results file is
     attributable to exactly this measured run. *)
  Dda_obs.Metrics.reset ();
  measured "perfect_batch" (fun () ->
      List.iter (fun p -> ignore (Analyzer.analyze p)) corpus);
  let snap = Dda_obs.Metrics.snapshot () in
  (match !recorded with
   | ("perfect_batch", wall, alloc) :: _ ->
     Printf.printf "%d programs: %.1f ms wall, %.0f bytes allocated\n"
       (List.length corpus) wall alloc
   | _ -> assert false);
  snap

(* ------------------------------------------------------------------ *)
(* Streaming vs in-memory batch: the bounded-memory claim              *)
(* ------------------------------------------------------------------ *)

(* The streamed engine holds only a sliding window of in-flight items;
   the in-memory engine materializes the whole parsed corpus and every
   report before printing anything. VmHWM is monotonic within a
   process, so both modes are measured with the GC's own live-word
   count: full_major, then [Gc.stat].live_words. The streamed figure is
   the maximum observed after each emitted item. Both runs analyze the
   exact corpus [Stream.of_perfect ~amplify:10] yields, so the delta is
   attributable to engine structure, not corpus content. *)
let streaming_memory_result : (int * int) option ref = ref None

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let streaming_memory () =
  section
    "Streaming vs in-memory batch: live heap on PERFECT x10\n\
     (GC live words; the streamed run samples after every item)";
  let amplify = 10 in
  let module Stream = Dda_engine.Stream in
  let drain src f =
    let rec go () =
      match src () with
      | None -> ()
      | Some (it : Stream.item) ->
        f it;
        go ()
    in
    go ()
  in
  let base = live_words () in
  let inmem =
    let items = ref [] in
    drain
      (Stream.of_perfect ~amplify ())
      (fun it ->
        items :=
          { Dda_engine.Batch.name = it.Stream.name;
            program = Parser.parse_program (it.Stream.text ()) }
          :: !items);
    let items = List.rev !items in
    let res = Dda_engine.Batch.run ~jobs:1 items in
    let w = live_words () - base in
    ignore (Sys.opaque_identity (items, res));
    w
  in
  let base = live_words () in
  let peak = ref 0 in
  let summary =
    Stream.run ~jobs:1
      ~render:(fun _ -> "")
      ~emit:(fun _ -> peak := max !peak (live_words () - base))
      (Stream.of_perfect ~amplify ())
  in
  let corpus = summary.Stream.total in
  Printf.printf
    "%d programs: in-memory %d live words at completion,\n\
     streamed %d live words at peak (%.1fx smaller)\n"
    corpus inmem !peak
    (float_of_int inmem /. float_of_int (max 1 !peak));
  streaming_memory_result := Some (inmem, !peak)

(* ------------------------------------------------------------------ *)
(* Durable cache: cold start vs warm restart                           *)
(* ------------------------------------------------------------------ *)

(* The serve-mode claim in numbers: a warm restart replays the durable
   memo store into the tables, so re-analyzing the same corpus answers
   from memory instead of re-running the dependence tests. The verdict
   fingerprints keep the speedup honest — a cache may buy latency,
   never different answers. *)
let warm_cache_result : (float * float * int) option ref = ref None

let warm_cache () =
  section
    "Durable cache: cold start vs warm restart over PERFECT\n\
     (fresh store, analyze the suite, close; re-open, analyze again)";
  let path = Filename.temp_file "ddabench" ".cache" in
  Sys.remove path;
  let config = Analyzer.default_config in
  let pass () =
    let durable, recovery = Dda_cache.Durable.create ~path ~config () in
    let cache = Dda_cache.Durable.cache durable in
    let reports, t =
      time (fun () ->
          List.map (fun (_, prog) -> Analyzer.analyze ~config ~cache prog) programs)
    in
    let fingerprint =
      String.concat "\n"
        (List.concat_map
           (fun (r : Analyzer.report) ->
              List.map
                (fun p -> Json_out.to_string (Json_out.pair p))
                r.Analyzer.pair_reports)
           reports)
    in
    Dda_cache.Durable.close durable;
    (fingerprint, t, recovery)
  in
  let fp_cold, t_cold, _ = pass () in
  let fp_warm, t_warm, rec_warm = pass () in
  Sys.remove path;
  let records =
    match rec_warm with Some r -> r.Dda_cache.Store.records | None -> 0
  in
  Printf.printf
    "cold (fresh store, fsync per append): %8.2f ms\n\
     warm restart (%d records replayed):   %8.2f ms  (%.1fx)\n\
     verdicts byte-identical:              %b\n"
    (t_cold *. 1e3) records (t_warm *. 1e3)
    (if t_warm > 0. then t_cold /. t_warm else 0.)
    (String.equal fp_cold fp_warm);
  warm_cache_result := Some (t_cold *. 1e3, t_warm *. 1e3, records)

(* ------------------------------------------------------------------ *)
(* Trace overhead: disabled instrumentation must cost < 2%             *)
(* ------------------------------------------------------------------ *)

(* Every hot path in the analyzer now carries a [Trace.wrap]; the claim
   that buys is that a disabled span is one atomic load and a branch.
   Prove it two ways: microbenchmark the disabled wrap against its bare
   body, then scale the per-span cost by the span count of a real suite
   pass and compare against that pass's wall time. *)
let trace_overhead () =
  section
    "Trace overhead: disabled spans must cost < 2% of analysis time";
  let n = 5_000_000 in
  let acc = ref 0 in
  let _, t_plain =
    time (fun () ->
        for i = 1 to n do
          acc := !acc + i
        done)
  in
  let _, t_wrapped =
    time (fun () ->
        for i = 1 to n do
          Dda_obs.Trace.wrap ~name:"bench.noop"
            ~args:(fun _ -> [])
            (fun () -> acc := !acc + i)
        done)
  in
  ignore !acc;
  let per_span_ns = Float.max 0. (t_wrapped -. t_plain) *. 1e9 /. float_of_int n in
  (* Span volume of one real pass: enable tracing (deterministic tick
     clock), run the suite once, count every event pushed. *)
  Dda_obs.Trace.clear ();
  Dda_obs.Trace.enable ();
  ignore (analyze_all cfg_table1);
  let spans =
    List.length (Dda_obs.Trace.events ()) + Dda_obs.Trace.dropped ()
  in
  Dda_obs.Trace.disable ();
  Dda_obs.Trace.clear ();
  let _, t_off = time (fun () -> ignore (analyze_all cfg_table1)) in
  let overhead_pct =
    per_span_ns *. float_of_int spans /. (t_off *. 1e9) *. 100.
  in
  Printf.printf "disabled span: %.1f ns;  %d spans per suite pass\n" per_span_ns
    spans;
  Printf.printf "suite pass (tracing off): %.1f ms\n" (t_off *. 1e3);
  Printf.printf "disabled-instrumentation overhead: %.3f%% of analysis  [%s]\n"
    overhead_pct
    (if overhead_pct < 2.0 then "PASS < 2%" else "FAIL >= 2%");
  (per_span_ns, overhead_pct)

(* ------------------------------------------------------------------ *)
(* Admin-plane overhead: attribution must cost < 2% like trace spans   *)
(* ------------------------------------------------------------------ *)

(* The telemetry plane's only data-path cost is the per-request
   attribution window the serve daemon opens around each analysis
   (scrapes, the access log and the admin listener run off the worker
   domains). Measure it the same way as the trace gate: microbenchmark
   one timed stage call inside an open window against its bare body,
   scale by the stage-call volume of a real suite pass, and compare
   against that pass's windowless wall time. *)
let admin_overhead_result : (float * float) option ref = ref None

let admin_overhead () =
  section
    "Admin-plane overhead: per-request attribution must cost < 2% of \
     analysis time";
  (* Production time source (the serve daemon installs the same one),
     so the measured cost includes the clock reads. *)
  Dda_obs.Attrib.set_time_source (fun () ->
      int_of_float (Unix.gettimeofday () *. 1e9));
  let n = 2_000_000 in
  let acc = ref 0 in
  let _, t_plain =
    time (fun () ->
        for i = 1 to n do
          acc := !acc + i
        done)
  in
  let (), t_timed =
    let f () =
      time (fun () ->
          for i = 1 to n do
            Dda_obs.Attrib.time Dda_obs.Attrib.Svpc (fun () -> acc := !acc + i)
          done)
    in
    let ((), t), _snap = Dda_obs.Attrib.collect f in
    ((), t)
  in
  ignore !acc;
  let per_call_ns =
    Float.max 0. (t_timed -. t_plain) *. 1e9 /. float_of_int n
  in
  (* Stage-call volume of one real pass, counted by the window itself. *)
  let _, snap = Dda_obs.Attrib.collect (fun () -> ignore (analyze_all cfg_table1)) in
  let calls =
    List.fold_left
      (fun a (_, (s : Dda_obs.Attrib.stage_stat)) -> a + s.Dda_obs.Attrib.calls)
      0 snap.Dda_obs.Attrib.stages
  in
  Dda_obs.Attrib.set_time_source Dda_obs.Clock.now;
  (* The same pass with no window anywhere: the inactive path is one
     atomic load per stage call. *)
  let _, t_off = time (fun () -> ignore (analyze_all cfg_table1)) in
  let overhead_pct =
    per_call_ns *. float_of_int calls /. (t_off *. 1e9) *. 100.
  in
  Printf.printf "timed stage call (window open): %.1f ns;  %d stage calls per suite pass\n"
    per_call_ns calls;
  Printf.printf "suite pass (no window): %.1f ms\n" (t_off *. 1e3);
  Printf.printf "admin-plane overhead: %.3f%% of analysis  [%s]\n" overhead_pct
    (if overhead_pct < 2.0 then "PASS < 2%" else "FAIL >= 2%");
  admin_overhead_result := Some (per_call_ns, overhead_pct)

(* Corpus-wide memo hit rates, via the batch engine's shared session
   (jobs=1 keeps the counters independent of chunking). *)
let memo_hit_rates () =
  let corpus =
    List.map
      (fun ((spec : Programs.spec), prog) ->
         { Dda_engine.Batch.name = spec.name; program = prog })
      programs
  in
  let r = Dda_engine.Batch.run ~share_memo:true ~jobs:1 corpus in
  r.Dda_engine.Batch.table_stats

let table_json (st : Memo_table.stats) =
  Perf_json.Obj
    [
      ("entries", Perf_json.Num (float_of_int st.Memo_table.size));
      ("buckets", Perf_json.Num (float_of_int st.Memo_table.buckets));
      ("lookups", Perf_json.Num (float_of_int st.Memo_table.lookups));
      ("hits", Perf_json.Num (float_of_int st.Memo_table.hits));
      ( "hit_rate",
        Perf_json.Num
          (if st.Memo_table.lookups = 0 then 0.
           else float_of_int st.Memo_table.hits /. float_of_int st.Memo_table.lookups)
      );
    ]

(* The metrics-registry snapshot taken around the trajectory run:
   stage decision counts, memo hit totals, verdict counts — the
   integer shape of the run, immune to machine noise. *)
let metrics_json (snap : Dda_obs.Metrics.snapshot) =
  Perf_json.Obj
    [
      ( "counters",
        Perf_json.Obj
          (List.map
             (fun (name, v) -> (name, Perf_json.Num (float_of_int v)))
             snap.counters) );
      ( "histograms",
        Perf_json.Obj
          (List.map
             (fun (name, (h : Dda_obs.Metrics.hist_snapshot)) ->
                ( name,
                  Perf_json.Obj
                    [
                      ("count", Perf_json.Num (float_of_int h.count));
                      ("sum", Perf_json.Num (float_of_int h.sum));
                    ] ))
             snap.histograms) );
    ]

let results_json ~mode ~memo ~micro ~metrics ~trace =
  let per_span_ns, overhead_pct = trace in
  Perf_json.Obj
    ([
       ("schema", Perf_json.Num 1.);
       ("mode", Perf_json.Str mode);
       ( "sections",
         Perf_json.List
           (List.rev_map
              (fun (name, wall, alloc) ->
                 Perf_json.Obj
                   [
                     ("name", Perf_json.Str name);
                     ("wall_ms", Perf_json.Num wall);
                     ("allocated_bytes", Perf_json.Num alloc);
                   ])
              !recorded) );
     ]
     @ (match memo with
        | None -> []
        | Some (gcd, full) ->
          [
            ( "memo_tables",
              Perf_json.Obj [ ("gcd", table_json gcd); ("full", table_json full) ]
            );
          ])
     @ [
         ( "microbench",
           Perf_json.List
             (List.map
                (fun (name, ns) ->
                   Perf_json.Obj
                     [
                       ("name", Perf_json.Str name);
                       ("ns_per_test", Perf_json.Num ns);
                     ])
                micro) );
         ("metrics", metrics_json metrics);
         ( "trace_overhead",
           Perf_json.Obj
             [
               ("per_span_ns", Perf_json.Num per_span_ns);
               ("disabled_overhead_pct", Perf_json.Num overhead_pct);
             ] );
       ]
     @ (match !admin_overhead_result with
        | None -> []
        | Some (per_call_ns, pct) ->
          [
            ( "admin_overhead",
              Perf_json.Obj
                [
                  ("per_stage_call_ns", Perf_json.Num per_call_ns);
                  ("data_path_overhead_pct", Perf_json.Num pct);
                ] );
          ])
     @ (match !streaming_memory_result with
        | None -> []
        | Some (inmem, stream_peak) ->
          [
            ( "streaming_memory",
              Perf_json.Obj
                [
                  ("inmem_live_words", Perf_json.Num (float_of_int inmem));
                  ( "stream_peak_live_words",
                    Perf_json.Num (float_of_int stream_peak) );
                  ( "ratio",
                    Perf_json.Num
                      (float_of_int inmem /. float_of_int (max 1 stream_peak)) );
                ] );
          ])
     @ (match !warm_cache_result with
        | None -> []
        | Some (cold_ms, warm_ms, records) ->
          [
            ( "warm_cache",
              Perf_json.Obj
                [
                  ("cold_ms", Perf_json.Num cold_ms);
                  ("warm_ms", Perf_json.Num warm_ms);
                  ( "speedup",
                    Perf_json.Num
                      (if warm_ms > 0. then cold_ms /. warm_ms else 0.) );
                  ("records", Perf_json.Num (float_of_int records));
                ] );
          ])
     @
     match !jobs_scaling_result with
     | None -> []
     | Some (cores, rows, identical) ->
       [
         ( "jobs_scaling",
           Perf_json.Obj
             [
               ("cores", Perf_json.Num (float_of_int cores));
               ("verdicts_identical", Perf_json.Bool identical);
               ( "runs",
                 Perf_json.List
                   (List.map
                      (fun (jobs, lw, lr, mw, mr) ->
                         Perf_json.Obj
                           [
                             ("jobs", Perf_json.Num (float_of_int jobs));
                             ("live_wall_ms", Perf_json.Num lw);
                             ("live_full_hit_rate", Perf_json.Num lr);
                             ("merge_wall_ms", Perf_json.Num mw);
                             ("merge_full_hit_rate", Perf_json.Num mr);
                           ])
                      rows) );
             ] );
       ])

(* --compare BASE NEW: a metric regresses when it grows by more than
   [threshold] percent over the baseline. Only metrics present in both
   files are compared (sections come and go across PRs); allocation is
   deterministic, wall time and ns/test are noisy, hence the generous
   default threshold in CI. *)
let compare_results base_file new_file threshold =
  let base = Perf_json.parse_file base_file in
  let next = Perf_json.parse_file new_file in
  let get k j =
    match Perf_json.member k j with
    | Some v -> v
    | None -> raise (Perf_json.Parse_error ("missing field " ^ k))
  in
  let sections j =
    List.map
      (fun s ->
         ( Perf_json.to_str (get "name" s),
           [
             ("wall_ms", Perf_json.to_num (get "wall_ms" s));
             ("allocated_bytes", Perf_json.to_num (get "allocated_bytes" s));
           ] ))
      (Perf_json.to_list (get "sections" j))
  in
  let micro j =
    match Perf_json.member "microbench" j with
    | None -> []
    | Some m ->
      List.map
        (fun s ->
           ( Perf_json.to_str (get "name" s),
             [ ("ns_per_test", Perf_json.to_num (get "ns_per_test" s)) ] ))
        (Perf_json.to_list m)
  in
  let regressions = ref 0 in
  let compare_group kind base_rows new_rows =
    List.iter
      (fun (name, new_metrics) ->
         match List.assoc_opt name base_rows with
         | None -> Printf.printf "%-12s %-34s (new; no baseline)\n" kind name
         | Some base_metrics ->
           List.iter
             (fun (metric, nv) ->
                match List.assoc_opt metric base_metrics with
                | None -> ()
                | Some bv ->
                  let pct =
                    if bv = 0. then if nv = 0. then 0. else infinity
                    else 100. *. ((nv /. bv) -. 1.)
                  in
                  let regressed = pct > threshold in
                  if regressed then incr regressions;
                  Printf.printf "%-12s %-34s %-16s %14.1f -> %14.1f  %+7.1f%%%s\n"
                    kind name metric bv nv pct
                    (if regressed then "  REGRESSION" else ""))
             new_metrics)
      new_rows
  in
  Printf.printf "comparing %s (baseline) vs %s, threshold +%.0f%%\n\n" base_file
    new_file threshold;
  compare_group "section" (sections base) (sections next);
  compare_group "microbench" (micro base) (micro next);
  if !regressions > 0 then begin
    Printf.printf "\n%d metric(s) regressed beyond +%.0f%%\n" !regressions threshold;
    exit 1
  end
  else Printf.printf "\nno regression beyond +%.0f%%\n" threshold

(* ------------------------------------------------------------------ *)
(* entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run_full () =
  print_endline
    "Reproduction of \"Efficient and Exact Data Dependence Analysis\"\n\
     (Maydan, Hennessy, Lam -- PLDI 1991) on the synthetic PERFECT Club.";
  measured "table1" table1;
  measured "table2" table2;
  measured "table3" table3;
  ignore (measured "table4" table4);
  let t5 = measured "table5" table5 in
  measured "table6" table6;
  ignore (measured "table7" table7);
  measured "accuracy" accuracy;
  measured "returns" (fun () -> returns t5);
  measured "batch_parallel" batch_parallel;
  measured "jobs_scaling" jobs_scaling;
  measured "certification" certification;
  measured "sanity" sanity;
  let micro = measured "microbench" (fun () -> microbench ()) in
  measured "ablations" ablations;
  let trace = trace_overhead () in
  admin_overhead ();
  let metrics = perfect_batch () in
  measured "streaming_memory" streaming_memory;
  measured "warm_cache" warm_cache;
  let memo = memo_hit_rates () in
  print_newline ();
  print_endline
    "Figure 1 (loop-residue graph): dune exec examples/loop_residue_graph.exe";
  (memo, micro, metrics, trace)

(* The CI profile: just the trajectory metric, corpus hit rates and a
   short Bechamel pass — seconds, not minutes. *)
let run_smoke () =
  print_endline "bench --smoke: reduced perf profile";
  let trace = trace_overhead () in
  admin_overhead ();
  let metrics = perfect_batch () in
  measured "streaming_memory" streaming_memory;
  measured "warm_cache" warm_cache;
  measured "jobs_scaling" jobs_scaling;
  let memo = memo_hit_rates () in
  let micro = microbench ~nbatch:4 ~quota:0.05 () in
  (memo, micro, metrics, trace)

let usage () =
  print_endline
    "usage: bench [--smoke] [--json [FILE]]\n\
    \       bench --compare BASE NEW [--threshold PCT]\n\n\
    \  --json [FILE]    also write machine-readable results\n\
    \                   (default file: BENCH_results.json)\n\
    \  --smoke          reduced profile for CI (trajectory metric,\n\
    \                   memo hit rates, short microbench)\n\
    \  --compare        diff two results files; exit 1 when any shared\n\
    \                   metric grew more than the threshold (default 50%)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | "--compare" :: rest -> (
      match rest with
      | [ base; next ] -> compare_results base next 50.
      | [ base; next; "--threshold"; pct ] -> (
          match float_of_string_opt pct with
          | Some t -> compare_results base next t
          | None -> usage ())
      | _ -> usage ())
  | _ ->
    let rec parse args (smoke, json) =
      match args with
      | [] -> (smoke, json)
      | "--smoke" :: rest -> parse rest (true, json)
      | "--json" :: file :: rest when String.length file > 0 && file.[0] <> '-' ->
        parse rest (smoke, Some file)
      | "--json" :: rest -> parse rest (smoke, Some "BENCH_results.json")
      | _ -> usage ()
    in
    let smoke, json = parse args (false, None) in
    let memo, micro, metrics, trace =
      if smoke then run_smoke () else run_full ()
    in
    Option.iter
      (fun file ->
         Perf_json.write file
           (results_json
              ~mode:(if smoke then "smoke" else "full")
              ~memo ~micro ~metrics ~trace);
         Printf.printf "\nresults written to %s\n" file)
      json
