(* Reproduce the paper's Figure 1: the Simple Loop Residue constraint
   graph, with a negative cycle proving independence. Prints the graph
   in Graphviz DOT format and the verdict.

   Run with: dune exec examples/loop_residue_graph.exe *)

open Dda_numeric
open Dda_core

let row coeffs rhs = Consys.row_of_ints coeffs rhs

let () =
  (* The figure's flavor of system: difference constraints over t1, t2
     plus single-variable constraints through the special node n0:
         t1 - t2 <= 4        (t1 <= t2 + 4)
         t2 - t1 <= -5       (t2 <= t1 - 5)
         t1 >= 1
     The cycle t1 -> t2 -> t1 has value 4 + (-5) = -1 < 0: the system
     has no solution, so the references are independent. *)
  let sys =
    Consys.make ~nvars:2 [ row [ 1; -1 ] 4; row [ -1; 1 ] (-5); row [ -1; 0 ] (-1) ]
  in
  match Svpc.run sys with
  | Svpc.Partial (box, multi) ->
    print_string (Loop_residue.to_dot box multi);
    (match Loop_residue.run box multi with
     | Some (Loop_residue.Infeasible _) ->
       print_endline "/* negative cycle: INDEPENDENT */"
     | Some (Loop_residue.Feasible w) ->
       Printf.printf "/* feasible, witness t = (%s) */\n"
         (String.concat ", " (Array.to_list (Array.map Zint.to_string w)))
     | None -> print_endline "/* not applicable */");
    (* Relax the offending edge and show the witness the potentials
       produce. *)
    let sys2 =
      Consys.make ~nvars:2 [ row [ 1; -1 ] 4; row [ -1; 1 ] (-4); row [ -1; 0 ] (-1) ]
    in
    (match Svpc.run sys2 with
     | Svpc.Partial (box2, multi2) ->
       print_newline ();
       print_string (Loop_residue.to_dot box2 multi2);
       (match Loop_residue.run box2 multi2 with
        | Some (Loop_residue.Feasible w) ->
          Printf.printf "/* cycle value 0: DEPENDENT, witness t = (%s) */\n"
            (String.concat ", " (Array.to_list (Array.map Zint.to_string w)))
        | Some (Loop_residue.Infeasible _) -> print_endline "/* unexpected */"
        | None -> print_endline "/* not applicable */")
     | _ -> ())
  | _ -> print_endline "unexpected: svpc resolved the system"
