open Dda_lang

let rec const_fold (e : Ast.expr) : Ast.expr =
  let mk desc = { e with Ast.desc } in
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Neg a -> (
      match (const_fold a).desc with
      | Ast.Int n -> mk (Ast.Int (-n))
      | Ast.Neg b -> b.Ast.desc |> mk
      | _ as d -> mk (Ast.Neg (mk d)))
  | Ast.Aref (name, subs) -> mk (Ast.Aref (name, List.map const_fold subs))
  | Ast.Bin (op, a, b) -> (
      let a = const_fold a and b = const_fold b in
      match (op, a.desc, b.desc) with
      | Ast.Add, Ast.Int x, Ast.Int y -> mk (Ast.Int (x + y))
      | Ast.Sub, Ast.Int x, Ast.Int y -> mk (Ast.Int (x - y))
      | Ast.Mul, Ast.Int x, Ast.Int y -> mk (Ast.Int (x * y))
      | Ast.Div, Ast.Int x, Ast.Int y when y <> 0 -> mk (Ast.Int (x / y))
      | Ast.Add, Ast.Int 0, _ -> b
      | Ast.Add, _, Ast.Int 0 -> a
      | Ast.Sub, _, Ast.Int 0 -> a
      | Ast.Mul, Ast.Int 1, _ -> b
      | Ast.Mul, _, Ast.Int 1 -> a
      | Ast.Mul, Ast.Int 0, _ when no_arrays b -> mk (Ast.Int 0)
      | Ast.Mul, _, Ast.Int 0 when no_arrays a -> mk (Ast.Int 0)
      | Ast.Div, _, Ast.Int 1 -> a
      | _ -> mk (Ast.Bin (op, a, b)))

(* [e * 0 = 0] is only valid when [e] has no side effect on the trace;
   array reads are observable accesses, so keep them. *)
and no_arrays (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> true
  | Ast.Neg a -> no_arrays a
  | Ast.Bin (_, a, b) -> no_arrays a && no_arrays b
  | Ast.Aref _ -> false

let const_value e =
  match (const_fold e).desc with Ast.Int n -> Some n | _ -> None

(* Linear canonicalization: fold the expression into
   [sum coeff_i * atom_i + const]. Pure scalar atoms merge (and cancel)
   by structural equality; atoms that read arrays stay one-for-one so
   the access trace is untouched. *)
let rec linearize (e : Ast.expr) : Ast.expr =
  (* (coeff ref, atom, pure), in first-occurrence order (reversed). *)
  let terms : (int ref * Ast.expr * bool) list ref = ref [] in
  let const = ref 0 in
  let add_term coeff atom =
    let pure = no_arrays atom in
    let merged =
      pure
      && List.exists
           (fun (c, a, p) ->
              if p && Ast.equal_expr a atom then begin
                c := !c + coeff;
                true
              end
              else false)
           !terms
    in
    if not merged then terms := (ref coeff, atom, pure) :: !terms
  in
  let rec go sign (e : Ast.expr) =
    match e.desc with
    | Ast.Int n -> const := !const + (sign * n)
    | Ast.Var _ -> add_term sign e
    | Ast.Neg a -> go (-sign) a
    | Ast.Bin (Ast.Add, a, b) ->
      go sign a;
      go sign b
    | Ast.Bin (Ast.Sub, a, b) ->
      go sign a;
      go (-sign) b
    | Ast.Bin (Ast.Mul, a, b) -> (
        (* Multiplication by a constant distributes exactly over the
           integers; anything else is an opaque atom. *)
        match (const_value a, const_value b) with
        | Some k, _ -> go (sign * k) b
        | None, Some k -> go (sign * k) a
        | None, None ->
          add_term sign { e with desc = Ast.Bin (Ast.Mul, linearize a, linearize b) })
    | Ast.Bin (Ast.Div, a, b) ->
      (* Truncating division does not distribute; linearize inside. *)
      add_term sign { e with desc = Ast.Bin (Ast.Div, linearize a, linearize b) }
    | Ast.Aref (name, subs) ->
      add_term sign { e with desc = Ast.Aref (name, List.map linearize subs) }
  in
  go 1 e;
  let kept =
    List.rev !terms
    |> List.filter (fun (c, _, pure) -> (not pure) || !c <> 0)
  in
  match kept with
  | [] -> Ast.int_ !const
  | (c0, a0, _) :: rest ->
    let head =
      if !c0 = 1 then a0
      else if !c0 = -1 then Ast.neg a0
      else Ast.bin Ast.Mul (Ast.int_ !c0) a0
    in
    let acc =
      List.fold_left
        (fun acc (c, a, _) ->
           if !c = 1 then Ast.bin Ast.Add acc a
           else if !c = -1 then Ast.bin Ast.Sub acc a
           else if !c >= 0 then Ast.bin Ast.Add acc (Ast.bin Ast.Mul (Ast.int_ !c) a)
           else Ast.bin Ast.Sub acc (Ast.bin Ast.Mul (Ast.int_ (- !c)) a))
        head rest
    in
    if !const > 0 then Ast.bin Ast.Add acc (Ast.int_ !const)
    else if !const < 0 then Ast.bin Ast.Sub acc (Ast.int_ (- !const))
    else acc

let rec subst_raw lookup (e : Ast.expr) : Ast.expr =
  let mk desc = { e with Ast.desc } in
  match e.desc with
  | Ast.Int _ -> e
  | Ast.Var v -> (
      match lookup v with Some e' -> e' | None -> e)
  | Ast.Neg a -> mk (Ast.Neg (subst_raw lookup a))
  | Ast.Bin (op, a, b) -> mk (Ast.Bin (op, subst_raw lookup a, subst_raw lookup b))
  | Ast.Aref (name, subs) -> mk (Ast.Aref (name, List.map (subst_raw lookup) subs))

let subst lookup e = linearize (const_fold (subst_raw lookup e))

let is_pure_scalar = no_arrays

let assigned_vars stmts =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Lvar v, _) -> note v
    | Ast.Assign (Ast.Larr _, _) -> ()
    | Ast.Read v -> note v
    | Ast.If (_, t, e) ->
      List.iter go t;
      List.iter go e
    | Ast.For { var; body; _ } ->
      note var;
      List.iter go body
  in
  List.iter go stmts;
  List.rev !out

let rec uses_var v (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ -> false
  | Ast.Var x -> String.equal x v
  | Ast.Neg a -> uses_var v a
  | Ast.Bin (_, a, b) -> uses_var v a || uses_var v b
  | Ast.Aref (_, subs) -> List.exists (uses_var v) subs

let rec map_stmt_exprs f (s : Ast.stmt) : Ast.stmt =
  let mk sdesc = { s with Ast.sdesc } in
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) -> mk (Ast.Assign (Ast.Lvar v, f e))
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    mk (Ast.Assign (Ast.Larr (name, List.map f subs), f e))
  | Ast.Read _ -> s
  | Ast.If (cond, t, e) ->
    mk
      (Ast.If
         ( { cond with Ast.lhs = f cond.Ast.lhs; rhs = f cond.Ast.rhs },
           List.map (map_stmt_exprs f) t,
           List.map (map_stmt_exprs f) e ))
  | Ast.For ({ lo; hi; step; body; _ } as l) ->
    mk
      (Ast.For
         {
           l with
           lo = f lo;
           hi = f hi;
           step = Option.map f step;
           body = List.map (map_stmt_exprs f) body;
         })

let map_program_exprs f prog = List.map (map_stmt_exprs f) prog
