(** Forward substitution.

    Replaces a use of a scalar with the pure scalar expression that
    defined it when the definition still holds at the use: neither the
    variable nor anything it was computed from has been reassigned (or
    [read]) in between. This turns chains like
    [m = n + 1; a[m + i] = ...] into subscripts that are affine in loop
    variables and symbolic terms, widening the applicability of the
    dependence tests exactly as the paper's prepass does.

    The defining assignments themselves are kept (they may still be
    live); dead-code removal is out of scope. *)

val run : Dda_lang.Ast.program -> Dda_lang.Ast.program
