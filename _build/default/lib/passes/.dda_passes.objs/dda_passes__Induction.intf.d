lib/passes/induction.mli: Dda_lang
