lib/passes/pipeline.mli: Dda_lang
