lib/passes/pipeline.ml: Ast Const_prop Dda_lang Forward_subst Induction List Normalize
