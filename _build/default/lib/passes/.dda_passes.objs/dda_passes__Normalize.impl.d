lib/passes/normalize.ml: Ast Dda_lang Expr_util Hashtbl List Option Printf String
