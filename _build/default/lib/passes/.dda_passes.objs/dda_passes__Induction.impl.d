lib/passes/induction.ml: Ast Dda_lang Expr_util Fun List Map String
