lib/passes/forward_subst.mli: Dda_lang
