lib/passes/const_prop.ml: Ast Dda_lang Expr_util List Map Option String
