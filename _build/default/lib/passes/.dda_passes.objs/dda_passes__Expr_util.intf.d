lib/passes/expr_util.mli: Ast Dda_lang
