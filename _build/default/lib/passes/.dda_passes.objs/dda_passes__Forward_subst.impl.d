lib/passes/forward_subst.ml: Ast Dda_lang Expr_util List Map Option String
