lib/passes/expr_util.ml: Ast Dda_lang Hashtbl List Option String
