lib/passes/normalize.mli: Dda_lang
