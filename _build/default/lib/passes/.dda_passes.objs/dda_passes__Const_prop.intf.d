lib/passes/const_prop.mli: Dda_lang
