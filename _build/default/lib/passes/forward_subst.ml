open Dda_lang

module Env = Map.Make (String)

(* Bindings map a scalar to the pure scalar expression that defines it,
   already rewritten in terms of base variables. A binding dies when
   its variable or any variable it mentions is redefined. *)

let kill_var v env =
  Env.filter (fun key e -> (not (String.equal key v)) && not (Expr_util.uses_var v e)) env

let kill_vars vs env = List.fold_left (fun m v -> kill_var v m) env vs

let rewrite env e = Expr_util.subst (fun v -> Env.find_opt v env) e

let rec fs_stmt env (s : Ast.stmt) : Ast.stmt * Ast.expr Env.t =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let e = rewrite env e in
    let env = kill_var v env in
    let env =
      if Expr_util.is_pure_scalar e && not (Expr_util.uses_var v e) then
        Env.add v e env
      else env
    in
    ({ s with sdesc = Ast.Assign (Ast.Lvar v, e) }, env)
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    let subs = List.map (rewrite env) subs in
    let e = rewrite env e in
    ({ s with sdesc = Ast.Assign (Ast.Larr (name, subs), e) }, env)
  | Ast.Read v -> (s, kill_var v env)
  | Ast.If (cond, then_, else_) ->
    let cond =
      { cond with Ast.lhs = rewrite env cond.Ast.lhs; rhs = rewrite env cond.Ast.rhs }
    in
    let then_, env_t = fs_stmts env then_ in
    let else_, env_e = fs_stmts env else_ in
    let env' =
      Env.merge
        (fun _ a b ->
           match (a, b) with
           | Some x, Some y when Ast.equal_expr x y -> Some x
           | _ -> None)
        env_t env_e
    in
    ({ s with sdesc = Ast.If (cond, then_, else_) }, env')
  | Ast.For ({ var; lo; hi; step; body } as l) ->
    let lo = rewrite env lo and hi = rewrite env hi in
    let step = Option.map (rewrite env) step in
    let killed = var :: Expr_util.assigned_vars body in
    let env_in = kill_vars killed env in
    let body, _ = fs_stmts env_in body in
    ({ s with sdesc = Ast.For { l with lo; hi; step; body } }, env_in)

and fs_stmts env = function
  | [] -> ([], env)
  | s :: rest ->
    let s, env = fs_stmt env s in
    let rest, env = fs_stmts env rest in
    (s :: rest, env)

let run prog = fst (fs_stmts Env.empty prog)
