open Dda_lang

let passes =
  [
    ("const-prop", Const_prop.run);
    ("forward-subst", Forward_subst.run);
    ("induction", Induction.run);
    ("normalize", Normalize.run);
  ]

let one_round prog = List.fold_left (fun p (_, pass) -> pass p) prog passes

let run ?(max_rounds = 8) prog =
  let rec go round prog =
    if round >= max_rounds then prog
    else begin
      let prog' = one_round prog in
      if Ast.equal_program prog prog' then prog else go (round + 1) prog'
    end
  in
  go 0 prog
