(** Loop normalization.

    Rewrites every loop with a constant non-unit step into an
    equivalent unit-step loop, as the paper's problem statement assumes
    ("we normalize the step size to 1"):

    {v
    for i = lo to hi step s do B(i) end
    ==>
    for i__n = 0 to (hi - lo) / s do B(lo + s*i__n) end
    i = ...final value...   (guarded, for zero-trip loops)
    v}

    Truncating division computes the trip count correctly for both
    signs of [s] (the quotient is non-negative exactly when the loop
    runs). The original loop variable receives its Fortran-style final
    value after the loop via a guarded assignment. Bounds that read
    arrays are left untouched to preserve the access trace. *)

val run : Dda_lang.Ast.program -> Dda_lang.Ast.program

val is_temp_name : string -> bool
(** True for the compiler-generated loop counters this pass introduces
    ([<var>__n], [<var>__n2], ...); they are not part of the source
    program's observable scalar state. *)
