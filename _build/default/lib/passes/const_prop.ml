open Dda_lang

module Env = Map.Make (String)

(* The environment maps scalars to known constant values. *)

let lookup env v =
  match Env.find_opt v env with Some n -> Some (Ast.int_ n) | None -> None

let rewrite env e = Expr_util.subst (lookup env) e

let rec prop_stmt env (s : Ast.stmt) : Ast.stmt * int Env.t =
  match s.sdesc with
  | Ast.Assign (Ast.Lvar v, e) ->
    let e = rewrite env e in
    let env =
      match e.desc with
      | Ast.Int n when Expr_util.is_pure_scalar e -> Env.add v n env
      | _ -> Env.remove v env
    in
    ({ s with sdesc = Ast.Assign (Ast.Lvar v, e) }, env)
  | Ast.Assign (Ast.Larr (name, subs), e) ->
    let subs = List.map (rewrite env) subs in
    let e = rewrite env e in
    ({ s with sdesc = Ast.Assign (Ast.Larr (name, subs), e) }, env)
  | Ast.Read v -> (s, Env.remove v env)
  | Ast.If (cond, then_, else_) ->
    let cond =
      { cond with Ast.lhs = rewrite env cond.Ast.lhs; rhs = rewrite env cond.Ast.rhs }
    in
    let then_, env_t = prop_stmts env then_ in
    let else_, env_e = prop_stmts env else_ in
    (* Keep facts that hold on both paths. *)
    let env' =
      Env.merge
        (fun _ a b ->
           match (a, b) with Some x, Some y when x = y -> Some x | _ -> None)
        env_t env_e
    in
    ({ s with sdesc = Ast.If (cond, then_, else_) }, env')
  | Ast.For ({ var; lo; hi; step; body } as l) ->
    let lo = rewrite env lo and hi = rewrite env hi in
    let step = Option.map (rewrite env) step in
    (* Anything the body assigns (and the loop variable) is unknown both
       inside the body and after the loop. *)
    let killed = var :: Expr_util.assigned_vars body in
    let env_in = List.fold_left (fun m v -> Env.remove v m) env killed in
    let body, _ = prop_stmts env_in body in
    ({ s with sdesc = Ast.For { l with lo; hi; step; body } }, env_in)

and prop_stmts env = function
  | [] -> ([], env)
  | s :: rest ->
    let s, env = prop_stmt env s in
    let rest, env = prop_stmts env rest in
    (s :: rest, env)

let run prog = fst (prop_stmts Env.empty prog)
