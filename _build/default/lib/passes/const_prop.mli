(** Constant propagation.

    Tracks scalar variables with known constant values through
    straight-line code, folds them into expressions, and constant-folds
    the result. Loop bodies invalidate every scalar they assign (the
    induction-variable pass handles the interesting loop-carried case);
    conditionals keep only facts that hold on both branches. [read]
    kills its target. The transformation preserves program semantics
    and the access trace shape. *)

val run : Dda_lang.Ast.program -> Dda_lang.Ast.program
