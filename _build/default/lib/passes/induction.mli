(** Induction-variable substitution.

    Recognizes scalars incremented by a loop-invariant constant exactly
    once per iteration of a unit-step loop
    ([iz = iz + 2] in the paper's section 8 example) and rewrites their
    uses as affine functions of the loop variable:

    {v
    iz = 0                          iz = 0
    for i = 1 to 10 do              for i = 1 to 10 do
      iz = iz + 2            ==>      a[2*i] = a[2*i + 101] + 3
      a[iz] = a[iz + 101] + 3       end
    end                             if 10 >= 1 then iz = 0 + 2*10 end
    v}

    When the entry value of the variable is a known pure expression it
    is folded in; otherwise the variable itself (now loop-invariant)
    stands for its entry value, which the dependence analyzer treats as
    a symbolic term. A guarded assignment after the loop preserves the
    variable's final value, including for zero-trip loops. Loops whose
    bounds read arrays are left alone so the access trace is
    preserved. *)

val run : Dda_lang.Ast.program -> Dda_lang.Ast.program
