(** The optimizer pipeline the dependence analyzer runs behind, in the
    paper's order: constant propagation, forward substitution,
    induction-variable substitution, and loop normalization, iterated
    to a fixed point (each pass can expose work for the others —
    e.g. induction substitution creates expressions constant
    propagation can fold). *)

val run : ?max_rounds:int -> Dda_lang.Ast.program -> Dda_lang.Ast.program
(** [max_rounds] bounds the fixpoint iteration (default 8, far more
    than real programs need). *)

val passes : (string * (Dda_lang.Ast.program -> Dda_lang.Ast.program)) list
(** The individual passes by name, in pipeline order, for the CLI and
    for ablation experiments. *)
