lib/baselines/banerjee.mli: Dda_core
