lib/baselines/banerjee.ml: Array Consys Dda_core Dda_numeric Direction Ext_int Fun List Problem Zint
