(** The inexact comparators of the paper's section 7.

    - {!gcd_test}: Banerjee's simple GCD test (algorithm 5.4.1 in his
      book): each subscript dimension separately, bounds ignored —
      integer solvability of [sum a_i x_i = c] iff [gcd(a_i) | c].
    - {!bounds_test}: the Banerjee bounds test (algorithm 4.3.1),
      realized as rectangular/interval reasoning: per dimension, the
      real-valued range of the subscript difference is bracketed from
      the per-variable boxes; a constant outside the bracket proves
      independence.
    - {!directions}: Wolfe's direction-vector extension of the
      rectangular test (2.5.2 in his book): the same bracketing with
      the coupled [(i, i')] contribution specialized per direction,
      refined hierarchically with unused variables eliminated (so
      [a\[i\]] vs [a\[i-1\]] yields the single vector "star,<", as the
      paper sets up its comparison).

    All three are {e conservative}: they may answer "maybe dependent"
    for independent pairs (the paper measures 16% missed independences
    and 22% excess direction vectors) but never claim independence for
    a dependent pair — a property the test suite checks against the
    exact analyzer. *)

type verdict =
  | Independent
  | Maybe_dependent

val gcd_test : Dda_core.Problem.t -> verdict
val bounds_test : Dda_core.Problem.t -> verdict
val combined : Dda_core.Problem.t -> verdict
(** [gcd_test] then [bounds_test]. *)

val directions : Dda_core.Problem.t -> Dda_core.Direction.dir array list option
(** [None] when even the all-[*] vector cannot be refuted... never:
    [Some vectors] with the vectors under which dependence could not be
    disproved; [None] exactly when the pair is independent by the
    undirected test. Unused common levels are reported as [*]. *)
