(* Canonical fractions: [den] is always positive and [gcd num den = 1];
   zero is [0/1]. Canonicity makes structural equality and hashing
   valid. *)

type t = { num : Zint.t; den : Zint.t }

let mk_canonical num den =
  if Zint.is_zero den then raise Division_by_zero;
  if Zint.is_zero num then { num = Zint.zero; den = Zint.one }
  else begin
    let num, den = if Zint.is_negative den then (Zint.neg num, Zint.neg den) else (num, den) in
    let g = Zint.gcd num den in
    if Zint.is_one g then { num; den }
    else { num = Zint.divexact num g; den = Zint.divexact den g }
  end

let make = mk_canonical
let of_zint z = { num = z; den = Zint.one }
let of_int n = of_zint (Zint.of_int n)
let of_ints n d = mk_canonical (Zint.of_int n) (Zint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let is_zero q = Zint.is_zero q.num
let is_negative q = Zint.is_negative q.num
let is_positive q = Zint.is_positive q.num
let is_integer q = Zint.is_one q.den
let sign q = Zint.sign q.num

let equal a b = Zint.equal a.num b.num && Zint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (both denominators positive). *)
  Zint.compare (Zint.mul a.num b.den) (Zint.mul b.num a.den)

let hash q = (Zint.hash q.num * 31) + Zint.hash q.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg q = { q with num = Zint.neg q.num }
let abs q = { q with num = Zint.abs q.num }

let add a b =
  mk_canonical
    (Zint.add (Zint.mul a.num b.den) (Zint.mul b.num a.den))
    (Zint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = mk_canonical (Zint.mul a.num b.num) (Zint.mul a.den b.den)

let inv q =
  if is_zero q then raise Division_by_zero;
  mk_canonical q.den q.num

let div a b = mul a (inv b)

let floor q = Zint.fdiv q.num q.den
let ceil q = Zint.cdiv q.num q.den

let to_zint q = if is_integer q then Some q.num else None

let to_zint_exn q =
  match to_zint q with
  | Some z -> z
  | None -> failwith "Qnum.to_zint_exn: not an integer"

let mid_integer lo hi =
  let l = ceil lo and h = floor hi in
  if Zint.compare l h > 0 then None
  else Some (Zint.fdiv (Zint.add l h) Zint.two)

let pp fmt q =
  if is_integer q then Zint.pp fmt q.num
  else Format.fprintf fmt "%a/%a" Zint.pp q.num Zint.pp q.den
