(** Exact rational numbers over {!Zint}.

    Fourier-Motzkin elimination works over the rationals; using exact
    rationals (rather than floats) keeps the "independent" verdicts it
    produces sound for the integer dependence problem. Values are kept
    canonical: the denominator is positive and the fraction is in lowest
    terms, so [equal] and [compare] are cheap and [hash] is structural. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Zint.t -> Zint.t -> t
(** [make num den] is [num/den] in canonical form.
    @raise Division_by_zero when [den] is zero. *)

val of_zint : Zint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Zint.t
val den : t -> Zint.t

val is_zero : t -> bool
val is_negative : t -> bool
val is_positive : t -> bool
val is_integer : t -> bool
val sign : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val floor : t -> Zint.t
(** Greatest integer [<=] the argument. *)

val ceil : t -> Zint.t
(** Least integer [>=] the argument. *)

val to_zint : t -> Zint.t option
(** [Some n] when the value is the integer [n]. *)

val to_zint_exn : t -> Zint.t
(** @raise Failure when the value is not an integer. *)

val mid_integer : t -> t -> Zint.t option
(** [mid_integer lo hi] is an integer near the middle of [[lo, hi]], or
    [None] when the interval contains no integer. Used by the
    Fourier-Motzkin back-substitution heuristic. *)

val pp : Format.formatter -> t -> unit
