(** Integers extended with [-oo] and [+oo].

    Variable bounds in dependence systems are frequently one-sided
    (symbolic terms have no bounds at all), so the bound-tracking in the
    SVPC and Acyclic tests works over this extended domain. *)

type t =
  | Neg_inf
  | Fin of Zint.t
  | Pos_inf

val neg_inf : t
val pos_inf : t
val fin : Zint.t -> t
val of_int : int -> t

val is_finite : t -> bool
val to_zint : t -> Zint.t option
val to_zint_exn : t -> Zint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t
(** @raise Invalid_argument on [-oo + +oo]. *)

val neg : t -> t

val mul_zint : Zint.t -> t -> t
(** Multiplication by a non-zero finite integer; the sign of the
    multiplier flips infinities.
    @raise Invalid_argument when the multiplier is zero and the extended
    value is infinite. *)

val pp : Format.formatter -> t -> unit
