(* Sign-magnitude bignum. The magnitude is a little-endian array of
   base-2^15 limbs with no leading (high-order) zero limb; zero is
   represented by [sign = 0] and an empty magnitude, which makes the
   representation canonical and lets [equal]/[compare]/[hash] be
   structural. Base 2^15 keeps every intermediate product of two limbs
   plus carries well inside a 63-bit native int. *)

type t = { sign : int; mag : int array }

let base = 32768
let base_bits = 15

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) helpers. All take/return canonical arrays.    *)
(* ------------------------------------------------------------------ *)

let mzero : int array = [||]

let mnorm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mis_zero a = Array.length a = 0

let mcompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec scan i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else scan (i - 1) in
    scan (la - 1)

let madd a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  mnorm r

(* Requires [a >= b]. *)
let msub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mnorm r

let mmul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mzero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land (base - 1);
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land (base - 1);
        carry := s lsr base_bits;
        incr k
      done
    done;
    mnorm r
  end

(* Multiply by a small non-negative int (< 2^45 is safe; callers stay
   far below that). *)
let mmul_small a d =
  if d = 0 || mis_zero a then mzero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 4) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * d) + !carry in
      r.(i) <- s land (base - 1);
      carry := s lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land (base - 1);
      carry := !carry lsr base_bits;
      incr k
    done;
    mnorm r
  end

let madd_small a d =
  if d = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref d in
    let i = ref 0 in
    while !carry <> 0 do
      let s = r.(!i) + !carry in
      r.(!i) <- s land (base - 1);
      carry := s lsr base_bits;
      incr i
    done;
    mnorm r
  end

(* Divide by a small positive int; returns quotient magnitude and the
   int remainder. *)
let mdivmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mnorm q, !rem)

let mbits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let b = ref 0 and v = ref top in
    while !v > 0 do incr b; v := !v lsr 1 done;
    ((la - 1) * base_bits) + !b
  end

let mgetbit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

let mshl1_plus a bit =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref bit in
  for i = 0 to la - 1 do
    let s = (a.(i) lsl 1) lor !carry in
    r.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  r.(la) <- !carry;
  mnorm r

(* Schoolbook binary long division on magnitudes: adequate for the small
   operands dependence systems produce. Requires [b] non-zero. *)
let mdivmod a b =
  if mcompare a b < 0 then (mzero, a)
  else if Array.length b = 1 then begin
    let q, r = mdivmod_small a b.(0) in
    (q, if r = 0 then mzero else [| r |])
  end
  else begin
    let nbits = mbits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref mzero in
    for i = nbits - 1 downto 0 do
      r := mshl1_plus !r (mgetbit a i);
      if mcompare !r b >= 0 then begin
        r := msub !r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mnorm q, !r)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                      *)
(* ------------------------------------------------------------------ *)

let mk sign mag = if mis_zero mag then { sign = 0; mag = mzero } else { sign; mag }

let zero = { sign = 0; mag = mzero }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* Work with negative residues so that [min_int] is handled. *)
    let n = if n > 0 then -n else n in
    let buf = Array.make 5 0 in
    let rec go n i =
      if n = 0 then i
      else begin
        buf.(i) <- -(n mod base);
        go (n / base) (i + 1)
      end
    in
    let len = go n 0 in
    mk sign (Array.sub buf 0 len)
  end

let sign z = z.sign
let is_zero z = z.sign = 0
let is_negative z = z.sign < 0
let is_positive z = z.sign > 0
let is_one z = z.sign = 1 && Array.length z.mag = 1 && z.mag.(0) = 1

let equal a b = a.sign = b.sign && mcompare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mcompare a.mag b.mag
  else mcompare b.mag a.mag

let hash z =
  let h = ref (z.sign + 0x9e37) in
  Array.iter (fun limb -> h := (!h * 31) + limb) z.mag;
  !h land max_int

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg z = mk (-z.sign) z.mag
let abs z = mk (Stdlib.abs z.sign) z.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (madd a.mag b.mag)
  else begin
    let c = mcompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (msub a.mag b.mag)
    else mk b.sign (msub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = mk (a.sign * b.sign) (mmul a.mag b.mag)

let mul_int a d =
  if d >= 0 && d < base then mk a.sign (mmul_small a.mag d)
  else mul a (of_int d)

let succ z = add z one
let pred z = sub z one

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mdivmod a.mag b.mag in
  (mk (a.sign * b.sign) qm, mk a.sign rm)

let div_trunc a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  (* Truncated division rounds toward zero; floor rounds toward -inf. *)
  if is_zero r || sign r = sign b then q else pred q

let cdiv a b =
  let q, r = divmod a b in
  if is_zero r || sign r <> sign b then q else succ q

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then failwith "Zint.divexact: inexact division";
  q

let divides d n = if is_zero d then is_zero n else is_zero (rem n d)

let rec gcd_mag a b = if mis_zero b then a else gcd_mag b (snd (mdivmod a b))

let gcd a b = mk 1 (gcd_mag a.mag b.mag)

let ext_gcd a b =
  (* Invariants: r0 = a*x0 + b*y0, r1 = a*x1 + b*y1. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if is_zero r1 then (r0, x0, y0)
    else begin
      let q = div_trunc r0 r1 in
      go r1 x1 y1 (sub r0 (mul q r1)) (sub x0 (mul q x1)) (sub y0 (mul q y1))
    end
  in
  let g, x, y = go a one zero b zero one in
  if is_negative g then (neg g, neg x, neg y) else (g, x, y)

let lcm a b =
  if is_zero a || is_zero b then zero else abs (mul (divexact a (gcd a b)) b)

let pow b e =
  if e < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let to_int z =
  (* Values need at most 62 bits of magnitude to fit; reconstruct and
     guard the only corner, [min_int] itself. *)
  let b = mbits z.mag in
  if b > 63 then None
  else begin
    let v = ref 0 and ok = ref true in
    (try
       for i = Array.length z.mag - 1 downto 0 do
         if !v > (max_int - z.mag.(i)) / base then begin ok := false; raise Exit end;
         v := (!v * base) + z.mag.(i)
       done
     with Exit -> ());
    if !ok then Some (if z.sign < 0 then - !v else !v)
    else if z.sign < 0 && b = 63 && mcompare z.mag (of_int Stdlib.min_int).mag = 0 then
      Some Stdlib.min_int
    else None
  end

let to_int_exn z =
  match to_int z with
  | Some n -> n
  | None -> failwith "Zint.to_int_exn: value does not fit in an int"

let to_string z =
  if is_zero z then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks m acc =
      if mis_zero m then acc
      else begin
        let q, r = mdivmod_small m 10000 in
        chunks q (r :: acc)
      end
    in
    (match chunks z.mag [] with
     | [] -> assert false
     | first :: rest ->
       if z.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Zint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Zint.of_string: missing digits";
  let mag = ref mzero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Zint.of_string: invalid digit";
    mag := madd_small (mmul_small !mag 10) (Char.code c - Char.code '0')
  done;
  mk sign !mag

let pp fmt z = Format.pp_print_string fmt (to_string z)
