lib/numeric/ext_int.ml: Format Zint
