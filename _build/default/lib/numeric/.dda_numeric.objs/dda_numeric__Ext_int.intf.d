lib/numeric/ext_int.mli: Format Zint
