lib/numeric/qnum.ml: Format Zint
