lib/numeric/qnum.mli: Format Zint
