lib/numeric/zint.ml: Array Buffer Char Format List Printf Stdlib String
