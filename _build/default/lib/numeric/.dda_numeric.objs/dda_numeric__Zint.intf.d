lib/numeric/zint.mli: Format
