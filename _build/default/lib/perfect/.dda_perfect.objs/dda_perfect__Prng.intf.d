lib/perfect/prng.mli:
