lib/perfect/programs.mli: Patterns
