lib/perfect/patterns.mli: Prng
