lib/perfect/programs.ml: Array List Patterns Prng String
