lib/perfect/prng.ml: Int64 List
