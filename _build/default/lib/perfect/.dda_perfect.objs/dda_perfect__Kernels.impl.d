lib/perfect/kernels.ml: List String
