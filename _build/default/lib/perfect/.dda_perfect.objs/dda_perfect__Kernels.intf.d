lib/perfect/kernels.mli:
