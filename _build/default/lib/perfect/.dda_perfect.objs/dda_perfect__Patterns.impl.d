lib/perfect/patterns.ml: Printf Prng String
