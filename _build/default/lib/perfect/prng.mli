(** Small deterministic PRNG (xorshift64-star) so benchmark programs are
    reproducible across runs and platforms without touching the global
    [Random] state. *)

type t

val create : int -> t
(** Seeded generator; the same seed always yields the same stream. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n)]. @raise Invalid_argument when
    [n <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val choose : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val bool : t -> bool
