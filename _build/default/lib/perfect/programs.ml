type spec = {
  name : string;
  lines : int;
  seed : int;
  mix : (Patterns.category * int) list;
}

(* Counts are the paper's Table 1 rows divided by 4 (rounded, with
   non-zero entries kept at >= 1), plus a sprinkle of symbolic nests
   sized from the Table 5 -> Table 7 growth. *)
let all =
  let open Patterns in
  [
    {
      name = "AP";
      lines = 6104;
      seed = 101;
      mix =
        [ (Constant, 58); (Gcd_indep, 22); (Svpc, 154); (Symbolic_mix, 6) ];
    };
    {
      name = "CS";
      lines = 18520;
      seed = 102;
      mix = [ (Constant, 12); (Svpc, 32); (Acyclic, 4); (Symbolic_mix, 4) ];
    };
    {
      name = "LG";
      lines = 2327;
      seed = 103;
      mix = [ (Constant, 1740); (Svpc, 18); (Symbolic_mix, 2) ];
    };
    {
      name = "LW";
      lines = 1237;
      seed = 104;
      mix = [ (Constant, 14); (Svpc, 8); (Acyclic, 10) ];
    };
    {
      name = "MT";
      lines = 3785;
      seed = 105;
      mix = [ (Constant, 12); (Svpc, 82); (Symbolic_mix, 2) ];
    };
    {
      name = "NA";
      lines = 3976;
      seed = 106;
      mix =
        [
          (Constant, 12);
          (Svpc, 170);
          (Acyclic, 50);
          (Loop_residue, 2);
          (Fourier, 2);
          (Symbolic_mix, 22);
        ];
    };
    {
      name = "OC";
      lines = 2739;
      seed = 107;
      mix = [ (Constant, 2); (Gcd_indep, 2); (Svpc, 10); (Symbolic_mix, 2) ];
    };
    {
      name = "SD";
      lines = 7607;
      seed = 108;
      mix =
        [
          (Constant, 238);
          (Svpc, 132);
          (Acyclic, 4);
          (Loop_residue, 2);
          (Fourier, 4);
        ];
    };
    {
      name = "SM";
      lines = 2759;
      seed = 109;
      mix = [ (Constant, 252); (Gcd_indep, 24); (Svpc, 66) ];
    };
    {
      name = "SR";
      lines = 3970;
      seed = 110;
      mix = [ (Constant, 420); (Svpc, 322); (Symbolic_mix, 2) ];
    };
    {
      name = "TF";
      lines = 2020;
      seed = 111;
      mix = [ (Constant, 200); (Gcd_indep, 2); (Svpc, 206); (Symbolic_mix, 4) ];
    };
    {
      name = "TI";
      lines = 484;
      seed = 112;
      mix = [ (Svpc, 2); (Acyclic, 10) ];
    };
    {
      name = "WS";
      lines = 3884;
      seed = 113;
      mix =
        [
          (Constant, 10);
          (Gcd_indep, 46);
          (Svpc, 94);
          (Acyclic, 2);
          (Fourier, 40);
          (Symbolic_mix, 2);
        ];
    };
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

(* Seeded Fisher-Yates, so nests of different categories interleave the
   way real code mixes its loops. *)
let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

let source spec =
  let rng = Prng.create spec.seed in
  let nests =
    List.concat_map
      (fun (cat, count) -> List.init count (fun _ -> Patterns.generate rng cat))
      spec.mix
  in
  let arr = Array.of_list nests in
  shuffle rng arr;
  String.concat "\n" (Array.to_list arr)
