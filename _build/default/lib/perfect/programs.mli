(** The synthetic PERFECT Club: thirteen seeded program generators
    whose reference-pattern mixes are scaled (by 1/8) from the
    corresponding rows of the paper's Table 1, so that per-program
    test-frequency tables reproduce the paper's shape — which program
    leans on which test — without the original Fortran sources. *)

type spec = {
  name : string;  (** the paper's two-letter code (AP, CS, ...) *)
  lines : int;  (** source lines of the real benchmark, for display *)
  seed : int;
  mix : (Patterns.category * int) list;  (** nests per category *)
}

val all : spec list
(** The thirteen programs in the paper's table order. *)

val find : string -> spec option

val source : spec -> string
(** Deterministically generate the program's full source text: the
    category mix expanded to loop nests and interleaved in a seeded
    order. *)
