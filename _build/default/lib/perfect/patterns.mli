(** Reference-pattern templates for the synthetic PERFECT Club.

    Each category is engineered so that the pairs it produces are
    (predominantly) decided by the corresponding stage of the cascade —
    mirroring the columns of the paper's Table 1. Parameters are drawn
    from deliberately small sets: real programs repeat the same
    subscript shapes over and over, which is exactly what makes the
    paper's memoization effective. *)

type category =
  | Constant  (** array-constant subscripts, no dependence testing *)
  | Gcd_indep  (** stride/parity mismatch caught by the GCD step *)
  | Svpc  (** decided by Single Variable Per Constraint *)
  | Acyclic  (** coupled subscripts with an acyclic constraint graph *)
  | Loop_residue  (** difference-constraint cycles *)
  | Fourier  (** needs the Fourier-Motzkin backup *)
  | Symbolic_mix  (** symbolic terms in subscripts (paper section 8) *)

val all_categories : category list
val category_name : category -> string

val generate : Prng.t -> category -> string
(** One self-contained loop nest (source text) of the given flavor. *)
