type t = { mutable state : int64 }

let create seed =
  (* Never allow a zero state. *)
  let s = Int64.of_int (if seed = 0 then 0x9e3779b9 else seed) in
  { state = Int64.logxor s 0x2545F4914F6CDD1DL }

let next t =
  (* xorshift64* *)
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  next t mod n

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range";
  lo + int t (hi - lo + 1)

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let bool t = int t 2 = 0
