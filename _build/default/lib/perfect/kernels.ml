type kernel = {
  name : string;
  description : string;
  source : string;
  parallel_loops : string list;
  serial_loops : string list;
}

let all =
  [
    {
      name = "vector-add";
      description = "elementwise c = a + b";
      source = "for i = 1 to 1000 do\n  c[i] = a[i] + b[i]\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "saxpy";
      description = "y = y + 2x; the in-place update is loop-independent";
      source = "for i = 1 to 1000 do\n  y[i] = y[i] + 2 * x[i]\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "prefix-sum";
      description = "first-order recurrence";
      source = "for i = 2 to 1000 do\n  s[i] = s[i - 1] + a[i]\nend\n";
      parallel_loops = [];
      serial_loops = [ "i" ];
    };
    {
      name = "matmul";
      description = "dense matrix multiply; only the reduction loop is serial";
      source =
        "for i = 1 to 64 do\n\
        \  for j = 1 to 64 do\n\
        \    for k = 1 to 64 do\n\
        \      cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]\n\
        \    end\n\
        \  end\n\
         end\n";
      parallel_loops = [ "i"; "j" ];
      serial_loops = [ "k" ];
    };
    {
      name = "jacobi-1d";
      description = "out-of-place three-point stencil";
      source = "for i = 2 to 999 do\n  fresh[i] = old[i - 1] + old[i + 1]\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "gauss-seidel-1d";
      description = "in-place three-point stencil: carried both ways";
      source = "for i = 2 to 999 do\n  g[i] = g[i - 1] + g[i + 1]\nend\n";
      parallel_loops = [];
      serial_loops = [ "i" ];
    };
    {
      name = "transpose";
      description = "out-of-place matrix transpose";
      source =
        "for i = 1 to 100 do\n\
        \  for j = 1 to 100 do\n\
        \    tb[i][j] = ta[j][i]\n\
        \  end\n\
         end\n";
      parallel_loops = [ "i"; "j" ];
      serial_loops = [];
    };
    {
      name = "red-black";
      description = "update the even points from the odd ones";
      source =
        "for i = 1 to 499 do\n  rb[2 * i] = rb[2 * i - 1] + rb[2 * i + 1]\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "forward-substitution";
      description = "triangular solve; both loops carry dependences";
      source =
        "for i = 2 to 100 do\n\
        \  for j = 1 to i - 1 do\n\
        \    x[i] = x[i] - ll[i][j] * x[j]\n\
        \  end\n\
         end\n";
      parallel_loops = [];
      serial_loops = [ "i"; "j" ];
    };
    {
      name = "wavefront";
      description = "2-d recurrence on both neighbors";
      source =
        "for i = 1 to 100 do\n\
        \  for j = 1 to 100 do\n\
        \    wf[i][j] = wf[i - 1][j] + wf[i][j - 1]\n\
        \  end\n\
         end\n";
      parallel_loops = [];
      serial_loops = [ "i"; "j" ];
    };
    {
      name = "strided-copy";
      description = "even cells from odd cells: parity proves independence";
      source = "for i = 1 to 500 do\n  b2[2 * i] = b2[2 * i + 1] + 1\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "reversal";
      description = "first half from second half: ranges do not meet";
      source = "for i = 1 to 50 do\n  rv[i] = rv[101 - i]\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "nonlinear";
      description = "a quadratic subscript defeats analysis: conservative";
      source = "for i = 1 to 30 do\n  h[i * i] = h[i] + 1\nend\n";
      parallel_loops = [];
      serial_loops = [ "i" ];
    };
    {
      name = "convolution";
      description = "FIR filter: taps reduce serially, outputs in parallel";
      source =
        "for i = 1 to 100 do\n\
        \  for k = 0 to 4 do\n\
        \    outc[i] = outc[i] + sig[i + k] * coef[k]\n\
        \  end\n\
         end\n";
      parallel_loops = [ "i" ];
      serial_loops = [ "k" ];
    };
    {
      name = "periodic-halves";
      description = "first half updated from second half";
      source = "for i = 1 to 50 do\n  pb[i] = pb[i + 50] + 1\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "stride-3";
      description = "multiples of three from residue-2 cells: gcd-independent";
      source = "for i = 1 to 100 do\n  g3[3 * i] = g3[3 * i - 1] + 1\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "symbolic-scale";
      description = "in-place scaling under an unknown bound";
      source = "read(n)\nfor i = 1 to n do\n  sv[i] = sv[i] * 2\nend\n";
      parallel_loops = [ "i" ];
      serial_loops = [];
    };
    {
      name = "halving-gather";
      description = "x[i] from x[2i]: reads race ahead of writes";
      source = "for i = 1 to 50 do\n  sh[i] = sh[2 * i]\nend\n";
      parallel_loops = [];
      serial_loops = [ "i" ];
    };
    {
      name = "banded-smoother";
      description = "anti-diagonal accesses inside a band (loop-residue country)";
      source =
        "read(n)\n\
         for i = 1 to n do\n\
        \  for j = i - 2 to i + 2 do\n\
        \    bs[i - j] = bs[i - j + 1] + 1\n\
        \  end\n\
         end\n";
      parallel_loops = [];
      serial_loops = [ "i"; "j" ];
    };
  ]

let find name = List.find_opt (fun k -> String.equal k.name name) all
