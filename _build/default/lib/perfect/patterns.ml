type category =
  | Constant
  | Gcd_indep
  | Svpc
  | Acyclic
  | Loop_residue
  | Fourier
  | Symbolic_mix

let all_categories =
  [ Constant; Gcd_indep; Svpc; Acyclic; Loop_residue; Fourier; Symbolic_mix ]

let category_name = function
  | Constant -> "constant"
  | Gcd_indep -> "gcd"
  | Svpc -> "svpc"
  | Acyclic -> "acyclic"
  | Loop_residue -> "loop-residue"
  | Fourier -> "fourier"
  | Symbolic_mix -> "symbolic"

(* Arrays and bounds come from deliberately small pools: realistic
   programs repeat the same subscript shapes over and over, which is
   what makes the paper's memoization collapse 5,679 tests to 332.
   1-D and 2-D arrays use disjoint pools so ranks stay consistent
   program-wide. (Array names are not part of the memo key, so the
   pools add realism without adding uniqueness.) *)
let arrays = [ "a"; "b"; "c"; "u"; "v"; "w" ]
let arrays2 = [ "aa"; "bb"; "cc"; "uu" ]
let bounds = [ "100"; "n"; "n"; "n" ]  (* mostly the same symbolic n *)
let small_offsets = [ 1; 1; 1; 2 ]

let header bound = if String.equal bound "n" then "read(n)\n" else ""

let sp = Printf.sprintf

(* One nest in three, wrap in an enclosing loop whose variable is never
   used: the paper's motivating case for the improved memoization
   scheme and for unused-variable pruning of direction vectors. *)
let wrap_unused rng nest =
  if Prng.int rng 3 = 0 then
    let v = Prng.choose rng [ "l"; "m2" ] in
    sp "for %s = 1 to 10 do\n%send\n" v nest
  else nest

(* a[C1] = a[C2] + 1 inside a loop: the "array constants" column. *)
let gen_constant rng =
  let a = Prng.choose rng arrays in
  let b = Prng.choose rng bounds in
  let c1 = Prng.range rng 1 3 and c2 = Prng.range rng 1 3 in
  header b
  ^ wrap_unused rng
      (sp "for i = 1 to %s do\n  %s[%d] = %s[%d] + 1\nend\n" b a c1 a c2)

(* Caught by the extended GCD step: stride parity, or coupled
   subscripts whose equations are jointly inconsistent (the paper's
   motivating class that per-dimension tests cannot see). *)
let gen_gcd_indep rng =
  let b = Prng.choose rng bounds in
  (* Coupled subscripts dominate, following Shen, Li and Yew's finding
     that they "appear frequently and cannot be analyzed accurately
     using traditional algorithms". *)
  match Prng.choose rng [ 0; 1; 1 ] with
  | 0 ->
    let a = Prng.choose rng arrays in
    let k = Prng.choose rng [ 2; 2; 2; 4 ] in
    let o = Prng.range rng 1 (k - 1) in
    header b
    ^ wrap_unused rng
        (sp "for i = 1 to %s do\n  %s[%d * i] = %s[%d * i + %d] + 1\nend\n" b a k
           a k o)
  | _ ->
    (* i = i' and i = i' + o jointly inconsistent: only a coupled
       (whole-system) test proves independence. *)
    let a2 = Prng.choose rng arrays2 in
    let o = Prng.choose rng small_offsets in
    header b
    ^ wrap_unused rng
        (sp "for i = 1 to %s do\n  %s[i][i] = %s[i][i + %d] + 1\nend\n" b a2 a2 o)

(* The bread-and-butter shapes: offsets, separable 2D, the paper's
   coupled-but-SVPC transpose, stencils. *)
let gen_svpc rng =
  let a = Prng.choose rng arrays in
  let b = Prng.choose rng bounds in
  let o1 = Prng.choose rng small_offsets and o2 = Prng.choose rng small_offsets in
  let plus v o = if o = 0 then v else sp "%s + %d" v o in
  match Prng.int rng 5 with
  | 0 ->
    (* 1D offset pair; both orientations occur, as in real code (the
       paper's symmetrical-cases observation). *)
    let w, r = if Prng.bool rng then (plus "i" o1, "i") else ("i", plus "i" o1) in
    header b
    ^ wrap_unused rng
        (sp "for i = 1 to %s do\n  %s[%s] = %s[%s] + 1\nend\n" b a w a r)
  | 1 ->
    (* separable 2D stencil *)
    let a2 = Prng.choose rng arrays2 in
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = 1 to %s do\n    %s[%s][j] = %s[%s][j + 1] + 1\n  end\nend\n"
        b b a2 (plus "i" o1) a2 (plus "i" o2)
  | 2 ->
    (* the paper's transpose-with-offsets (section 3.2) *)
    let a2 = Prng.choose rng arrays2 in
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = 1 to %s do\n    %s[i][j] = %s[j + 10][i + 9]\n  end\nend\n"
        b b a2 a2
  | 3 ->
    (* independent: offset beyond the (constant) range *)
    wrap_unused rng
      (sp "for i = 1 to 10 do\n  %s[%s] = %s[i + %d] + 1\nend\n" a (plus "i" o1) a
         (10 + Prng.choose rng [ 1; 1; 2 ]))
  | _ ->
    (* strided copy, same stride: SVPC after GCD substitution *)
    let k = Prng.choose rng [ 2; 3 ] in
    header b
    ^ wrap_unused rng
        (sp "for i = 1 to %s do\n  %s[%d * i] = %s[%d * i + %d] + 1\nend\n" b a k a
           k (k * o1))

(* Coupled subscripts i+j: after GCD the bounds become multi-variable
   but one-directional. *)
let gen_acyclic rng =
  let a = Prng.choose rng arrays in
  let b = Prng.choose rng bounds in
  let o = Prng.choose rng small_offsets in
  match Prng.int rng 3 with
  | 0 ->
    (* Triangular inner bound keeps a multi-variable (but
       one-directional) constraint in the reduced system. *)
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = 1 to i do\n    %s[i + j] = %s[i + j + %d] + 1\n  end\nend\n"
        b a a o
  | 1 ->
    let a2 = Prng.choose rng arrays2 in
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = 1 to i do\n    %s[i + j][j] = %s[i + j + %d][j] + 1\n  end\nend\n"
        b a2 a2 o
  | _ ->
    (* Independent flavor: j <= i <= 40 pins i to its maximum and the
       offset then falls outside j's range — infeasibility the acyclic
       substitution discovers. *)
    sp
      "for i = 1 to 40 do\n  for j = 1 to i do\n    %s[j] = %s[j + %d] + 1\n  end\nend\n"
      a a (40 + o)

(* Anti-diagonal accesses under band bounds (j within a window around
   i): the residual system is a cycle of difference constraints with
   equal-magnitude coefficients. *)
let gen_loop_residue rng =
  let a = Prng.choose rng arrays in
  let b = Prng.choose rng bounds in
  let w = Prng.choose rng [ 2; 2; 3 ] in
  let o = Prng.choose rng small_offsets in
  match Prng.int rng 3 with
  | 0 ->
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = i - %d to i + %d do\n    %s[i - j] = %s[i - j + %d] + 1\n  end\nend\n"
        b w w a a o
  | 1 ->
    let a2 = Prng.choose rng arrays2 in
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = i - %d to i + %d do\n    %s[j - i][i] = %s[j - i + %d][i] + 1\n  end\nend\n"
        b w w a2 a2 o
  | _ ->
    (* Independent flavor: the anti-diagonal offset exceeds the band
       width, a negative cycle in the residue graph. *)
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = i - %d to i + %d do\n    %s[i - j] = %s[i - j + %d] + 1\n  end\nend\n"
        b w w a a ((2 * w) + 1 + o)

(* Unequal coefficients in a cyclic core: only Fourier-Motzkin
   applies. *)
let gen_fourier rng =
  let a = Prng.choose rng arrays in
  let b = Prng.choose rng bounds in
  let o = Prng.choose rng small_offsets in
  match Prng.int rng 2 with
  | 0 ->
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = i - 3 to i + 3 do\n    %s[2 * i - j] = %s[i + j + %d] + 1\n  end\nend\n"
        b a a o
  | _ ->
    header b
    ^ sp
        "for i = 1 to %s do\n  for j = i - 2 to i + 4 do\n    %s[2 * i + j] = %s[i + 2 * j + %d] + 1\n  end\nend\n"
        b a a o

(* Symbolic terms inside subscripts (paper section 8). *)
let gen_symbolic rng =
  let a = Prng.choose rng arrays in
  match Prng.int rng 3 with
  | 0 ->
    (* the paper's own example *)
    sp "read(n)\nfor i = 1 to 10 do\n  %s[i + n] = %s[i + 2 * n + 1] + 3\nend\n" a a
  | 1 ->
    (* provably independent whatever n is *)
    sp "read(n)\nfor i = 1 to 10 do\n  %s[i + n] = %s[i + n + %d] + 3\nend\n" a a
      (10 + Prng.choose rng [ 1; 1; 2 ])
  | _ ->
    sp "read(n)\nfor i = 1 to n do\n  %s[i + n] = %s[i + n + %d] + 1\nend\n" a a
      (Prng.choose rng small_offsets)

let generate rng = function
  | Constant -> gen_constant rng
  | Gcd_indep -> gen_gcd_indep rng
  | Svpc -> gen_svpc rng
  | Acyclic -> gen_acyclic rng
  | Loop_residue -> gen_loop_residue rng
  | Fourier -> gen_fourier rng
  | Symbolic_mix -> gen_symbolic rng
