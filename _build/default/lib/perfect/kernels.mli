(** A curated library of classic numerical kernels in the mini-Fortran
    language, with their known dependence structure. These complement
    the statistical generators: each kernel is a real algorithm whose
    parallel and serial loops are textbook facts, used as integration
    tests and demo inputs. *)

type kernel = {
  name : string;
  description : string;
  source : string;
  parallel_loops : string list;
      (** loop variables (outermost occurrence order) that carry no
          dependence *)
  serial_loops : string list;  (** loops that do carry a dependence *)
}

val all : kernel list
val find : string -> kernel option
