open Dda_lang

type group = {
  stmts : Loc.t list;
  parallel : bool;
}

type plan = {
  lid : int;
  groups : group list;
}

(* ------------------------------------------------------------------ *)
(* Dependence edges among body statements, relative to one loop level  *)
(* ------------------------------------------------------------------ *)

type edge = {
  src : Loc.t;
  dst : Loc.t;
  carried : bool;  (* at this loop's level or deeper *)
}

let flip_dir = function
  | Direction.Dlt -> Direction.Dgt
  | Direction.Dgt -> Direction.Dlt
  | (Direction.Deq | Direction.Dany) as d -> d

(* Oriented edges of one vector: who is the source, and is the
   dependence relevant (not already satisfied by an outer loop) and
   carried at this level? [pos] is the loop's index in the pair's
   common nest. *)
let edges_of_vector (r : Analyzer.pair_report) pos v =
  let relevant v =
    let rec outer j = j >= pos || (v.(j) <> Direction.Dlt && v.(j) <> Direction.Dgt && outer (j + 1)) in
    outer 0
  in
  let carried v = pos < Array.length v && v.(pos) <> Direction.Deq in
  let one_way src dst v =
    if relevant v then [ { src; dst; carried = carried v } ] else []
  in
  let rec lead k =
    if k >= Array.length v then `Eq
    else
      match v.(k) with
      | Direction.Deq -> lead (k + 1)
      | Direction.Dlt -> `Fwd
      | Direction.Dgt -> `Bwd
      | Direction.Dany -> `Ambiguous
  in
  match lead 0 with
  | `Fwd -> one_way r.stmt1 r.stmt2 v
  | `Bwd -> one_way r.stmt2 r.stmt1 (Array.map flip_dir v)
  | `Eq ->
    (* Loop-independent: within one iteration, textual order decides;
       a reference against itself carries nothing. *)
    if Loc.equal r.stmt1 r.stmt2 then []
    else if Loc.compare r.stmt1 r.stmt2 <= 0 then one_way r.stmt1 r.stmt2 v
    else one_way r.stmt2 r.stmt1 v
  | `Ambiguous ->
    one_way r.stmt1 r.stmt2 v @ one_way r.stmt2 r.stmt1 (Array.map flip_dir v)

let pair_edges lid (r : Analyzer.pair_report) =
  let rec index_of k = function
    | [] -> None
    | id :: _ when id = lid -> Some k
    | _ :: rest -> index_of (k + 1) rest
  in
  match index_of 0 r.common_ids with
  | None -> []
  | Some pos -> (
      let all_star = Array.make r.ncommon Direction.Dany in
      match r.outcome with
      | Analyzer.Constant false | Analyzer.Gcd_independent -> []
      | Analyzer.Constant true | Analyzer.Assumed_dependent ->
        edges_of_vector r pos all_star
      | Analyzer.Tested t when not t.dependent -> []
      | Analyzer.Tested t ->
        if t.directions = [] then edges_of_vector r pos all_star
        else List.concat_map (edges_of_vector r pos) t.directions)

(* ------------------------------------------------------------------ *)
(* Tarjan SCC + topological ordering of the condensation               *)
(* ------------------------------------------------------------------ *)

let sccs nodes succ =
  let n = Array.length nodes in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !components

let plan_loop (report : Analyzer.report) ~lid ~stmts =
  let nodes = Array.of_list stmts in
  let n = Array.length nodes in
  let node_of = Hashtbl.create 8 in
  Array.iteri (fun i loc -> Hashtbl.replace node_of loc i) nodes;
  let edges =
    List.concat_map (pair_edges lid) report.pair_reports
    |> List.filter_map (fun e ->
        match (Hashtbl.find_opt node_of e.src, Hashtbl.find_opt node_of e.dst) with
        | Some s, Some d -> Some (s, d, e.carried)
        | _ -> None)
  in
  let succ v = List.filter_map (fun (s, d, _) -> if s = v then Some d else None) edges in
  let comps = sccs nodes succ in
  (* Topological order of the condensation (Kahn), preferring the
     textually earliest component on ties for determinism. *)
  let comp_of = Array.make n (-1) in
  let comps = Array.of_list comps in
  Array.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
  let nc = Array.length comps in
  let indeg = Array.make nc 0 in
  let comp_edges = Hashtbl.create 16 in
  List.iter
    (fun (s, d, _) ->
       let cs = comp_of.(s) and cd = comp_of.(d) in
       if cs <> cd && not (Hashtbl.mem comp_edges (cs, cd)) then begin
         Hashtbl.replace comp_edges (cs, cd) ();
         indeg.(cd) <- indeg.(cd) + 1
       end)
    edges;
  let first_pos ci = List.fold_left (fun acc v -> min acc v) max_int comps.(ci) in
  let order = ref [] in
  let remaining = ref (List.init nc Fun.id) in
  let done_ = Array.make nc false in
  while !remaining <> [] do
    let ready = List.filter (fun ci -> indeg.(ci) = 0) !remaining in
    let pick =
      match ready with
      | [] ->
        (* Cannot happen: the condensation is acyclic. *)
        List.hd !remaining
      | _ -> List.fold_left (fun a b -> if first_pos b < first_pos a then b else a) (List.hd ready) ready
    in
    order := pick :: !order;
    done_.(pick) <- true;
    remaining := List.filter (fun ci -> ci <> pick) !remaining;
    Hashtbl.iter
      (fun (cs, cd) () -> if cs = pick && not done_.(cd) then indeg.(cd) <- indeg.(cd) - 1)
      comp_edges
  done;
  let groups =
    List.rev_map
      (fun ci ->
         let members = List.sort compare comps.(ci) in
         let in_comp v = comp_of.(v) = ci in
         let parallel =
           not (List.exists (fun (s, d, carried) -> carried && in_comp s && in_comp d) edges)
         in
         { stmts = List.map (fun v -> nodes.(v)) members; parallel })
      !order
  in
  { lid; groups }

(* ------------------------------------------------------------------ *)
(* Locating and rewriting the loop in the AST                          *)
(* ------------------------------------------------------------------ *)

(* Loops numbered in pre-order, matching Affine.extract. *)
let find_loop prog ~lid =
  let counter = ref 0 in
  let found = ref None in
  let rec walk (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign _ | Ast.Read _ -> ()
    | Ast.If (_, t, e) ->
      List.iter walk t;
      List.iter walk e
    | Ast.For f ->
      let this = !counter in
      incr counter;
      if this = lid && !found = None then found := Some (s, f);
      List.iter walk f.body
  in
  List.iter walk prog;
  !found

let array_assignments body =
  let ok =
    List.for_all
      (fun (s : Ast.stmt) ->
         match s.sdesc with Ast.Assign (Ast.Larr _, _) -> true | _ -> false)
      body
  in
  if ok then Some (List.map (fun (s : Ast.stmt) -> s.Ast.sloc) body) else None

let body_stmts prog ~lid =
  match find_loop prog ~lid with
  | None -> None
  | Some (_, f) -> array_assignments f.body

let apply prog (plan : plan) =
  match find_loop prog ~lid:plan.lid with
  | None -> None
  | Some (loop_stmt, f) -> (
      match array_assignments f.body with
      | None -> None
      | Some _
        when not
               (Dda_passes.Expr_util.is_pure_scalar f.lo
                && Dda_passes.Expr_util.is_pure_scalar f.hi) -> None
      | Some _ ->
        let stmt_at loc =
          List.find (fun (s : Ast.stmt) -> Loc.equal s.Ast.sloc loc) f.body
        in
        let replacement =
          List.map
            (fun g ->
               (* Each copy needs its own identity; borrow the first
                  member's location. *)
               {
                 Ast.sdesc = Ast.For { f with body = List.map stmt_at g.stmts };
                 sloc = (match g.stmts with l :: _ -> l | [] -> loop_stmt.Ast.sloc);
               })
            plan.groups
        in
        (* Replace the loop statement (by location) wherever it sits. *)
        let rec rewrite (s : Ast.stmt) =
          if Loc.equal s.Ast.sloc loop_stmt.Ast.sloc then replacement
          else
            match s.sdesc with
            | Ast.Assign _ | Ast.Read _ -> [ s ]
            | Ast.If (c, t, e) ->
              [ { s with sdesc = Ast.If (c, List.concat_map rewrite t, List.concat_map rewrite e) } ]
            | Ast.For f' ->
              [ { s with sdesc = Ast.For { f' with body = List.concat_map rewrite f'.body } } ]
        in
        Some (List.concat_map rewrite prog))
