(** Per-variable integer bound boxes [lo_i <= t_i <= hi_i] with
    infinities, shared by the SVPC and Acyclic tests: single-variable
    constraints are absorbed here, multi-variable ones stay as rows. *)

open Dda_numeric

type t

val create : int -> t
(** All variables unbounded. *)

val copy : t -> t
val nvars : t -> int
val lo : t -> int -> Ext_int.t
val hi : t -> int -> Ext_int.t

val tighten_lo : t -> int -> Zint.t -> unit
val tighten_hi : t -> int -> Zint.t -> unit

val absorb : t -> Consys.row -> [ `Absorbed | `Trivial | `False ]
(** Fold a zero- or one-variable row into the box. [`Trivial] means the
    row holds vacuously ([0 <= b], [b >= 0]); [`False] means it can
    never hold. @raise Invalid_argument on a row with two or more
    variables. *)

val consistent : t -> bool
(** Every interval non-empty. *)

val first_empty : t -> int option
(** Index of a variable whose interval is empty, if any. *)

val sample : t -> Zint.t array option
(** A point inside the box ([None] when inconsistent): the lower bound
    where finite, else the upper bound, else zero. *)

val to_rows : t -> Consys.row list
(** The box as single-variable rows of width [nvars]. *)

val pp : Format.formatter -> t -> unit
