(** Canonicalization for the improved memoization scheme (paper
    section 5): eliminate loop variables that play no part in the
    problem — they appear in no subscript equation, no other variable's
    bound, and their own bounds provably admit at least one value — so
    that e.g. the two nests of the paper's example (differing only in a
    dead [j] loop) memoize to the same key.

    Dropped {e common} levels are remembered: their direction is ["*"]
    and must be re-inserted into reported direction vectors. *)

type info = {
  problem : Problem.t;  (** the reduced problem *)
  kept_common : bool array;
      (** per original common level: false when the level was dropped *)
  dropped_any : bool;
}

val reduce : ?keep_common:bool -> Problem.t -> info
(** [keep_common] (default false) retains every common level even when
    unused — required for self pairs, where an "unused" common loop
    still distinguishes the identity instance from a real output
    dependence. *)

val reinsert_vector :
  info -> Direction.dir array -> Direction.dir array
(** Map a direction vector over the reduced problem's common levels back
    to the original problem's levels, filling dropped levels with
    [Dany]. *)
