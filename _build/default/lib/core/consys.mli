(** Indexed systems of integer linear inequalities [sum a_i * t_i <= b]
    — the common input format of every dependence test, as produced by
    the Extended GCD preprocessing step. *)

open Dda_numeric

type row = {
  coeffs : Zint.t array;
  rhs : Zint.t;
}

type t = {
  nvars : int;
  rows : row list;
}

val make : nvars:int -> row list -> t
(** Checks row widths. *)

val row_of_ints : int list -> int -> row
val normalize_row : row -> row
(** Divide by the gcd of the coefficients and floor the bound — exact
    for integer-valued variables ([2x <= 5] is [x <= 2]). Zero rows are
    returned unchanged. *)

val nonzero_vars : row -> int list
val num_vars_used : row -> int

val satisfies : Zint.t array -> row -> bool
val satisfies_all : Zint.t array -> t -> bool

val equal_row : row -> row -> bool
val pp_row : names:string array -> Format.formatter -> row -> unit
val pp : ?names:string array -> Format.formatter -> t -> unit
