open Dda_numeric

type test =
  | T_svpc
  | T_acyclic
  | T_loop_residue
  | T_fourier

let test_name = function
  | T_svpc -> "svpc"
  | T_acyclic -> "acyclic"
  | T_loop_residue -> "loop-residue"
  | T_fourier -> "fourier-motzkin"

let pp_test fmt t = Format.pp_print_string fmt (test_name t)

type verdict =
  | Independent
  | Dependent of Zint.t array option
  | Unknown

type result = {
  verdict : verdict;
  decided_by : test;
}

let run ?(fm_tighten = false) ?(fm_depth = 32) (sys : Consys.t) =
  match Svpc.run sys with
  | Svpc.Infeasible -> { verdict = Independent; decided_by = T_svpc }
  | Svpc.Feasible box -> { verdict = Dependent (Bounds.sample box); decided_by = T_svpc }
  | Svpc.Partial (box, multi) -> (
      match Acyclic.run box multi with
      | Acyclic.Infeasible -> { verdict = Independent; decided_by = T_acyclic }
      | Acyclic.Feasible (_, _) ->
        (* Feasibility is exact, but a full witness would need values
           for the variables the test discharged; callers that need one
           use Fourier-Motzkin or brute force. *)
        { verdict = Dependent None; decided_by = T_acyclic }
      | Acyclic.Cycle (box', core) -> (
          match Loop_residue.run box' core with
          | Some Loop_residue.Infeasible ->
            { verdict = Independent; decided_by = T_loop_residue }
          | Some (Loop_residue.Feasible _) ->
            (* The witness covers the residual core only; see above. *)
            { verdict = Dependent None; decided_by = T_loop_residue }
          | None -> (
              (* Back-up test on the full system, so any witness covers
                 every variable. *)
              match Fourier.run ~tighten:fm_tighten ~max_branch_depth:fm_depth sys with
              | Fourier.Infeasible -> { verdict = Independent; decided_by = T_fourier }
              | Fourier.Feasible w -> { verdict = Dependent (Some w); decided_by = T_fourier }
              | Fourier.Unknown -> { verdict = Unknown; decided_by = T_fourier })))
