(** The Acyclic test (paper section 3.3).

    A variable that appears with only one sign across the remaining
    multi-variable constraints is constrained in only one direction by
    them, so it can be pinned to its extreme single-variable bound (or
    discharged entirely when that bound is infinite) without changing
    feasibility. When the constraint graph is acyclic this eliminates
    every variable, deciding the system exactly; a cyclic core is
    handed to the next test, already simplified. *)

open Dda_numeric

type outcome =
  | Infeasible
  | Feasible of Bounds.t * (int * Zint.t) list
      (** The box after propagation plus the pinned variables (an
          infinite-bound variable that was discharged has no pin). *)
  | Cycle of Bounds.t * Consys.row list
      (** Variables remain that are constrained in both directions: the
          residual cyclic core. *)

val run : Bounds.t -> Consys.row list -> outcome
(** [run box rows] with [rows] the multi-variable residue from
    {!Svpc.run}. [box] is copied, not mutated. *)
