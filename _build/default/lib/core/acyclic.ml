open Dda_numeric

type outcome =
  | Infeasible
  | Feasible of Bounds.t * (int * Zint.t) list
  | Cycle of Bounds.t * Consys.row list

(* Sign usage of every variable across the multi-variable rows. *)
let sign_usage nvars rows =
  let pos = Array.make nvars false and neg = Array.make nvars false in
  List.iter
    (fun (r : Consys.row) ->
       Array.iteri
         (fun i c ->
            if Zint.is_positive c then pos.(i) <- true
            else if Zint.is_negative c then neg.(i) <- true)
         r.coeffs)
    rows;
  (pos, neg)

(* Substitute t_i := v in every row that mentions it; re-classify the
   results. Returns the surviving multi-variable rows, or None on a
   contradiction. *)
let substitute box i v rows =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (r : Consys.row) :: rest ->
      if Zint.is_zero r.coeffs.(i) then go (r :: acc) rest
      else begin
        let coeffs = Array.copy r.coeffs in
        let a = coeffs.(i) in
        coeffs.(i) <- Zint.zero;
        let r' = { Consys.coeffs; rhs = Zint.sub r.rhs (Zint.mul a v) } in
        if Consys.num_vars_used r' >= 2 then go (r' :: acc) rest
        else
          match Bounds.absorb box r' with
          | `Absorbed | `Trivial -> go acc rest
          | `False -> None
      end
  in
  go [] rows

let run box rows =
  let box = Bounds.copy box in
  let nvars = Bounds.nvars box in
  let rec loop rows pins =
    if not (Bounds.consistent box) then Infeasible
    else if rows = [] then Feasible (box, List.rev pins)
    else begin
      let pos, neg = sign_usage nvars rows in
      (* A variable used with a single sign is constrained in only one
         direction by the rows: pin it to the opposite extreme of its
         box (or discharge the rows if that extreme is infinite). *)
      let candidate = ref None in
      for i = nvars - 1 downto 0 do
        if pos.(i) && not neg.(i) then candidate := Some (i, `Upper_only)
        else if neg.(i) && not pos.(i) then candidate := Some (i, `Lower_only)
      done;
      match !candidate with
      | None -> Cycle (box, rows)
      | Some (i, dir) -> (
          let extreme =
            match dir with
            | `Upper_only -> Bounds.lo box i (* rows only cap it from above *)
            | `Lower_only -> Bounds.hi box i
          in
          match extreme with
          | Ext_int.Fin v -> (
              match substitute box i v rows with
              | None -> Infeasible
              | Some rows' -> loop rows' ((i, v) :: pins))
          | Ext_int.Neg_inf | Ext_int.Pos_inf ->
            (* Unbounded in the helpful direction: every row mentioning
               t_i is satisfiable regardless of the other variables. *)
            let rows' =
              List.filter (fun (r : Consys.row) -> Zint.is_zero r.coeffs.(i)) rows
            in
            loop rows' pins)
    end
  in
  loop rows []
