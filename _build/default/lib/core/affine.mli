(** Affine extraction: from a (preferably optimizer-cleaned) program to
    reference sites with affine subscripts and loop contexts — the raw
    material of dependence problems.

    Scalars are classified per site: an enclosing loop's variable is a
    loop variable; any other scalar is a {e symbolic term} when the
    analysis runs in symbolic mode (paper section 8) and the scalar is
    loop-invariant at the site. Symbolic terms are versioned by their
    reaching definition, so two sites share a symbol only when the same
    value reaches both (the paper's "as long as we know that n does not
    vary inside the loop"). Anything else poisons the enclosing
    subscript, which is then treated conservatively. *)

open Dda_lang

type loop_ctx = {
  lid : int;  (** unique id of the [for] node; shared loops compare ids *)
  lvar : string;
  lb : Symexpr.t option;  (** [None]: bound not affine, treat as unknown *)
  ub : Symexpr.t option;
}

type site = {
  array : string;
  role : [ `Read | `Write ];
  site_loc : Loc.t;
  stmt_loc : Loc.t;  (** the enclosing assignment statement *)
  loops : loop_ctx list;  (** outermost first *)
  subscripts : Symexpr.t option list;  (** [None]: dimension not affine *)
}

val analyzable : site -> bool
(** Every dimension affine. *)

val constant_subscripts : site -> Dda_numeric.Zint.t list option
(** All-constant subscripts (the paper's "array constants" column). *)

val extract : ?symbolic:bool -> Ast.program -> site list
(** [symbolic] defaults to [true]. With [symbolic:false] non-loop
    scalars poison subscripts and make bounds unknown, reproducing the
    pre-section-8 configuration. Sites appear in textual order. *)

val common_loops : site -> site -> int
(** Number of shared enclosing loops (longest common [lid] prefix). *)

val loop_table : site list -> (int * string) list
(** Every loop id occurring in the sites with its variable name, in
    first-occurrence (pre-)order — the display helper every client
    needs. *)
