open Dda_numeric

type t = {
  los : Ext_int.t array;
  his : Ext_int.t array;
}

let create n = { los = Array.make n Ext_int.neg_inf; his = Array.make n Ext_int.pos_inf }
let copy b = { los = Array.copy b.los; his = Array.copy b.his }
let nvars b = Array.length b.los
let lo b i = b.los.(i)
let hi b i = b.his.(i)

let tighten_lo b i v = b.los.(i) <- Ext_int.max b.los.(i) (Ext_int.fin v)
let tighten_hi b i v = b.his.(i) <- Ext_int.min b.his.(i) (Ext_int.fin v)

let absorb b (r : Consys.row) =
  match Consys.nonzero_vars r with
  | [] -> if Zint.is_negative r.rhs then `False else `Trivial
  | [ i ] ->
    let a = r.coeffs.(i) in
    (* a*t <= b: upper bound floor(b/a) for a > 0, lower bound
       ceil(b/a) for a < 0. *)
    if Zint.is_positive a then tighten_hi b i (Zint.fdiv r.rhs a)
    else tighten_lo b i (Zint.cdiv r.rhs a);
    `Absorbed
  | _ :: _ :: _ -> invalid_arg "Bounds.absorb: multi-variable row"

let first_empty b =
  let n = nvars b in
  let rec go i =
    if i >= n then None
    else if Ext_int.compare b.los.(i) b.his.(i) > 0 then Some i
    else go (i + 1)
  in
  go 0

let consistent b = first_empty b = None

let sample b =
  if not (consistent b) then None
  else
    Some
      (Array.init (nvars b) (fun i ->
           match (b.los.(i), b.his.(i)) with
           | Ext_int.Fin l, _ -> l
           | Ext_int.Neg_inf, Ext_int.Fin h -> h
           | Ext_int.Neg_inf, _ -> Zint.zero
           | Ext_int.Pos_inf, _ -> assert false))

let to_rows b =
  let n = nvars b in
  let unit_row i c rhs =
    let coeffs = Array.make n Zint.zero in
    coeffs.(i) <- c;
    { Consys.coeffs; rhs }
  in
  let out = ref [] in
  for i = n - 1 downto 0 do
    (match b.his.(i) with
     | Ext_int.Fin h -> out := unit_row i Zint.one h :: !out
     | Ext_int.Neg_inf | Ext_int.Pos_inf -> ());
    match b.los.(i) with
    | Ext_int.Fin l -> out := unit_row i Zint.minus_one (Zint.neg l) :: !out
    | Ext_int.Neg_inf | Ext_int.Pos_inf -> ()
  done;
  !out

let pp fmt b =
  Format.fprintf fmt "@[<v>";
  for i = 0 to nvars b - 1 do
    Format.fprintf fmt "%a <= t%d <= %a@," Ext_int.pp b.los.(i) i Ext_int.pp b.his.(i)
  done;
  Format.fprintf fmt "@]"
