(** The cascaded exact dependence test (paper sections 3 and 4).

    After Extended GCD preprocessing, the tests are attempted cheapest
    first — SVPC, Acyclic, Loop Residue, Fourier-Motzkin — each one
    exact on its applicable class, so at most one test {e decides} any
    query; the earlier ones contribute their simplifications (absorbed
    bounds, eliminated variables) to the later ones. *)

open Dda_numeric

type test =
  | T_svpc
  | T_acyclic
  | T_loop_residue
  | T_fourier

val test_name : test -> string
val pp_test : Format.formatter -> test -> unit

type verdict =
  | Independent
  | Dependent of Zint.t array option
      (** witness over the system's variables, when one was produced *)
  | Unknown  (** Fourier-Motzkin ran out of branch depth: assume
                 dependent *)

type result = {
  verdict : verdict;
  decided_by : test;
}

val run : ?fm_tighten:bool -> ?fm_depth:int -> Consys.t -> result
(** Decide feasibility of a system of inequalities over integer
    variables (the [t]-space system from {!Gcd_test.run}, possibly with
    direction-vector rows appended). *)
