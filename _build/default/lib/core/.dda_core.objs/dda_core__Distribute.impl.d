lib/core/distribute.ml: Analyzer Array Ast Dda_lang Dda_passes Direction Fun Hashtbl List Loc
