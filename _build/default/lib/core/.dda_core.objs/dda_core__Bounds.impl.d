lib/core/bounds.ml: Array Consys Dda_numeric Ext_int Format Zint
