lib/core/direction.ml: Array Cascade Consys Dda_numeric Format Fun Gcd_test List Option Problem Zint
