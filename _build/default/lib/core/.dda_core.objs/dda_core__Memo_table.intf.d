lib/core/memo_table.mli:
