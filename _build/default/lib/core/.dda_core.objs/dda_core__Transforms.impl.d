lib/core/transforms.ml: Analyzer Array Direction List Option
