lib/core/bounds.mli: Consys Dda_numeric Ext_int Format Zint
