lib/core/cascade.ml: Acyclic Bounds Consys Dda_numeric Format Fourier Loop_residue Svpc Zint
