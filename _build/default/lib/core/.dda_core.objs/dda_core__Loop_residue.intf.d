lib/core/loop_residue.mli: Bounds Consys Dda_numeric Zint
