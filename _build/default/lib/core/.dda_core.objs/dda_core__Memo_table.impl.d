lib/core/memo_table.ml: Array List
