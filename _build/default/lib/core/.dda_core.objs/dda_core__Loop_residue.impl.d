lib/core/loop_residue.ml: Array Bounds Buffer Consys Dda_numeric Ext_int List Printf Zint
