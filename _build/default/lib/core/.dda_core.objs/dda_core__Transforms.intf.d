lib/core/transforms.mli: Analyzer
