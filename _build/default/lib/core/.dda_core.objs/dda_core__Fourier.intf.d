lib/core/fourier.mli: Consys Dda_numeric Zint
