lib/core/distribute.mli: Analyzer Ast Dda_lang Loc
