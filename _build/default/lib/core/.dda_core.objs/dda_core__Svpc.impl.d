lib/core/svpc.ml: Bounds Consys List
