lib/core/affine.ml: Ast Dda_lang Dda_passes Hashtbl List Loc Option Printf String Symexpr
