lib/core/build_problem.mli: Affine Problem
