lib/core/svpc.mli: Bounds Consys
