lib/core/consys.mli: Dda_numeric Format Zint
