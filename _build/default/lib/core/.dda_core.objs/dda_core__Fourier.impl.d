lib/core/fourier.ml: Array Consys Dda_numeric Hashtbl List Qnum String Zint
