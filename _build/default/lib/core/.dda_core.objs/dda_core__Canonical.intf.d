lib/core/canonical.mli: Direction Problem
