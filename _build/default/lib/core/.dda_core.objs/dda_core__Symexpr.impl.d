lib/core/symexpr.ml: Dda_lang Dda_numeric Format List Map Option String Zint
