lib/core/problem.ml: Array Consys Dda_numeric Format List String Zint
