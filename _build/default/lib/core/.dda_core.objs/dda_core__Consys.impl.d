lib/core/consys.ml: Array Dda_numeric Format List Printf Zint
