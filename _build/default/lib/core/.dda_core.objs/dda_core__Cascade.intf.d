lib/core/cascade.mli: Consys Dda_numeric Format Zint
