lib/core/acyclic.ml: Array Bounds Consys Dda_numeric Ext_int List Zint
