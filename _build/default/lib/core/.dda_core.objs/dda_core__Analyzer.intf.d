lib/core/analyzer.mli: Affine Ast Cascade Dda_lang Dda_numeric Direction Format Loc Zint
