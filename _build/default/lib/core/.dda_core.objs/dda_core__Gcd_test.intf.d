lib/core/gcd_test.mli: Consys Dda_numeric Problem Zint
