lib/core/json_out.mli: Analyzer Format
