lib/core/symexpr.mli: Dda_lang Dda_numeric Format Zint
