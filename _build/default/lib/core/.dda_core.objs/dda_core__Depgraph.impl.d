lib/core/depgraph.ml: Analyzer Array Buffer Dda_lang Dda_numeric Direction Format Hashtbl List Loc Printf String
