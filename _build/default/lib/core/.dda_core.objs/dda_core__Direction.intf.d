lib/core/direction.mli: Cascade Dda_numeric Format Gcd_test Problem Zint
