lib/core/analyzer.ml: Affine Array Build_problem Canonical Cascade Dda_lang Dda_numeric Dda_passes Direction Format Fun Gcd_test List Loc Marshal Memo_table Option Problem String Zint
