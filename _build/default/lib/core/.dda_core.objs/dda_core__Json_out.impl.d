lib/core/json_out.ml: Analyzer Array Buffer Cascade Char Dda_lang Dda_numeric Direction Format List Loc Printf String
