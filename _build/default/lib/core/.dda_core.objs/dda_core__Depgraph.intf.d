lib/core/depgraph.mli: Analyzer
