lib/core/acyclic.mli: Bounds Consys Dda_numeric Zint
