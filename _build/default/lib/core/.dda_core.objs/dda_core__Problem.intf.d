lib/core/problem.mli: Consys Dda_numeric Format Zint
