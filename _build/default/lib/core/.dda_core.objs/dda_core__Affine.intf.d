lib/core/affine.mli: Ast Dda_lang Dda_numeric Loc Symexpr
