lib/core/build_problem.ml: Affine Array Consys Dda_numeric List Option Problem String Symexpr Zint
