lib/core/canonical.ml: Array Bounds Consys Dda_numeric Direction Fun List Problem Zint
