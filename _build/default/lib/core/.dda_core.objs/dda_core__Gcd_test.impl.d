lib/core/gcd_test.ml: Array Consys Dda_linalg Dda_numeric List Matrix Problem Zint
