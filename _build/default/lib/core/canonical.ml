open Dda_numeric

type info = {
  problem : Problem.t;
  kept_common : bool array;
  dropped_any : bool;
}

(* A loop variable can be dropped when nothing else observes it: it is
   absent from every equality, absent from every other variable's
   bound, its own bounds mention nothing but itself, and those bounds
   admit at least one integer (dropping a zero-trip loop would change
   the answer). *)
let droppable (p : Problem.t) v =
  List.for_all (fun (r : Consys.row) -> Zint.is_zero r.coeffs.(v)) p.eqs
  && List.for_all
       (fun (b : Problem.bound) ->
          if b.subject = v then
            List.for_all (fun i -> i = v) (Consys.nonzero_vars b.row)
          else Zint.is_zero b.row.Consys.coeffs.(v))
       p.ineqs
  &&
  (* Own bounds consistent. *)
  let box = Bounds.create (Problem.nvars p) in
  List.for_all
    (fun (b : Problem.bound) ->
       b.subject <> v
       ||
       match Bounds.absorb box b.row with
       | `Absorbed | `Trivial -> true
       | `False -> false)
    p.ineqs
  && Bounds.consistent box

let reduce ?(keep_common = false) (p : Problem.t) =
  let n1 = p.n1 and n2 = p.n2 and ncommon = p.ncommon in
  let nv = Problem.nvars p in
  let drop_var = Array.make nv false in
  (* Non-common loop variables drop individually; a common level drops
     only when both copies are droppable; symbols drop when unused. *)
  for k = 0 to n1 - 1 do
    if k >= ncommon then drop_var.(k) <- droppable p k
  done;
  for k = 0 to n2 - 1 do
    if k >= ncommon then drop_var.(n1 + k) <- droppable p (n1 + k)
  done;
  let kept_common = Array.make ncommon true in
  for k = 0 to ncommon - 1 do
    if (not keep_common) && droppable p k && droppable p (n1 + k) then begin
      drop_var.(k) <- true;
      drop_var.(n1 + k) <- true;
      kept_common.(k) <- false
    end
  done;
  for s = n1 + n2 to nv - 1 do
    let used_somewhere =
      List.exists (fun (r : Consys.row) -> not (Zint.is_zero r.coeffs.(s))) p.eqs
      || List.exists
           (fun (b : Problem.bound) -> not (Zint.is_zero b.row.Consys.coeffs.(s)))
           p.ineqs
    in
    drop_var.(s) <- not used_somewhere
  done;
  let dropped_any = Array.exists Fun.id drop_var in
  if not dropped_any then { problem = p; kept_common; dropped_any = false }
  else begin
    let remap = Array.make nv (-1) in
    let next = ref 0 in
    let assign i =
      if not drop_var.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    in
    for i = 0 to n1 - 1 do assign i done;
    for i = n1 to n1 + n2 - 1 do assign i done;
    for i = n1 + n2 to nv - 1 do assign i done;
    let nv' = !next in
    let map_row (r : Consys.row) =
      let coeffs = Array.make nv' Zint.zero in
      Array.iteri (fun i c -> if remap.(i) >= 0 then coeffs.(remap.(i)) <- c) r.coeffs;
      { Consys.coeffs; rhs = r.rhs }
    in
    let count_kept lo hi =
      let c = ref 0 in
      for i = lo to hi - 1 do
        if not drop_var.(i) then incr c
      done;
      !c
    in
    let n1' = count_kept 0 n1 in
    let n2' = count_kept n1 (n1 + n2) in
    let nsym' = count_kept (n1 + n2) nv in
    let ncommon' = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 kept_common in
    let eqs = List.map map_row p.eqs in
    let ineqs =
      List.filter_map
        (fun (b : Problem.bound) ->
           if drop_var.(b.subject) then None
           else Some { Problem.row = map_row b.row; subject = remap.(b.subject) })
        p.ineqs
    in
    let names = Array.make nv' "" in
    Array.iteri (fun i m -> if m >= 0 then names.(m) <- p.names.(i)) remap;
    let problem =
      Problem.make ~names ~n1:n1' ~n2:n2' ~nsym:nsym' ~ncommon:ncommon' ~eqs ~ineqs
    in
    { problem; kept_common; dropped_any = true }
  end

let reinsert_vector info (v : Direction.dir array) =
  let ncommon = Array.length info.kept_common in
  let out = Array.make ncommon Direction.Dany in
  let j = ref 0 in
  for k = 0 to ncommon - 1 do
    if info.kept_common.(k) then begin
      out.(k) <- v.(!j);
      incr j
    end
  done;
  assert (!j = Array.length v);
  out
