open Dda_numeric

type outcome =
  | Infeasible
  | Feasible of Zint.t array

let two_var_form (r : Consys.row) =
  match Consys.nonzero_vars r with
  | [ i; j ] ->
    let ai = r.coeffs.(i) and aj = r.coeffs.(j) in
    if Zint.equal ai (Zint.neg aj) then
      (* a*(t_p - t_n) <= rhs with a > 0 *)
      let p, n, a = if Zint.is_positive ai then (i, j, ai) else (j, i, aj) in
      Some (p, n, a)
    else None
  | _ -> None

let applicable rows =
  List.for_all
    (fun (r : Consys.row) ->
       match Consys.num_vars_used r with
       | 0 | 1 -> true
       | 2 -> two_var_form r <> None
       | _ -> false)
    rows

(* Edges (src, dst, w) encode x_dst - x_src <= w; node [nvars] is the
   paper's special node n0 anchoring single-variable constraints. *)
let edges_of box rows =
  let nvars = Bounds.nvars box in
  let n0 = nvars in
  let edges = ref [] in
  let add src dst w = edges := (src, dst, w) :: !edges in
  let constant_false = ref false in
  List.iter
    (fun (r : Consys.row) ->
       match Consys.nonzero_vars r with
       | [] -> if Zint.is_negative r.rhs then constant_false := true
       | [ i ] ->
         let a = r.coeffs.(i) in
         if Zint.is_positive a then add n0 i (Zint.fdiv r.rhs a)
         else add i n0 (Zint.neg (Zint.cdiv r.rhs a))
       | _ -> (
           match two_var_form r with
           | Some (p, n, a) -> add n p (Zint.fdiv r.rhs a)
           | None -> invalid_arg "Loop_residue: inapplicable row"))
    rows;
  for i = 0 to nvars - 1 do
    (match Bounds.hi box i with
     | Ext_int.Fin h -> add n0 i h
     | Ext_int.Neg_inf | Ext_int.Pos_inf -> ());
    match Bounds.lo box i with
    | Ext_int.Fin l -> add i n0 (Zint.neg l)
    | Ext_int.Neg_inf | Ext_int.Pos_inf -> ()
  done;
  (!edges, !constant_false)

let run box rows =
  if not (applicable rows) then None
  else begin
    let nvars = Bounds.nvars box in
    let edges, constant_false = edges_of box rows in
    if constant_false then Some Infeasible
    else begin
      (* Bellman-Ford from a virtual source connected to every node with
         weight 0 (equivalently: all distances start at 0). *)
      let n = nvars + 1 in
      let dist = Array.make n Zint.zero in
      let relax_pass () =
        let changed = ref false in
        List.iter
          (fun (src, dst, w) ->
             let cand = Zint.add dist.(src) w in
             if Zint.compare cand dist.(dst) < 0 then begin
               dist.(dst) <- cand;
               changed := true
             end)
          edges;
        !changed
      in
      (* n passes converge for n nodes; an improving (n+1)-th pass
         witnesses a negative cycle. *)
      for _ = 1 to n do
        ignore (relax_pass ())
      done;
      if relax_pass () then Some Infeasible
      else begin
        let d0 = dist.(nvars) in
        Some (Feasible (Array.init nvars (fun i -> Zint.sub dist.(i) d0)))
      end
    end
  end

let to_dot box rows =
  let nvars = Bounds.nvars box in
  let edges, _ = edges_of box rows in
  let name i = if i = nvars then "n0" else Printf.sprintf "t%d" i in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph loop_residue {\n";
  List.iter
    (fun (src, dst, w) ->
       Buffer.add_string buf
         (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" (name src) (name dst)
            (Zint.to_string w)))
    (List.rev edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
