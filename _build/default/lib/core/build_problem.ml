open Dda_numeric

(* Index a site's loop variables: level k of site 1 occupies slot k,
   level k of site 2 occupies slot n1 + k; symbols come last. *)

let build (s1 : Affine.site) (s2 : Affine.site) =
  if not (Affine.analyzable s1 && Affine.analyzable s2) then None
  else if List.length s1.subscripts <> List.length s2.subscripts then None
  else begin
    let loops1 = Array.of_list s1.loops and loops2 = Array.of_list s2.loops in
    let n1 = Array.length loops1 and n2 = Array.length loops2 in
    let ncommon = Affine.common_loops s1 s2 in
    (* Collect symbols from both sites' subscripts and bounds: every
       Symexpr variable that is not an enclosing loop variable. *)
    let syms = ref [] in
    let note_syms loop_vars e =
      List.iter
        (fun v ->
           if (not (List.mem v loop_vars)) && not (List.mem v !syms) then
             syms := v :: !syms)
        (Symexpr.vars e)
    in
    let site_loop_vars (loops : Affine.loop_ctx array) =
      Array.to_list (Array.map (fun c -> c.Affine.lvar) loops)
    in
    let lv1 = site_loop_vars loops1 and lv2 = site_loop_vars loops2 in
    List.iter (Option.iter (note_syms lv1)) s1.subscripts;
    List.iter (Option.iter (note_syms lv2)) s2.subscripts;
    Array.iteri
      (fun k (c : Affine.loop_ctx) ->
         let outer = List.filteri (fun i _ -> i < k) lv1 in
         Option.iter (note_syms outer) c.lb;
         Option.iter (note_syms outer) c.ub)
      loops1;
    Array.iteri
      (fun k (c : Affine.loop_ctx) ->
         let outer = List.filteri (fun i _ -> i < k) lv2 in
         Option.iter (note_syms outer) c.lb;
         Option.iter (note_syms outer) c.ub)
      loops2;
    let syms = Array.of_list (List.rev !syms) in
    let nsym = Array.length syms in
    let nvars = n1 + n2 + nsym in
    let sym_index v =
      let rec go i = if i >= nsym then None else if String.equal syms.(i) v then Some (n1 + n2 + i) else go (i + 1) in
      go 0
    in
    let index_for ~which v =
      (* Loop variables shadow symbols of the same name (cannot happen
         after versioning, but keep the lookup order sane). *)
      let loops, base = if which = `One then (loops1, 0) else (loops2, n1) in
      let rec find k =
        if k >= Array.length loops then None
        else if String.equal loops.(k).Affine.lvar v then Some (base + k)
        else find (k + 1)
      in
      match find 0 with
      | Some i -> Some i
      | None -> sym_index v
    in
    let row_of ~which e extra =
      (* Build sum coeffs . x from a symbolic expression; [extra] lets
         callers add the subject variable's own coefficient. Returns
         (coeffs, const). *)
      let coeffs = Array.make nvars Zint.zero in
      List.iter
        (fun v ->
           match index_for ~which v with
           | Some i -> coeffs.(i) <- Zint.add coeffs.(i) (Symexpr.coeff e v)
           | None -> assert false)
        (Symexpr.vars e);
      List.iter (fun (i, c) -> coeffs.(i) <- Zint.add coeffs.(i) c) extra;
      (coeffs, Symexpr.const_part e)
    in
    (* Equalities: sub1_d(x) - sub2_d(x') = 0. *)
    let eqs =
      List.map2
        (fun e1 e2 ->
           let e1 = Option.get e1 and e2 = Option.get e2 in
           let c1, k1 = row_of ~which:`One e1 [] in
           let c2, k2 = row_of ~which:`Two e2 [] in
           let coeffs = Array.init nvars (fun i -> Zint.sub c1.(i) c2.(i)) in
           { Consys.coeffs; rhs = Zint.sub k2 k1 })
        s1.subscripts s2.subscripts
    in
    (* Bounds: for each loop level of each reference. *)
    let bounds_for ~which (loops : Affine.loop_ctx array) base =
      let out = ref [] in
      Array.iteri
        (fun k (c : Affine.loop_ctx) ->
           let subject = base + k in
           (match c.lb with
            | Some lb ->
              (* lb <= var  ==>  lb - var <= 0 *)
              let coeffs, const = row_of ~which lb [ (subject, Zint.minus_one) ] in
              out := { Problem.row = { Consys.coeffs; rhs = Zint.neg const }; subject } :: !out
            | None -> ());
           match c.ub with
           | Some ub ->
             (* var <= ub  ==>  var - ub <= 0 *)
             let coeffs, const =
               row_of ~which (Symexpr.neg ub) [ (subject, Zint.one) ]
             in
             out := { Problem.row = { Consys.coeffs; rhs = Zint.neg const }; subject } :: !out
           | None -> ())
        loops;
      List.rev !out
    in
    let ineqs = bounds_for ~which:`One loops1 0 @ bounds_for ~which:`Two loops2 n1 in
    let names =
      Array.init nvars (fun i ->
          if i < n1 then loops1.(i).Affine.lvar
          else if i < n1 + n2 then loops2.(i - n1).Affine.lvar ^ "'"
          else syms.(i - n1 - n2))
    in
    Some (Problem.make ~names ~n1 ~n2 ~nsym ~ncommon ~eqs ~ineqs)
  end
