(** Assemble the dependence problem for a pair of reference sites:
    subscript-agreement equalities, loop-bound inequalities (each
    reference gets its own copy of every enclosing loop's variable,
    common loops included), and shared symbolic terms. *)

val build : Affine.site -> Affine.site -> Problem.t option
(** [None] when either site has a non-affine dimension or the ranks
    differ (the caller treats such pairs conservatively). Requires both
    sites to reference the same array. *)
