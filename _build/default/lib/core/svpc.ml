type outcome =
  | Infeasible
  | Feasible of Bounds.t
  | Partial of Bounds.t * Consys.row list

let run (sys : Consys.t) =
  let box = Bounds.create sys.nvars in
  let rec absorb_rows multi = function
    | [] -> Some (List.rev multi)
    | (r : Consys.row) :: rest -> (
        if Consys.num_vars_used r >= 2 then absorb_rows (r :: multi) rest
        else
          match Bounds.absorb box r with
          | `Absorbed | `Trivial -> absorb_rows multi rest
          | `False -> None)
  in
  match absorb_rows [] sys.rows with
  | None -> Infeasible
  | Some multi ->
    if not (Bounds.consistent box) then Infeasible
    else if multi = [] then Feasible box
    else Partial (box, multi)
