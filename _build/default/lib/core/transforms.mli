(** Loop-transformation legality — the classic clients of direction
    vectors. A transformation is legal when every dependence's
    source-to-sink direction vector remains lexicographically
    non-negative afterwards; an unrefined ["*"] level is treated
    conservatively (it could hide a [>]).

    Pairs the analyzer could not refine (non-affine, constant-cell
    collisions, vector-less dependents) are treated as all-["*"]
    dependences over their common loops. *)

val reversal_legal : Analyzer.report -> lid:int -> bool
(** May the loop's iteration order be reversed? Legal iff the loop
    carries no dependence (equivalently: iff it is parallelizable). *)

val interchange_legal : Analyzer.report -> lid_a:int -> lid_b:int -> bool
(** May the two loops of a perfect nest trade places? Checks every
    dependent pair whose common nest contains both loops: swapping the
    two positions of each source-to-sink vector must leave it
    lexicographically non-negative. The caller is responsible for the
    nest being perfect (statement structure is not consulted). *)

val legal_permutations : Analyzer.report -> int list -> int list list
(** All permutations of the given (perfectly nested, outer-to-inner)
    loop ids under which every dependence survives; the identity is
    always included. *)

val fully_permutable : Analyzer.report -> int list -> bool
(** Is the band of loops fully permutable — the precondition for tiling
    it? True when every dependence is either already satisfied by a
    loop outside (above) the band, or has no negative (and no unknown)
    component anywhere inside it. Implies that every permutation of the
    band is legal (property-tested against {!legal_permutations}). *)
