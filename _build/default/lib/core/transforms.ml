let flip = function
  | Direction.Dlt -> Direction.Dgt
  | Direction.Dgt -> Direction.Dlt
  | (Direction.Deq | Direction.Dany) as d -> d

(* Source-to-sink normalization: vectors whose leading non-"=" is ">"
   describe a dependence flowing from the second reference; flip them.
   A leading "*" could be either orientation: keep both readings. *)
let normalize v =
  let rec lead k =
    if k >= Array.length v then `Eq
    else
      match v.(k) with
      | Direction.Deq -> lead (k + 1)
      | Direction.Dlt -> `Forward
      | Direction.Dgt -> `Backward
      | Direction.Dany -> `Ambiguous
  in
  match lead 0 with
  | `Eq | `Forward -> [ v ]
  | `Backward -> [ Array.map flip v ]
  | `Ambiguous -> [ v; Array.map flip v ]

(* The pair's dependences as source-to-sink vectors over its common
   loops; [] means none. Unrefinable outcomes are all-"*". *)
let pair_vectors (r : Analyzer.pair_report) =
  let all_star = Array.make r.ncommon Direction.Dany in
  match r.outcome with
  | Analyzer.Constant false | Analyzer.Gcd_independent -> []
  | Analyzer.Constant true | Analyzer.Assumed_dependent -> [ all_star ]
  | Analyzer.Tested t when not t.dependent -> []
  | Analyzer.Tested t ->
    if t.directions = [] then [ all_star ]
    else List.concat_map normalize t.directions

(* Lexicographic non-negativity with "*" treated as possibly ">". *)
let lex_nonneg v =
  let rec go k =
    if k >= Array.length v then true (* loop-independent *)
    else
      match v.(k) with
      | Direction.Dlt -> true
      | Direction.Deq -> go (k + 1)
      | Direction.Dgt | Direction.Dany -> false
  in
  go 0

let index_of id l =
  let rec go k = function
    | [] -> None
    | x :: _ when x = id -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 l

(* Check one pair against a reordering of [ids] (new outer-to-inner
   order [perm]). Pairs whose common nest contains none of the loops
   are unaffected; pairs containing only some of them cannot be
   verified and fail conservatively. *)
let pair_ok (r : Analyzer.pair_report) ids perm =
  let positions = List.map (fun id -> index_of id r.common_ids) ids in
  if List.for_all (fun p -> p = None) positions then true
  else if List.exists (fun p -> p = None) positions then false
  else begin
    let positions = List.map Option.get positions in
    (* Slot j (the j-th smallest position) receives the component of
       the loop that the permutation places j-th. *)
    let slots = List.sort compare positions in
    let component_pos_of_id id = List.nth positions (Option.get (index_of id ids)) in
    List.for_all
      (fun v ->
         let v' = Array.copy v in
         List.iteri
           (fun j id -> v'.(List.nth slots j) <- v.(component_pos_of_id id))
           perm;
         lex_nonneg v')
      (pair_vectors r)
  end

let check_permutation (report : Analyzer.report) ids perm =
  List.for_all (fun r -> pair_ok r ids perm) report.pair_reports

let reversal_legal (report : Analyzer.report) ~lid =
  (* Reversing flips the component at the loop's position: legal iff no
     vector has its leading non-"=" there, i.e. the loop carries
     nothing. *)
  List.for_all
    (fun (r : Analyzer.pair_report) ->
       match index_of lid r.common_ids with
       | None -> true
       | Some pos ->
         List.for_all
           (fun v ->
              let v' = Array.copy v in
              v'.(pos) <- flip v.(pos);
              lex_nonneg v')
           (pair_vectors r))
    report.pair_reports

let interchange_legal report ~lid_a ~lid_b =
  check_permutation report [ lid_a; lid_b ] [ lid_b; lid_a ]

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
         List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
      l

let legal_permutations report ids =
  List.filter (fun perm -> check_permutation report ids perm) (permutations ids)

let fully_permutable (report : Analyzer.report) ids =
  List.for_all
    (fun (r : Analyzer.pair_report) ->
       let positions = List.map (fun id -> index_of id r.common_ids) ids in
       if List.for_all (fun p -> p = None) positions then true
       else if List.exists (fun p -> p = None) positions then false
       else begin
         let positions = List.map Option.get positions in
         let first_band = List.fold_left min max_int positions in
         List.for_all
           (fun v ->
              (* Satisfied outside the band: a definite "<" strictly
                 above it. *)
              let rec outer k =
                k < first_band
                && (match v.(k) with
                    | Direction.Dlt -> true
                    | Direction.Deq -> outer (k + 1)
                    | Direction.Dgt | Direction.Dany -> false)
              in
              outer 0
              || List.for_all
                   (fun p ->
                      match v.(p) with
                      | Direction.Dlt | Direction.Deq -> true
                      | Direction.Dgt | Direction.Dany -> false)
                   positions)
           (pair_vectors r)
       end)
    report.pair_reports
