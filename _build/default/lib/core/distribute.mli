(** Allen-Kennedy style loop distribution and vectorization analysis —
    the classic consumer of statement-level dependence information (the
    paper's reference [2]).

    For one loop, build the dependence graph over the statements of its
    body, restricted to dependences {e relevant at that loop's level}
    (loop-independent within an iteration, or carried by this loop or
    deeper — dependences carried by an outer loop are satisfied no
    matter how this loop is rearranged). The strongly connected
    components of that graph, in topological order, are the legal
    distribution: each SCC becomes its own loop, and a component with no
    dependence carried at this level runs data-parallel (vectorizes). *)

open Dda_lang

type group = {
  stmts : Loc.t list;  (** statements of the component, textual order *)
  parallel : bool;
      (** no dependence carried at this loop's level stays inside the
          component: its distributed loop may run in any order *)
}

type plan = {
  lid : int;
  groups : group list;  (** topological (execution-legal) order *)
}

val plan_loop : Analyzer.report -> lid:int -> stmts:Loc.t list -> plan
(** [stmts] are the statement locations of the loop's body in textual
    order (see {!body_stmts}). Statements whose dependences the
    analyzer could not refine are handled conservatively (their edges
    go both ways and count as carried). *)

val body_stmts : Ast.program -> lid:int -> Loc.t list option
(** The statement locations of the body of loop number [lid] (loops are
    numbered in pre-order, exactly as {!Affine.extract} numbers them).
    [None] when the loop does not exist or its body contains anything
    but array-assignment statements (conditionals, nested loops and
    scalar assignments are not distributed). *)

val apply : Ast.program -> plan -> Ast.program option
(** Rewrite the program with the planned loop distributed: one copy of
    the loop per group, in plan order. [None] under the same conditions
    as {!body_stmts}, or when the loop's bounds are not pure scalar
    expressions (duplicating them must not duplicate array reads).
    Used by the tests to validate plans by execution. *)
