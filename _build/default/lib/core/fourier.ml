open Dda_numeric

type outcome =
  | Infeasible
  | Feasible of Zint.t array
  | Unknown

type stats = {
  mutable eliminations : int;
  mutable max_rows : int;
  mutable branches : int;
}

let fresh_stats () = { eliminations = 0; max_rows = 0; branches = 0 }

(* Normalize a derived row. Without [tighten], dividing by the gcd is
   only done when it divides the bound too, so the row stays equivalent
   over the rationals. With [tighten], the bound is floored: sound for
   integer variables, stronger than rational reasoning. *)
let normalize ~tighten (r : Consys.row) =
  let g = Array.fold_left (fun g c -> Zint.gcd g c) Zint.zero r.coeffs in
  if Zint.is_zero g || Zint.is_one g then r
  else if tighten then
    {
      Consys.coeffs = Array.map (fun c -> Zint.divexact c g) r.coeffs;
      rhs = Zint.fdiv r.rhs g;
    }
  else if Zint.divides g r.rhs then
    {
      Consys.coeffs = Array.map (fun c -> Zint.divexact c g) r.coeffs;
      rhs = Zint.divexact r.rhs g;
    }
  else r

let row_key (r : Consys.row) =
  String.concat "," (Array.to_list (Array.map Zint.to_string r.coeffs))

(* Keep one row per coefficient vector (the tightest), drop trivially
   true rows, and detect trivially false ones. *)
let dedup rows =
  let table : (string, Consys.row) Hashtbl.t = Hashtbl.create 64 in
  let contradiction = ref false in
  List.iter
    (fun (r : Consys.row) ->
       if Consys.num_vars_used r = 0 then begin
         if Zint.is_negative r.rhs then contradiction := true
       end
       else begin
         let key = row_key r in
         match Hashtbl.find_opt table key with
         | Some prev when Zint.compare prev.rhs r.rhs <= 0 -> ()
         | Some _ | None -> Hashtbl.replace table key r
       end)
    rows;
  if !contradiction then None
  else Some (Hashtbl.fold (fun _ r acc -> r :: acc) table [])

type step = {
  var : int;
  step_rows : Consys.row list;  (* the rows mentioning [var] at its turn *)
}

(* Eliminate [v]: pair every upper bound with every lower bound. *)
let eliminate ~tighten v rows =
  let uppers, lowers, rest =
    List.fold_left
      (fun (u, l, r) (row : Consys.row) ->
         let c = row.coeffs.(v) in
         if Zint.is_positive c then (row :: u, l, r)
         else if Zint.is_negative c then (u, row :: l, r)
         else (u, l, row :: r))
      ([], [], []) rows
  in
  let combos =
    List.concat_map
      (fun (u : Consys.row) ->
         let a = u.coeffs.(v) in
         List.map
           (fun (l : Consys.row) ->
              let b = Zint.neg l.coeffs.(v) in
              (* b*u + a*l cancels v; both multipliers positive. *)
              let coeffs =
                Array.init (Array.length u.coeffs) (fun i ->
                    Zint.add (Zint.mul b u.coeffs.(i)) (Zint.mul a l.coeffs.(i)))
              in
              normalize ~tighten
                { Consys.coeffs; rhs = Zint.add (Zint.mul b u.rhs) (Zint.mul a l.rhs) })
           lowers)
      uppers
  in
  (uppers @ lowers, combos @ rest)

let branch_budget = 64

let rec solve ~tighten ~stats ~depth ~nvars rows =
  match dedup rows with
  | None -> Infeasible
  | Some rows ->
    stats.max_rows <- max stats.max_rows (List.length rows);
    (* Elimination order: ascending variable index over the variables
       actually present, as in the paper. *)
    let used = Array.make nvars false in
    List.iter
      (fun r -> List.iter (fun i -> used.(i) <- true) (Consys.nonzero_vars r))
      rows;
    let order = ref [] in
    for i = nvars - 1 downto 0 do
      if used.(i) then order := i :: !order
    done;
    let rec eliminate_all rows steps = function
      | [] -> Some (List.rev steps, rows)
      | v :: vs -> (
          stats.eliminations <- stats.eliminations + 1;
          let mentioning, remaining = eliminate ~tighten v rows in
          match dedup remaining with
          | None -> None
          | Some remaining ->
            stats.max_rows <- max stats.max_rows (List.length remaining);
            eliminate_all remaining ({ var = v; step_rows = mentioning } :: steps) vs)
    in
    (match eliminate_all rows [] !order with
     | None -> Infeasible
     | Some (steps, residue) ->
       (* The residue is variable-free; dedup already rejected negative
          bounds, so the system is rationally feasible. *)
       assert (List.for_all (fun r -> Consys.num_vars_used r = 0) residue);
       back_substitute ~tighten ~stats ~depth ~nvars ~original:rows steps)

and back_substitute ~tighten ~stats ~depth ~nvars ~original steps =
  let values = Array.make nvars Qnum.zero in
  (* Walk the steps in reverse elimination order; the first variable
     visited has constant bounds. *)
  let rec assign ~first = function
    | [] ->
      let witness = Array.map Qnum.to_zint_exn values in
      assert (List.for_all (Consys.satisfies witness) original);
      Feasible witness
    | { var = v; step_rows } :: rest -> (
        let lo = ref None and hi = ref None in
        List.iter
          (fun (r : Consys.row) ->
             let a = r.coeffs.(v) in
             let sum = ref (Qnum.of_zint r.rhs) in
             Array.iteri
               (fun i c ->
                  if i <> v && not (Zint.is_zero c) then
                    sum := Qnum.sub !sum (Qnum.mul (Qnum.of_zint c) values.(i)))
               r.coeffs;
             let bound = Qnum.div !sum (Qnum.of_zint a) in
             if Zint.is_positive a then
               hi := Some (match !hi with None -> bound | Some h -> Qnum.min h bound)
             else
               lo := Some (match !lo with None -> bound | Some l -> Qnum.max l bound))
          step_rows;
        match (!lo, !hi) with
        | None, None ->
          values.(v) <- Qnum.zero;
          assign ~first:false rest
        | Some l, None ->
          values.(v) <- Qnum.of_zint (Qnum.ceil l);
          assign ~first:false rest
        | None, Some h ->
          values.(v) <- Qnum.of_zint (Qnum.floor h);
          assign ~first:false rest
        | Some l, Some h -> (
            match Qnum.mid_integer l h with
            | Some m ->
              values.(v) <- Qnum.of_zint m;
              assign ~first:false rest
            | None ->
              if first then
                (* Constant range with no integer: provably no integer
                   solution anywhere (paper's special case). *)
                Infeasible
              else if depth <= 0 || stats.branches >= branch_budget then Unknown
              else begin
                (* Branch-and-bound: [l, h] lies strictly between two
                   consecutive integers m and m+1. *)
                stats.branches <- stats.branches + 1;
                let m = Qnum.floor l in
                let le_row =
                  let coeffs = Array.make nvars Zint.zero in
                  coeffs.(v) <- Zint.one;
                  { Consys.coeffs; rhs = m }
                in
                let ge_row =
                  let coeffs = Array.make nvars Zint.zero in
                  coeffs.(v) <- Zint.minus_one;
                  { Consys.coeffs; rhs = Zint.neg (Zint.succ m) }
                in
                let left =
                  solve ~tighten ~stats ~depth:(depth - 1) ~nvars (le_row :: original)
                in
                match left with
                | Feasible _ as ok -> ok
                | Infeasible | Unknown -> (
                    let right =
                      solve ~tighten ~stats ~depth:(depth - 1) ~nvars
                        (ge_row :: original)
                    in
                    match (left, right) with
                    | _, (Feasible _ as ok) -> ok
                    | Infeasible, Infeasible -> Infeasible
                    | _, _ -> Unknown)
              end))
  in
  assign ~first:true (List.rev steps)

let run ?(max_branch_depth = 32) ?(tighten = false) ?stats (sys : Consys.t) =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  solve ~tighten ~stats ~depth:max_branch_depth ~nvars:sys.nvars sys.rows
