(** Source locations: 1-based line and column. Locations double as the
    identity of array-reference sites throughout the analyzer, so every
    AST node carries one. *)

type t = { line : int; col : int }

val dummy : t
val make : line:int -> col:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
