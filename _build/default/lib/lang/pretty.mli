(** Pretty-printer for the mini-Fortran language. Output re-parses to a
    structurally equal program (the parser/printer round-trip is
    property-tested). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
