type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }

let compare a b =
  match Stdlib.compare a.line b.line with
  | 0 -> Stdlib.compare a.col b.col
  | c -> c

let equal a b = compare a b = 0
let pp fmt { line; col } = Format.fprintf fmt "%d:%d" line col
let to_string l = Format.asprintf "%a" pp l
