type direction =
  | Lt
  | Eq
  | Gt

let pp_direction fmt d =
  Format.pp_print_string fmt (match d with Lt -> "<" | Eq -> "=" | Gt -> ">")

let compare_direction a b =
  let rank = function Lt -> 0 | Eq -> 1 | Gt -> 2 in
  Stdlib.compare (rank a) (rank b)

type observation = {
  dependent : bool;
  directions : direction list list;
  distances : int list list;
}

let common_loops (a : Interp.access) (b : Interp.access) =
  let rec go xs ys =
    match (xs, ys) with
    | (vx, _) :: xs', (vy, _) :: ys' when String.equal vx vy -> vx :: go xs' ys'
    | _ -> []
  in
  go a.iter b.iter

let sort_uniq_vectors cmp vectors = List.sort_uniq (List.compare cmp) vectors

let observe ?(fuel = -1) ?(inputs = []) prog ~site1 ~site2 =
  let accesses = Interp.run ~fuel ~inputs prog in
  let at site = List.filter (fun (a : Interp.access) -> Loc.equal a.site site) accesses in
  let a1s = at site1 and a2s = at site2 in
  let self = Loc.equal site1 site2 in
  let directions = ref [] and distances = ref [] and dependent = ref false in
  List.iter
    (fun (a1 : Interp.access) ->
       List.iter
         (fun (a2 : Interp.access) ->
            let same_cell =
              String.equal a1.array a2.array && a1.indices = a2.indices
            in
            let same_instance = self && a1.time = a2.time in
            if same_cell && not same_instance then begin
              dependent := true;
              let common = common_loops a1 a2 in
              let n = List.length common in
              let vals (a : Interp.access) =
                List.filteri (fun i _ -> i < n) a.iter |> List.map snd
              in
              let v1 = vals a1 and v2 = vals a2 in
              let dir =
                List.map2
                  (fun x y -> if x < y then Lt else if x = y then Eq else Gt)
                  v1 v2
              in
              let dist = List.map2 (fun x y -> y - x) v1 v2 in
              directions := dir :: !directions;
              distances := dist :: !distances
            end)
         a2s)
    a1s;
  {
    dependent = !dependent;
    directions = sort_uniq_vectors compare_direction !directions;
    distances = sort_uniq_vectors Stdlib.compare !distances;
  }

let all_site_pairs prog =
  let refs = Ast.array_refs prog in
  let arr = Array.of_list refs in
  let out = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i to Array.length arr - 1 do
      let name1, _, role1, loc1 = arr.(i) in
      let name2, _, role2, loc2 = arr.(j) in
      if String.equal name1 name2 && (role1 = `Write || role2 = `Write) then
        out := (loc1, loc2, name1) :: !out
    done
  done;
  List.rev !out
