(** Semantic checks for the mini-Fortran language.

    The analyzer assumes well-formed loop nests; [check] reports the
    violations that would make dependence analysis meaningless rather
    than merely conservative: assignments to an enclosing loop variable,
    loop-variable shadowing, inconsistent array ranks, non-constant or
    zero loop steps, and uses of never-defined scalars. *)

type error = {
  msg : string;
  loc : Loc.t;
}

val pp_error : Format.formatter -> error -> unit

val check : Ast.program -> error list
(** Empty list means the program is well-formed. *)

val check_exn : Ast.program -> unit
(** @raise Failure with a rendered error list when [check] is
    non-empty. *)
