lib/lang/trace.ml: Array Ast Format Interp List Loc Stdlib String
