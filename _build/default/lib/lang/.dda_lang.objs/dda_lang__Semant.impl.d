lib/lang/semant.ml: Ast Format Hashtbl List Loc Option
