lib/lang/semant.mli: Ast Format Loc
