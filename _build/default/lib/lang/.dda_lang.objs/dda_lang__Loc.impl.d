lib/lang/loc.ml: Format Stdlib
