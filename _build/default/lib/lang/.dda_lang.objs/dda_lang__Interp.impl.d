lib/lang/interp.ml: Ast Hashtbl List Loc Stdlib String
