lib/lang/parser.ml: Ast Lexer Loc Printf Token
