lib/lang/trace.mli: Ast Format Interp Loc
