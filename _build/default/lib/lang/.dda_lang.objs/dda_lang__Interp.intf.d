lib/lang/interp.mli: Ast Loc
