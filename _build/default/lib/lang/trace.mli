(** Brute-force dependence oracle built on the interpreter trace.

    This is the ground truth the exact analyzer is validated against:
    for a pair of reference sites it reports whether any two traced
    accesses touch the same array cell, and the exact set of direction
    and distance vectors over the sites' common loops. *)

type direction =
  | Lt  (** first reference's iteration earlier:  i < i' *)
  | Eq
  | Gt

val pp_direction : Format.formatter -> direction -> unit
val compare_direction : direction -> direction -> int

type observation = {
  dependent : bool;
  directions : direction list list;
      (** every distinct direction vector observed, each of length
          [number of common loops]; sorted, no duplicates *)
  distances : int list list;
      (** every distinct distance vector observed (second iteration
          minus first, per common loop); sorted, no duplicates *)
}

val common_loops : Interp.access -> Interp.access -> string list
(** Longest common prefix of the two accesses' loop-variable stacks. *)

val observe :
  ?fuel:int ->
  ?inputs:(string * int) list ->
  Ast.program ->
  site1:Loc.t ->
  site2:Loc.t ->
  observation
(** Runs the program and reports the dependence ground truth between
    the two reference sites. When [site1 = site2], only pairs of
    {e distinct} iterations count (a reference trivially overlaps
    itself); for distinct sites identical iterations count too, as in
    the paper's problem statement. *)

val all_site_pairs : Ast.program -> (Loc.t * Loc.t * string) list
(** All candidate pairs to test: pairs of reference sites on the same
    array where at least one side is a write (including each write
    paired with itself). The third component is the array name. *)
