(** Hand-written lexer for the mini-Fortran loop language.

    Whitespace and newlines separate tokens; [#] starts a comment that
    runs to the end of the line. *)

exception Error of string * Loc.t

val tokenize : string -> (Token.t * Loc.t) list
(** The result always ends with an [EOF] token.
    @raise Error on an unrecognized character or malformed literal. *)
