(** Recursive-descent parser for the mini-Fortran loop language.

    Grammar (EBNF; [{stmt}] means zero or more):
    {v
    program  ::= {stmt}
    stmt     ::= ident [subs] "=" expr
               | "for" ident "=" expr "to" expr ["step" expr] "do"
                   {stmt} end
               | "if" cond "then" {stmt} ["else" {stmt}] end
               | "read" "(" ident ")"
    end      ::= "end" | "endfor" | "endif"    (all interchangeable)
    cond     ::= expr relop expr
    subs     ::= "[" expr "]" {"[" expr "]"}
    expr     ::= term {("+" | "-") term}
    term     ::= factor {("*" | "/") factor}
    factor   ::= "-" factor | int | ident [subs] | "(" expr ")"
    v} *)

exception Error of string * Loc.t

val parse_program : string -> Ast.program
(** @raise Error on a syntax error; @raise Lexer.Error on a lexical
    error. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and the REPL-style
    tooling). @raise Error if trailing input remains. *)
