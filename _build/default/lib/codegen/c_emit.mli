(** A small C back end: the point where the dependence analysis pays
    off. Emits a self-contained C translation unit for a mini-Fortran
    program, annotating loops the analysis proved parallel with
    [#pragma omp parallel for].

    Scope: programs whose loop bounds are compile-time constants and
    whose array subscripts stay within statically computable intervals
    (interval arithmetic over the loop ranges sizes the C arrays;
    anything else — [read], non-constant bounds — is rejected with an
    explanation). Loop semantics mirror the reference interpreter
    exactly, including the Fortran-style "variable keeps the last
    executed value" rule, so the emitted program's final-state dump is
    directly comparable to {!Dda_lang.Interp.final_state} — which is
    how the test suite validates this back end: compile with a real C
    compiler, run, diff. *)

open Dda_lang

val emit :
  ?parallel:(int * bool) list ->
  Ast.program ->
  (string, string) result
(** [parallel] maps pre-order loop numbers (as {!Dda_core.Affine}
    assigns them) to parallelizability; loops marked [true] receive the
    OpenMP pragma. The generated [main] executes the program and prints
    every scalar as [name=value] (sorted) and every non-zero array cell
    as [name[i][j]=value] (name-major, index-lexicographic) — the same
    order {!state_dump} produces. *)

val state_dump : Interp.state -> string
(** Render an interpreter final state in the emitted program's output
    format, for comparison. *)
