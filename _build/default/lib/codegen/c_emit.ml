open Dda_lang

(* ------------------------------------------------------------------ *)
(* Interval analysis for array extents                                 *)
(* ------------------------------------------------------------------ *)

type interval = int * int

let hull (a, b) (c, d) = (min a c, max b d)

(* Interval evaluation of an expression under known loop-variable
   ranges. [None]: not boundable (unknown scalar, array read, division
   by an interval containing zero). *)
let rec ieval env (e : Ast.expr) : interval option =
  match e.desc with
  | Ast.Int n -> Some (n, n)
  | Ast.Var v -> List.assoc_opt v env
  | Ast.Neg a ->
    Option.map (fun (lo, hi) -> (-hi, -lo)) (ieval env a)
  | Ast.Aref _ -> None
  | Ast.Bin (op, a, b) -> (
      match (ieval env a, ieval env b) with
      | Some (al, ah), Some (bl, bh) -> (
          match op with
          | Ast.Add -> Some (al + bl, ah + bh)
          | Ast.Sub -> Some (al - bh, ah - bl)
          | Ast.Mul ->
            let c = [ al * bl; al * bh; ah * bl; ah * bh ] in
            Some (List.fold_left min max_int c, List.fold_left max min_int c)
          | Ast.Div ->
            if bl <= 0 && bh >= 0 then None
            else begin
              let c = [ al / bl; al / bh; ah / bl; ah / bh ] in
              Some (List.fold_left min max_int c, List.fold_left max min_int c)
            end)
      | _ -> None)

type array_info = {
  rank : int;
  dims : interval array;  (* index range per dimension *)
}

exception Reject of string

let max_cells = 4_000_000

(* Walk the program computing per-array index intervals; reject
   anything outside the backend's scope. *)
let analyze_arrays prog =
  let arrays : (string, array_info) Hashtbl.t = Hashtbl.create 8 in
  let note name subs env =
    let dims =
      List.map
        (fun sub ->
           match ieval env sub with
           | Some iv -> iv
           | None ->
             raise
               (Reject
                  (Printf.sprintf
                     "subscript of '%s' cannot be bounded at compile time" name)))
        subs
    in
    let dims = Array.of_list dims in
    match Hashtbl.find_opt arrays name with
    | None -> Hashtbl.replace arrays name { rank = Array.length dims; dims }
    | Some info ->
      if info.rank <> Array.length dims then
        raise (Reject (Printf.sprintf "array '%s' used with two ranks" name));
      Hashtbl.replace arrays name
        { info with dims = Array.mapi (fun i iv -> hull iv info.dims.(i)) dims }
  in
  let rec scan_expr env (e : Ast.expr) =
    match e.desc with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Neg a -> scan_expr env a
    | Ast.Bin (_, a, b) ->
      scan_expr env a;
      scan_expr env b
    | Ast.Aref (name, subs) ->
      note name subs env;
      List.iter (scan_expr env) subs
  in
  let rec scan_stmt env (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Read v -> raise (Reject (Printf.sprintf "read(%s) is not supported" v))
    | Ast.Assign (Ast.Lvar _, e) -> scan_expr env e
    | Ast.Assign (Ast.Larr (name, subs), e) ->
      note name subs env;
      List.iter (scan_expr env) subs;
      scan_expr env e
    | Ast.If (c, t, el) ->
      scan_expr env c.lhs;
      scan_expr env c.rhs;
      List.iter (scan_stmt env) t;
      List.iter (scan_stmt env) el
    | Ast.For f ->
      scan_expr env f.lo;
      scan_expr env f.hi;
      Option.iter (scan_expr env) f.step;
      (match (ieval env f.lo, ieval env f.hi) with
       | Some lo_iv, Some hi_iv ->
         let var_iv = hull lo_iv hi_iv in
         List.iter (scan_stmt ((f.var, var_iv) :: env)) f.body
       | _ ->
         raise
           (Reject
              (Printf.sprintf "bounds of loop '%s' are not compile-time constants"
                 f.var)))
  in
  List.iter (scan_stmt []) prog;
  Hashtbl.iter
    (fun name info ->
       let cells =
         Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 info.dims
       in
       if cells > max_cells then
         raise (Reject (Printf.sprintf "array '%s' would need %d cells" name cells)))
    arrays;
  arrays

(* ------------------------------------------------------------------ *)
(* C emission                                                          *)
(* ------------------------------------------------------------------ *)

let scalar_names prog =
  let names = ref [] in
  let note v = if not (List.mem v !names) then names := v :: !names in
  let rec expr (e : Ast.expr) =
    match e.desc with
    | Ast.Int _ -> ()
    | Ast.Var v -> note v
    | Ast.Neg a -> expr a
    | Ast.Bin (_, a, b) ->
      expr a;
      expr b
    | Ast.Aref (_, subs) -> List.iter expr subs
  in
  Ast.iter_stmts
    (fun s ->
       match s.Ast.sdesc with
       | Ast.Assign (Ast.Lvar v, e) ->
         note v;
         expr e
       | Ast.Assign (Ast.Larr (_, subs), e) ->
         List.iter expr subs;
         expr e
       | Ast.Read v -> note v
       | Ast.If (c, _, _) ->
         expr c.lhs;
         expr c.rhs
       | Ast.For f ->
         note f.var;
         expr f.lo;
         expr f.hi;
         Option.iter expr f.step)
    prog;
  List.sort String.compare !names

let rec emit_expr buf arrays (e : Ast.expr) =
  match e.desc with
  | Ast.Int n -> Buffer.add_string buf (Printf.sprintf "%dLL" n)
  | Ast.Var v -> Buffer.add_string buf ("v_" ^ v)
  | Ast.Neg a ->
    Buffer.add_string buf "(-";
    emit_expr buf arrays a;
    Buffer.add_char buf ')'
  | Ast.Bin (op, a, b) ->
    Buffer.add_char buf '(';
    emit_expr buf arrays a;
    Buffer.add_string buf
      (match op with Ast.Add -> " + " | Ast.Sub -> " - " | Ast.Mul -> " * " | Ast.Div -> " / ");
    emit_expr buf arrays b;
    Buffer.add_char buf ')'
  | Ast.Aref (name, subs) -> emit_aref buf arrays name subs

and emit_aref buf arrays name subs =
  let info : array_info = Hashtbl.find arrays name in
  Buffer.add_string buf ("a_" ^ name);
  List.iteri
    (fun d sub ->
       let off, _ = info.dims.(d) in
       Buffer.add_char buf '[';
       emit_expr buf arrays sub;
       Buffer.add_string buf (Printf.sprintf " - (%dLL)]" off))
    subs

let relop_c = function
  | Ast.Req -> "=="
  | Ast.Rne -> "!="
  | Ast.Rlt -> "<"
  | Ast.Rle -> "<="
  | Ast.Rgt -> ">"
  | Ast.Rge -> ">="

let emit ?(parallel = []) prog =
  match analyze_arrays prog with
  | exception Reject reason -> Error reason
  | arrays ->
    let buf = Buffer.create 4096 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let scalars = scalar_names prog in
    out "#include <stdio.h>\n";
    out "typedef long long ll;\n\n";
    List.iter (fun v -> out "static ll v_%s = 0; static int set_%s = 0;\n" v v) scalars;
    let array_list =
      Hashtbl.fold (fun name info acc -> (name, info) :: acc) arrays []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter
      (fun (name, (info : array_info)) ->
         out "static ll a_%s" name;
         Array.iter (fun (lo, hi) -> out "[%d]" (hi - lo + 1)) info.dims;
         out ";\n")
      array_list;
    out "\nint main(void) {\n";
    let counter = ref 0 in
    let fresh prefix =
      incr counter;
      Printf.sprintf "%s%d" prefix !counter
    in
    let loop_counter = ref 0 in
    let rec stmt indent (s : Ast.stmt) =
      let pad = String.make indent ' ' in
      match s.sdesc with
      | Ast.Read _ -> assert false (* rejected above *)
      | Ast.Assign (Ast.Lvar v, e) ->
        out "%sv_%s = " pad v;
        emit_expr buf arrays e;
        out "; set_%s = 1;\n" v
      | Ast.Assign (Ast.Larr (name, subs), e) ->
        out "%s" pad;
        emit_aref buf arrays name subs;
        out " = ";
        emit_expr buf arrays e;
        out ";\n"
      | Ast.If (c, t, el) ->
        out "%sif (" pad;
        emit_expr buf arrays c.lhs;
        out " %s " (relop_c c.rel);
        emit_expr buf arrays c.rhs;
        out ") {\n";
        List.iter (stmt (indent + 2)) t;
        if el <> [] then begin
          out "%s} else {\n" pad;
          List.iter (stmt (indent + 2)) el
        end;
        out "%s}\n" pad
      | Ast.For f ->
        let lid = !loop_counter in
        incr loop_counter;
        let stepc =
          match f.step with
          | None -> 1
          | Some e -> (
              match Dda_passes.Expr_util.const_value e with
              | Some s when s <> 0 -> s
              | _ -> raise (Reject "non-constant loop step"))
        in
        (* Fortran semantics: bounds evaluated once; the loop variable
           keeps the last executed value (OpenMP lastprivate mirrors
           exactly that). *)
        let lo = fresh "_lo" and hi = fresh "_hi" and c = fresh "_c" in
        out "%s{\n" pad;
        out "%s  ll %s = " pad lo;
        emit_expr buf arrays f.lo;
        out ";\n";
        out "%s  ll %s = " pad hi;
        emit_expr buf arrays f.hi;
        out ";\n";
        (match List.assoc_opt lid parallel with
         | Some true ->
           out "%s  #pragma omp parallel for lastprivate(v_%s)\n" pad f.var
         | Some false | None -> ());
        out "%s  for (ll %s = %s; %s %s %s; %s += %d) {\n" pad c lo c
          (if stepc > 0 then "<=" else ">=")
          hi c stepc;
        out "%s    v_%s = %s; set_%s = 1;\n" pad f.var c f.var;
        List.iter (stmt (indent + 4)) f.body;
        out "%s  }\n%s}\n" pad pad
    in
    (match List.iter (stmt 2) prog with
     | () ->
       (* Final-state dump, in Interp.final_state order. *)
       List.iter
         (fun v -> out "  if (set_%s) printf(\"%s=%%lld\\n\", v_%s);\n" v v v)
         scalars;
       List.iter
         (fun (name, (info : array_info)) ->
            let idx = Array.to_list (Array.mapi (fun d _ -> Printf.sprintf "_d%d" d) info.dims) in
            List.iteri
              (fun d v ->
                 let lo, hi = info.dims.(d) in
                 out "%s  for (ll %s = %d; %s <= %d; %s++)\n"
                   (String.make (2 * d) ' ') v lo v hi v)
              idx;
            let pad = String.make (2 * info.rank) ' ' in
            out "%s  { ll _v = a_%s" pad name;
            List.iteri
              (fun d v ->
                 let lo, _ = info.dims.(d) in
                 out "[%s - (%d)]" v lo)
              idx;
            out ";\n%s    if (_v != 0) { printf(\"%s\" " pad name;
            List.iter (fun _ -> out "\"[%%lld]\" ") idx;
            out "\"=%%lld\\n\"";
            List.iter (fun v -> out ", %s" v) idx;
            out ", _v); } }\n")
         array_list;
       out "  return 0;\n}\n";
       Ok (Buffer.contents buf)
     | exception Reject reason -> Error reason)

(* ------------------------------------------------------------------ *)
(* Interpreter-state rendering in the same format                      *)
(* ------------------------------------------------------------------ *)

let state_dump (st : Interp.state) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d\n" name v))
    st.scalars;
  List.iter
    (fun ((name, idx), v) ->
       if v <> 0 then begin
         Buffer.add_string buf name;
         List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "[%d]" i)) idx;
         Buffer.add_string buf (Printf.sprintf "=%d\n" v)
       end)
    st.memory;
  Buffer.contents buf
