lib/codegen/c_emit.mli: Ast Dda_lang Interp
