lib/codegen/c_emit.ml: Array Ast Buffer Dda_lang Dda_passes Hashtbl Interp List Option Printf String
