(** Dense integer vectors over {!Dda_numeric.Zint}. *)

open Dda_numeric

type t = Zint.t array

val make : int -> t
(** Zero vector of the given length. *)

val of_int_array : int array -> t
val of_list : int list -> t
val copy : t -> t
val length : t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Zint.t -> t -> t

val dot : t -> t -> Zint.t

val gcd : t -> Zint.t
(** Gcd of all entries (non-negative; zero for the zero vector). *)

val pp : Format.formatter -> t -> unit
