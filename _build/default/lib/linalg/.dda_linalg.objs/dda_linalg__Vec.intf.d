lib/linalg/vec.mli: Dda_numeric Format Zint
