lib/linalg/vec.ml: Array Dda_numeric Format Zint
