lib/linalg/matrix.mli: Dda_numeric Format Vec Zint
