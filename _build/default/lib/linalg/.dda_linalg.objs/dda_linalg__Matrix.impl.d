lib/linalg/matrix.ml: Array Dda_numeric Format List Vec Zint
