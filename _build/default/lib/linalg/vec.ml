open Dda_numeric

type t = Zint.t array

let make n = Array.make n Zint.zero
let of_int_array a = Array.map Zint.of_int a
let of_list l = of_int_array (Array.of_list l)
let copy = Array.copy
let length = Array.length

let equal a b =
  Array.length a = Array.length b
  && (let rec go i = i >= Array.length a || (Zint.equal a.(i) b.(i) && go (i + 1)) in
      go 0)

let is_zero a = Array.for_all Zint.is_zero a

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: length mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add = map2 Zint.add
let sub = map2 Zint.sub
let neg a = Array.map Zint.neg a
let scale k a = Array.map (Zint.mul k) a

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: length mismatch";
  let acc = ref Zint.zero in
  for i = 0 to Array.length a - 1 do
    acc := Zint.add !acc (Zint.mul a.(i) b.(i))
  done;
  !acc

let gcd a = Array.fold_left (fun g x -> Zint.gcd g x) Zint.zero a

let pp fmt a =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Zint.pp)
    (Array.to_list a)
