(* JSON emitter tests: escaping, structure, and the report rendering. *)

open Dda_core
open Json_out

let test_scalars () =
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "true" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "-42" (to_string (Int (-42)));
  Alcotest.(check string) "string" "\"hi\"" (to_string (Str "hi"))

let test_escaping () =
  Alcotest.(check string) "quotes" "\"a\\\"b\"" (to_string (Str "a\"b"));
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (to_string (Str "a\\b"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (to_string (Str "a\nb"));
  Alcotest.(check string) "tab" "\"a\\tb\"" (to_string (Str "a\tb"));
  Alcotest.(check string) "control" "\"\\u0001\"" (to_string (Str "\001"))

let test_composite () =
  Alcotest.(check string) "empty array" "[]" (to_string (List []));
  Alcotest.(check string) "array" "[1,2,3]"
    (to_string (List [ Int 1; Int 2; Int 3 ]));
  Alcotest.(check string) "object" "{\"a\":1,\"b\":[true,null]}"
    (to_string (Obj [ ("a", Int 1); ("b", List [ Bool true; Null ]) ]));
  Alcotest.(check string) "empty object" "{}" (to_string (Obj []))

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_report_shape () =
  let prog =
    Dda_lang.Parser.parse_program "for i = 1 to 10 do a[i + 1] = a[i] + 3 end"
  in
  let r = Analyzer.analyze prog in
  let json = to_string (report r) in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("contains " ^ needle) true (contains needle json))
    [
      "\"pairs\":[";
      "\"array\":\"a\"";
      "\"verdict\":\"dependent\"";
      "\"directions\":\"(<)\"";
      "\"kind\":\"flow\"";
      "\"distance\":[1]";
      "\"stats\":{";
      "\"independent_pairs\":1";
      "\"dependent_pairs\":1";
    ]

let test_pp_reparses_as_same_compact () =
  (* The indented printer and the compact printer agree modulo
     whitespace. *)
  let j =
    Obj
      [
        ("x", List [ Int 1; Obj [ ("y", Str "s\"s") ]; Null ]);
        ("z", Bool false);
      ]
  in
  let pretty = Format.asprintf "%a" pp j in
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  Alcotest.(check string) "same modulo whitespace" (strip (to_string j))
    (strip pretty)

let () =
  Alcotest.run "json"
    [
      ( "emitter",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "composite" `Quick test_composite;
          Alcotest.test_case "pp vs compact" `Quick test_pp_reparses_as_same_compact;
        ] );
      ("report", [ Alcotest.test_case "shape" `Quick test_report_shape ]);
    ]
