(* Allen-Kennedy loop distribution: unit tests on textbook shapes, and
   the execution-validated property — applying a computed distribution
   plan (and reversing its parallel groups) must leave final memory
   identical. *)

open Dda_lang
open Dda_core

let parse = Parser.parse_program

let config =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo = Analyzer.Memo_simple;
    run_pipeline = false;
  }

let plan_of src ~lid =
  let prog = parse src in
  let report = Analyzer.analyze ~config prog in
  match Distribute.body_stmts prog ~lid with
  | None -> Alcotest.fail "loop body not distributable"
  | Some stmts -> (prog, Distribute.plan_loop report ~lid ~stmts)

let shape (plan : Distribute.plan) =
  List.map (fun (g : Distribute.group) -> (List.length g.stmts, g.parallel)) plan.groups

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_fission () =
  (* Classic fission: the (<) flow from statement 1 to statement 2 is
     satisfied by running loop 1 entirely before loop 2; both halves
     are then parallel. *)
  let _, plan =
    plan_of "for i = 1 to 20 do\n  a[i] = b[i] + 1\n  c[i] = a[i - 1] * 2\nend" ~lid:0
  in
  Alcotest.(check (list (pair int bool))) "two parallel groups"
    [ (1, true); (1, true) ] (shape plan)

let test_cycle_stays_together () =
  let _, plan =
    plan_of "for i = 2 to 20 do\n  a[i] = b[i - 1]\n  b[i] = a[i - 1]\nend" ~lid:0
  in
  Alcotest.(check (list (pair int bool))) "one serial group of two"
    [ (2, false) ] (shape plan)

let test_loop_independent_order () =
  let _, plan =
    plan_of "for i = 1 to 20 do\n  t2[i] = s2[i]\n  u2[i] = t2[i]\nend" ~lid:0
  in
  (match shape plan with
   | [ (1, true); (1, true) ] -> ()
   | s ->
     Alcotest.failf "unexpected shape: %s"
       (String.concat ";" (List.map (fun (n, p) -> Printf.sprintf "(%d,%b)" n p) s)));
  (* Producer first. *)
  match plan.groups with
  | [ g1; g2 ] ->
    Alcotest.(check bool) "producer before consumer" true
      (Loc.compare (List.hd g1.stmts) (List.hd g2.stmts) < 0)
  | _ -> Alcotest.fail "expected two groups"

let test_recurrence_serial_group () =
  let _, plan =
    plan_of "for i = 2 to 20 do\n  r[i] = r[i - 1] + 1\n  q[i] = r[i] * 2\nend" ~lid:0
  in
  Alcotest.(check (list (pair int bool))) "serial recurrence, parallel consumer"
    [ (1, false); (1, true) ] (shape plan)

let test_inner_loop_of_nest () =
  (* Distribute the innermost loop of a 2-nest: the outer-carried
     dependence does not constrain it. *)
  let src =
    "for i = 2 to 10 do\n\
    \  for j = 1 to 10 do\n\
    \    aa[i][j] = aa[i - 1][j] + 1\n\
    \    bb[i][j] = aa[i][j] * 2\n\
    \  end\n\
     end"
  in
  let _, plan = plan_of src ~lid:1 in
  (* aa dependence is carried by i (outer): irrelevant at j's level
     except the loop-independent flow aa[i][j] -> read in stmt 2. *)
  Alcotest.(check (list (pair int bool))) "two parallel groups at j"
    [ (1, true); (1, true) ] (shape plan)

let test_body_stmts_guards () =
  let prog = parse "for i = 1 to 5 do\n  t = i\n  a[i] = t\nend" in
  Alcotest.(check bool) "scalar assignment rejected" true
    (Distribute.body_stmts prog ~lid:0 = None);
  let prog2 = parse "for i = 1 to 5 do\n  for j = 1 to 5 do aa[i][j] = 1 end\nend" in
  Alcotest.(check bool) "nested loop rejected" true
    (Distribute.body_stmts prog2 ~lid:0 = None);
  Alcotest.(check bool) "missing loop" true (Distribute.body_stmts prog2 ~lid:7 = None)

let test_apply_fission () =
  let prog, plan =
    plan_of "for i = 1 to 20 do\n  a[i] = b[i] + 1\n  c[i] = a[i - 1] * 2\nend" ~lid:0
  in
  match Distribute.apply prog plan with
  | None -> Alcotest.fail "apply failed"
  | Some distributed ->
    Alcotest.(check int) "two loops now" 2 (List.length distributed);
    let m1 = (fst (Interp.final_state prog)).Interp.memory in
    let m2 = (fst (Interp.final_state distributed)).Interp.memory in
    Alcotest.(check bool) "same memory" true (m1 = m2)

(* ------------------------------------------------------------------ *)
(* Execution-validated property                                        *)
(* ------------------------------------------------------------------ *)

let innermost_lid prog =
  (* Pre-order numbering: for a single nest the innermost loop has the
     largest id. *)
  let count = ref 0 in
  Ast.iter_stmts
    (fun s -> match s.Ast.sdesc with Ast.For _ -> incr count | _ -> ())
    prog;
  !count - 1

let reverse_loop_at (prog : Ast.program) loc =
  let rec rw (s : Ast.stmt) =
    match s.sdesc with
    | Ast.For f when Loc.equal s.sloc loc ->
      { s with sdesc = Ast.For { f with lo = f.hi; hi = f.lo; step = Some (Ast.int_ (-1)) } }
    | Ast.For f -> { s with sdesc = Ast.For { f with body = List.map rw f.body } }
    | Ast.If (c, t, e) -> { s with sdesc = Ast.If (c, List.map rw t, List.map rw e) }
    | Ast.Assign _ | Ast.Read _ -> s
  in
  List.map rw prog

let prop_distribution_preserves_memory =
  QCheck.Test.make
    ~name:"a distribution plan (with parallel groups reversed) preserves memory"
    ~count:250 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let lid = innermost_lid prog in
       match Distribute.body_stmts prog ~lid with
       | None -> QCheck.assume_fail ()
       | Some stmts ->
         let report = Analyzer.analyze ~config prog in
         let plan = Distribute.plan_loop report ~lid ~stmts in
         (match Distribute.apply prog plan with
          | None -> QCheck.assume_fail ()
          | Some distributed ->
            let mem p = (fst (Interp.final_state p)).Interp.memory in
            let base = mem prog in
            if mem distributed <> base then
              QCheck.Test.fail_reportf "distribution changed memory"
            else if lid <> 0 then true
              (* Deeper nests: the distributed copies are inside the
                 outer loops; the memory check above is the claim. *)
            else begin
              (* Depth-1 nests: the distributed loops are exactly the
                 top level in group order. Reversing a parallel group's
                 loop must also be safe. *)
              let loops =
                List.filter
                  (fun (s : Ast.stmt) ->
                     match s.sdesc with Ast.For _ -> true | _ -> false)
                  distributed
              in
              let prog_loops = List.combine plan.groups loops in
              List.for_all
                (fun ((g : Distribute.group), (loop : Ast.stmt)) ->
                   (not g.parallel)
                   || mem (reverse_loop_at distributed loop.Ast.sloc) = base)
                prog_loops
            end))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "distribute"
    [
      ( "unit",
        [
          Alcotest.test_case "fission" `Quick test_fission;
          Alcotest.test_case "cycle stays together" `Quick test_cycle_stays_together;
          Alcotest.test_case "loop-independent order" `Quick test_loop_independent_order;
          Alcotest.test_case "recurrence serial group" `Quick test_recurrence_serial_group;
          Alcotest.test_case "inner loop of nest" `Quick test_inner_loop_of_nest;
          Alcotest.test_case "guards" `Quick test_body_stmts_guards;
          Alcotest.test_case "apply fission" `Quick test_apply_fission;
        ] );
      ("property", [ qt prop_distribution_preserves_memory ]);
    ]
