  $ cat > intro.dd <<'EOF'
  > # first loop: independent
  > for i = 1 to 10 do
  >   a[i] = a[i + 10] + 3
  > end
  > # second loop: dependent, distance 1
  > for i = 1 to 10 do
  >   b[i + 1] = b[i] + 3
  > end
  > EOF
  $ ddtest analyze intro.dd
  $ ddtest analyze intro.dd --stats | tail -n 10
  $ ddtest parallel intro.dd
  $ cat > kinds.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i + 1] = a[i] + 3
  >   a[i] = 0
  > end
  > EOF
  $ ddtest analyze kinds.dd
  $ cat > s8.dd <<'EOF'
  > n = 100
  > iz = 0
  > for i = 1 to 10 do
  >   iz = iz + 2
  >   a[iz + n] = a[iz + 2 * n + 1] + 3
  > end
  > EOF
  $ ddtest passes s8.dd
  $ ddtest analyze s8.dd
  $ cat > sym.dd <<'EOF'
  > read(n)
  > for i = 1 to 10 do
  >   b[i + n] = b[i + n + 11] + 3
  > end
  > EOF
  $ ddtest analyze sym.dd
  $ ddtest analyze sym.dd --symbolic false
  $ ddtest analyze intro.dd --memo-file table.bin --stats | grep 'memo (full'
  $ ddtest analyze intro.dd --memo-file table.bin --stats | grep 'memo (full'
  $ cat > band.dd <<'EOF'
  > read(n)
  > for i = 1 to n do
  >   for j = i - 2 to i + 2 do
  >     a[i - j] = a[i - j + 1] + 1
  >   end
  > end
  > EOF
  $ ddtest graph band.dd
  $ ddtest perfect TI > ti1.dd
  $ ddtest perfect TI > ti2.dd
  $ cmp ti1.dd ti2.dd
  $ ddtest perfect NOPE
  $ printf 'for i = 1 to do a[i] = 1 end' > bad.dd
  $ ddtest analyze bad.dd
  $ cat > dist.dd <<'DDEOF'
  > for i = 2 to 20 do
  >   a[i] = b[i] + 1
  >   c[i] = a[i - 1] * 2
  >   r[i] = r[i - 1] + c[i]
  > end
  > DDEOF
  $ ddtest distribute dist.dd
  $ cat > mm.dd <<'DDEOF'
  > for i = 1 to 16 do
  >   for j = 1 to 16 do
  >     for k = 1 to 16 do
  >       cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]
  >     end
  >   end
  > end
  > DDEOF
  $ ddtest transform mm.dd
  $ ddtest depgraph dist.dd | grep -c 'label='
  $ ddtest check dist.dd
  $ ddtest analyze dist.dd --format json | tr -d ' \n' | head -c 120
  $ ddtest prime table2.bin
  $ ddtest analyze intro.dd --memo-file table2.bin --stats | grep 'memo (full'
  $ ddtest annotate intro.dd
  $ ddtest annotate intro.dd | ddtest check -
  $ cat > vadd.dd <<'DDEOF'
  > for i = 1 to 100 do
  >   c[i] = a[i] + b[i]
  > end
  > DDEOF
  $ ddtest cc vadd.dd | grep pragma
  $ ddtest cc vadd.dd > vadd.c && gcc -fopenmp -o vadd vadd.c && ./vadd | head -2
  $ ddtest cc dist.dd | grep -c pragma
  $ ddtest cc sym.dd
