(* Tests for integer linear algebra: matrix arithmetic, Bareiss
   determinants, and the unimodular echelon factorization that powers
   the Extended GCD test. The central properties: U.A = D, |det U| = 1,
   D echelon, and solve_echelon solutions really solve x.A = c. *)

open Dda_numeric
open Dda_linalg

let z = Zint.of_int
let zint = Alcotest.testable Zint.pp Zint.equal
let vec = Alcotest.testable Vec.pp Vec.equal
let matrix = Alcotest.testable Matrix.pp Matrix.equal

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  let a = Vec.of_list [ 1; 2; 3 ] and b = Vec.of_list [ 4; 5; 6 ] in
  Alcotest.check vec "add" (Vec.of_list [ 5; 7; 9 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ -3; -3; -3 ]) (Vec.sub a b);
  Alcotest.check vec "neg" (Vec.of_list [ -1; -2; -3 ]) (Vec.neg a);
  Alcotest.check vec "scale" (Vec.of_list [ 2; 4; 6 ]) (Vec.scale (z 2) a);
  Alcotest.check zint "dot" (z 32) (Vec.dot a b);
  Alcotest.check zint "gcd" (z 3) (Vec.gcd (Vec.of_list [ 6; -9; 12 ]));
  Alcotest.check zint "gcd zero vec" Zint.zero (Vec.gcd (Vec.make 3));
  Alcotest.(check bool) "is_zero" true (Vec.is_zero (Vec.make 2));
  Alcotest.(check bool) "not is_zero" false (Vec.is_zero a)

(* ------------------------------------------------------------------ *)
(* Matrix basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_matrix_mul () =
  let a = Matrix.of_int_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = Matrix.of_int_rows [| [| 5; 6 |]; [| 7; 8 |] |] in
  Alcotest.check matrix "a*b"
    (Matrix.of_int_rows [| [| 19; 22 |]; [| 43; 50 |] |])
    (Matrix.mul a b);
  Alcotest.check matrix "identity" a (Matrix.mul (Matrix.identity 2) a);
  Alcotest.check vec "vec_mul"
    (Vec.of_list [ 7; 10 ])
    (Matrix.vec_mul (Vec.of_list [ 1; 2 ]) a)

let test_matrix_transpose () =
  let a = Matrix.of_int_rows [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  Alcotest.check matrix "transpose"
    (Matrix.of_int_rows [| [| 1; 4 |]; [| 2; 5 |]; [| 3; 6 |] |])
    (Matrix.transpose a)

let test_matrix_det () =
  let d rows = Zint.to_int_exn (Matrix.det (Matrix.of_int_rows rows)) in
  Alcotest.(check int) "2x2" (-2) (d [| [| 1; 2 |]; [| 3; 4 |] |]);
  Alcotest.(check int) "singular" 0 (d [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.(check int) "3x3" 1
    (d [| [| 1; 0; 0 |]; [| 5; 1; 0 |]; [| -3; 2; 1 |] |]);
  Alcotest.(check int) "needs pivot swap" (-1)
    (d [| [| 0; 1 |]; [| 1; 0 |] |]);
  Alcotest.(check int) "empty" 1 (d [||]);
  Alcotest.(check int) "3x3 general" 27
    (d [| [| 2; 0; 1 |]; [| 1; 3; 2 |]; [| 0; 1; 5 |] |])

let test_is_echelon () =
  let e rows = Matrix.is_echelon (Matrix.of_int_rows rows) in
  Alcotest.(check bool) "echelon" true (e [| [| 1; 2; 3 |]; [| 0; 4; 5 |] |]);
  Alcotest.(check bool) "strictly increasing leads" false
    (e [| [| 1; 2 |]; [| 1; 0 |] |]);
  Alcotest.(check bool) "zero rows last ok" true
    (e [| [| 1; 2 |]; [| 0; 0 |] |]);
  Alcotest.(check bool) "zero row in middle" false
    (e [| [| 0; 0 |]; [| 1; 2 |] |])

(* ------------------------------------------------------------------ *)
(* Unimodular factorization                                            *)
(* ------------------------------------------------------------------ *)

let check_factorization a =
  let { Matrix.u; d; rank; pivots } = Matrix.unimodular_factor a in
  let det_u = Matrix.det u in
  Alcotest.(check bool) "|det U| = 1" true (Zint.is_one (Zint.abs det_u));
  Alcotest.check matrix "U.A = D" d (Matrix.mul u a);
  Alcotest.(check bool) "D echelon" true (Matrix.is_echelon d);
  Alcotest.(check int) "rank = #pivots" rank (List.length pivots);
  List.iter
    (fun (r, c) ->
       Alcotest.(check bool) "pivot positive" true (Zint.is_positive d.(r).(c)))
    pivots

let test_factor_paper_example () =
  (* Paper, section 3.1: i + 10 = i', i.e. (i, i') . (1, -1)^T = -10.
     One equation, two variables. *)
  let a = Matrix.of_int_rows [| [| 1 |]; [| -1 |] |] in
  check_factorization a;
  let { Matrix.d; rank; _ } = Matrix.unimodular_factor a in
  Alcotest.(check int) "rank 1" 1 rank;
  Alcotest.check zint "lead entry 1" Zint.one d.(0).(0)

let test_factor_various () =
  List.iter
    (fun rows -> check_factorization (Matrix.of_int_rows rows))
    [
      [| [| 2; 4 |]; [| 6; 8 |] |];
      [| [| 0; 0 |]; [| 0; 0 |] |];
      [| [| 10; 15 |]; [| 6; 9 |] |];
      [| [| 1; 0; 2 |]; [| 0; 1; 3 |]; [| 2; 1; 7 |] |];
      [| [| 3 |]; [| 5 |]; [| 7 |] |];
      [| [| 2; 0 |]; [| 0; 3 |]; [| 5; 7 |]; [| -4; 2 |] |];
    ]

let test_solve_echelon_divisibility () =
  (* 2x = 5 has no integer solution; 2x = 6 has x = 3. *)
  let a = Matrix.of_int_rows [| [| 2 |] |] in
  let { Matrix.d; _ } = Matrix.unimodular_factor a in
  Alcotest.(check bool) "2x = 5 unsolvable" true
    (Matrix.solve_echelon ~d ~c:(Vec.of_list [ 5 ]) = None);
  (match Matrix.solve_echelon ~d ~c:(Vec.of_list [ 6 ]) with
   | None -> Alcotest.fail "2x = 6 should be solvable"
   | Some { Matrix.fixed; nfree } ->
     Alcotest.(check int) "no free vars" 0 nfree;
     Alcotest.check zint "x = 3" (z 3) fixed.(0))

let test_solve_echelon_consistency () =
  (* x + y = 1 and 2x + 2y = 3 are inconsistent. *)
  let a = Matrix.of_int_rows [| [| 1; 2 |]; [| 1; 2 |] |] in
  let { Matrix.u; d; _ } = Matrix.unimodular_factor a in
  ignore u;
  Alcotest.(check bool) "inconsistent" true
    (Matrix.solve_echelon ~d ~c:(Vec.of_list [ 1; 3 ]) = None);
  Alcotest.(check bool) "consistent" true
    (Matrix.solve_echelon ~d ~c:(Vec.of_list [ 1; 2 ]) <> None)

(* Full solution check: if solve_echelon yields Some, then for any
   assignment of the free parameters, x = t.U satisfies x.A = c. *)
let check_solutions_satisfy a c free_assignments =
  let { Matrix.u; d; rank; _ } = Matrix.unimodular_factor a in
  match Matrix.solve_echelon ~d ~c with
  | None -> false
  | Some { Matrix.fixed; nfree } ->
    List.for_all
      (fun assignment ->
         let t = Vec.copy fixed in
         List.iteri
           (fun k v -> if k < nfree then t.(rank + k) <- z v)
           assignment;
         let x = Matrix.vec_mul t u in
         Vec.equal (Matrix.vec_mul x a) c)
      free_assignments

let test_solution_parameterization () =
  (* i = i' + 10 (paper): solutions (t, t+10)-style families. *)
  let a = Matrix.of_int_rows [| [| 1 |]; [| -1 |] |] in
  Alcotest.(check bool) "all parameterized solutions satisfy" true
    (check_solutions_satisfy a (Vec.of_list [ -10 ])
       [ [ 0 ]; [ 1 ]; [ -5 ]; [ 100 ] ]);
  (* Coupled 2D case from section 3.2: i1 = i2' + 10, i2 = i1' + 9. *)
  let a2 =
    Matrix.of_int_rows
      [| [| 1; 0 |]; [| 0; 1 |]; [| 0; -1 |]; [| -1; 0 |] |]
  in
  Alcotest.(check bool) "coupled system solutions satisfy" true
    (check_solutions_satisfy a2 (Vec.of_list [ 10; 9 ])
       [ [ 0; 0 ]; [ 1; 2 ]; [ -3; 7 ] ])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_matrix =
  QCheck.map
    (fun (n, m, seed) ->
       let st = Random.State.make [| seed |] in
       Array.init n (fun _ ->
           Array.init m (fun _ -> z (Random.State.int st 21 - 10))))
    QCheck.(triple (int_range 1 5) (int_range 1 5) small_int)

let prop_factorization_sound =
  QCheck.Test.make ~name:"unimodular_factor: U.A = D, |det U| = 1, D echelon"
    ~count:300 arb_matrix
    (fun a ->
       let { Matrix.u; d; rank; pivots } = Matrix.unimodular_factor a in
       Zint.is_one (Zint.abs (Matrix.det u))
       && Matrix.equal d (Matrix.mul u a)
       && Matrix.is_echelon d
       && rank = List.length pivots)

let prop_solutions_satisfy_system =
  QCheck.Test.make ~name:"solve_echelon solutions satisfy x.A = c" ~count:300
    (QCheck.pair arb_matrix (QCheck.int_range (-8) 8))
    (fun (a, k) ->
       (* Build a c that is guaranteed solvable: c = x0.A for a random
          integer x0, then check the returned parameterization. *)
       let n = Matrix.rows a in
       let x0 = Array.init n (fun i -> z ((k + i) mod 5 - 2)) in
       let c = Matrix.vec_mul x0 a in
       check_solutions_satisfy a c [ [ 0; 0; 0; 0; 0 ]; [ 2; -1; 3; 0; 1 ] ])

let prop_det_multiplicative =
  QCheck.Test.make ~name:"det (A*B) = det A * det B" ~count:200
    (QCheck.pair arb_matrix arb_matrix)
    (fun (a, b) ->
       QCheck.assume (Matrix.rows a = Matrix.cols a);
       QCheck.assume (Matrix.rows b = Matrix.cols b);
       QCheck.assume (Matrix.rows a = Matrix.rows b);
       Zint.equal
         (Matrix.det (Matrix.mul a b))
         (Zint.mul (Matrix.det a) (Matrix.det b)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [
      ("vec", [ Alcotest.test_case "basics" `Quick test_vec_basics ]);
      ( "matrix",
        [
          Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "det" `Quick test_matrix_det;
          Alcotest.test_case "is_echelon" `Quick test_is_echelon;
        ] );
      ( "factorization",
        [
          Alcotest.test_case "paper example" `Quick test_factor_paper_example;
          Alcotest.test_case "various matrices" `Quick test_factor_various;
          Alcotest.test_case "divisibility" `Quick test_solve_echelon_divisibility;
          Alcotest.test_case "consistency" `Quick test_solve_echelon_consistency;
          Alcotest.test_case "parameterization" `Quick test_solution_parameterization;
        ] );
      ( "properties",
        [
          qt prop_factorization_sound;
          qt prop_solutions_satisfy_system;
          qt prop_det_multiplicative;
        ] );
    ]
