(* Random bounded integer constraint systems plus a brute-force
   feasibility oracle. Every generated system carries explicit box rows
   for all variables, so exhaustive enumeration over the box is an
   exact oracle for the dependence tests. *)

open Dda_numeric
open Dda_core

let z = Zint.of_int

type boxed = {
  sys : Consys.t;
  los : int array;
  his : int array;
}

let unit_row nvars i c rhs =
  let coeffs = Array.make nvars Zint.zero in
  coeffs.(i) <- z c;
  { Consys.coeffs; rhs = z rhs }

let box_rows los his =
  let n = Array.length los in
  List.concat
    (List.init n (fun i ->
         [ unit_row n i 1 his.(i); unit_row n i (-1) (-los.(i)) ]))

(* Enumerate all integer points of the box; true iff some point
   satisfies every row. *)
let brute_feasible { sys; los; his } =
  let n = Array.length los in
  let point = Array.make n Zint.zero in
  let rec go i =
    if i >= n then Consys.satisfies_all point sys
    else begin
      let rec try_v v =
        v <= his.(i)
        && (point.(i) <- z v;
            go (i + 1) || try_v (v + 1))
      in
      try_v los.(i)
    end
  in
  go 0

(* Count integer points satisfying all rows (for direction-vector style
   checks). *)
let brute_solutions { sys; los; his } =
  let n = Array.length los in
  let point = Array.make n Zint.zero in
  let out = ref [] in
  let rec go i =
    if i >= n then begin
      if Consys.satisfies_all point sys then out := Array.copy point :: !out
    end
    else
      for v = los.(i) to his.(i) do
        point.(i) <- z v;
        go (i + 1)
      done
  in
  go 0;
  List.rev !out

let gen_boxed : boxed QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 4 >>= fun nvars ->
  (* Small boxes keep enumeration fast: at most 7^4 points. *)
  list_repeat nvars (pair (int_range (-4) 2) (int_range 0 6)) >>= fun ranges ->
  let los = Array.of_list (List.map fst ranges) in
  let his = Array.of_list (List.map (fun (l, w) -> l + w) ranges) in
  int_range 0 5 >>= fun nrows ->
  let gen_row =
    list_repeat nvars (int_range (-3) 3) >>= fun coeffs ->
    int_range (-12) 12 >>= fun rhs ->
    return { Consys.coeffs = Array.of_list (List.map z coeffs); rhs = z rhs }
  in
  list_repeat nrows gen_row >>= fun rows ->
  let sys = Consys.make ~nvars (box_rows los his @ rows) in
  return { sys; los; his }

let print_boxed b = Format.asprintf "%a" (Consys.pp ?names:None) b.sys

let arb_boxed = QCheck.make ~print:print_boxed gen_boxed

(* A variant whose extra rows are difference constraints, to exercise
   the Loop Residue path specifically. *)
let gen_boxed_diff : boxed QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 4 >>= fun nvars ->
  list_repeat nvars (pair (int_range (-4) 2) (int_range 0 6)) >>= fun ranges ->
  let los = Array.of_list (List.map fst ranges) in
  let his = Array.of_list (List.map (fun (l, w) -> l + w) ranges) in
  int_range 1 5 >>= fun nrows ->
  let gen_row =
    int_range 0 (nvars - 1) >>= fun i ->
    int_range 0 (nvars - 1) >>= fun j ->
    let j = if i = j then (j + 1) mod nvars else j in
    int_range 1 3 >>= fun a ->
    int_range (-8) 8 >>= fun rhs ->
    let coeffs = Array.make nvars Zint.zero in
    coeffs.(i) <- z a;
    coeffs.(j) <- z (-a);
    return { Consys.coeffs; rhs = z rhs }
  in
  list_repeat nrows gen_row >>= fun rows ->
  let sys = Consys.make ~nvars (box_rows los his @ rows) in
  return { sys; los; his }

let arb_boxed_diff = QCheck.make ~print:print_boxed gen_boxed_diff
