(* QCheck generators for mini-Fortran programs.

   Two flavors:
   - [arb_program]: syntactically diverse programs (division, negation,
     conditionals, scalar temporaries) for parser/printer round-trip
     tests;
   - [arb_affine_nest]: small, well-formed affine loop nests with small
     constant bounds, suitable for the brute-force trace oracle (the
     iteration space stays enumerable). *)

open Dda_lang
open QCheck

let gen_small_int lo hi = Gen.int_range lo hi

(* ------------------------------------------------------------------ *)
(* Syntactic programs for round-trip testing                           *)
(* ------------------------------------------------------------------ *)

let scalar_names = [| "n"; "m"; "t"; "u"; "acc" |]
let array_names = [| "a"; "b"; "c"; "work" |]
let loop_names = [| "i"; "j"; "k"; "l" |]

let gen_name pool = Gen.map (fun i -> pool.(i mod Array.length pool)) Gen.small_nat

let rec gen_expr depth : Ast.expr Gen.t =
  let open Gen in
  if depth <= 0 then
    oneof
      [
        map Ast.int_ (gen_small_int (-20) 20);
        map Ast.var (gen_name scalar_names);
        map Ast.var (gen_name loop_names);
      ]
  else
    frequency
      [
        (2, map Ast.int_ (gen_small_int (-20) 20));
        (2, map Ast.var (gen_name scalar_names));
        (2, map Ast.var (gen_name loop_names));
        ( 3,
          map3
            (fun op a b -> Ast.bin op a b)
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ])
            (gen_expr (depth - 1))
            (gen_expr (depth - 1)) );
        (1, map Ast.neg (gen_expr (depth - 1)));
        ( 2,
          map2
            (fun name subs -> Ast.aref name subs)
            (gen_name array_names)
            (list_size (int_range 1 3) (gen_expr (depth - 1))) );
      ]

let gen_cond depth : Ast.cond Gen.t =
  let open Gen in
  map3
    (fun rel lhs rhs -> { Ast.rel; lhs; rhs })
    (oneofl [ Ast.Req; Ast.Rne; Ast.Rlt; Ast.Rle; Ast.Rgt; Ast.Rge ])
    (gen_expr depth) (gen_expr depth)

let rec gen_stmt depth : Ast.stmt Gen.t =
  let open Gen in
  let assign_scalar =
    map2 (fun v e -> Ast.assign (Ast.Lvar v) e) (gen_name scalar_names) (gen_expr 2)
  in
  let assign_array =
    map3
      (fun name subs e -> Ast.assign (Ast.Larr (name, subs)) e)
      (gen_name array_names)
      (list_size (int_range 1 3) (gen_expr 1))
      (gen_expr 2)
  in
  let read_stmt = map Ast.read (gen_name scalar_names) in
  if depth <= 0 then oneof [ assign_scalar; assign_array; read_stmt ]
  else
    frequency
      [
        (3, assign_scalar);
        (3, assign_array);
        (1, read_stmt);
        ( 2,
          (* for loop; always non-zero constant step when present *)
          gen_name loop_names >>= fun var ->
          gen_expr 1 >>= fun lo ->
          gen_expr 1 >>= fun hi ->
          oneofl [ None; Some 1; Some 2; Some (-1) ] >>= fun step ->
          list_size (int_range 1 3) (gen_stmt (depth - 1)) >>= fun body ->
          return (Ast.for_ ?step:(Option.map Ast.int_ step) var lo hi body) );
        ( 1,
          gen_cond 1 >>= fun cond ->
          list_size (int_range 1 2) (gen_stmt (depth - 1)) >>= fun then_ ->
          list_size (int_range 0 2) (gen_stmt (depth - 1)) >>= fun else_ ->
          return (Ast.if_ cond then_ else_) );
      ]

let gen_program : Ast.program Gen.t =
  Gen.list_size (Gen.int_range 1 5) (gen_stmt 2)

let arb_program = make ~print:Pretty.program_to_string gen_program

(* ------------------------------------------------------------------ *)
(* Affine loop nests for oracle-based testing                          *)
(* ------------------------------------------------------------------ *)

(* An affine subscript c0 + sum ck * ik over in-scope loop variables. *)
let gen_affine_subscript loop_vars : Ast.expr Gen.t =
  let open Gen in
  let var_term v =
    gen_small_int (-2) 2 >>= fun c ->
    return
      (if c = 0 then None
       else if c = 1 then Some (Ast.var v)
       else Some (Ast.bin Ast.Mul (Ast.int_ c) (Ast.var v)))
  in
  let rec combine acc = function
    | [] -> return acc
    | v :: rest ->
      var_term v >>= fun t ->
      let acc = match t with None -> acc | Some t -> Ast.bin Ast.Add acc t in
      combine acc rest
  in
  gen_small_int (-3) 6 >>= fun c0 -> combine (Ast.int_ c0) loop_vars

let gen_affine_ref loop_vars rank : (string * Ast.expr list) Gen.t =
  let open Gen in
  gen_name array_names >>= fun name ->
  list_repeat rank (gen_affine_subscript loop_vars) >>= fun subs ->
  return (name, subs)

(* A nest of 1-3 loops with small constant bounds; the body contains
   1-3 array assignments whose rhs reads arrays with affine
   subscripts. All arrays in one nest share the generated rank so that
   reference pairs are comparable. *)
let gen_affine_nest : Ast.program Gen.t =
  let open Gen in
  int_range 1 3 >>= fun depth ->
  int_range 1 2 >>= fun rank ->
  let vars = Array.to_list (Array.sub loop_names 0 depth) in
  let gen_assign =
    gen_affine_ref vars rank >>= fun (wname, wsubs) ->
    gen_affine_ref vars rank >>= fun (rname, rsubs) ->
    gen_small_int 0 9 >>= fun k ->
    return
      (Ast.assign (Ast.Larr (wname, wsubs))
         (Ast.bin Ast.Add (Ast.aref rname rsubs) (Ast.int_ k)))
  in
  list_size (int_range 1 3) gen_assign >>= fun body ->
  (* Wrap body in the loops, innermost last. Bounds: lo in 0..2, extent
     2..5 so traces stay small. *)
  let rec wrap vars body =
    match vars with
    | [] -> return body
    | v :: rest ->
      gen_small_int 0 2 >>= fun lo ->
      gen_small_int 2 5 >>= fun extent ->
      wrap rest [ Ast.for_ v (Ast.int_ lo) (Ast.int_ (lo + extent)) body ]
  in
  wrap (List.rev vars) body >>= fun prog ->
  (* Round-trip through the printer so every node carries a genuine
     source location — reference sites are identified by location. *)
  return (Parser.parse_program (Pretty.program_to_string prog))

let arb_affine_nest = make ~print:Pretty.program_to_string gen_affine_nest

(* Like [gen_affine_nest] but with a symbolic unknown [n] (introduced by
   read) added to some subscripts: bounds stay constant so the trace
   oracle can still run, per concrete input. *)
let gen_symbolic_nest : Ast.program Gen.t =
  let open Gen in
  gen_affine_nest >>= fun prog ->
  (* Add "+ k*n" to a random subset of subscripts. *)
  int_range 1 6 >>= fun salt ->
  let count = ref 0 in
  let rec sprinkle_expr (e : Ast.expr) =
    match e.desc with
    | Ast.Int _ | Ast.Var _ -> e
    | Ast.Neg a -> { e with desc = Ast.Neg (sprinkle_expr a) }
    | Ast.Bin (op, a, b) -> { e with desc = Ast.Bin (op, sprinkle_expr a, sprinkle_expr b) }
    | Ast.Aref (name, subs) ->
      let subs =
        List.map
          (fun sub ->
             incr count;
             if (!count + salt) mod 3 = 0 then
               let k = 1 + ((!count + salt) mod 2) in
               Ast.bin Ast.Add sub (Ast.bin Ast.Mul (Ast.int_ k) (Ast.var "n"))
             else sub)
          subs
      in
      { e with desc = Ast.Aref (name, subs) }
  in
  let rec sprinkle_stmt (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Assign (Ast.Larr (name, subs), e) ->
      { s with sdesc = Ast.Assign (Ast.Larr (name, List.map sprinkle_expr subs), sprinkle_expr e) }
    | Ast.Assign (lv, e) -> { s with sdesc = Ast.Assign (lv, sprinkle_expr e) }
    | Ast.For f -> { s with sdesc = Ast.For { f with body = List.map sprinkle_stmt f.body } }
    | Ast.If (c, t, el) ->
      { s with sdesc = Ast.If (c, List.map sprinkle_stmt t, List.map sprinkle_stmt el) }
    | Ast.Read _ -> s
  in
  let prog = Ast.read "n" :: List.map sprinkle_stmt prog in
  (* Round-trip for genuine locations. *)
  return (Parser.parse_program (Pretty.program_to_string prog))

let arb_symbolic_nest = make ~print:Pretty.program_to_string gen_symbolic_nest
