test/support/gen_ast.ml: Array Ast Dda_lang Gen List Option Parser Pretty QCheck
