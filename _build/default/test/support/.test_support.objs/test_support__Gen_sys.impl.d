test/support/gen_sys.ml: Array Consys Dda_core Dda_numeric Format List QCheck Zint
