(* Front-end tests: lexer, parser, pretty-printer round-trip, semantic
   checks, interpreter, and the trace oracle on the paper's motivating
   examples. *)

open Dda_lang

let program = Alcotest.testable Pretty.pp_program Ast.equal_program
let expr = Alcotest.testable Pretty.pp_expr Ast.equal_expr

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "eof only" 1 (List.length (toks ""));
  Alcotest.(check bool) "keywords" true
    (toks "for to step do end if then else read"
     = Token.[ KW_FOR; KW_TO; KW_STEP; KW_DO; KW_END; KW_IF; KW_THEN; KW_ELSE; KW_READ; EOF ]);
  Alcotest.(check bool) "operators" true
    (toks "+ - * / = == != < <= > >= ( ) [ ] ,"
     = Token.[ PLUS; MINUS; STAR; SLASH; ASSIGN; EQ; NE; LT; LE; GT; GE;
               LPAREN; RPAREN; LBRACKET; RBRACKET; COMMA; EOF ]);
  Alcotest.(check bool) "numbers and idents" true
    (toks "a1 42 foo_bar" = Token.[ IDENT "a1"; INT 42; IDENT "foo_bar"; EOF ]);
  Alcotest.(check bool) "comments skipped" true
    (toks "a # comment here\nb" = Token.[ IDENT "a"; IDENT "b"; EOF ])

let test_lexer_locations () =
  let spanned = Lexer.tokenize "a\n  b" in
  match spanned with
  | [ (Token.IDENT "a", l1); (Token.IDENT "b", l2); (Token.EOF, _) ] ->
    Alcotest.(check int) "a line" 1 l1.Loc.line;
    Alcotest.(check int) "a col" 1 l1.Loc.col;
    Alcotest.(check int) "b line" 2 l2.Loc.line;
    Alcotest.(check int) "b col" 3 l2.Loc.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_errors () =
  let fails src =
    try ignore (Lexer.tokenize src); false with Lexer.Error _ -> true
  in
  Alcotest.(check bool) "bad char" true (fails "a $ b");
  Alcotest.(check bool) "lone bang" true (fails "a ! b");
  Alcotest.(check bool) "huge literal" true
    (fails "999999999999999999999999999999")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_paper_intro () =
  (* First loop of the paper's introduction. *)
  let prog = Parser.parse_program "for i = 1 to 10 do a[i] = a[i+10] + 3 endfor" in
  let expected =
    [
      Ast.for_ "i" (Ast.int_ 1) (Ast.int_ 10)
        [
          Ast.assign
            (Ast.Larr ("a", [ Ast.var "i" ]))
            (Ast.bin Ast.Add
               (Ast.aref "a" [ Ast.bin Ast.Add (Ast.var "i") (Ast.int_ 10) ])
               (Ast.int_ 3));
        ];
    ]
  in
  Alcotest.check program "intro loop" expected prog

let test_parse_precedence () =
  Alcotest.check expr "mul binds tighter"
    (Ast.bin Ast.Add (Ast.var "a") (Ast.bin Ast.Mul (Ast.var "b") (Ast.var "c")))
    (Parser.parse_expr "a + b * c");
  Alcotest.check expr "parens override"
    (Ast.bin Ast.Mul (Ast.bin Ast.Add (Ast.var "a") (Ast.var "b")) (Ast.var "c"))
    (Parser.parse_expr "(a + b) * c");
  Alcotest.check expr "left assoc sub"
    (Ast.bin Ast.Sub (Ast.bin Ast.Sub (Ast.var "a") (Ast.var "b")) (Ast.var "c"))
    (Parser.parse_expr "a - b - c");
  Alcotest.check expr "unary minus"
    (Ast.bin Ast.Add (Ast.var "a") (Ast.neg (Ast.var "b")))
    (Parser.parse_expr "a + -b")

let test_parse_full_features () =
  let src =
    "read(n)\n\
     for i = 1 to n step 2 do\n\
    \  if i < n then\n\
    \    a[i][i+1] = b[2*i] + 1\n\
    \  else\n\
    \    t = t / 2\n\
    \  endif\n\
     endfor"
  in
  match Parser.parse_program src with
  | [ { sdesc = Ast.Read "n"; _ }; { sdesc = Ast.For f; _ } ] ->
    Alcotest.(check string) "loop var" "i" f.var;
    Alcotest.(check bool) "has step" true (f.step <> None);
    (match f.body with
     | [ { sdesc = Ast.If (_, [ _ ], [ _ ]); _ } ] -> ()
     | _ -> Alcotest.fail "expected if with one stmt per branch")
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let fails src =
    try ignore (Parser.parse_program src); false with Parser.Error _ -> true
  in
  Alcotest.(check bool) "missing do" true (fails "for i = 1 to 10 a[i] = 1 end");
  Alcotest.(check bool) "missing end" true (fails "for i = 1 to 10 do a[i] = 1");
  Alcotest.(check bool) "bad expr" true (fails "a[i] = +");
  Alcotest.(check bool) "trailing junk" true (fails "a = 1 )");
  Alcotest.(check bool) "missing bracket" true (fails "a[i = 3")

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                           *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (pretty p) = p" ~count:300
    Test_support.Gen_ast.arb_program
    (fun p ->
       let printed = Pretty.program_to_string p in
       match Parser.parse_program printed with
       | p' -> Ast.equal_program p p'
       | exception (Parser.Error (msg, loc)) ->
         QCheck.Test.fail_reportf "parse error %s at %s on:@.%s" msg
           (Loc.to_string loc) printed)

(* The front end must never crash on garbage: any byte string either
   parses or raises the two documented exceptions. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (errors, never crashes)" ~count:1000
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun s ->
       match Parser.parse_program s with
       | _ -> true
       | exception Parser.Error _ -> true
       | exception Lexer.Error _ -> true)

(* Token soup: sequences of valid tokens stress the parser's error
   recovery more than random bytes do. *)
let prop_parser_total_token_soup =
  QCheck.Test.make ~name:"parser is total on token soup" ~count:1000
    QCheck.(
      make
        Gen.(
          list_size (int_range 0 30)
            (oneofl
               [ "for"; "to"; "do"; "end"; "if"; "then"; "else"; "read"; "step";
                 "i"; "a"; "(„ÅÇ"; "1"; "42"; "+"; "-"; "*"; "/"; "="; "==";
                 "<"; "<="; ">"; ">="; "!="; "("; ")"; "["; "]"; "," ])
          >>= fun toks -> return (String.concat " " toks)))
    (fun s ->
       match Parser.parse_program s with
       | _ -> true
       | exception Parser.Error _ -> true
       | exception Lexer.Error _ -> true)

let test_roundtrip_tricky () =
  (* Cases where precedence-aware printing matters. *)
  List.iter
    (fun src ->
       let e = Parser.parse_expr src in
       let printed = Pretty.expr_to_string e in
       Alcotest.check expr src e (Parser.parse_expr printed))
    [
      "a - (b - c)";
      "a / (b / c)";
      "-(a + b)";
      "-a * b";
      "(a + b) * (c - d)";
      "a - -b";
      "2 * a[i + -1][j]";
    ]

(* ------------------------------------------------------------------ *)
(* Semantic checks                                                     *)
(* ------------------------------------------------------------------ *)

let errors_of src = Semant.check (Parser.parse_program src)

let test_semant_accepts () =
  Alcotest.(check int) "clean program" 0
    (List.length
       (errors_of
          "read(n)\nfor i = 1 to n do\n  a[i] = a[i-1] + n\nend"))

let test_semant_rejects () =
  let has_error src = errors_of src <> [] in
  Alcotest.(check bool) "assign to loop var" true
    (has_error "for i = 1 to 10 do i = 3 end");
  Alcotest.(check bool) "shadowed loop var" true
    (has_error "for i = 1 to 10 do for i = 1 to 10 do a[i] = 1 end end");
  Alcotest.(check bool) "rank mismatch" true
    (has_error "for i = 1 to 10 do a[i] = a[i][i] end");
  Alcotest.(check bool) "zero step" true
    (has_error "for i = 1 to 10 step 0 do a[i] = 1 end");
  Alcotest.(check bool) "non-constant step" true
    (has_error "read(n)\nfor i = 1 to 10 step n do a[i] = 1 end");
  Alcotest.(check bool) "undefined scalar" true
    (has_error "a[1] = q + 1");
  Alcotest.(check bool) "read into loop var" true
    (has_error "for i = 1 to 10 do read(i) end")

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let test_interp_scalars () =
  let prog = Parser.parse_program "t = 2\nu = t * 3 + 1" in
  Alcotest.(check (option int)) "u = 7" (Some 7) (Interp.scalar_value prog "u")

let test_interp_loop_sum () =
  (* Sum 1..10 into acc. *)
  let prog = Parser.parse_program "acc = 0\nfor i = 1 to 10 do acc = acc + i end" in
  Alcotest.(check (option int)) "sum" (Some 55) (Interp.scalar_value prog "acc")

let test_interp_step_and_if () =
  let prog =
    Parser.parse_program
      "acc = 0\nfor i = 1 to 10 step 2 do\n  if i > 5 then acc = acc + i end\nend"
  in
  (* i in {1,3,5,7,9}; those > 5 sum to 16. *)
  Alcotest.(check (option int)) "sum" (Some 16) (Interp.scalar_value prog "acc");
  let down =
    Parser.parse_program "acc = 0\nfor i = 5 to 1 step -2 do acc = acc + i end"
  in
  Alcotest.(check (option int)) "downward" (Some 9) (Interp.scalar_value down "acc")

let test_interp_inputs () =
  let prog = Parser.parse_program "read(n)\nt = n + 1" in
  Alcotest.(check (option int)) "input used" (Some 6)
    (Interp.scalar_value ~inputs:[ ("n", 5) ] prog "t");
  Alcotest.(check (option int)) "default 0" (Some 1) (Interp.scalar_value prog "t")

let test_interp_memory () =
  let prog = Parser.parse_program "a[3] = 7\nt = a[3] + a[4]" in
  Alcotest.(check (option int)) "load stored and default" (Some 7)
    (Interp.scalar_value prog "t")

let test_interp_trace () =
  let prog = Parser.parse_program "for i = 1 to 3 do a[i] = a[i+1] end" in
  let accesses = Interp.run prog in
  (* Per iteration: one read, one write. *)
  Alcotest.(check int) "6 accesses" 6 (List.length accesses);
  let writes = List.filter (fun (a : Interp.access) -> a.role = `Write) accesses in
  Alcotest.(check int) "3 writes" 3 (List.length writes);
  List.iteri
    (fun k (a : Interp.access) ->
       Alcotest.(check (list (pair string int))) "iteration vector"
         [ ("i", k + 1) ] a.iter;
       Alcotest.(check (list int)) "indices" [ k + 1 ] a.indices)
    writes

let test_interp_fuel () =
  let prog = Parser.parse_program "for i = 1 to 1000 do a[i] = i end" in
  Alcotest.(check bool) "fuel exhausts" true
    (try ignore (Interp.run ~fuel:50 prog); false
     with Interp.Runtime_error ("execution budget exhausted", _) -> true);
  Alcotest.(check int) "enough fuel" 1000
    (List.length (Interp.run ~fuel:2000 prog));
  Alcotest.(check int) "unlimited by default" 1000 (List.length (Interp.run prog))

let test_interp_div_by_zero () =
  let prog = Parser.parse_program "t = 1 / 0" in
  Alcotest.(check bool) "raises" true
    (try ignore (Interp.run prog); false with Interp.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace oracle                                                        *)
(* ------------------------------------------------------------------ *)

(* The single distinct-site pair of a one-statement loop (self pairs of
   the write are also enumerated; skip them). *)
let sites_of prog =
  match
    List.filter (fun (s1, s2, _) -> not (Loc.equal s1 s2)) (Trace.all_site_pairs prog)
  with
  | [ (s1, s2, _) ] -> (s1, s2)
  | pairs -> Alcotest.fail (Printf.sprintf "expected 1 pair, got %d" (List.length pairs))

let test_oracle_intro_independent () =
  (* Paper intro, first loop: writes a[1..10], reads a[11..20]. *)
  let prog = Parser.parse_program "for i = 1 to 10 do a[i] = a[i+10] + 3 end" in
  let s1, s2 = sites_of prog in
  let obs = Trace.observe prog ~site1:s1 ~site2:s2 in
  Alcotest.(check bool) "independent" false obs.dependent

let test_oracle_intro_dependent () =
  (* Paper intro, second loop: a[i+1] = a[i] + 3, distance 1. *)
  let prog = Parser.parse_program "for i = 1 to 10 do a[i+1] = a[i] + 3 end" in
  let s1, s2 = sites_of prog in
  let obs = Trace.observe prog ~site1:s1 ~site2:s2 in
  Alcotest.(check bool) "dependent" true obs.dependent;
  Alcotest.(check bool) "direction <" true (obs.directions = [ [ Trace.Lt ] ]);
  Alcotest.(check bool) "distance 1" true (obs.distances = [ [ 1 ] ])

let test_oracle_self_pair () =
  (* A write site paired with itself: a[i] = ... never overlaps across
     distinct iterations; a[i/2]-style would. Use a[5] which always hits
     the same cell. *)
  let prog = Parser.parse_program "for i = 1 to 4 do a[5] = i end" in
  (match Trace.all_site_pairs prog with
   | [ (s1, s2, "a") ] ->
     Alcotest.(check bool) "self pair" true (Loc.equal s1 s2);
     let obs = Trace.observe prog ~site1:s1 ~site2:s2 in
     Alcotest.(check bool) "output dependent" true obs.dependent;
     Alcotest.(check bool) "all non-eq directions" true
       (obs.directions = [ [ Trace.Lt ]; [ Trace.Gt ] ])
   | _ -> Alcotest.fail "expected single self pair");
  let indep = Parser.parse_program "for i = 1 to 4 do a[i] = i end" in
  (match Trace.all_site_pairs indep with
   | [ (s1, s2, "a") ] ->
     let obs = Trace.observe indep ~site1:s1 ~site2:s2 in
     Alcotest.(check bool) "disjoint writes independent" false obs.dependent
   | _ -> Alcotest.fail "expected single self pair")

let test_oracle_multi_vector () =
  (* Paper section 6: a[i][j] = a[2i][j] has direction vectors "(<,=)"
     and "(=,any)". Here the write is a[i][j], read a[2i][j]. *)
  let prog =
    Parser.parse_program
      "for i = 0 to 10 do for j = 0 to 10 do a[i][j] = a[2*i][j] + 7 end end"
  in
  let s1, s2 = sites_of prog in
  let obs = Trace.observe prog ~site1:s1 ~site2:s2 in
  Alcotest.(check bool) "dependent" true obs.dependent;
  (* Observed directions on (i, j): i = 2i' only for i = i' = 0 giving
     (=,...); write at i later read at 2i gives (<, =) instances; no
     (>, _) since 2i >= i on this range. Check that (=,=) and (<,=) are
     both observed. *)
  (* Overlap needs i = 2i', so the write's iteration is >= the read's:
     (=,=) at i = i' = 0 and (>,=) for i' >= 1. *)
  Alcotest.(check bool) "(=,=) observed" true
    (List.mem [ Trace.Eq; Trace.Eq ] obs.directions);
  Alcotest.(check bool) "(>,=) observed" true
    (List.mem [ Trace.Gt; Trace.Eq ] obs.directions);
  Alcotest.(check bool) "no (<,_) observed" true
    (List.for_all (function Trace.Lt :: _ -> false | _ -> true) obs.directions)

let test_oracle_pair_enumeration () =
  let prog =
    Parser.parse_program
      "for i = 1 to 3 do\n  a[i] = b[i] + a[i]\n  b[i+1] = a[i] * 2\nend"
  in
  (* References: writes a[i] (w1), b[i+1] (w2); reads b[i], a[i](rhs1),
     a[i](rhs2). Pairs on same array with a write:
     a: w1-w1, w1-r_a1, w1-r_a2; b: r_b-w2 (order by position), w2-w2.
     That's 5. *)
  Alcotest.(check int) "pair count" 5 (List.length (Trace.all_site_pairs prog))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "locations" `Quick test_lexer_locations;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper intro" `Quick test_parse_paper_intro;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "full features" `Quick test_parse_full_features;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "tricky precedence" `Quick test_roundtrip_tricky;
          qt prop_roundtrip;
          qt prop_parser_total;
          qt prop_parser_total_token_soup;
        ] );
      ( "semant",
        [
          Alcotest.test_case "accepts clean" `Quick test_semant_accepts;
          Alcotest.test_case "rejects bad" `Quick test_semant_rejects;
        ] );
      ( "interp",
        [
          Alcotest.test_case "scalars" `Quick test_interp_scalars;
          Alcotest.test_case "loop sum" `Quick test_interp_loop_sum;
          Alcotest.test_case "step and if" `Quick test_interp_step_and_if;
          Alcotest.test_case "inputs" `Quick test_interp_inputs;
          Alcotest.test_case "memory" `Quick test_interp_memory;
          Alcotest.test_case "trace" `Quick test_interp_trace;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "intro independent" `Quick test_oracle_intro_independent;
          Alcotest.test_case "intro dependent" `Quick test_oracle_intro_dependent;
          Alcotest.test_case "self pair" `Quick test_oracle_self_pair;
          Alcotest.test_case "multiple vectors" `Quick test_oracle_multi_vector;
          Alcotest.test_case "pair enumeration" `Quick test_oracle_pair_enumeration;
        ] );
    ]
