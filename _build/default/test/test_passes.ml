(* Optimizer pass tests. The master property: every pass (and the whole
   pipeline) preserves the program's final state and its array access
   trace — checked against the reference interpreter on random
   programs. Unit tests pin the specific rewrites the paper relies on,
   including the section 8 induction-variable example. *)

open Dda_lang
open Dda_passes

let parse = Parser.parse_program
let program = Alcotest.testable Pretty.pp_program Ast.equal_program

(* Observable behaviour: final state plus the (array, indices, role)
   trace; locations and iteration vectors may legitimately change. *)
let observe ?inputs prog =
  let state, trace = Interp.final_state ?inputs prog in
  (* Compiler-generated loop counters are not observable state. *)
  let scalars =
    List.filter (fun (name, _) -> not (Normalize.is_temp_name name)) state.scalars
  in
  ( scalars,
    state.memory,
    List.map (fun (a : Interp.access) -> (a.array, a.indices, a.role)) trace )

let check_equivalent ?inputs name before after =
  let sb = observe ?inputs before and sa = observe ?inputs after in
  Alcotest.(check bool) (name ^ ": same behaviour") true (sb = sa)

(* ------------------------------------------------------------------ *)
(* Constant propagation                                                *)
(* ------------------------------------------------------------------ *)

let test_cp_straight_line () =
  let prog = parse "n = 100\nm = n + 1\na[m] = a[n] + m" in
  let expected = parse "n = 100\nm = 101\na[101] = a[100] + 101" in
  Alcotest.check program "folded" expected (Const_prop.run prog)

let test_cp_kill_on_read () =
  let prog = parse "n = 5\nread(n)\na[n] = 1" in
  let expected = parse "n = 5\nread(n)\na[n] = 1" in
  Alcotest.check program "read kills" expected (Const_prop.run prog)

let test_cp_kill_in_loop () =
  (* t is reassigned inside the loop, so its uses there can't fold. *)
  let prog = parse "t = 1\nfor i = 1 to 10 do\n  a[t] = 1\n  t = t + 1\nend" in
  Alcotest.check program "loop kills" prog (Const_prop.run prog)

let test_cp_if_merge () =
  let prog =
    parse
      "t = 1\nu = 2\nread(n)\nif n > 0 then t = 3 else t = 3 end\na[t][u] = 1"
  in
  let result = Const_prop.run prog in
  (* Both branches set t = 3, u untouched: both fold after the if. *)
  let expected =
    parse
      "t = 1\nu = 2\nread(n)\nif n > 0 then t = 3 else t = 3 end\na[3][2] = 1"
  in
  Alcotest.check program "merged" expected result

let test_cp_if_no_merge () =
  let prog = parse "read(n)\nt = 1\nif n > 0 then t = 3 end\na[t] = 1" in
  Alcotest.check program "divergent branches don't fold" prog (Const_prop.run prog)

let test_cp_bounds () =
  let prog = parse "n = 10\nfor i = 1 to n do a[i] = 1 end" in
  let expected = parse "n = 10\nfor i = 1 to 10 do a[i] = 1 end" in
  Alcotest.check program "bounds folded" expected (Const_prop.run prog)

(* ------------------------------------------------------------------ *)
(* Forward substitution                                                *)
(* ------------------------------------------------------------------ *)

let test_fs_basic () =
  let prog = parse "read(n)\nm = n + 1\nfor i = 1 to 10 do a[m + i] = a[i] end" in
  let result = Forward_subst.run prog in
  let expected =
    parse "read(n)\nm = n + 1\nfor i = 1 to 10 do a[n + i + 1] = a[i] end"
  in
  Alcotest.check program "substituted" expected result

let test_fs_kill_on_redef () =
  let prog = parse "read(n)\nm = n + 1\nread(n)\na[m] = 1" in
  let result = Forward_subst.run prog in
  (* n changed after m's definition: m must NOT be rewritten to n + 1. *)
  Alcotest.check program "killed binding" prog result

let test_fs_no_self_reference () =
  let prog = parse "read(n)\nm = m + 1\na[m] = 1" in
  Alcotest.check program "self-referential def not bound" prog
    (Forward_subst.run prog)

let test_fs_chain () =
  let prog = parse "read(n)\nm = n + 1\nt = m * 2\na[t] = 1" in
  let result = Forward_subst.run prog in
  let expected = parse "read(n)\nm = n + 1\nt = 2 * n + 2\na[2 * n + 2] = 1" in
  Alcotest.check program "chained" expected result

(* ------------------------------------------------------------------ *)
(* Induction-variable substitution                                     *)
(* ------------------------------------------------------------------ *)

(* The paper's section 8 example: after the full pipeline, subscripts
   are affine in i and iz is gone from the loop body. *)
let test_induction_paper_example () =
  let prog =
    parse
      "n = 100\n\
       iz = 0\n\
       for i = 1 to 10 do\n\
      \  iz = iz + 2\n\
      \  a[iz + n] = a[iz + 2 * n + 1] + 3\n\
       end"
  in
  let result = Pipeline.run prog in
  check_equivalent "paper s8" prog result;
  (* iz must not appear in any remaining subscript. *)
  let refs = Ast.array_refs result in
  List.iter
    (fun (_, subs, _, _) ->
       List.iter
         (fun sub ->
            Alcotest.(check bool) "no iz in subscripts" false
              (Expr_util.uses_var "iz" sub))
         subs)
    refs;
  (* The subscripts the paper reports: 2i + 100 reads/writes. Check by
     evaluating the write subscript at i = 1 .. 3 via the trace. *)
  let writes =
    List.filter (fun (a : Interp.access) -> a.role = `Write) (Interp.run result)
  in
  List.iteri
    (fun k (a : Interp.access) ->
       Alcotest.(check (list int)) "write index 2i+100" [ (2 * (k + 1)) + 100 ] a.indices)
    writes

let test_induction_decrement () =
  let prog = parse "iz = 20\nfor i = 1 to 5 do\n  iz = iz - 3\n  a[iz] = 1\nend" in
  let result = Induction.run prog in
  check_equivalent "decrement" prog result;
  Alcotest.(check (option int)) "final iz" (Some 5) (Interp.scalar_value result "iz")

let test_induction_use_before_increment () =
  let prog =
    parse "iz = 0\nfor i = 1 to 5 do\n  a[iz] = 1\n  iz = iz + 1\n  b[iz] = 2\nend"
  in
  let result = Induction.run prog in
  check_equivalent "use before and after" prog result

let test_induction_symbolic_base () =
  (* Entry value unknown (read): uses become iz + 2*(i - 1) style with
     iz as a symbolic base; semantics preserved for any input. *)
  let prog = parse "read(iz)\nfor i = 1 to 5 do\n  iz = iz + 2\n  a[iz] = 1\nend" in
  let result = Induction.run prog in
  check_equivalent ~inputs:[ ("iz", 7) ] "symbolic base" prog result;
  (* The increment statement is gone from the loop body. *)
  (match
     List.find_map
       (fun (s : Ast.stmt) ->
          match s.sdesc with Ast.For f -> Some f.body | _ -> None)
       result
   with
   | Some body ->
     Alcotest.(check int) "increment removed" 0 (Expr_util.assigned_vars body |> List.length)
   | None -> Alcotest.fail "loop missing")

let test_induction_zero_trip () =
  let prog = parse "iz = 5\nread(n)\nfor i = 1 to n do\n  iz = iz + 1\n  a[iz] = 1\nend" in
  let result = Induction.run prog in
  (* Zero-trip execution must leave iz = 5. *)
  check_equivalent ~inputs:[ ("n", 0) ] "zero trips" prog result;
  check_equivalent ~inputs:[ ("n", 3) ] "three trips" prog result

let test_induction_skips_conditional_increment () =
  let prog =
    parse
      "iz = 0\nread(n)\nfor i = 1 to 5 do\n  if i < n then iz = iz + 1 end\n  a[iz] = 1\nend"
  in
  (* The increment is conditional: not a valid candidate. *)
  Alcotest.check program "left alone" prog (Induction.run prog);
  check_equivalent ~inputs:[ ("n", 3) ] "still equivalent" prog (Induction.run prog)

let test_induction_two_variables () =
  let prog =
    parse
      "iz = 0\nju = 100\nfor i = 1 to 4 do\n  iz = iz + 1\n  ju = ju - 2\n  a[iz][ju] = 1\nend"
  in
  let result = Induction.run prog in
  check_equivalent "two induction vars" prog result

(* ------------------------------------------------------------------ *)
(* Loop normalization                                                  *)
(* ------------------------------------------------------------------ *)

let test_normalize_positive_step () =
  let prog = parse "for i = 1 to 10 step 2 do a[i] = i end" in
  let result = Normalize.run prog in
  check_equivalent "step 2" prog result;
  (* Result: a guard whose then-branch starts with a unit-step loop
     from 0. *)
  (match result with
   | { sdesc = Ast.If (_, { sdesc = Ast.For { lo; step; _ }; _ } :: _, []); _ } :: _ ->
     Alcotest.(check bool) "lo = 0" true (Ast.equal_expr lo (Ast.int_ 0));
     Alcotest.(check bool) "unit step" true (step = None)
   | _ -> Alcotest.fail "expected guarded loop first");
  Alcotest.(check (option int)) "final i (last executed)" (Some 9)
    (Interp.scalar_value result "i")

let test_normalize_negative_step () =
  let prog = parse "for i = 10 to 1 step -3 do a[i] = i end" in
  let result = Normalize.run prog in
  check_equivalent "step -3" prog result

let test_normalize_zero_trip () =
  let prog = parse "i = 42\nfor i = 10 to 1 step 2 do a[i] = i end" in
  let result = Normalize.run prog in
  check_equivalent "zero trip up" prog result;
  Alcotest.(check (option int)) "i untouched" (Some 42) (Interp.scalar_value result "i")

let test_normalize_symbolic_bounds () =
  let prog = parse "read(n)\nfor i = 1 to n step 2 do a[i] = i end" in
  let result = Normalize.run prog in
  List.iter
    (fun n -> check_equivalent ~inputs:[ ("n", n) ] "symbolic bound" prog result)
    [ -3; 0; 1; 2; 7; 10 ]

let test_normalize_unit_step_annotation () =
  let prog = parse "for i = 1 to 5 step 1 do a[i] = i end" in
  let expected = parse "for i = 1 to 5 do a[i] = i end" in
  Alcotest.check program "step 1 dropped" expected (Normalize.run prog)

let test_normalize_nested () =
  let prog =
    parse
      "for i = 0 to 8 step 2 do\n  for j = 8 to 0 step -2 do\n    a[i][j] = i + j\n  end\nend"
  in
  check_equivalent "nested" prog (Normalize.run prog)

(* ------------------------------------------------------------------ *)
(* Pipeline properties                                                 *)
(* ------------------------------------------------------------------ *)

let runs_cleanly prog =
  match Interp.final_state prog with
  | _ -> true
  | exception Interp.Runtime_error _ -> false

let prop_pass_preserves name pass =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s preserves state and trace" name)
    ~count:300 Test_support.Gen_ast.arb_program
    (fun prog ->
       QCheck.assume (runs_cleanly prog);
       let after = pass prog in
       observe prog = observe after)

let prop_pipeline_idempotent =
  QCheck.Test.make ~name:"pipeline is idempotent" ~count:150
    Test_support.Gen_ast.arb_program
    (fun prog ->
       QCheck.assume (runs_cleanly prog);
       let once = Pipeline.run prog in
       Ast.equal_program once (Pipeline.run once))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "passes"
    [
      ( "const-prop",
        [
          Alcotest.test_case "straight line" `Quick test_cp_straight_line;
          Alcotest.test_case "kill on read" `Quick test_cp_kill_on_read;
          Alcotest.test_case "kill in loop" `Quick test_cp_kill_in_loop;
          Alcotest.test_case "if merge" `Quick test_cp_if_merge;
          Alcotest.test_case "if no merge" `Quick test_cp_if_no_merge;
          Alcotest.test_case "bounds" `Quick test_cp_bounds;
        ] );
      ( "forward-subst",
        [
          Alcotest.test_case "basic" `Quick test_fs_basic;
          Alcotest.test_case "kill on redef" `Quick test_fs_kill_on_redef;
          Alcotest.test_case "no self reference" `Quick test_fs_no_self_reference;
          Alcotest.test_case "chain" `Quick test_fs_chain;
        ] );
      ( "induction",
        [
          Alcotest.test_case "paper s8 example" `Quick test_induction_paper_example;
          Alcotest.test_case "decrement" `Quick test_induction_decrement;
          Alcotest.test_case "use before increment" `Quick test_induction_use_before_increment;
          Alcotest.test_case "symbolic base" `Quick test_induction_symbolic_base;
          Alcotest.test_case "zero trip" `Quick test_induction_zero_trip;
          Alcotest.test_case "conditional increment skipped" `Quick
            test_induction_skips_conditional_increment;
          Alcotest.test_case "two variables" `Quick test_induction_two_variables;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "positive step" `Quick test_normalize_positive_step;
          Alcotest.test_case "negative step" `Quick test_normalize_negative_step;
          Alcotest.test_case "zero trip" `Quick test_normalize_zero_trip;
          Alcotest.test_case "symbolic bounds" `Quick test_normalize_symbolic_bounds;
          Alcotest.test_case "unit step annotation" `Quick test_normalize_unit_step_annotation;
          Alcotest.test_case "nested" `Quick test_normalize_nested;
        ] );
      ( "properties",
        List.map (fun (n, p) -> qt (prop_pass_preserves n p)) Pipeline.passes
        @ [
            qt (prop_pass_preserves "pipeline" Pipeline.run);
            qt prop_pipeline_idempotent;
          ] );
    ]
